file(REMOVE_RECURSE
  "CMakeFiles/monotonic_shields.dir/monotonic_shields.cpp.o"
  "CMakeFiles/monotonic_shields.dir/monotonic_shields.cpp.o.d"
  "monotonic_shields"
  "monotonic_shields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monotonic_shields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
