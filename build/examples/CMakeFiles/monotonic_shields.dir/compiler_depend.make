# Empty compiler generated dependencies file for monotonic_shields.
# This may be replaced when dependencies are built.
