file(REMOVE_RECURSE
  "CMakeFiles/cell_profiling.dir/cell_profiling.cpp.o"
  "CMakeFiles/cell_profiling.dir/cell_profiling.cpp.o.d"
  "cell_profiling"
  "cell_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
