# Empty compiler generated dependencies file for cell_profiling.
# This may be replaced when dependencies are built.
