
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/privilege_escalation.cpp" "examples/CMakeFiles/privilege_escalation.dir/privilege_escalation.cpp.o" "gcc" "examples/CMakeFiles/privilege_escalation.dir/privilege_escalation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/ctamem_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/ctamem_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ctamem_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ctamem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/ctamem_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ctamem_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/cta/CMakeFiles/ctamem_cta.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/ctamem_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/ctamem_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/ctamem_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ctamem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctamem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
