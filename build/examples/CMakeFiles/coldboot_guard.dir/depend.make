# Empty dependencies file for coldboot_guard.
# This may be replaced when dependencies are built.
