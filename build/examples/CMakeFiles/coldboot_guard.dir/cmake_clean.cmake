file(REMOVE_RECURSE
  "CMakeFiles/coldboot_guard.dir/coldboot_guard.cpp.o"
  "CMakeFiles/coldboot_guard.dir/coldboot_guard.cpp.o.d"
  "coldboot_guard"
  "coldboot_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldboot_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
