# Empty dependencies file for bench_coldboot_window.
# This may be replaced when dependencies are built.
