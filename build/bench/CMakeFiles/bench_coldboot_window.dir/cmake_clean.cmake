file(REMOVE_RECURSE
  "CMakeFiles/bench_coldboot_window.dir/bench_coldboot_window.cc.o"
  "CMakeFiles/bench_coldboot_window.dir/bench_coldboot_window.cc.o.d"
  "bench_coldboot_window"
  "bench_coldboot_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coldboot_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
