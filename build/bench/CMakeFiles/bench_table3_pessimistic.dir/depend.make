# Empty dependencies file for bench_table3_pessimistic.
# This may be replaced when dependencies are built.
