file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pessimistic.dir/bench_table3_pessimistic.cc.o"
  "CMakeFiles/bench_table3_pessimistic.dir/bench_table3_pessimistic.cc.o.d"
  "bench_table3_pessimistic"
  "bench_table3_pessimistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pessimistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
