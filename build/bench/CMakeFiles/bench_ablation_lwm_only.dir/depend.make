# Empty dependencies file for bench_ablation_lwm_only.
# This may be replaced when dependencies are built.
