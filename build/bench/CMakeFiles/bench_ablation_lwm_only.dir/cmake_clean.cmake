file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lwm_only.dir/bench_ablation_lwm_only.cc.o"
  "CMakeFiles/bench_ablation_lwm_only.dir/bench_ablation_lwm_only.cc.o.d"
  "bench_ablation_lwm_only"
  "bench_ablation_lwm_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lwm_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
