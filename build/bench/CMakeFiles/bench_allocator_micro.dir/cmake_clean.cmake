file(REMOVE_RECURSE
  "CMakeFiles/bench_allocator_micro.dir/bench_allocator_micro.cc.o"
  "CMakeFiles/bench_allocator_micro.dir/bench_allocator_micro.cc.o.d"
  "bench_allocator_micro"
  "bench_allocator_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocator_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
