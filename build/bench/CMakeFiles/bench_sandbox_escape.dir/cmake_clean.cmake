file(REMOVE_RECURSE
  "CMakeFiles/bench_sandbox_escape.dir/bench_sandbox_escape.cc.o"
  "CMakeFiles/bench_sandbox_escape.dir/bench_sandbox_escape.cc.o.d"
  "bench_sandbox_escape"
  "bench_sandbox_escape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sandbox_escape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
