# Empty dependencies file for bench_sandbox_escape.
# This may be replaced when dependencies are built.
