file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_monotonicity.dir/bench_fig5_monotonicity.cc.o"
  "CMakeFiles/bench_fig5_monotonicity.dir/bench_fig5_monotonicity.cc.o.d"
  "bench_fig5_monotonicity"
  "bench_fig5_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
