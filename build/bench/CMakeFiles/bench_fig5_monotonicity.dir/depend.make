# Empty dependencies file for bench_fig5_monotonicity.
# This may be replaced when dependencies are built.
