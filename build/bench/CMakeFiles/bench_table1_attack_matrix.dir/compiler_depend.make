# Empty compiler generated dependencies file for bench_table1_attack_matrix.
# This may be replaced when dependencies are built.
