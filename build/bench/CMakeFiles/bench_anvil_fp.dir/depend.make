# Empty dependencies file for bench_anvil_fp.
# This may be replaced when dependencies are built.
