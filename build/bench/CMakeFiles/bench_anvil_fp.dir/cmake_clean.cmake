file(REMOVE_RECURSE
  "CMakeFiles/bench_anvil_fp.dir/bench_anvil_fp.cc.o"
  "CMakeFiles/bench_anvil_fp.dir/bench_anvil_fp.cc.o.d"
  "bench_anvil_fp"
  "bench_anvil_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anvil_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
