file(REMOVE_RECURSE
  "CMakeFiles/bench_capacity_loss.dir/bench_capacity_loss.cc.o"
  "CMakeFiles/bench_capacity_loss.dir/bench_capacity_loss.cc.o.d"
  "bench_capacity_loss"
  "bench_capacity_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capacity_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
