# Empty compiler generated dependencies file for bench_hamming_shield.
# This may be replaced when dependencies are built.
