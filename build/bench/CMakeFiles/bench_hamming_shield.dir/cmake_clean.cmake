file(REMOVE_RECURSE
  "CMakeFiles/bench_hamming_shield.dir/bench_hamming_shield.cc.o"
  "CMakeFiles/bench_hamming_shield.dir/bench_hamming_shield.cc.o.d"
  "bench_hamming_shield"
  "bench_hamming_shield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hamming_shield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
