# Empty dependencies file for bench_attack_time.
# This may be replaced when dependencies are built.
