file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_time.dir/bench_attack_time.cc.o"
  "CMakeFiles/bench_attack_time.dir/bench_attack_time.cc.o.d"
  "bench_attack_time"
  "bench_attack_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
