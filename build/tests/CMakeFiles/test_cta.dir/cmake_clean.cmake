file(REMOVE_RECURSE
  "CMakeFiles/test_cta.dir/test_cta.cc.o"
  "CMakeFiles/test_cta.dir/test_cta.cc.o.d"
  "test_cta"
  "test_cta.pdb"
  "test_cta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
