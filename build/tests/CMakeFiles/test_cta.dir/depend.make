# Empty dependencies file for test_cta.
# This may be replaced when dependencies are built.
