# Empty compiler generated dependencies file for test_pagesize.
# This may be replaced when dependencies are built.
