file(REMOVE_RECURSE
  "CMakeFiles/test_pagesize.dir/test_pagesize.cc.o"
  "CMakeFiles/test_pagesize.dir/test_pagesize.cc.o.d"
  "test_pagesize"
  "test_pagesize.pdb"
  "test_pagesize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
