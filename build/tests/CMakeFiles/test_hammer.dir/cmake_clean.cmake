file(REMOVE_RECURSE
  "CMakeFiles/test_hammer.dir/test_hammer.cc.o"
  "CMakeFiles/test_hammer.dir/test_hammer.cc.o.d"
  "test_hammer"
  "test_hammer.pdb"
  "test_hammer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hammer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
