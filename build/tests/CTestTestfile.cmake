# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_hammer[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_mm[1]_include.cmake")
include("/root/repo/build/tests/test_paging[1]_include.cmake")
include("/root/repo/build/tests/test_cta[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_defense[1]_include.cmake")
include("/root/repo/build/tests/test_ext[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_pagesize[1]_include.cmake")
include("/root/repo/build/tests/test_hypervisor[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_sandbox[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
