# Empty compiler generated dependencies file for ctamem_kernel.
# This may be replaced when dependencies are built.
