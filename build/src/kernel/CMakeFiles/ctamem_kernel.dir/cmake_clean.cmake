file(REMOVE_RECURSE
  "CMakeFiles/ctamem_kernel.dir/kernel.cc.o"
  "CMakeFiles/ctamem_kernel.dir/kernel.cc.o.d"
  "libctamem_kernel.a"
  "libctamem_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
