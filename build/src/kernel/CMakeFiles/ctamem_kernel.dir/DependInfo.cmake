
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/ctamem_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/ctamem_kernel.dir/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cta/CMakeFiles/ctamem_cta.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/ctamem_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/ctamem_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ctamem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctamem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
