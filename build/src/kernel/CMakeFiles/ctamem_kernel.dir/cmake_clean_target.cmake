file(REMOVE_RECURSE
  "libctamem_kernel.a"
)
