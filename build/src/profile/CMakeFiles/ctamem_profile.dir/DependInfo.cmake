
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/cell_profiler.cc" "src/profile/CMakeFiles/ctamem_profile.dir/cell_profiler.cc.o" "gcc" "src/profile/CMakeFiles/ctamem_profile.dir/cell_profiler.cc.o.d"
  "/root/repo/src/profile/retention_profiler.cc" "src/profile/CMakeFiles/ctamem_profile.dir/retention_profiler.cc.o" "gcc" "src/profile/CMakeFiles/ctamem_profile.dir/retention_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/ctamem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctamem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
