file(REMOVE_RECURSE
  "libctamem_profile.a"
)
