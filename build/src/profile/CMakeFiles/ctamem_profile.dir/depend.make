# Empty dependencies file for ctamem_profile.
# This may be replaced when dependencies are built.
