file(REMOVE_RECURSE
  "CMakeFiles/ctamem_profile.dir/cell_profiler.cc.o"
  "CMakeFiles/ctamem_profile.dir/cell_profiler.cc.o.d"
  "CMakeFiles/ctamem_profile.dir/retention_profiler.cc.o"
  "CMakeFiles/ctamem_profile.dir/retention_profiler.cc.o.d"
  "libctamem_profile.a"
  "libctamem_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
