file(REMOVE_RECURSE
  "CMakeFiles/ctamem_common.dir/combinatorics.cc.o"
  "CMakeFiles/ctamem_common.dir/combinatorics.cc.o.d"
  "CMakeFiles/ctamem_common.dir/log.cc.o"
  "CMakeFiles/ctamem_common.dir/log.cc.o.d"
  "libctamem_common.a"
  "libctamem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
