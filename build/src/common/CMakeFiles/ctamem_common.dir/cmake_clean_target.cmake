file(REMOVE_RECURSE
  "libctamem_common.a"
)
