# Empty dependencies file for ctamem_common.
# This may be replaced when dependencies are built.
