# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("dram")
subdirs("profile")
subdirs("mm")
subdirs("paging")
subdirs("kernel")
subdirs("cta")
subdirs("attack")
subdirs("defense")
subdirs("model")
subdirs("ext")
subdirs("sim")
