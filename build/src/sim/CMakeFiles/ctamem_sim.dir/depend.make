# Empty dependencies file for ctamem_sim.
# This may be replaced when dependencies are built.
