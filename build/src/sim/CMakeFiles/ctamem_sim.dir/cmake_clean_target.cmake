file(REMOVE_RECURSE
  "libctamem_sim.a"
)
