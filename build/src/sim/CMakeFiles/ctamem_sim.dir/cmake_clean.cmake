file(REMOVE_RECURSE
  "CMakeFiles/ctamem_sim.dir/machine.cc.o"
  "CMakeFiles/ctamem_sim.dir/machine.cc.o.d"
  "CMakeFiles/ctamem_sim.dir/perf_harness.cc.o"
  "CMakeFiles/ctamem_sim.dir/perf_harness.cc.o.d"
  "CMakeFiles/ctamem_sim.dir/workload.cc.o"
  "CMakeFiles/ctamem_sim.dir/workload.cc.o.d"
  "libctamem_sim.a"
  "libctamem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
