# Empty compiler generated dependencies file for ctamem_mm.
# This may be replaced when dependencies are built.
