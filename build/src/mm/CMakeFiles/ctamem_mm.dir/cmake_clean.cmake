file(REMOVE_RECURSE
  "CMakeFiles/ctamem_mm.dir/buddy.cc.o"
  "CMakeFiles/ctamem_mm.dir/buddy.cc.o.d"
  "CMakeFiles/ctamem_mm.dir/phys_mem.cc.o"
  "CMakeFiles/ctamem_mm.dir/phys_mem.cc.o.d"
  "CMakeFiles/ctamem_mm.dir/zone.cc.o"
  "CMakeFiles/ctamem_mm.dir/zone.cc.o.d"
  "libctamem_mm.a"
  "libctamem_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
