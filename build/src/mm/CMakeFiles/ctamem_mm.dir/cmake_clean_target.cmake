file(REMOVE_RECURSE
  "libctamem_mm.a"
)
