file(REMOVE_RECURSE
  "CMakeFiles/ctamem_model.dir/capacity.cc.o"
  "CMakeFiles/ctamem_model.dir/capacity.cc.o.d"
  "CMakeFiles/ctamem_model.dir/montecarlo.cc.o"
  "CMakeFiles/ctamem_model.dir/montecarlo.cc.o.d"
  "CMakeFiles/ctamem_model.dir/security_model.cc.o"
  "CMakeFiles/ctamem_model.dir/security_model.cc.o.d"
  "CMakeFiles/ctamem_model.dir/tables.cc.o"
  "CMakeFiles/ctamem_model.dir/tables.cc.o.d"
  "libctamem_model.a"
  "libctamem_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
