file(REMOVE_RECURSE
  "libctamem_model.a"
)
