# Empty compiler generated dependencies file for ctamem_model.
# This may be replaced when dependencies are built.
