file(REMOVE_RECURSE
  "libctamem_dram.a"
)
