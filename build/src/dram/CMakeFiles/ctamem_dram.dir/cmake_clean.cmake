file(REMOVE_RECURSE
  "CMakeFiles/ctamem_dram.dir/cell_types.cc.o"
  "CMakeFiles/ctamem_dram.dir/cell_types.cc.o.d"
  "CMakeFiles/ctamem_dram.dir/fault_model.cc.o"
  "CMakeFiles/ctamem_dram.dir/fault_model.cc.o.d"
  "CMakeFiles/ctamem_dram.dir/geometry.cc.o"
  "CMakeFiles/ctamem_dram.dir/geometry.cc.o.d"
  "CMakeFiles/ctamem_dram.dir/hammer.cc.o"
  "CMakeFiles/ctamem_dram.dir/hammer.cc.o.d"
  "CMakeFiles/ctamem_dram.dir/module.cc.o"
  "CMakeFiles/ctamem_dram.dir/module.cc.o.d"
  "CMakeFiles/ctamem_dram.dir/sparse_store.cc.o"
  "CMakeFiles/ctamem_dram.dir/sparse_store.cc.o.d"
  "libctamem_dram.a"
  "libctamem_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
