
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/cell_types.cc" "src/dram/CMakeFiles/ctamem_dram.dir/cell_types.cc.o" "gcc" "src/dram/CMakeFiles/ctamem_dram.dir/cell_types.cc.o.d"
  "/root/repo/src/dram/fault_model.cc" "src/dram/CMakeFiles/ctamem_dram.dir/fault_model.cc.o" "gcc" "src/dram/CMakeFiles/ctamem_dram.dir/fault_model.cc.o.d"
  "/root/repo/src/dram/geometry.cc" "src/dram/CMakeFiles/ctamem_dram.dir/geometry.cc.o" "gcc" "src/dram/CMakeFiles/ctamem_dram.dir/geometry.cc.o.d"
  "/root/repo/src/dram/hammer.cc" "src/dram/CMakeFiles/ctamem_dram.dir/hammer.cc.o" "gcc" "src/dram/CMakeFiles/ctamem_dram.dir/hammer.cc.o.d"
  "/root/repo/src/dram/module.cc" "src/dram/CMakeFiles/ctamem_dram.dir/module.cc.o" "gcc" "src/dram/CMakeFiles/ctamem_dram.dir/module.cc.o.d"
  "/root/repo/src/dram/sparse_store.cc" "src/dram/CMakeFiles/ctamem_dram.dir/sparse_store.cc.o" "gcc" "src/dram/CMakeFiles/ctamem_dram.dir/sparse_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctamem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
