# Empty compiler generated dependencies file for ctamem_dram.
# This may be replaced when dependencies are built.
