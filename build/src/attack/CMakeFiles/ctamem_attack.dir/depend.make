# Empty dependencies file for ctamem_attack.
# This may be replaced when dependencies are built.
