file(REMOVE_RECURSE
  "libctamem_attack.a"
)
