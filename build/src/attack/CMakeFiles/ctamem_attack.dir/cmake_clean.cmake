file(REMOVE_RECURSE
  "CMakeFiles/ctamem_attack.dir/algorithm1.cc.o"
  "CMakeFiles/ctamem_attack.dir/algorithm1.cc.o.d"
  "CMakeFiles/ctamem_attack.dir/catt_bypass.cc.o"
  "CMakeFiles/ctamem_attack.dir/catt_bypass.cc.o.d"
  "CMakeFiles/ctamem_attack.dir/drammer.cc.o"
  "CMakeFiles/ctamem_attack.dir/drammer.cc.o.d"
  "CMakeFiles/ctamem_attack.dir/exploit.cc.o"
  "CMakeFiles/ctamem_attack.dir/exploit.cc.o.d"
  "CMakeFiles/ctamem_attack.dir/pagesize_attack.cc.o"
  "CMakeFiles/ctamem_attack.dir/pagesize_attack.cc.o.d"
  "CMakeFiles/ctamem_attack.dir/primitives.cc.o"
  "CMakeFiles/ctamem_attack.dir/primitives.cc.o.d"
  "CMakeFiles/ctamem_attack.dir/projectzero.cc.o"
  "CMakeFiles/ctamem_attack.dir/projectzero.cc.o.d"
  "libctamem_attack.a"
  "libctamem_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
