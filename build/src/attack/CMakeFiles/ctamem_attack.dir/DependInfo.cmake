
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/algorithm1.cc" "src/attack/CMakeFiles/ctamem_attack.dir/algorithm1.cc.o" "gcc" "src/attack/CMakeFiles/ctamem_attack.dir/algorithm1.cc.o.d"
  "/root/repo/src/attack/catt_bypass.cc" "src/attack/CMakeFiles/ctamem_attack.dir/catt_bypass.cc.o" "gcc" "src/attack/CMakeFiles/ctamem_attack.dir/catt_bypass.cc.o.d"
  "/root/repo/src/attack/drammer.cc" "src/attack/CMakeFiles/ctamem_attack.dir/drammer.cc.o" "gcc" "src/attack/CMakeFiles/ctamem_attack.dir/drammer.cc.o.d"
  "/root/repo/src/attack/exploit.cc" "src/attack/CMakeFiles/ctamem_attack.dir/exploit.cc.o" "gcc" "src/attack/CMakeFiles/ctamem_attack.dir/exploit.cc.o.d"
  "/root/repo/src/attack/pagesize_attack.cc" "src/attack/CMakeFiles/ctamem_attack.dir/pagesize_attack.cc.o" "gcc" "src/attack/CMakeFiles/ctamem_attack.dir/pagesize_attack.cc.o.d"
  "/root/repo/src/attack/primitives.cc" "src/attack/CMakeFiles/ctamem_attack.dir/primitives.cc.o" "gcc" "src/attack/CMakeFiles/ctamem_attack.dir/primitives.cc.o.d"
  "/root/repo/src/attack/projectzero.cc" "src/attack/CMakeFiles/ctamem_attack.dir/projectzero.cc.o" "gcc" "src/attack/CMakeFiles/ctamem_attack.dir/projectzero.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/ctamem_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/cta/CMakeFiles/ctamem_cta.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/ctamem_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/ctamem_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ctamem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctamem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
