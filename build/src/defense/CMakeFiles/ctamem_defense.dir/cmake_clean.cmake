file(REMOVE_RECURSE
  "CMakeFiles/ctamem_defense.dir/observers.cc.o"
  "CMakeFiles/ctamem_defense.dir/observers.cc.o.d"
  "libctamem_defense.a"
  "libctamem_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
