# Empty compiler generated dependencies file for ctamem_defense.
# This may be replaced when dependencies are built.
