file(REMOVE_RECURSE
  "libctamem_defense.a"
)
