# Empty dependencies file for ctamem_paging.
# This may be replaced when dependencies are built.
