file(REMOVE_RECURSE
  "CMakeFiles/ctamem_paging.dir/address_space.cc.o"
  "CMakeFiles/ctamem_paging.dir/address_space.cc.o.d"
  "CMakeFiles/ctamem_paging.dir/tlb.cc.o"
  "CMakeFiles/ctamem_paging.dir/tlb.cc.o.d"
  "CMakeFiles/ctamem_paging.dir/walker.cc.o"
  "CMakeFiles/ctamem_paging.dir/walker.cc.o.d"
  "libctamem_paging.a"
  "libctamem_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
