
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paging/address_space.cc" "src/paging/CMakeFiles/ctamem_paging.dir/address_space.cc.o" "gcc" "src/paging/CMakeFiles/ctamem_paging.dir/address_space.cc.o.d"
  "/root/repo/src/paging/tlb.cc" "src/paging/CMakeFiles/ctamem_paging.dir/tlb.cc.o" "gcc" "src/paging/CMakeFiles/ctamem_paging.dir/tlb.cc.o.d"
  "/root/repo/src/paging/walker.cc" "src/paging/CMakeFiles/ctamem_paging.dir/walker.cc.o" "gcc" "src/paging/CMakeFiles/ctamem_paging.dir/walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/ctamem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctamem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
