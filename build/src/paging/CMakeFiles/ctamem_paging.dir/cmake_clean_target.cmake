file(REMOVE_RECURSE
  "libctamem_paging.a"
)
