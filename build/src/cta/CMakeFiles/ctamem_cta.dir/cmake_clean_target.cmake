file(REMOVE_RECURSE
  "libctamem_cta.a"
)
