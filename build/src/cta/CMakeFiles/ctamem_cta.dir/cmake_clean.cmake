file(REMOVE_RECURSE
  "CMakeFiles/ctamem_cta.dir/hypervisor.cc.o"
  "CMakeFiles/ctamem_cta.dir/hypervisor.cc.o.d"
  "CMakeFiles/ctamem_cta.dir/indicator.cc.o"
  "CMakeFiles/ctamem_cta.dir/indicator.cc.o.d"
  "CMakeFiles/ctamem_cta.dir/plan.cc.o"
  "CMakeFiles/ctamem_cta.dir/plan.cc.o.d"
  "CMakeFiles/ctamem_cta.dir/ptp_zone.cc.o"
  "CMakeFiles/ctamem_cta.dir/ptp_zone.cc.o.d"
  "libctamem_cta.a"
  "libctamem_cta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_cta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
