# Empty dependencies file for ctamem_cta.
# This may be replaced when dependencies are built.
