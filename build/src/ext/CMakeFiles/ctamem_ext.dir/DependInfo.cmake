
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ext/coldboot.cc" "src/ext/CMakeFiles/ctamem_ext.dir/coldboot.cc.o" "gcc" "src/ext/CMakeFiles/ctamem_ext.dir/coldboot.cc.o.d"
  "/root/repo/src/ext/hamming_shield.cc" "src/ext/CMakeFiles/ctamem_ext.dir/hamming_shield.cc.o" "gcc" "src/ext/CMakeFiles/ctamem_ext.dir/hamming_shield.cc.o.d"
  "/root/repo/src/ext/permission_vector.cc" "src/ext/CMakeFiles/ctamem_ext.dir/permission_vector.cc.o" "gcc" "src/ext/CMakeFiles/ctamem_ext.dir/permission_vector.cc.o.d"
  "/root/repo/src/ext/sandbox.cc" "src/ext/CMakeFiles/ctamem_ext.dir/sandbox.cc.o" "gcc" "src/ext/CMakeFiles/ctamem_ext.dir/sandbox.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/ctamem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ctamem_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctamem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
