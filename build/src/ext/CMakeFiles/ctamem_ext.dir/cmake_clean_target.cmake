file(REMOVE_RECURSE
  "libctamem_ext.a"
)
