# Empty dependencies file for ctamem_ext.
# This may be replaced when dependencies are built.
