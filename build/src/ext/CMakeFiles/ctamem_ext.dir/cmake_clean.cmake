file(REMOVE_RECURSE
  "CMakeFiles/ctamem_ext.dir/coldboot.cc.o"
  "CMakeFiles/ctamem_ext.dir/coldboot.cc.o.d"
  "CMakeFiles/ctamem_ext.dir/hamming_shield.cc.o"
  "CMakeFiles/ctamem_ext.dir/hamming_shield.cc.o.d"
  "CMakeFiles/ctamem_ext.dir/permission_vector.cc.o"
  "CMakeFiles/ctamem_ext.dir/permission_vector.cc.o.d"
  "CMakeFiles/ctamem_ext.dir/sandbox.cc.o"
  "CMakeFiles/ctamem_ext.dir/sandbox.cc.o.d"
  "libctamem_ext.a"
  "libctamem_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctamem_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
