#!/usr/bin/env bash
# Full local CI: the tier-1 build + test suite, the scenario-manifest
# smoke label, and the sanitizer-instrumented suites behind their
# ctest labels (tsan for the thread-pool/campaign engine, ubsan for
# the RNG/bit-twiddling-heavy suites).
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 + scenario smoke only
#
# Build trees: build/ (tier-1), build-tsan/, build-ubsan/.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

jobs=$(nproc 2>/dev/null || echo 4)

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

step "tier-1: ctest"
(cd build && ctest --output-on-failure -j "$jobs")

step "scenario smoke (every checked-in manifest, 1 cell each)"
(cd build && ctest --output-on-failure -L scenario-smoke -j "$jobs")

if [[ "$fast" == 1 ]]; then
    step "done (--fast: sanitizer suites skipped)"
    exit 0
fi

step "tsan: thread-pool / campaign suites"
cmake -B build-tsan -S . -DCTAMEM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"
(cd build-tsan && ctest --output-on-failure -L tsan -j "$jobs")

step "ubsan: RNG / bit-manipulation suites"
cmake -B build-ubsan -S . -DCTAMEM_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$jobs"
(cd build-ubsan && ctest --output-on-failure -L ubsan -j "$jobs")

step "all checks passed"
