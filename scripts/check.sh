#!/usr/bin/env bash
# Full local CI: the tier-1 build + test suite, the scenario-manifest
# smoke label, the AArch64 arch-smoke label, the benchmark regression
# gates (hot-path, campaign service, pattern fuzzer, Table-1
# exact-match), and the
# sanitizer-instrumented suites behind their ctest labels (tsan for
# the thread-pool/campaign engine, ubsan for the RNG/bit-twiddling-
# heavy suites, asan for the mask-engine / sparse-frame suites).
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 + scenario smoke only
#
# Build trees: build/ (tier-1), build-tsan/, build-ubsan/, build-asan/.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

jobs=$(nproc 2>/dev/null || echo 4)

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

step "tier-1: ctest"
(cd build && ctest --output-on-failure -j "$jobs")

step "scenario smoke (every checked-in manifest, 1 cell each)"
(cd build && ctest --output-on-failure -L scenario-smoke -j "$jobs")

step "svc smoke (ctamemd over the pipe protocol, cached resubmission)"
(cd build && ctest --output-on-failure -L svc-smoke)

step "arch smoke (AArch64 backend: attack_lab + ctamemd on aarch64-default.json)"
(cd build && ctest --output-on-failure -L arch-smoke)

step "bench gate: Table-1 matrix bit-identical to checked-in baseline"
# Deterministic given the seed, so one run and exact equality.
./build/bench/bench_table1_attack_matrix \
    --out build/BENCH_table1.run.json >/dev/null
python3 scripts/check_bench.py --suite table1 \
    --baseline BENCH_table1.json --current build/BENCH_table1.run.json

step "bench gate: hot-path microbenchmark vs checked-in baseline"
# Three runs; the gate takes each metric's best to shed machine noise.
for i in 1 2 3; do
    ./build/bench/bench_hotpath_micro \
        --out "build/BENCH_hotpath.run$i.json" >/dev/null
done
python3 scripts/check_bench.py --baseline BENCH_hotpath.json \
    --current build/BENCH_hotpath.run{1,2,3}.json

step "bench gate: campaign service vs checked-in baseline"
for i in 1 2 3; do
    ./build/bench/bench_svc --out "build/BENCH_svc.run$i.json" >/dev/null
done
python3 scripts/check_bench.py --suite svc --baseline BENCH_svc.json \
    --current build/BENCH_svc.run{1,2,3}.json

step "bench gate: pattern fuzzer vs checked-in baseline"
for i in 1 2 3; do
    ./build/bench/bench_fuzz --out "build/BENCH_fuzz.run$i.json" >/dev/null
done
python3 scripts/check_bench.py --suite fuzz --baseline BENCH_fuzz.json \
    --current build/BENCH_fuzz.run{1,2,3}.json

if [[ "$fast" == 1 ]]; then
    step "done (--fast: sanitizer suites skipped)"
    exit 0
fi

step "tsan: thread-pool / campaign suites"
cmake -B build-tsan -S . -DCTAMEM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"
(cd build-tsan && ctest --output-on-failure -L tsan -j "$jobs")

step "ubsan: RNG / bit-manipulation suites"
cmake -B build-ubsan -S . -DCTAMEM_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$jobs"
(cd build-ubsan && ctest --output-on-failure -L ubsan -j "$jobs")

step "asan: mask-engine / sparse-frame suites"
cmake -B build-asan -S . -DCTAMEM_SANITIZE=address >/dev/null
cmake --build build-asan -j "$jobs"
(cd build-asan && ctest --output-on-failure -L asan -j "$jobs")

step "all checks passed"
