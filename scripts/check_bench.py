#!/usr/bin/env python3
"""Gate a benchmark report against its checked-in baseline.

Compares fresh reports (``--current``) against the repository baseline
(``--baseline``) and fails when a gated metric regresses by more than
the tolerance.  ``--suite`` picks the gated metric set:

  hotpath (default, bench_hotpath_micro vs BENCH_hotpath.json):
    campaign_sweep   wall seconds, lower is better
    walk_tlb_off     walks/s,      higher is better
    walk_tlb_on      translations/s, higher is better

  svc (bench_svc vs BENCH_svc.json):
    jobs_per_s_cached  cells/s,  higher is better
    cache_hit_rate     fraction, higher is better

  fuzz (bench_fuzz vs BENCH_fuzz.json):
    patterns_per_s     patterns/s, higher is better
    bypass_found       1.0 when the search still finds a TRR-sampler
                       bypass — deterministic, so any drop is real

  table1 (bench_table1_attack_matrix vs BENCH_table1.json):
    every "<attack>__<defense>" cell, compared for EXACT equality
    (outcome name, flips, hammer passes) — the sweep is deterministic
    given the seed, so the only thing allowed to change between runs
    is wall-clock.  Any cell diff flags a real behavior change; if
    intentional, refresh the baseline.

The DRAM streaming numbers (``dram_read``/``dram_write``) are reported
for information only — they swing with machine load far beyond any
real code-level change.

``--current`` accepts several reports; each metric uses its best
value across them (min for lower-is-better, max otherwise).  On a
shared box single runs swing far more than real regressions do —
best-of-N is the de-noising; pass 3 runs.  The same reasoning shapes
the baseline: capture it on a *busy* box (and say so in its
``_note``), so that co-tenant load on the machine running the gate
never reads as a regression.  A real one clears 10% regardless.

Usage:
  check_bench.py --baseline BENCH_hotpath.json \
                 --current run1.json run2.json run3.json \
                 [--tolerance 0.10] [--suite hotpath|svc|fuzz]

Exit status: 0 when every gated metric is within tolerance, 1 on
regression or malformed input.
"""

import argparse
import json
import sys

# suite -> {metric -> direction ("lower" / "higher" is better)}.
# hotpath gates the mask-engine/VMA-index numbers; svc gates the
# campaign service's cached-resubmission path (BENCH_svc.json).  The
# svc cold/snapshot numbers stay informational: they measure full
# simulations and machine boots, which swing with box load, while the
# cached path and the hit rate are what the memoization layer
# guarantees.
GATED = {
    "hotpath": {
        "campaign_sweep": "lower",
        "walk_tlb_off": "higher",
        "walk_tlb_on": "higher",
    },
    "svc": {
        "jobs_per_s_cached": "higher",
        "cache_hit_rate": "higher",
    },
    "fuzz": {
        "patterns_per_s": "higher",
        "bypass_found": "higher",
    },
}
INFORMATIONAL = {
    "hotpath": ["dram_read", "dram_write"],
    "svc": ["jobs_per_s_cold", "cached_speedup", "cold_boot",
            "snapshot_restore", "snapshot_restore_speedup",
            "cell_latency_p50", "cell_latency_p99"],
    # Deterministic search outputs: a diff here flags an intentional
    # algorithm change, not machine noise, so they stay ungated.
    "fuzz": ["generations_to_first_bypass", "best_flips"],
}


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")


def metric(report, path, name):
    entry = report.get(name)
    if not isinstance(entry, dict) or "value" not in entry:
        sys.exit(f"check_bench: {path} is missing metric '{name}'")
    return float(entry["value"]), entry.get("unit", "")


def check_table1(base, baseline_path, currents):
    """Exact-match gate: every cell of every current report must equal
    the baseline cell bit-for-bit (value = flips, unit = outcome,
    iterations = hammer passes).  No tolerance, no best-of-N — the
    sweep is deterministic, so any diff is a real behavior change."""
    failures = []
    print(f"check_bench: suite table1, exact match, "
          f"{len(currents)} run(s) vs {baseline_path}")
    for path, rep in currents:
        missing = sorted(set(base) - set(rep))
        extra = sorted(set(rep) - set(base))
        for name in missing:
            failures.append(name)
            print(f"  FAIL {name}: missing from {path}")
        for name in extra:
            failures.append(name)
            print(f"  FAIL {name}: not in baseline (new cell? "
                  f"refresh the baseline)")
        for name in sorted(set(base) & set(rep)):
            bent, cent = base[name], rep[name]
            same = all(bent.get(k) == cent.get(k)
                       for k in ("value", "unit", "iterations"))
            if same:
                continue
            failures.append(name)
            print(f"  FAIL {name}: baseline "
                  f"{bent.get('unit')} flips={bent.get('value')} "
                  f"passes={bent.get('iterations')}  now "
                  f"{cent.get('unit')} flips={cent.get('value')} "
                  f"passes={cent.get('iterations')}")
    if failures:
        print("check_bench: Table-1 cells drifted from the baseline. "
              "If intentional, refresh with "
              "bench_table1_attack_matrix --out BENCH_table1.json.")
        return 1
    print(f"check_bench: all {len(base)} Table-1 cells bit-identical "
          f"to baseline")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="checked-in reference report (repo root)")
    ap.add_argument("--current", required=True, nargs="+",
                    help="freshly produced report(s); best-of-N per metric")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional regression (default 0.10)")
    ap.add_argument("--suite",
                    choices=sorted(GATED) + ["table1"],
                    default="hotpath",
                    help="which gated metric set to check "
                         "(default hotpath)")
    args = ap.parse_args()

    if args.suite == "table1":
        return check_table1(load(args.baseline), args.baseline,
                            [(path, load(path))
                             for path in args.current])

    gated = GATED[args.suite]
    informational = INFORMATIONAL[args.suite]
    base = load(args.baseline)
    currents = [(path, load(path)) for path in args.current]

    def best(name, direction):
        vals = [metric(rep, path, name)[0] for path, rep in currents]
        return min(vals) if direction == "lower" else max(vals)

    failures = []
    print(f"check_bench: suite {args.suite}, "
          f"tolerance {args.tolerance:.0%}, "
          f"best of {len(currents)} run(s) vs {args.baseline}")
    for name, direction in gated.items():
        bval, unit = metric(base, args.baseline, name)
        cval = best(name, direction)
        if direction == "lower":
            # e.g. 0.25 -> 0.30 s is a 20% regression
            change = cval / bval - 1.0
        else:
            change = bval / cval - 1.0
        verdict = "FAIL" if change > args.tolerance else "ok"
        print(f"  {verdict:4} {name:16} base {bval:>14.6g} {unit:>16}"
              f"  now {cval:>14.6g}  regression {change:+.1%}")
        if verdict == "FAIL":
            failures.append(name)

    for name in informational:
        if name in base and all(name in rep for _, rep in currents):
            bval, unit = metric(base, args.baseline, name)
            cval = best(name, "higher")
            print(f"  info {name:16} base {bval:>14.6g} {unit:>16}"
                  f"  now {cval:>14.6g}  (not gated)")

    if failures:
        refresh = {
            "hotpath": "bench_hotpath_micro --out BENCH_hotpath.json",
            "svc": "bench_svc --out BENCH_svc.json",
            "fuzz": "bench_fuzz --out BENCH_fuzz.json",
        }[args.suite]
        print(f"check_bench: REGRESSION in {', '.join(failures)} "
              f"(> {args.tolerance:.0%} worse than baseline). "
              f"If intentional, refresh the baseline with {refresh}.")
        return 1
    print("check_bench: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
