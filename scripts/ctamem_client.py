#!/usr/bin/env python3
"""Pipe client for the ctamemd campaign service.

Spawns a ctamemd daemon (``--daemon``) and speaks the framed protocol
over its stdin/stdout: every frame is a little-endian u32 byte length
followed by one JSON object (see src/svc/wire.hh).

Commands:

  ping                  liveness round trip
  stats                 print the service counters as JSON --
                        includes the shared row-profile cache
                        (``profileCache``) and the pattern fuzzer's
                        progress counters (``fuzz``: runs, patterns
                        evaluated, generations, bypasses found)
  submit MANIFEST...    submit each manifest, stream per-cell
                        progress to stderr, print each report to
                        stdout
  smoke MANIFEST        submit MANIFEST twice and assert the second
                        pass is served (>= 90%) from the result cache
                        with a bit-identical cell table -- the ctest
                        `svc-smoke` entry

Examples:
  scripts/ctamem_client.py --daemon build/src/svc/ctamemd \\
      submit scenarios/paper-default.json
  scripts/ctamem_client.py --daemon build/src/svc/ctamemd \\
      --cache-dir /tmp/ctamem-cache smoke scenarios/paper-default.json

Exit status: 0 on success, 1 on protocol errors, rejected
submissions, or a failed smoke assertion.
"""

import argparse
import json
import struct
import subprocess
import sys


class Daemon:
    """One ctamemd process plus framed send/recv over its pipes."""

    def __init__(self, argv):
        self.proc = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE)

    def send(self, obj):
        payload = json.dumps(obj).encode()
        self.proc.stdin.write(struct.pack("<I", len(payload)))
        self.proc.stdin.write(payload)
        self.proc.stdin.flush()

    def recv(self):
        prefix = self.proc.stdout.read(4)
        if len(prefix) < 4:
            raise EOFError("daemon closed the stream")
        (length,) = struct.unpack("<I", prefix)
        payload = self.proc.stdout.read(length)
        if len(payload) < length:
            raise EOFError("truncated frame from daemon")
        return json.loads(payload)

    def close(self):
        try:
            self.send({"type": "shutdown"})
            while True:
                if self.recv().get("type") == "bye":
                    break
        except (EOFError, BrokenPipeError):
            pass
        self.proc.stdin.close()
        return self.proc.wait()


def submit_one(daemon, path, job_id):
    """Submit one manifest; returns the final `done` frame."""
    with open(path) as fh:
        manifest = json.load(fh)
    daemon.send({"type": "submit", "id": job_id, "manifest": manifest})

    accepted = daemon.recv()
    if accepted.get("type") == "rejected":
        sys.exit(f"ctamem_client: {path} rejected: "
                 f"{accepted.get('reason')} "
                 f"(pending {accepted.get('pending')}, "
                 f"capacity {accepted.get('capacity')})")
    if accepted.get("type") == "error":
        sys.exit(f"ctamem_client: {path}: {accepted.get('message')}")
    if accepted.get("type") != "accepted":
        sys.exit(f"ctamem_client: unexpected frame {accepted}")

    cells = accepted["cells"]
    done_count = 0
    while True:
        frame = daemon.recv()
        kind = frame.get("type")
        if kind == "cell":
            done_count += 1
            tag = "cached" if frame.get("cached") else "ran"
            print(f"  [{done_count}/{cells}] cell "
                  f"{frame['index']} {tag}", file=sys.stderr)
        elif kind == "done":
            return frame
        elif kind == "error":
            sys.exit(f"ctamem_client: {frame.get('message')}")
        else:
            sys.exit(f"ctamem_client: unexpected frame {frame}")


def cmd_ping(daemon, _args):
    daemon.send({"type": "ping"})
    frame = daemon.recv()
    if frame.get("type") != "pong":
        sys.exit(f"ctamem_client: expected pong, got {frame}")
    print("pong")
    return 0


def cmd_stats(daemon, _args):
    daemon.send({"type": "stats"})
    print(json.dumps(daemon.recv(), indent=2))
    return 0


def cmd_submit(daemon, args):
    for i, path in enumerate(args.manifests, start=1):
        done = submit_one(daemon, path, i)
        report = done["report"]
        print(json.dumps(report))
        print(f"{path}: {len(report['cells'])} cells, "
              f"{done['cachedCells']} cached, "
              f"{report['wallSeconds']:.3f}s wall", file=sys.stderr)
    return 0


def cmd_smoke(daemon, args):
    path = args.manifests[0]
    cold = submit_one(daemon, path, 1)
    warm = submit_one(daemon, path, 2)

    cells = len(cold["report"]["cells"])
    cached = warm["cachedCells"]
    hit_rate = cached / cells if cells else 0.0
    identical = (json.dumps(cold["report"]["cells"]) ==
                 json.dumps(warm["report"]["cells"]))

    print(f"smoke: {cells} cells, resubmission served {cached} "
          f"from cache ({hit_rate:.0%}), cell tables "
          f"{'identical' if identical else 'DIFFER'}",
          file=sys.stderr)
    if hit_rate < 0.90:
        print("smoke: FAIL -- resubmission cache hit rate below 90%",
              file=sys.stderr)
        return 1
    if not identical:
        print("smoke: FAIL -- replayed cell table is not "
              "bit-identical", file=sys.stderr)
        return 1
    print("smoke: ok", file=sys.stderr)
    return 0


COMMANDS = {
    "ping": cmd_ping,
    "stats": cmd_stats,
    "submit": cmd_submit,
    "smoke": cmd_smoke,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--daemon", required=True,
                    help="path to the ctamemd binary")
    ap.add_argument("--workers", type=int,
                    help="daemon worker threads")
    ap.add_argument("--queue", type=int,
                    help="daemon in-flight cell bound")
    ap.add_argument("--cache-dir",
                    help="daemon disk cache directory")
    ap.add_argument("--no-disk-cache", action="store_true",
                    help="keep daemon results in memory only")
    ap.add_argument("command", choices=sorted(COMMANDS))
    ap.add_argument("manifests", nargs="*",
                    help="scenario manifest path(s)")
    args = ap.parse_args()

    if args.command in ("submit", "smoke") and not args.manifests:
        ap.error(f"{args.command} needs at least one manifest")

    argv = [args.daemon]
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if args.queue is not None:
        argv += ["--queue", str(args.queue)]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_disk_cache:
        argv += ["--no-disk-cache"]

    daemon = Daemon(argv)
    try:
        status = COMMANDS[args.command](daemon, args)
    finally:
        exit_code = daemon.close()
    if status == 0 and exit_code != 0:
        sys.exit(f"ctamem_client: daemon exited with {exit_code}")
    return status


if __name__ == "__main__":
    sys.exit(main())
