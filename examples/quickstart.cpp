/**
 * @file
 * Quickstart: build two simulated machines — one vanilla, one with
 * CTA memory allocation — run the classic RowHammer PTE-spray
 * privilege escalation against both, and watch the 18-line defense
 * change the outcome.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "sim/machine.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::sim;

    // A 256 MiB machine with RowHammer-vulnerable DRAM (Pf boosted
    // to 1e-3 so the simulation takes seconds, not days).
    MachineConfig config;
    config.memBytes = 256 * MiB;
    config.pf = 1e-3;

    std::cout << "=== 1. Vanilla kernel ===\n";
    config.defense = defense::DefenseKind::None;
    Machine vulnerable(config);
    const attack::AttackResult before =
        vulnerable.runAttack(AttackKind::ProjectZero);
    std::cout << "PTE-spray attack outcome: "
              << attack::outcomeName(before.outcome) << " ("
              << before.detail << ")\n"
              << "bit flips induced: " << before.flipsInduced
              << ", hammer passes: " << before.hammerPasses << "\n\n";

    std::cout << "=== 2. Same DRAM, CTA memory allocation ===\n";
    config.defense = defense::DefenseKind::Cta;
    config.ptpBytes = 4 * MiB;
    Machine protected_machine(config);

    const cta::PtpZone *zone = protected_machine.kernel().ptpZone();
    std::cout << "ZONE_PTP: " << zone->trueBytes() / MiB
              << " MiB of true-cells above the low water mark at 0x"
              << std::hex << zone->lowWaterMark() << std::dec << " ("
              << zone->skippedAntiBytes() / MiB
              << " MiB of anti-cells skipped)\n";

    const attack::AttackResult after =
        protected_machine.runAttack(AttackKind::ProjectZero);
    std::cout << "PTE-spray attack outcome: "
              << attack::outcomeName(after.outcome) << " ("
              << after.detail << ")\n";

    // The executable No-Self-Reference theorem audit.
    const cta::TheoremAudit audit =
        protected_machine.kernel().auditTheorem();
    std::cout << "theorem premises hold after the attack: "
              << (audit.holds() ? "yes" : "NO") << '\n';

    const bool reproduced =
        before.outcome == attack::Outcome::Escalated &&
        after.outcome != attack::Outcome::Escalated && audit.holds();
    std::cout << "\nheadline result reproduced: "
              << (reproduced ? "YES" : "NO") << '\n';
    return reproduced ? 0 : 1;
}
