/**
 * @file
 * The Section 8 cold-boot defense in action: long-retention canary
 * cells distinguish a normal boot (everything decayed, proceed) from
 * a quick warm reboot or a chilled-module cold-boot attack (canaries
 * still charged, halt and scrub).
 *
 *   ./build/examples/coldboot_guard
 */

#include <iostream>

#include "dram/module.hh"
#include "ext/coldboot.hh"

namespace {

using namespace ctamem;

const char *
decisionName(ext::BootDecision decision)
{
    return decision == ext::BootDecision::Proceed ? "PROCEED"
                                                  : "HALT";
}

} // namespace

int
main()
{
    dram::DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.seed = 5;
    dram::DramModule module(config);

    // One-time setup: profile for the longest-retention cells.
    ext::ColdBootGuard guard = ext::ColdBootGuard::withProfiledCanaries(
        module, /*region_base=*/0, /*region_bytes=*/64 * KiB,
        /*count=*/8);
    std::cout << "selected " << guard.canaryCount()
              << " long-retention canary cells\n\n";

    struct Scenario
    {
        const char *label;
        SimTime offTime;
        double celsius;
        ext::BootDecision expected;
    };
    const Scenario scenarios[] = {
        {"normal shutdown, 30 min off at 20C", 30 * 60 * seconds,
         20.0, ext::BootDecision::Proceed},
        {"yank-and-replug, 100 ms off at 20C", 100 * milliseconds,
         20.0, ext::BootDecision::Halt},
        {"cold-boot attack, 60 s off at -40C", 60 * seconds, -40.0,
         ext::BootDecision::Halt},
        {"patient cold attacker, 20 min off at -40C",
         20 * 60 * seconds, -40.0, ext::BootDecision::Proceed},
    };

    bool all_as_expected = true;
    for (const Scenario &scenario : scenarios) {
        // Plant a "secret" and arm the canaries while running.
        module.writeU64(1 * MiB, 0x5ec3e7);
        guard.arm();
        module.powerOff(scenario.offTime, scenario.celsius);

        const ext::BootDecision decision = guard.check();
        const bool secret_survives =
            module.readU64(1 * MiB) == 0x5ec3e7;
        std::cout << scenario.label << ":\n  boot decision "
                  << decisionName(decision) << ", DRAM remanence "
                  << (secret_survives ? "PRESENT" : "gone") << '\n';
        all_as_expected &= decision == scenario.expected;
        // Note: in the last scenario the canaries have decayed but
        // so has every secret — proceeding is safe, which is exactly
        // why canaries must be the longest-retention cells.
    }

    std::cout << "\nall scenarios decided as designed: "
              << (all_as_expected ? "YES" : "NO") << '\n';
    std::cout << "(paper-literal check on the last state: "
              << decisionName(guard.paperLiteral())
              << " — the text's condition is inverted; see "
                 "EXPERIMENTS.md)\n";
    return all_as_expected ? 0 : 1;
}
