/**
 * @file
 * attack_lab — a command-line driver over the whole library: build a
 * machine with any defense, run any attack, print a full report.
 *
 *   ./build/examples/attack_lab --defense cta --attack projectzero
 *   ./build/examples/attack_lab --defense none --attack drammer \
 *       --mem 512 --pf 1e-3 --seed 42
 *   ./build/examples/attack_lab --matrix --jobs 4
 *   ./build/examples/attack_lab --scenario scenarios/hardened.json \
 *       --report report.json
 *   ./build/examples/attack_lab --list
 *
 * Defense and attack names come straight from the registries, so a
 * newly registered defense (SoftTRR, say) shows up in --list, --matrix
 * and scenario manifests with no changes here.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "attack/registry.hh"
#include "defense/registry.hh"
#include "fuzz/pattern.hh"
#include "paging/arch.hh"
#include "runtime/thread_pool.hh"
#include "sim/campaign.hh"
#include "sim/scenario.hh"

namespace {

using namespace ctamem;
using defense::DefenseKind;
using sim::AttackKind;

/**
 * One layer's registry tokens, sorted for stable output (registries
 * keep registration order, which is link-order dependent).
 */
void
listGroup(const char *heading,
          std::vector<std::pair<std::string, std::string>> rows)
{
    std::sort(rows.begin(), rows.end());
    std::cout << heading << ":\n";
    for (const auto &[token, display] : rows)
        std::cout << "  " << std::left << std::setw(16) << token
                  << display << '\n';
}

void
listOptions()
{
    std::vector<std::pair<std::string, std::string>> attacks;
    for (const auto &spec : attack::Registry::instance().all())
        attacks.emplace_back(spec->name, spec->display);
    listGroup("attacks", std::move(attacks));

    std::vector<std::pair<std::string, std::string>> defenses;
    for (const auto &spec : defense::Registry::instance().all())
        defenses.emplace_back(spec->name, spec->display);
    listGroup("defenses", std::move(defenses));

    std::vector<std::pair<std::string, std::string>> families;
    for (const std::string &family : fuzz::patternFamilies())
        families.emplace_back(family,
                              "PatternBuilder seed family");
    listGroup("pattern families", std::move(families));

    std::vector<std::pair<std::string, std::string>> arches;
    for (const paging::Arch *arch : paging::kAllArches) {
        arches.emplace_back(
            arch->name,
            std::to_string(arch->levels) + "-level, " +
                std::to_string(arch->granuleBytes() / KiB) +
                " KiB granule");
    }
    listGroup("arches", std::move(arches));
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: attack_lab [--defense NAME] [--attack NAME]"
                 " [--arch ISA] [--granule KiB]"
                 " [--mem MiB] [--ptp MiB] [--pf P] [--seed N]"
                 " [--matrix] [--scenario FILE.json]"
                 " [--report OUT.json] [--max-cells N] [--jobs N]"
                 " [--list]\n";
    std::exit(2);
}

/** Render a campaign's cells as one row per cell. */
void
printCellTable(const sim::CampaignReport &report)
{
    std::cout << std::left << std::setw(40) << "cell"
              << std::setw(13) << "arch" << std::setw(18) << "outcome"
              << std::setw(10) << "passes" << std::setw(10) << "flips"
              << '\n';
    for (const sim::CellResult &cell : report.cells) {
        // Resolve exactly as the machine did, so the row shows the
        // backend the cell really ran on (not just the manifest key).
        const paging::Arch &arch = paging::resolveArch(
            cell.cell.config.arch, cell.cell.config.granule);
        std::string text = attack::outcomeName(cell.result.outcome);
        if (cell.anvilTriggered)
            text += "*";
        std::cout << std::setw(40) << cell.cell.label << std::setw(13)
                  << arch.name << std::setw(18) << text
                  << std::setw(10) << cell.result.hammerPasses
                  << std::setw(10) << cell.result.flipsInduced
                  << '\n';
    }
}

void
printSweepFooter(const sim::CampaignReport &report,
                 const runtime::ThreadPool &pool)
{
    std::cout << "\n" << report.cells.size() << " cells, wall "
              << std::setprecision(3) << report.wallSeconds
              << " s on " << pool.size()
              << " workers (serial-equivalent "
              << report.cellSecondsTotal() << " s)\n";
}

/** --report: the machine-readable side of any sweep. */
bool
writeReport(const sim::CampaignReport &report,
            const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "attack_lab: cannot write " << path << '\n';
        return false;
    }
    report.toJson().write(out);
    out << '\n';
    std::cout << "report written to " << path << '\n';
    return true;
}

/**
 * --matrix: run every registered attack against every registered
 * defense as one parallel Campaign (same machine config otherwise)
 * and render the table.
 */
int
runMatrix(const sim::MachineConfig &base, unsigned jobs,
          const std::string &report_path)
{
    std::vector<sim::MachineConfig> configs;
    std::vector<DefenseKind> defenses;
    for (const auto &spec : defense::Registry::instance().all()) {
        sim::MachineConfig config = base;
        config.defense = spec->kind;
        configs.push_back(config);
        defenses.push_back(spec->kind);
    }
    std::vector<AttackKind> attacks;
    for (const auto &spec : attack::Registry::instance().all())
        attacks.push_back(spec->kind);

    sim::Campaign campaign;
    campaign.addGrid(configs, attacks);
    runtime::ThreadPool pool(jobs);
    const sim::CampaignReport report = campaign.run(pool);

    std::cout << std::left << std::setw(26) << "attack \\ defense";
    for (const DefenseKind defense : defenses)
        std::cout << std::setw(17) << defense::defenseName(defense);
    std::cout << '\n';
    std::size_t index = 0;
    for (const AttackKind attack : attacks) {
        std::cout << std::setw(26) << sim::attackName(attack);
        for (std::size_t col = 0; col < defenses.size(); ++col) {
            const sim::CellResult &cell = report.cells.at(index++);
            std::string text =
                attack::outcomeName(cell.result.outcome);
            if (cell.anvilTriggered)
                text += "*";
            std::cout << std::setw(17) << text;
        }
        std::cout << '\n';
    }
    printSweepFooter(report, pool);
    if (!report_path.empty() && !writeReport(report, report_path))
        return 2;
    return 0;
}

/** --scenario: load a manifest, run its campaign, render the table. */
int
runScenario(const std::string &path, unsigned jobs,
            std::size_t max_cells, const std::string &report_path)
{
    sim::Campaign campaign;
    try {
        campaign = sim::Campaign::fromManifest(path);
    } catch (const json::JsonError &err) {
        std::cerr << "attack_lab: " << path << ": " << err.what()
                  << '\n';
        return 2;
    }
    if (max_cells)
        campaign.truncate(max_cells);
    std::cout << "scenario: " << path << " (" << campaign.size()
              << " cells)\n\n";

    runtime::ThreadPool pool(jobs);
    const sim::CampaignReport report = campaign.run(pool);
    printCellTable(report);
    printSweepFooter(report, pool);
    if (!report_path.empty() && !writeReport(report, report_path))
        return 2;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string defense_name = "cta";
    std::string attack_name = "projectzero";
    std::string scenario_path;
    std::string report_path;
    sim::MachineConfig config;
    bool matrix = false;
    unsigned jobs = 0; // 0 = one worker per hardware thread
    std::size_t max_cells = 0; // 0 = run every cell

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--list") {
            listOptions();
            return 0;
        } else if (arg == "--defense") {
            defense_name = next();
        } else if (arg == "--attack") {
            attack_name = next();
        } else if (arg == "--arch") {
            const std::string name = next();
            if (!paging::parseIsa(name, config.arch)) {
                std::cerr << "attack_lab: unknown arch " << name
                          << '\n';
                return 2;
            }
        } else if (arg == "--granule") {
            config.granule = std::stoull(next()) * KiB;
        } else if (arg == "--mem") {
            config.memBytes = std::stoull(next()) * MiB;
        } else if (arg == "--ptp") {
            config.ptpBytes = std::stoull(next()) * MiB;
        } else if (arg == "--pf") {
            config.pf = std::stod(next());
        } else if (arg == "--seed") {
            config.seed = std::stoull(next());
        } else if (arg == "--matrix") {
            matrix = true;
        } else if (arg == "--scenario") {
            scenario_path = next();
        } else if (arg == "--report") {
            report_path = next();
        } else if (arg == "--max-cells") {
            max_cells = std::stoull(next());
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(next()));
        } else {
            usage();
        }
    }
    if (!scenario_path.empty())
        return runScenario(scenario_path, jobs, max_cells,
                           report_path);
    if (matrix)
        return runMatrix(config, jobs, report_path);

    const defense::DefenseSpec *defense_spec =
        defense::Registry::instance().find(defense_name);
    const attack::AttackSpec *attack_spec =
        attack::Registry::instance().find(attack_name);
    if (!defense_spec || !attack_spec) {
        listOptions();
        return 2;
    }
    config.defense = defense_spec->kind;

    std::cout << "machine: " << config.memBytes / MiB << " MiB, Pf="
              << config.pf << ", seed=" << config.seed
              << ", defense=" << defense::defenseName(config.defense)
              << ", arch="
              << paging::resolveArch(config.arch, config.granule).name
              << '\n';
    sim::Machine machine(config);
    if (const cta::PtpZone *ptp = machine.kernel().ptpZone()) {
        std::cout << "ZONE_PTP: " << ptp->trueBytes() / MiB
                  << " MiB true-cells, LWM=0x" << std::hex
                  << ptp->lowWaterMark() << std::dec << ", "
                  << ptp->skippedAntiBytes() / MiB
                  << " MiB anti skipped\n";
    }

    const AttackKind attack = attack_spec->kind;
    std::cout << "running: " << sim::attackName(attack) << "...\n\n";
    // Event recording is opt-in since the mask-based engine; the lab
    // wants the individual flips for its report, so hook a sink up.
    std::vector<dram::FlipEvent> flips;
    machine.engine().setEventSink(&flips);
    const attack::AttackResult result = machine.runAttack(attack);
    machine.engine().setEventSink(nullptr);
    std::uint64_t down = 0;
    for (const dram::FlipEvent &flip : flips)
        down += flip.dir == dram::FlipDirection::OneToZero;

    std::cout << "outcome:        "
              << attack::outcomeName(result.outcome) << '\n'
              << "detail:         " << result.detail << '\n'
              << "hammer passes:  " << result.hammerPasses << '\n'
              << "flips induced:  " << result.flipsInduced << '\n'
              << "flips recorded: " << flips.size() << " ("
              << down << " 1->0, " << flips.size() - down
              << " 0->1)\n"
              << "self-refs:      " << result.selfReferences << '\n'
              << "PTEs corrupted: " << result.ptesCorrupted << '\n'
              << "modeled time:   "
              << static_cast<double>(result.attackTime) /
                     static_cast<double>(seconds)
              << " s\n";
    if (machine.observer()) {
        std::cout << "mitigations:    "
                  << machine.observer()->mitigations() << " ("
                  << machine.observer()->name() << ")\n";
    }
    const cta::TheoremAudit audit = machine.kernel().auditTheorem();
    if (machine.kernel().ptpZone()) {
        std::cout << "theorem audit:  "
                  << (audit.holds() ? "holds" : "VIOLATED") << '\n';
    }
    return result.succeeded() ? 1 : 0;
}
