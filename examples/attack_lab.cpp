/**
 * @file
 * attack_lab — a command-line driver over the whole library: build a
 * machine with any defense, run any attack, print a full report.
 *
 *   ./build/examples/attack_lab --defense cta --attack projectzero
 *   ./build/examples/attack_lab --defense none --attack drammer \
 *       --mem 512 --pf 1e-3 --seed 42
 *   ./build/examples/attack_lab --matrix --jobs 4
 *   ./build/examples/attack_lab --list
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "runtime/thread_pool.hh"
#include "sim/campaign.hh"

namespace {

using namespace ctamem;
using defense::DefenseKind;
using sim::AttackKind;

const std::map<std::string, DefenseKind> defenseByName{
    {"none", DefenseKind::None},
    {"cta", DefenseKind::Cta},
    {"cta-restricted", DefenseKind::CtaRestricted},
    {"catt", DefenseKind::Catt},
    {"zebram", DefenseKind::Zebram},
    {"refresh", DefenseKind::RefreshBoost},
    {"para", DefenseKind::Para},
    {"anvil", DefenseKind::Anvil},
};

const std::map<std::string, AttackKind> attackByName{
    {"projectzero", AttackKind::ProjectZero},
    {"drammer", AttackKind::Drammer},
    {"algorithm1", AttackKind::Algorithm1},
    {"remap", AttackKind::RemapBypass},
    {"doubleowned", AttackKind::DoubleOwnedBypass},
};

void
listOptions()
{
    std::cout << "defenses:";
    for (const auto &[name, kind] : defenseByName)
        std::cout << ' ' << name;
    std::cout << "\nattacks:";
    for (const auto &[name, kind] : attackByName)
        std::cout << ' ' << name;
    std::cout << '\n';
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: attack_lab [--defense NAME] [--attack NAME]"
                 " [--mem MiB] [--ptp MiB] [--pf P] [--seed N]"
                 " [--matrix] [--jobs N] [--list]\n";
    std::exit(2);
}

/**
 * --matrix: run every attack against every defense as one parallel
 * Campaign (same machine config otherwise) and render the table.
 */
int
runMatrix(const sim::MachineConfig &base, unsigned jobs)
{
    std::vector<sim::MachineConfig> configs;
    std::vector<DefenseKind> defenses;
    for (const auto &[name, kind] : defenseByName) {
        sim::MachineConfig config = base;
        config.defense = kind;
        configs.push_back(config);
        defenses.push_back(kind);
    }
    std::vector<AttackKind> attacks;
    for (const auto &[name, kind] : attackByName)
        attacks.push_back(kind);

    sim::Campaign campaign;
    campaign.addGrid(configs, attacks);
    runtime::ThreadPool pool(jobs);
    const sim::CampaignReport report = campaign.run(pool);

    std::cout << std::left << std::setw(26) << "attack \\ defense";
    for (const DefenseKind defense : defenses)
        std::cout << std::setw(17) << defense::defenseName(defense);
    std::cout << '\n';
    std::size_t index = 0;
    for (const AttackKind attack : attacks) {
        std::cout << std::setw(26) << sim::attackName(attack);
        for (std::size_t col = 0; col < defenses.size(); ++col) {
            const sim::CellResult &cell = report.cells.at(index++);
            std::string text =
                attack::outcomeName(cell.result.outcome);
            if (cell.anvilTriggered)
                text += "*";
            std::cout << std::setw(17) << text;
        }
        std::cout << '\n';
    }
    std::cout << "\n" << report.cells.size() << " cells, wall "
              << std::setprecision(3) << report.wallSeconds
              << " s on " << pool.size()
              << " workers (serial-equivalent "
              << report.cellSecondsTotal() << " s)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string defense_name = "cta";
    std::string attack_name = "projectzero";
    sim::MachineConfig config;
    bool matrix = false;
    unsigned jobs = 0; // 0 = one worker per hardware thread

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--list") {
            listOptions();
            return 0;
        } else if (arg == "--defense") {
            defense_name = next();
        } else if (arg == "--attack") {
            attack_name = next();
        } else if (arg == "--mem") {
            config.memBytes = std::stoull(next()) * MiB;
        } else if (arg == "--ptp") {
            config.ptpBytes = std::stoull(next()) * MiB;
        } else if (arg == "--pf") {
            config.pf = std::stod(next());
        } else if (arg == "--seed") {
            config.seed = std::stoull(next());
        } else if (arg == "--matrix") {
            matrix = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(next()));
        } else {
            usage();
        }
    }
    if (matrix)
        return runMatrix(config, jobs);
    if (!defenseByName.contains(defense_name) ||
        !attackByName.contains(attack_name)) {
        listOptions();
        return 2;
    }
    config.defense = defenseByName.at(defense_name);

    std::cout << "machine: " << config.memBytes / MiB << " MiB, Pf="
              << config.pf << ", seed=" << config.seed
              << ", defense=" << defense::defenseName(config.defense)
              << '\n';
    sim::Machine machine(config);
    if (const cta::PtpZone *ptp = machine.kernel().ptpZone()) {
        std::cout << "ZONE_PTP: " << ptp->trueBytes() / MiB
                  << " MiB true-cells, LWM=0x" << std::hex
                  << ptp->lowWaterMark() << std::dec << ", "
                  << ptp->skippedAntiBytes() / MiB
                  << " MiB anti skipped\n";
    }

    const AttackKind attack = attackByName.at(attack_name);
    std::cout << "running: " << sim::attackName(attack) << "...\n\n";
    const attack::AttackResult result = machine.attack(attack);

    std::cout << "outcome:        "
              << attack::outcomeName(result.outcome) << '\n'
              << "detail:         " << result.detail << '\n'
              << "hammer passes:  " << result.hammerPasses << '\n'
              << "flips induced:  " << result.flipsInduced << '\n'
              << "self-refs:      " << result.selfReferences << '\n'
              << "PTEs corrupted: " << result.ptesCorrupted << '\n'
              << "modeled time:   "
              << static_cast<double>(result.attackTime) /
                     static_cast<double>(seconds)
              << " s\n";
    if (machine.observer()) {
        std::cout << "mitigations:    "
                  << machine.observer()->mitigations() << " ("
                  << machine.observer()->name() << ")\n";
    }
    const cta::TheoremAudit audit = machine.kernel().auditTheorem();
    if (machine.kernel().ptpZone()) {
        std::cout << "theorem audit:  "
                  << (audit.holds() ? "holds" : "VIOLATED") << '\n';
    }
    return result.succeeded() ? 1 : 0;
}
