/**
 * @file
 * The system-level workflow a deployment would run once per module:
 * identify true-cell/anti-cell regions with the retention protocol
 * (Section 2.2), feed them to the CTA zone builder, and report the
 * resulting ZONE_PTP layout and capacity cost (Section 6.2).
 *
 *   ./build/examples/cell_profiling
 */

#include <iomanip>
#include <iostream>

#include "cta/ptp_zone.hh"
#include "dram/module.hh"
#include "profile/cell_profiler.hh"
#include "profile/retention_profiler.hh"

int
main()
{
    using namespace ctamem;

    dram::DramConfig config;
    config.capacity = 256 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = dram::CellTypeMap::alternating(64); // unknown to us
    config.seed = 11;
    dram::DramModule module(config);

    // -- 1. cell-type identification ------------------------------
    profile::CellTypeProfiler profiler(module);
    const auto regions = profiler.profileRegions(
        0, 0, module.geometry().rowsPerBank() - 1);
    std::cout << "cell-type profile found " << regions.size()
              << " regions:\n";
    for (std::size_t i = 0; i < regions.size() && i < 6; ++i) {
        const profile::RowRegion &region = regions[i];
        std::cout << "  rows " << std::setw(5) << region.firstRow
                  << " .. " << std::setw(5) << region.lastRow << "  "
                  << dram::cellTypeName(region.type) << "s ("
                  << region.rows() * config.rowBytes / MiB
                  << " MiB)\n";
    }
    if (regions.size() > 6)
        std::cout << "  ... (" << regions.size() - 6 << " more)\n";

    // -- 2. retention profiling (cold-boot canary candidates) -----
    profile::RetentionProfiler retention(module);
    const auto canaries = retention.findCanaries(0, 64 * KiB, 4, 512);
    std::cout << "\nlongest-retention cells in the first 64 KiB:\n";
    for (const profile::CellRetention &cell : canaries) {
        std::cout << "  addr 0x" << std::hex << cell.addr << std::dec
                  << " bit " << cell.bit << ": "
                  << static_cast<double>(cell.retention) / seconds
                  << " s (" << dram::cellTypeName(cell.type) << ")\n";
    }

    // -- 3. ZONE_PTP construction ----------------------------------
    cta::CtaConfig cta_config;
    cta_config.ptpBytes = 2 * MiB;
    cta::PtpZone zone(module, cta_config);
    std::cout << "\nZONE_PTP built from the profile:\n"
              << "  true-cell bytes: " << zone.trueBytes() / MiB
              << " MiB in " << zone.subZones().size()
              << " sub-zone(s)\n"
              << "  low water mark:  0x" << std::hex
              << zone.lowWaterMark() << std::dec << '\n'
              << "  capacity lost:   "
              << zone.skippedAntiBytes() / MiB << " MiB ("
              << std::fixed << std::setprecision(2)
              << 100.0 * static_cast<double>(zone.skippedAntiBytes()) /
                     static_cast<double>(config.capacity)
              << "% of the module)\n";

    // Every sub-zone row must have profiled as true-cells.
    bool consistent = true;
    for (const mm::FrameSpan &span : zone.subZones()) {
        for (Pfn pfn = span.basePfn; pfn < span.endPfn();
             pfn += config.rowBytes / pageSize) {
            const dram::Location loc = module.locate(pfnToAddr(pfn));
            consistent &= profiler.classifyRow(loc.bank, loc.row) ==
                          dram::CellType::True;
        }
    }
    std::cout << "\nprofiler agrees with the zone builder on every "
                 "sub-zone row: "
              << (consistent ? "YES" : "NO") << '\n';
    return consistent ? 0 : 1;
}
