/**
 * @file
 * A step-by-step walk through the RowHammer PTE-based privilege
 * escalation (Seaborn & Dullien) against the vulnerable kernel,
 * using the attack primitives directly — then the same steps against
 * CTA, narrating exactly where the defense bites.
 *
 *   ./build/examples/privilege_escalation
 */

#include <iostream>

#include "attack/exploit.hh"
#include "attack/primitives.hh"
#include "dram/hammer.hh"
#include "kernel/kernel.hh"

namespace {

using namespace ctamem;

kernel::KernelConfig
makeConfig(bool with_cta)
{
    kernel::KernelConfig config;
    config.dram.capacity = 256 * MiB;
    config.dram.rowBytes = 128 * KiB;
    config.dram.banks = 1;
    config.dram.errors.pf = 1e-3;
    config.dram.seed = 1234;
    config.policy = with_cta ? kernel::AllocPolicy::Cta :
                               kernel::AllocPolicy::Standard;
    config.cta.ptpBytes = 4 * MiB;
    return config;
}

int
runScenario(bool with_cta)
{
    std::cout << (with_cta ? "\n=== With CTA ===\n"
                           : "=== Without CTA ===\n");
    kernel::Kernel kernel(makeConfig(with_cta));
    dram::RowHammerEngine engine(kernel.dram());

    const int pid = kernel.createProcess("attacker");
    attack::AttackerContext ctx(kernel, engine, pid);
    const attack::CostModel cost;

    // -- Step 1: spray page tables ------------------------------
    // Map one file many times; each mapping makes the kernel
    // allocate a leaf page table.  Interleave our own pages so the
    // buddy allocator lays aggressor frames next to table frames.
    const int fd = kernel.createFile(64 * KiB);
    const paging::PageFlags rw{true, false, false};
    std::vector<VAddr> mappings;
    for (int i = 0; i < 512; ++i) {
        const VAddr base = kernel.mmapFile(pid, fd, 64 * KiB, rw);
        if (base == 0 || !kernel.touchUser(pid, base))
            break;
        // Touch every page: each leaf table fills with 16 PTEs, so
        // a hammered table row offers 16x the flip targets.
        for (VAddr va = base; va < base + 64 * KiB; va += pageSize)
            kernel.touchUser(pid, va);
        mappings.push_back(base);
        const VAddr anon = kernel.mmapAnon(pid, 2 * pageSize, rw);
        kernel.touchUser(pid, anon);
        kernel.touchUser(pid, anon + pageSize);
    }
    std::cout << "step 1: sprayed " << mappings.size()
              << " mappings; kernel now holds "
              << kernel.pageTableBytes() / KiB
              << " KiB of page tables\n";
    if (with_cta) {
        const Addr lwm = kernel.ptpZone()->lowWaterMark();
        std::size_t above = 0;
        for (const auto &[pfn, level] : kernel.pageTableFrames())
            above += pfnToAddr(pfn) >= lwm;
        std::cout << "        (CTA: " << above << "/"
                  << kernel.pageTableFrames().size()
                  << " table frames above the low water mark, all "
                     "true-cells)\n";
    }

    // -- Step 2: hammer sandwiched rows -------------------------
    const auto sandwiches = ctx.findSandwiches();
    std::uint64_t flips = 0;
    for (const auto &[bank, victim] : sandwiches)
        flips += ctx.hammerSandwich(bank, victim, cost).total();
    std::cout << "step 2: double-side hammered " << sandwiches.size()
              << " victim rows, " << flips << " bit flips landed\n";

    // -- Step 3: scan for PTE self-reference --------------------
    auto self_ref =
        attack::detectSelfReference(kernel, pid, mappings, 64 * KiB);
    if (!self_ref) {
        std::cout << "step 3: no mapping translates into a page "
                     "table — self-reference impossible ("
                  << (with_cta ? "monotonic pointers cannot climb "
                                 "into ZONE_PTP"
                               : "unexpected on this seed")
                  << ")\n";
        return with_cta ? 0 : 1;
    }
    std::cout << "step 3: self-reference! vaddr 0x" << std::hex
              << self_ref->vaddr << " now reads page-table frame at "
              << "0x" << self_ref->tableAddr << std::dec
              << (self_ref->writable ? " (user-writable)" : "")
              << '\n';

    // -- Step 4: escalate ---------------------------------------
    const bool root = attack::escalate(kernel, pid, *self_ref,
                                       mappings, 64 * KiB);
    std::cout << "step 4: crafted PTEs through the exposed table -> "
              << (root ? "read the kernel secret: ROOT" : "failed")
              << '\n';
    return (root && !with_cta) ? 0 : 1;
}

} // namespace

int
main()
{
    const int vulnerable = runScenario(false);
    const int protected_run = runScenario(true);
    std::cout << "\nscenarios behaved as published: "
              << ((vulnerable == 0 && protected_run == 0) ? "YES"
                                                          : "NO")
              << '\n';
    return vulnerable == 0 && protected_run == 0 ? 0 : 1;
}
