/**
 * @file
 * The other two Section 8 applications of monotonicity:
 *
 *  - permission vectors in true-cells: hammering can only *revoke*
 *    permissions, never grant them;
 *  - the hamming-weight shield: data in true-cells, popcounts in
 *    anti-cells, one POPCNT per check.
 *
 *   ./build/examples/monotonic_shields
 */

#include <iostream>

#include "common/rng.hh"

#include "dram/hammer.hh"
#include "dram/module.hh"
#include "ext/hamming_shield.hh"
#include "ext/permission_vector.hh"

int
main()
{
    using namespace ctamem;

    dram::DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = dram::CellTypeMap::alternating(4);
    config.errors.pf = 1e-2; // aggressive module for the demo
    config.seed = 8;
    dram::DramModule module(config);
    dram::RowHammerEngine engine(module);

    const Addr true_row = 1 * 128 * KiB;  // rows 0..3 true
    const Addr anti_row = 5 * 128 * KiB;  // rows 4..7 anti

    // --- permission vectors --------------------------------------
    std::cout << "=== permission vectors (file rwx bits, SELinux "
                 "access vectors) ===\n";
    ext::PermissionVector good(module, true_row, 8192);
    ext::PermissionVector bad(module, anti_row, 8192, false);
    std::vector<bool> reference(8192);
    for (std::uint64_t i = 0; i < 8192; ++i) {
        if (i % 2 == 0) {
            good.grant(i);
            bad.grant(i);
            reference[i] = true;
        }
    }
    engine.hammerDoubleSided(0, 1);
    engine.hammerDoubleSided(0, 5);

    const auto good_report = good.audit(reference);
    const auto bad_report = bad.audit(reference);
    std::cout << "true-cell vector: " << good_report.deniedToAllowed
              << " denied->allowed (confidentiality), "
              << good_report.allowedToDenied
              << " allowed->denied (availability)\n";
    std::cout << "anti-cell vector: " << bad_report.deniedToAllowed
              << " denied->allowed, " << bad_report.allowedToDenied
              << " allowed->denied\n";

    // --- hamming-weight shield ------------------------------------
    std::cout << "\n=== hamming-weight shield ===\n";
    ext::HammingShield shield(module, 2 * 128 * KiB, 6 * 128 * KiB,
                              16384);
    std::vector<std::uint64_t> original(16384);
    for (std::uint64_t i = 0; i < 16384; ++i) {
        original[i] = splitmix64(i);
        shield.storeWord(i, original[i]);
    }
    engine.hammerDoubleSided(0, 2);

    std::uint64_t truly_faulty = 0;
    for (std::uint64_t i = 0; i < 16384; ++i)
        truly_faulty += shield.loadWord(i) != original[i];
    const auto report = shield.check();
    std::cout << "after hammering: " << truly_faulty
              << " words actually corrupted; shield flagged "
              << report.faults + report.suspicious << " ("
              << report.faults << " faults, " << report.suspicious
              << " suspicious) out of " << shield.words()
              << " words\n";
    std::cout << "storage overhead: 1 byte per 8-byte word; check "
                 "cost: one POPCNT per word\n";

    // A same-word up+down flip pair can keep the weight unchanged:
    // the small false-negative rate the paper accepts.
    const double recall =
        truly_faulty == 0 ?
            1.0 :
            static_cast<double>(report.faults + report.suspicious) /
                static_cast<double>(truly_faulty);
    const bool sound = good_report.deniedToAllowed == 0 &&
                       bad_report.deniedToAllowed > 0 &&
                       recall > 0.99;
    std::cout << "\nmonotonic shields behaved as designed: "
              << (sound ? "YES" : "NO") << '\n';
    return sound ? 0 : 1;
}
