/**
 * @file
 * Section 8 hamming-weight shield evaluation: detection, false
 * positive and false negative rates under RowHammer fault injection,
 * swept over flip rates — the "efficient error detection" design
 * point the paper sketches.
 */

#include <iomanip>
#include <iostream>
#include <set>

#include "common/rng.hh"
#include "dram/hammer.hh"
#include "dram/module.hh"
#include "ext/hamming_shield.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::ext;

    std::cout << "Hamming-weight shield under double-sided "
                 "hammering (data row true-cells, weight row "
                 "anti-cells)\n\n";
    std::cout << std::left << std::setw(10) << "Pf" << std::right
              << std::setw(12) << "faulty" << std::setw(12)
              << "detected" << std::setw(12) << "missed"
              << std::setw(14) << "false alarm" << std::setw(12)
              << "recall" << '\n';

    int status = 0;
    for (const double pf : {1e-3, 5e-3, 2e-2}) {
        dram::DramConfig config;
        config.capacity = 64 * MiB;
        config.rowBytes = 128 * KiB;
        config.banks = 1;
        config.cellMap = dram::CellTypeMap::alternating(4);
        config.errors.pf = pf;
        config.seed = 31;
        dram::DramModule module(config);
        dram::RowHammerEngine engine(module);

        const Addr data_base = 1 * 128 * KiB;  // true row
        const Addr weight_base = 5 * 128 * KiB; // anti row
        const std::uint64_t words = 16384;     // one full data row
        HammingShield shield(module, data_base, weight_base, words);

        std::vector<std::uint64_t> original(words);
        Rng rng(4);
        for (std::uint64_t i = 0; i < words; ++i) {
            original[i] = rng.next();
            shield.storeWord(i, original[i]);
        }

        engine.hammerDoubleSided(0, 1); // corrupt the data row
        engine.hammerDoubleSided(0, 5); // corrupt the weight row too

        // Ground truth: which words actually changed?
        std::set<std::uint64_t> faulty;
        for (std::uint64_t i = 0; i < words; ++i) {
            if (shield.loadWord(i) != original[i])
                faulty.insert(i);
        }

        std::uint64_t detected = 0;
        std::uint64_t missed = 0;
        std::uint64_t false_alarm = 0;
        for (std::uint64_t i = 0; i < words; ++i) {
            const bool flagged =
                shield.checkWord(i) != HammingShield::WordState::Clean;
            const bool bad = faulty.contains(i);
            if (bad && flagged)
                ++detected;
            else if (bad && !flagged)
                ++missed;
            else if (!bad && flagged)
                ++false_alarm;
        }
        const double recall =
            faulty.empty() ? 1.0 :
                             static_cast<double>(detected) /
                                 static_cast<double>(faulty.size());
        std::cout << std::left << std::setw(10) << pf << std::right
                  << std::setw(12) << faulty.size() << std::setw(12)
                  << detected << std::setw(12) << missed
                  << std::setw(14) << false_alarm << std::fixed
                  << std::setprecision(4) << std::setw(12) << recall
                  << '\n';
        std::cout.unsetf(std::ios::fixed);
        if (recall < 0.95)
            status = 1;
    }
    std::cout << "\nmisses require a same-word up/down flip pair or "
                 "an exactly compensating weight-byte change — the "
                 "small false-negative rate the paper accepts for "
                 "approximate workloads.\n";
    return status;
}
