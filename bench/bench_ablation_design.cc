/**
 * @file
 * Ablations over the design choices DESIGN.md calls out:
 *
 *  1. the indicator restriction depth (how many '0's to enforce) —
 *     security vs reserved-memory trade-off;
 *  2. the cell-interleave period N — capacity-loss sensitivity;
 *  3. multi-level zones + PS-bit screening — frames sacrificed vs
 *     the Section 7 page-size attack outcome.
 */

#include <iomanip>
#include <iostream>

#include "attack/pagesize_attack.hh"
#include "common/combinatorics.hh"
#include "cta/ptp_zone.hh"
#include "dram/module.hh"
#include "kernel/kernel.hh"
#include "model/capacity.hh"
#include "model/security_model.hh"
#include "sim/scenarios.hh"

namespace {

using namespace ctamem;

void
restrictionSweep()
{
    std::cout << "1. Indicator-restriction depth (8 GiB, 32 MiB "
                 "ZONE_PTP, Pf=1e-4)\n";
    std::cout << std::left << std::setw(12) << "min zeros"
              << std::setw(16) << "E[exploitable]" << std::setw(16)
              << "attack days" << std::setw(20)
              << "reserved memory %" << '\n';
    for (const unsigned zeros : sim::scenarios::restrictionDepths()) {
        model::SystemParams params;
        params.minIndicatorZeros = zeros;
        const double expected =
            model::expectedExploitablePtes(params);
        const model::AttackTime time =
            model::expectedAttackTime(params);
        // Reserved regions: indicator values with < zeros zeros.
        const unsigned n = params.indicatorBits();
        double reserved = 0;
        for (unsigned k = 0; k < zeros; ++k)
            reserved += choose(n, k);
        const double reserved_pct =
            reserved / static_cast<double>(1ULL << n) * 100.0;
        std::cout << std::setw(12) << zeros << std::setw(16)
                  << std::setprecision(4) << expected << std::setw(16)
                  << time.avgDays << std::setw(20)
                  << std::setprecision(3) << reserved_pct << '\n';
    }
    std::cout << "(the paper picks 2: E[PTEs] drops 6 orders of "
                 "magnitude for 3.1% of memory reserved to "
                 "kernel/trusted use)\n\n";
}

void
periodSweep()
{
    std::cout << "2. Cell-interleave period N (8 GiB, 32 MiB "
                 "ZONE_PTP, 128 KiB rows)\n";
    std::cout << std::left << std::setw(12) << "N rows"
              << std::setw(16) << "stripe size" << std::setw(22)
              << "worst-case loss %" << std::setw(18)
              << "anti-top loss %" << '\n';
    for (const std::uint64_t period :
         sim::scenarios::interleavePeriods()) {
        const double worst = model::worstCaseLossFraction(
            period, 128 * KiB, 8 * GiB, 32 * MiB);
        const model::CapacityLoss actual =
            model::analyzeCapacityLoss(
                dram::CellTypeMap::alternating(period), 8 * GiB,
                32 * MiB);
        std::cout << std::setw(12) << period << std::setw(16)
                  << (std::to_string(period * 128 / 1024) + " MiB")
                  << std::setw(22) << std::setprecision(3)
                  << worst * 100.0 << std::setw(18)
                  << actual.lossFraction(8 * GiB) * 100.0 << '\n';
    }
    std::cout << "(loss scales with the stripe size, not with "
                 "ZONE_PTP: one skipped stripe dominates)\n\n";
}

void
screeningAblation()
{
    std::cout << "3. Multi-level zones + PS-bit screening vs the "
                 "Section 7 page-size attack (512 MiB machine)\n";
    std::cout << std::left << std::setw(10) << "Pf"
              << std::setw(14) << "multi-level" << std::setw(12)
              << "screening" << std::setw(18) << "screened frames"
              << std::setw(18) << "attack outcome" << '\n';

    for (const sim::scenarios::ScreeningCase &ablation :
         sim::scenarios::screeningCases()) {
        const kernel::KernelConfig config =
            sim::scenarios::screeningKernelConfig(ablation);
        kernel::Kernel kernel(config);
        dram::RowHammerEngine engine(kernel.dram());
        attack::PageSizeAttackConfig attack_config;
        attack_config.largeMappings = 128;
        // Allocator-aware sweep order (see PageSizeAttackConfig).
        attack_config.sweepFromTop = !ablation.multiLevelZones;
        const attack::AttackResult result =
            attack::runPageSizeAttack(kernel, engine, attack_config);
        std::cout << std::setw(10) << ablation.pf << std::setw(14)
                  << (ablation.multiLevelZones ? "yes" : "no")
                  << std::setw(12)
                  << (ablation.screenPageSizeBit ? "yes" : "no")
                  << std::setw(18)
                  << kernel.ptpZone()->screenedFrames()
                  << std::setw(18)
                  << attack::outcomeName(result.outcome) << '\n';
    }
    std::cout << "(without screening, large-page PS bits in "
                 "true-cells are a '1'->'0' target; screening "
                 "removes every exploitable PD frame)\n";
}

} // namespace

int
main()
{
    restrictionSweep();
    periodSweep();
    screeningAblation();
    return 0;
}
