/**
 * @file
 * Pattern-fuzzer benchmark: evaluation throughput of the evolutionary
 * search and whether it still finds a TRR-sampler bypass.  Emits
 * BENCH_fuzz.json (gated by scripts/check_bench.py --suite fuzz).
 *
 * The workload is the trr-arms-race configuration: a 64 MiB single
 * bank with the paper's fault statistics at pf = 1e-3, defended by a
 * deliberately weak sampler (1 slot, 2-burst latch window) so the
 * search deterministically lands on a decoy-lead bypass.  The gate
 * covers
 *
 *   patterns_per_s  candidate evaluations per second (higher better)
 *   bypass_found    1.0 when the best pattern flips >= 1 cell — the
 *                   arms-race acceptance property; a drop to 0 means
 *                   the search or the physics regressed, not the box
 *
 * while generations_to_first_bypass and best_flips ride along
 * informationally (they are exact, deterministic values — diffs in
 * them flag an intentional algorithm change, not noise).
 *
 * Usage: bench_fuzz [--smoke] [--out <path>]
 *   --smoke  tiny population/generation counts (the bench-smoke ctest
 *            entry; only proves the bench still runs)
 *   --out    JSON report path (default: BENCH_fuzz.json)
 */

#include <chrono>
#include <iostream>
#include <memory>
#include <string>

#include "common/bench_report.hh"
#include "common/rng.hh"
#include "defense/trr_sampler.hh"
#include "fuzz/fuzzer.hh"
#include "runtime/thread_pool.hh"

namespace {

using namespace ctamem;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** The trr-arms-race cell, shrunk to bench scale. */
fuzz::FuzzTarget
armsRaceTarget()
{
    fuzz::FuzzTarget target;
    target.dram.capacity = 64 * MiB;
    target.dram.rowBytes = 128 * KiB;
    target.dram.banks = 1;
    target.dram.errors.pf = 1e-3;
    target.dram.seed = 1234;
    target.bank = 0;
    target.baseRow = 8;
    target.makeObserver = [] {
        return std::make_unique<defense::TrrSamplerObserver>(
            1, 2, deriveSeed(1234, seeds::kTrrSamplerStream));
    };
    return target;
}

fuzz::FuzzParams
armsRaceParams(bool smoke)
{
    fuzz::FuzzParams params;
    params.population = smoke ? 6 : 12;
    params.generations = smoke ? 2 : 6;
    params.windows = 1;
    params.timing.refsPerWindow = 1024;
    params.timing.actsPerInterval = 1300;
    params.builder.arenaRows = 32;
    params.builder.maxEntries = 8;
    params.builder.maxPeriod = 4;
    params.builder.maxSlots = 12;
    return params;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_fuzz.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--smoke] [--out <path>]\n";
            return 2;
        }
    }

    BenchReport report;
    const fuzz::FuzzTarget target = armsRaceTarget();
    const fuzz::FuzzParams params = armsRaceParams(smoke);

    // Warm the shared row-profile cache so patterns_per_s measures
    // the search loop, not the one-time profile derivation.
    fuzz::PatternFuzzer(armsRaceTarget(), params)
        .evaluate(fuzz::PatternBuilder(params.builder, params.timing)
                      .family("sync"));

    runtime::ThreadPool pool(smoke ? 2 : 4);
    Clock::time_point start = Clock::now();
    fuzz::PatternFuzzer fuzzer(target, params);
    const fuzz::FuzzOutcome outcome = fuzzer.run(&pool);
    const double seconds = secondsSince(start);

    report.add("patterns_per_s", outcome.patternsEvaluated / seconds,
               "patterns/s", outcome.patternsEvaluated);
    report.add("bypass_found", outcome.bestFlips > 0 ? 1.0 : 0.0,
               "bool", 1);
    report.add("generations_to_first_bypass",
               outcome.firstBypassGeneration == ~0ULL
                   ? -1.0
                   : static_cast<double>(
                         outcome.firstBypassGeneration),
               "generations", outcome.generations);
    report.add("best_flips", static_cast<double>(outcome.bestFlips),
               "flips", outcome.patternsEvaluated);

    if (!smoke && outcome.bestFlips == 0) {
        std::cerr << "bench_fuzz: search found no bypass — the "
                     "arms-race property regressed\n";
        return 1;
    }

    if (!report.writeFile(out)) {
        std::cerr << "bench_fuzz: cannot write " << out << '\n';
        return 1;
    }
    report.writeJson(std::cout);
    std::cout << "report: " << out << '\n';
    return 0;
}
