/**
 * @file
 * Table 1's opcode-flip sandbox escape, quantified: escape and crash
 * rates under hammering for the naive vs monotone opcode encodings,
 * across flip rates and seeds — the Section 8 "monotonicity beyond
 * page tables" principle applied to code integrity.
 */

#include <iomanip>
#include <iostream>

#include "dram/hammer.hh"
#include "dram/module.hh"
#include "ext/sandbox.hh"

namespace {

using namespace ctamem;

struct Tally
{
    unsigned escapes = 0;
    unsigned crashes = 0;
    unsigned clean = 0;
};

Tally
runSeries(ext::OpcodeEncoding encoding, double pf, unsigned trials)
{
    Tally tally;
    for (unsigned seed = 1; seed <= trials; ++seed) {
        dram::DramConfig config;
        config.capacity = 64 * MiB;
        config.rowBytes = 128 * KiB;
        config.banks = 1;
        config.cellMap =
            dram::CellTypeMap::uniform(dram::CellType::True);
        config.errors.pf = pf;
        config.seed = seed;
        dram::DramModule module(config);
        dram::RowHammerEngine engine(module);

        const Addr code = 1 * 128 * KiB;
        ext::Sandbox sandbox(module, code, encoding);
        sandbox.writeBenignProgram(64 * KiB, seed);
        if (!sandbox.verify(64 * KiB))
            continue;
        engine.hammerDoubleSided(0, 1);
        const ext::SandboxRun run = sandbox.run(64 * KiB);
        if (run.escaped)
            ++tally.escapes;
        else if (run.crashed)
            ++tally.crashes;
        else
            ++tally.clean;
    }
    return tally;
}

} // namespace

int
main()
{
    std::cout << "Sandbox escapes by opcode flip (16k-instruction "
                 "verified programs, 24 modules per cell)\n\n";
    std::cout << std::left << std::setw(10) << "Pf" << std::setw(12)
              << "encoding" << std::right << std::setw(10)
              << "escapes" << std::setw(10) << "crashes"
              << std::setw(10) << "clean" << '\n';

    int status = 0;
    constexpr unsigned trials = 24;
    for (const double pf : {1e-3, 1e-2, 5e-2}) {
        const Tally naive =
            runSeries(ext::OpcodeEncoding::Naive, pf, trials);
        const Tally monotone =
            runSeries(ext::OpcodeEncoding::Monotone, pf, trials);
        std::cout << std::left << std::setw(10) << pf << std::setw(12)
                  << "naive" << std::right << std::setw(10)
                  << naive.escapes << std::setw(10) << naive.crashes
                  << std::setw(10) << naive.clean << '\n';
        std::cout << std::left << std::setw(10) << "" << std::setw(12)
                  << "monotone" << std::right << std::setw(10)
                  << monotone.escapes << std::setw(10)
                  << monotone.crashes << std::setw(10)
                  << monotone.clean << '\n';
        if (monotone.escapes != 0)
            status = 1; // the guarantee is absolute
        if (pf >= 1e-2 && naive.escapes == 0)
            status = 1; // the attack must be real on weak modules
    }
    std::cout << "\nmonotone encoding: privileged opcodes carry a "
                 "bit no verified program contains; '1'->'0' faults "
                 "cannot mint one (escapes provably 0 — crashes are "
                 "the worst case).\n";
    return status;
}
