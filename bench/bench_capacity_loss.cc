/**
 * @file
 * Reproduces the Section 6.2 effective-memory-capacity analysis:
 * capacity lost to skipped anti-cell rows while carving ZONE_PTP,
 * swept over memory size, ZONE_PTP size, and cell layout, checked
 * against both the analytic worst case (0.78% per 64 MiB at 8 GiB)
 * and the actual CTA zone builder on a simulated module.
 */

#include <iomanip>
#include <iostream>

#include "cta/ptp_zone.hh"
#include "dram/module.hh"
#include "model/capacity.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::model;

    std::cout << "Section 6.2: capacity loss from skipped anti-cell "
                 "rows\n\n";
    std::cout << std::left << std::setw(10) << "memory"
              << std::setw(10) << "PTP" << std::setw(26) << "layout"
              << std::setw(14) << "lost bytes" << std::setw(10)
              << "loss %" << '\n';

    struct LayoutCase
    {
        const char *label;
        dram::CellTypeMap map;
    };
    const LayoutCase layouts[] = {
        {"alternating-512 (anti top)",
         dram::CellTypeMap::alternating(512)},
        {"alternating-512 (true top)",
         dram::CellTypeMap::alternating(512, false)},
        {"1000:1 mostly-true", dram::CellTypeMap::mostlyTrue(1000)},
    };

    for (const std::uint64_t mem : {8 * GiB, 16 * GiB, 32 * GiB}) {
        for (const std::uint64_t ptp : {32 * MiB, 64 * MiB}) {
            for (const LayoutCase &layout : layouts) {
                const CapacityLoss loss =
                    analyzeCapacityLoss(layout.map, mem, ptp);
                std::cout << std::setw(10)
                          << (std::to_string(mem / GiB) + "GB")
                          << std::setw(10)
                          << (std::to_string(ptp / MiB) + "MB")
                          << std::setw(26) << layout.label
                          << std::setw(14) << loss.skippedAntiBytes
                          << std::fixed << std::setprecision(3)
                          << loss.lossFraction(mem) * 100.0 << '\n';
                std::cout.unsetf(std::ios::fixed);
            }
        }
    }

    std::cout << "\nanalytic worst case (8GB, 32MB PTP, 512-row "
                 "stripes): "
              << std::fixed << std::setprecision(3)
              << worstCaseLossFraction(512, 128 * KiB, 8 * GiB,
                                       32 * MiB) * 100.0
              << "% (paper: 0.78%)\n";
    std::cout.unsetf(std::ios::fixed);

    // Cross-check against the real zone builder on a small module.
    dram::DramConfig config;
    config.capacity = 256 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = dram::CellTypeMap::alternating(64);
    dram::DramModule module(config);
    cta::CtaConfig cta_config;
    cta_config.ptpBytes = 2 * MiB;
    cta::PtpZone zone(module, cta_config);
    const CapacityLoss analytic = analyzeCapacityLoss(
        config.cellMap, config.capacity, cta_config.ptpBytes);
    std::cout << "\nzone-builder cross-check (256MB module): built "
              << zone.skippedAntiBytes() << " vs analytic "
              << analytic.skippedAntiBytes << " bytes lost, LWM "
              << zone.lowWaterMark() << " vs "
              << analytic.lowWaterMark << '\n';
    return zone.skippedAntiBytes() == analytic.skippedAntiBytes ? 0 :
                                                                  1;
}
