/**
 * @file
 * Google-benchmark microbenchmarks of the allocator paths the 18-line
 * patch touches: buddy alloc/free, zoned allocation with fallback,
 * pte_alloc_one under the Standard and CTA policies, page-fault
 * handling, and MMU translation — the Section 6 "no overhead on the
 * fast path" argument at nanosecond granularity.
 */

#include <benchmark/benchmark.h>

#include "kernel/kernel.hh"
#include "mm/buddy.hh"
#include "mm/phys_mem.hh"

namespace {

using namespace ctamem;

void
BM_BuddyAllocFree(benchmark::State &state)
{
    mm::BuddyAllocator buddy(0, 1 << 16);
    for (auto _ : state) {
        auto pfn = buddy.allocate(0);
        benchmark::DoNotOptimize(pfn);
        buddy.free(*pfn, 0);
    }
}
BENCHMARK(BM_BuddyAllocFree);

void
BM_BuddySplitHeavy(benchmark::State &state)
{
    for (auto _ : state) {
        mm::BuddyAllocator buddy(0, 1 << 12);
        for (int i = 0; i < 64; ++i)
            benchmark::DoNotOptimize(buddy.allocate(0));
    }
}
BENCHMARK(BM_BuddySplitHeavy);

kernel::KernelConfig
microConfig(kernel::AllocPolicy policy)
{
    kernel::KernelConfig config;
    config.dram.capacity = 256 * MiB;
    config.dram.rowBytes = 128 * KiB;
    config.dram.banks = 1;
    config.policy = policy;
    config.cta.ptpBytes = 4 * MiB;
    return config;
}

void
BM_PteAllocStandard(benchmark::State &state)
{
    kernel::Kernel kernel(microConfig(kernel::AllocPolicy::Standard));
    for (auto _ : state) {
        auto pfn = kernel.pteAllocOne(1, -1);
        benchmark::DoNotOptimize(pfn);
        kernel.pteFree(*pfn);
    }
}
BENCHMARK(BM_PteAllocStandard);

void
BM_PteAllocCta(benchmark::State &state)
{
    kernel::Kernel kernel(microConfig(kernel::AllocPolicy::Cta));
    for (auto _ : state) {
        auto pfn = kernel.pteAllocOne(1, -1);
        benchmark::DoNotOptimize(pfn);
        kernel.pteFree(*pfn);
    }
}
BENCHMARK(BM_PteAllocCta);

void
BM_PageFaultPath(benchmark::State &state)
{
    const auto policy = state.range(0) == 0 ?
                            kernel::AllocPolicy::Standard :
                            kernel::AllocPolicy::Cta;
    kernel::Kernel kernel(microConfig(policy));
    const int pid = kernel.createProcess("bench");
    const paging::PageFlags rw{true, false, false};
    VAddr next = kernel.mmapAnon(pid, 64 * MiB, rw);
    VAddr va = next;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernel.readUser(pid, va));
        va += pageSize;
        if (va >= next + 64 * MiB) {
            state.PauseTiming();
            kernel.munmap(pid, next);
            next = kernel.mmapAnon(pid, 64 * MiB, rw);
            va = next;
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_PageFaultPath)->Arg(0)->Arg(1);

void
BM_TranslationTlbHit(benchmark::State &state)
{
    kernel::Kernel kernel(microConfig(kernel::AllocPolicy::Cta));
    const int pid = kernel.createProcess("bench");
    const paging::PageFlags rw{true, false, false};
    const VAddr base = kernel.mmapAnon(pid, 64 * KiB, rw);
    kernel.touchUser(pid, base);
    for (auto _ : state)
        benchmark::DoNotOptimize(kernel.readUser(pid, base));
}
BENCHMARK(BM_TranslationTlbHit);

void
BM_TranslationWalk(benchmark::State &state)
{
    kernel::Kernel kernel(microConfig(kernel::AllocPolicy::Cta));
    const int pid = kernel.createProcess("bench");
    const paging::PageFlags rw{true, false, false};
    const VAddr base = kernel.mmapAnon(pid, 64 * KiB, rw);
    kernel.touchUser(pid, base);
    for (auto _ : state) {
        kernel.flushTlb();
        benchmark::DoNotOptimize(kernel.readUser(pid, base));
    }
}
BENCHMARK(BM_TranslationWalk);

} // namespace

BENCHMARK_MAIN();
