/**
 * @file
 * Ablation from Section 5's discussion: the low water mark *without*
 * cell-type awareness.  If ZONE_PTP happens to consist of anti-cells,
 * the dominant flip direction is upward and the expected number of
 * exploitable PTEs explodes (paper: 3354.7, attack time 3.2 hours) —
 * demonstrating that CTA, not the zone boundary, carries the defense.
 */

#include <iomanip>
#include <iostream>

#include "model/security_model.hh"
#include "sim/scenarios.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::model;

    std::cout << "Ablation: 8 GiB system, 32 MiB ZONE_PTP, "
                 "Pf=1e-4\n\n";
    std::cout << std::left << std::setw(28) << "zone cells"
              << std::setw(18) << "E[exploitable]" << std::setw(18)
              << "attack time" << '\n';

    for (const auto &[label, cells] :
         sim::scenarios::lwmZoneCases()) {
        SystemParams params;
        params.zoneCells = cells;
        const double expected = expectedExploitablePtes(params);
        const AttackTime time = expectedAttackTime(params);
        std::cout << std::setw(28) << label << std::setw(18)
                  << std::setprecision(6) << expected;
        if (time.avgDays >= 1.0) {
            std::cout << std::setprecision(4) << time.avgDays
                      << " days";
        } else {
            std::cout << std::setprecision(3) << time.avgDays * 24.0
                      << " hours";
        }
        std::cout << '\n';
    }

    std::cout << "\npaper reference: true-cells 6.7 PTEs / 57.6 days "
                 "(unrestricted); anti-cells 3354.7 PTEs / 3.2 "
                 "hours.\n";
    return 0;
}
