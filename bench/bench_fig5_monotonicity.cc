/**
 * @file
 * Reproduces Figures 4 and 5 empirically: where do corrupted PTE
 * pointers land under a RowHammer attack?
 *
 * Figure 5a (monotonic pointers): PTEs stored in true-cells — every
 * corrupted pointer moves to a *lower* physical address, so none can
 * climb into the page-table zone.
 * Figure 5b (no monotonicity): PTEs stored in anti-cells — corrupted
 * pointers move upward and some land at/above the low water mark:
 * the self-reference ingredient.
 */

#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "dram/hammer.hh"
#include "dram/module.hh"
#include "paging/pte.hh"

namespace {

using namespace ctamem;

struct Series
{
    std::uint64_t ptes = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t movedDown = 0;
    std::uint64_t movedUp = 0;
    std::uint64_t reachedZone = 0; //!< pointer landed >= LWM
};

/**
 * Fill rows [2, rows+2) with synthetic PTEs pointing below the LWM,
 * double-side hammer each, and classify pointer movement.
 */
Series
runSeries(dram::CellType zone_cells, double pf, std::uint64_t rows)
{
    dram::DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = dram::CellTypeMap::uniform(zone_cells);
    config.errors.pf = pf;
    config.seed = 77;
    dram::DramModule module(config);
    dram::RowHammerEngine engine(module);

    const Addr lwm = 48 * MiB; // pretend zone base for the experiment
    const paging::PageFlags flags{true, true, false};

    // Plant PTEs: pointers spread over the memory below the LWM,
    // biased high (spray-like content, one zero in the top bits).
    std::map<Addr, std::uint64_t> before;
    for (std::uint64_t row = 2; row < rows + 2; ++row) {
        const Addr base = row * config.rowBytes;
        for (std::uint64_t slot = 0;
             slot < config.rowBytes / 8; ++slot) {
            const Pfn target = addrToPfn(
                (slot * 4096 + row * 65536) % lwm);
            const std::uint64_t raw =
                paging::Pte::make(target, flags).raw();
            module.writeU64(base + slot * 8, raw);
            before.emplace(base + slot * 8, raw);
        }
    }

    for (std::uint64_t row = 2; row < rows + 2; ++row)
        engine.hammerDoubleSided(0, row);

    Series series;
    series.ptes = before.size();
    for (const auto &[addr, old_raw] : before) {
        const std::uint64_t new_raw = module.readU64(addr);
        if (new_raw == old_raw)
            continue;
        ++series.corrupted;
        const paging::Pte old_pte(old_raw);
        const paging::Pte new_pte(new_raw);
        if (new_pte.pfn() < old_pte.pfn())
            ++series.movedDown;
        else if (new_pte.pfn() > old_pte.pfn())
            ++series.movedUp;
        if (new_pte.present() && pfnToAddr(new_pte.pfn()) >= lwm)
            ++series.reachedZone;
    }
    return series;
}

void
printSeries(const char *label, const Series &series)
{
    std::cout << std::left << std::setw(26) << label << std::right
              << std::setw(10) << series.ptes << std::setw(12)
              << series.corrupted << std::setw(12) << series.movedDown
              << std::setw(10) << series.movedUp << std::setw(14)
              << series.reachedZone << '\n';
}

} // namespace

int
main()
{
    std::cout << "Figure 5 reproduction: pointer movement under "
                 "double-sided hammering (Pf=1e-3, 64 rows of "
                 "PTEs)\n\n";
    std::cout << std::left << std::setw(26) << "placement"
              << std::right << std::setw(10) << "PTEs"
              << std::setw(12) << "corrupted" << std::setw(12)
              << "moved down" << std::setw(10) << "moved up"
              << std::setw(14) << "reached zone" << '\n';

    const Series true_cells =
        runSeries(ctamem::dram::CellType::True, 1e-3, 64);
    const Series anti_cells =
        runSeries(ctamem::dram::CellType::Anti, 1e-3, 64);
    printSeries("true-cells (Fig 5a)", true_cells);
    printSeries("anti-cells (Fig 5b)", anti_cells);

    std::cout << "\nshape check (the paper's footnote 4: 0.2% of "
                 "vulnerable true-cells flip the wrong way, so the "
                 "idealized zero is a ~500:1 statistical dominance):\n"
              << "  true-cells: down/up ratio = "
              << true_cells.movedDown << "/" << true_cells.movedUp
              << ", reached zone " << true_cells.reachedZone << '\n'
              << "  anti-cells: up/down ratio = "
              << anti_cells.movedUp << "/" << anti_cells.movedDown
              << ", reached zone " << anti_cells.reachedZone << '\n';

    const bool holds =
        true_cells.movedDown > 50 * true_cells.movedUp &&
        anti_cells.movedUp > 50 * anti_cells.movedDown &&
        anti_cells.reachedZone >
            20 * (true_cells.reachedZone + 1);
    std::cout << "monotonicity dominance holds: "
              << (holds ? "YES" : "NO") << '\n';
    return holds ? 0 : 1;
}
