/**
 * @file
 * Campaign-service benchmarks: per-cell throughput of a cold
 * submission vs a fully cached resubmission, the result-cache hit
 * rate, snapshot-restore vs cold-boot machine start, and the cold
 * run's p50/p99 cell latency.  Emits BENCH_svc.json (gated by
 * scripts/check_bench.py --suite svc).
 *
 * The workload is the paper-default Table-1 grid — the same manifest
 * a client would submit over the pipe protocol — driven through
 * CampaignService in-process so the numbers measure the service, not
 * the pipe.
 *
 * Usage: bench_svc [--smoke] [--out <path>]
 *   --smoke  single defense/attack pair (the bench-smoke ctest
 *            entry; only proves the bench still runs)
 *   --out    JSON report path (default: BENCH_svc.json)
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/registry.hh"
#include "common/bench_report.hh"
#include "defense/registry.hh"
#include "sim/machine.hh"
#include "sim/scenario.hh"
#include "sim/scenarios.hh"
#include "svc/server.hh"
#include "svc/snapshot.hh"
#include "svc/wire.hh"

namespace {

using namespace ctamem;
using json::Json;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** The paper-default grid as a submit-ready manifest object. */
Json
paperDefaultManifest(bool smoke)
{
    std::vector<defense::DefenseKind> defenses =
        sim::scenarios::table1Defenses();
    std::vector<attack::AttackKind> attacks =
        sim::scenarios::table1Attacks();
    if (smoke) {
        defenses.resize(1);
        attacks.resize(1);
    }

    Json defensesJson = Json::array();
    for (const defense::DefenseKind kind : defenses)
        defensesJson.push(std::string(defense::defenseToken(kind)));
    Json attacksJson = Json::array();
    for (const attack::AttackKind kind : attacks)
        attacksJson.push(std::string(attack::attackToken(kind)));

    Json manifest = Json::object();
    manifest.set("schema_version", sim::kScenarioSchemaVersion)
        .set("defenses", std::move(defensesJson))
        .set("attacks", std::move(attacksJson));
    return manifest;
}

/** Submit @p manifest once; returns the parsed response frames. */
std::vector<Json>
submit(svc::CampaignService &service, const Json &manifest)
{
    Json request = Json::object();
    request.set("type", std::string("submit"))
        .set("id", std::uint64_t{1})
        .set("manifest", manifest);

    std::stringstream in;
    svc::writeFrame(in, request);
    std::stringstream out;
    service.serve(in, out);

    std::vector<Json> frames;
    while (auto frame = svc::readFrame(out))
        frames.push_back(std::move(*frame));
    if (frames.empty() ||
        frames.back().at("type").asString() != "done") {
        std::cerr << "bench_svc: submission did not complete\n";
        std::exit(1);
    }
    return frames;
}

double
percentile(std::vector<double> sorted, double fraction)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t index = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(fraction * (sorted.size() - 1) +
                                 0.5));
    return sorted[index];
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_svc.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--smoke] [--out <path>]\n";
            return 2;
        }
    }

    const Json manifest = paperDefaultManifest(smoke);
    BenchReport report;

    // --- cold vs fully cached submission -------------------------
    svc::ServiceConfig config;
    config.cacheDir.clear(); // in-memory only: no disk-state carry
    svc::CampaignService service(config);

    Clock::time_point start = Clock::now();
    const std::vector<Json> cold = submit(service, manifest);
    const double coldSeconds = secondsSince(start);
    const std::uint64_t cells = cold.front().at("cells").asU64();

    start = Clock::now();
    const std::vector<Json> cached = submit(service, manifest);
    const double cachedSeconds = secondsSince(start);
    if (cached.back().at("cachedCells").asU64() != cells) {
        std::cerr << "bench_svc: resubmission was not fully cached\n";
        return 1;
    }

    report.add("jobs_per_s_cold", cells / coldSeconds, "cells/s",
               cells);
    report.add("jobs_per_s_cached", cells / cachedSeconds, "cells/s",
               cells);
    // Hit rate of the resubmission: the fraction of its cells the
    // content-addressed cache replayed (1.0 when memoization works).
    report.add("cache_hit_rate",
               static_cast<double>(
                   cached.back().at("cachedCells").asU64()) /
                   cells,
               "fraction", cells);
    report.add("cached_speedup", coldSeconds / cachedSeconds, "x",
               cells);

    // --- cold-run cell latency percentiles -----------------------
    std::vector<double> latencies;
    for (const Json &row :
         cold.back().at("report").at("cells").items())
        latencies.push_back(row.at("wallSeconds").asDouble());
    report.add("cell_latency_p50", percentile(latencies, 0.50), "s",
               cells);
    report.add("cell_latency_p99", percentile(latencies, 0.99), "s",
               cells);

    // --- snapshot restore vs cold boot ---------------------------
    // The config whose boot does the most work: CTA with multi-level
    // zoning and PS-bit screening (the plan scan dominates boot).
    sim::MachineConfig ctaConfig;
    ctaConfig.defense = defense::DefenseKind::Cta;
    ctaConfig.ctaMultiLevelZones = true;
    ctaConfig.ctaScreenPageSize = true;

    const std::uint64_t boots = smoke ? 3 : 40;
    std::vector<std::uint8_t> blob;
    {
        sim::Machine seed(ctaConfig);
        blob = svc::serialize(svc::captureSnapshot(seed));
    }

    start = Clock::now();
    for (std::uint64_t i = 0; i < boots; ++i) {
        sim::Machine machine(ctaConfig);
    }
    const double coldBoot = secondsSince(start) / boots;

    start = Clock::now();
    for (std::uint64_t i = 0; i < boots; ++i) {
        auto machine = svc::restoreMachine(svc::deserialize(blob));
    }
    const double warmBoot = secondsSince(start) / boots;

    report.add("cold_boot", coldBoot * 1e3, "ms", boots);
    report.add("snapshot_restore", warmBoot * 1e3, "ms", boots);
    report.add("snapshot_restore_speedup", coldBoot / warmBoot, "x",
               boots);

    if (!report.writeFile(out)) {
        std::cerr << "bench_svc: cannot write " << out << '\n';
        return 1;
    }
    report.writeJson(std::cout);
    std::cout << "report: " << out << '\n';
    return 0;
}
