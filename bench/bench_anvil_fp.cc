/**
 * @file
 * The ANVIL trade-off the paper leans on (Section 2.5): detector
 * thresholds low enough to catch first-window hammering also trip on
 * benign row-thrashing workloads.  Sweeps the detection threshold
 * and reports true-positive latency vs false-positive rate.
 */

#include <iomanip>
#include <iostream>

#include "common/rng.hh"
#include "defense/observers.hh"

namespace {

using namespace ctamem;

/** Passes until a double-sided hammer burst is detected (0 = never). */
unsigned
detectionLatency(defense::AnvilObserver &anvil)
{
    for (unsigned pass = 1; pass <= 16; ++pass) {
        if (anvil.onHammer({0, 1000, 1'300'000, 999, 1001}))
            return pass;
    }
    return 0;
}

/** Benign workload: hot rows re-activated at realistic rates. */
unsigned
benignFalsePositives(defense::AnvilObserver &anvil,
                     std::uint64_t activations_per_burst,
                     unsigned bursts)
{
    Rng rng(5);
    unsigned fps = 0;
    for (unsigned burst = 0; burst < bursts; ++burst) {
        // A working set of 4 hot rows (streaming + row-buffer
        // thrashing patterns).
        const std::uint64_t row = 100 + rng.below(4);
        if (anvil.noteBenignActivity(0, row, activations_per_burst))
            ++fps;
    }
    return fps;
}

} // namespace

int
main()
{
    std::cout << "ANVIL threshold sweep: attack detection latency "
                 "vs benign false positives\n\n";
    std::cout << std::left << std::setw(14) << "threshold"
              << std::setw(22) << "detects attack after"
              << std::setw(26) << "benign FPs (64 bursts of"
              << '\n'
              << std::left << std::setw(14) << "(activations)"
              << std::setw(22) << "(hammer passes)" << std::setw(26)
              << " 500k activations)" << '\n';

    int status = 0;
    for (const std::uint64_t threshold :
         {std::uint64_t{500'000}, std::uint64_t{1'000'000},
          std::uint64_t{2'000'000}, std::uint64_t{4'000'000},
          std::uint64_t{8'000'000}}) {
        defense::AnvilObserver attack_detector(threshold, 16);
        const unsigned latency = detectionLatency(attack_detector);

        defense::AnvilObserver benign_detector(threshold, 16);
        const unsigned fps =
            benignFalsePositives(benign_detector, 500'000, 64);

        std::cout << std::left << std::setw(14) << threshold
                  << std::setw(22)
                  << (latency ? std::to_string(latency) : "never")
                  << std::setw(26) << fps << '\n';
        // The structural trade-off: thresholds that detect within
        // one refresh window sit below benign burst rates.
        if (threshold <= 1'300'000 && latency == 1 && fps == 0)
            status = 1; // would contradict the paper's FP critique
    }
    std::cout << "\nlow thresholds stop the attack inside the first "
                 "refresh window but alarm on benign hot rows; high "
                 "thresholds are quiet and miss the first window "
                 "(flips land before mitigation).  CTA needs "
                 "neither counters nor thresholds.\n";
    return status;
}
