/**
 * @file
 * Section 5 attack execution: runs the implemented attacks on
 * protected and unprotected machines, reporting outcome plus modeled
 * attack time, and prices the full-scale Algorithm 1 with the paper's
 * measured per-step costs (fill 184 ms, hammer 64 ms/row, check
 * 600 ns/PTE) for the real 8-32 GiB configurations.
 */

#include <iomanip>
#include <iostream>

#include "model/security_model.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::sim;
    using defense::DefenseKind;

    std::cout << "Executable attacks (256 MiB machine, Pf=1e-3)\n\n";
    std::cout << std::left << std::setw(26) << "attack"
              << std::setw(14) << "defense" << std::setw(18)
              << "outcome" << std::setw(14) << "passes"
              << std::setw(12) << "flips" << "modeled time\n";

    int status = 0;
    for (const DefenseKind defense :
         {DefenseKind::None, DefenseKind::Cta}) {
        for (const AttackKind kind :
             {AttackKind::ProjectZero, AttackKind::Drammer,
              AttackKind::Algorithm1}) {
            MachineConfig config;
            config.defense = defense;
            Machine machine(config);
            const attack::AttackResult result = machine.attack(kind);
            std::cout << std::setw(26) << attackName(kind)
                      << std::setw(14)
                      << defense::defenseName(defense)
                      << std::setw(18)
                      << attack::outcomeName(result.outcome)
                      << std::setw(14) << result.hammerPasses
                      << std::setw(12) << result.flipsInduced
                      << std::fixed << std::setprecision(2)
                      << static_cast<double>(result.attackTime) /
                             seconds
                      << " s\n";
            std::cout.unsetf(std::ios::fixed);
            const bool escalated =
                result.outcome == attack::Outcome::Escalated;
            if (defense == DefenseKind::None && !escalated)
                status = 1;
            if (defense == DefenseKind::Cta && escalated)
                status = 1;
        }
    }

    std::cout << "\nFull-scale Algorithm 1 pricing (paper's "
                 "measured step costs):\n";
    std::cout << std::left << std::setw(10) << "memory"
              << std::setw(10) << "PTP" << std::setw(14)
              << "per page (s)" << std::setw(14) << "worst (days)"
              << std::setw(14) << "avg (days)" << '\n';
    for (const std::uint64_t mem : {8 * GiB, 16 * GiB, 32 * GiB}) {
        for (const std::uint64_t ptp : {32 * MiB, 64 * MiB}) {
            model::SystemParams params;
            params.memBytes = mem;
            params.ptpBytes = ptp;
            const model::AttackTime time =
                model::expectedAttackTime(params);
            std::cout << std::setw(10)
                      << (std::to_string(mem / GiB) + "GB")
                      << std::setw(10)
                      << (std::to_string(ptp / MiB) + "MB")
                      << std::setprecision(4) << std::setw(14)
                      << time.perPageSeconds << std::setw(14)
                      << time.worstDays << std::setw(14)
                      << time.avgDays << '\n';
        }
    }
    std::cout << "\npaper: 19.08 s/page and 57.6 days for 8GB/32MB; "
                 "vs 20 seconds for the fastest published attack on "
                 "an unprotected machine.\n";
    return status;
}
