/**
 * @file
 * Section 5 attack execution: runs the implemented attacks on
 * protected and unprotected machines via one Campaign sweep,
 * reporting outcome plus modeled attack time, and prices the
 * full-scale Algorithm 1 with the paper's measured per-step costs
 * (fill 184 ms, hammer 64 ms/row, check 600 ns/PTE) for the real
 * 8-32 GiB configurations.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "model/security_model.hh"
#include "runtime/thread_pool.hh"
#include "sim/scenarios.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::sim;
    using defense::DefenseKind;

    // The shared attack-time preset: attack-major, matching the table
    // rows — each attack against the unprotected then the CTA machine.
    Campaign campaign = scenarios::attackTime();
    runtime::ThreadPool pool;
    const CampaignReport report = campaign.run(pool);

    std::cout << "Executable attacks (256 MiB machine, Pf=1e-3)\n\n";
    std::cout << std::left << std::setw(26) << "attack"
              << std::setw(14) << "defense" << std::setw(18)
              << "outcome" << std::setw(14) << "passes"
              << std::setw(12) << "flips" << "modeled time\n";

    int status = 0;
    for (const CellResult &cell : report.cells) {
        const DefenseKind defense = cell.cell.config.defense;
        std::cout << std::setw(26) << attackName(cell.cell.attack)
                  << std::setw(14) << defense::defenseName(defense)
                  << std::setw(18)
                  << attack::outcomeName(cell.result.outcome)
                  << std::setw(14) << cell.result.hammerPasses
                  << std::setw(12) << cell.result.flipsInduced
                  << std::fixed << std::setprecision(2)
                  << static_cast<double>(cell.result.attackTime) /
                         seconds
                  << " s\n";
        std::cout.unsetf(std::ios::fixed);
        const bool escalated =
            cell.result.outcome == attack::Outcome::Escalated;
        if (defense == DefenseKind::None && !escalated)
            status = 1;
        if (defense == DefenseKind::Cta && escalated)
            status = 1;
    }
    std::cout << "\nsweep: " << report.cells.size() << " cells, wall "
              << std::setprecision(3) << report.wallSeconds
              << " s on " << pool.size()
              << " workers (serial-equivalent "
              << report.cellSecondsTotal() << " s)\n";

    std::cout << "\nFull-scale Algorithm 1 pricing (paper's "
                 "measured step costs):\n";
    std::cout << std::left << std::setw(10) << "memory"
              << std::setw(10) << "PTP" << std::setw(14)
              << "per page (s)" << std::setw(14) << "worst (days)"
              << std::setw(14) << "avg (days)" << '\n';
    for (const auto &[mem, ptp] : scenarios::pricingGrid()) {
        model::SystemParams params;
        params.memBytes = mem;
        params.ptpBytes = ptp;
        const model::AttackTime time =
            model::expectedAttackTime(params);
        std::cout << std::setw(10)
                  << (std::to_string(mem / GiB) + "GB")
                  << std::setw(10)
                  << (std::to_string(ptp / MiB) + "MB")
                  << std::setprecision(4) << std::setw(14)
                  << time.perPageSeconds << std::setw(14)
                  << time.worstDays << std::setw(14)
                  << time.avgDays << '\n';
    }
    std::cout << "\npaper: 19.08 s/page and 57.6 days for 8GB/32MB; "
                 "vs 20 seconds for the fastest published attack on "
                 "an unprotected machine.\n";
    return status;
}
