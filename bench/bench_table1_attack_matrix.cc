/**
 * @file
 * Reproduces the Table 1 landscape as an executable matrix: every
 * implemented RowHammer attack class against every defense, printing
 * the outcome.  The paper's claim reads off the CTA columns: all
 * PTE-based privilege escalations end BLOCKED / NO-CORRUPTION, while
 * the baseline and the published bypass targets fall.
 *
 * The matrix is one sim::Campaign grid: every (attack, defense) cell
 * is an independent machine run as a thread-pool task, and the table
 * below renders from the campaign's result table.
 *
 * Usage: bench_table1_attack_matrix [--arch NAME] [--out <path>]
 *
 *   --arch   paging backend for every machine in the grid: one of the
 *            descriptor tokens from `attack_lab --list` ("x86_64",
 *            "aarch64/4k", "aarch64/16k", "aarch64/64k");
 *            default x86_64.
 *   --out    JSON report path.  One entry per cell, named
 *            "<attack>__<defense>", with value = flips induced,
 *            unit = outcome name, iterations = hammer passes — all
 *            deterministic given the seed, so check_bench.py's
 *            "table1" suite gates them on *exact* equality against
 *            the checked-in x86-64 baseline (BENCH_table1.json).
 *            Default: BENCH_table1.json for x86_64, else
 *            BENCH_table1_<granule>.json.
 */

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_report.hh"
#include "paging/arch.hh"
#include "runtime/thread_pool.hh"
#include "sim/scenarios.hh"

namespace {

using namespace ctamem;

/** The built-in descriptor whose `name` token is @p name, or null. */
const paging::Arch *
findArch(const std::string &name)
{
    for (const paging::Arch *arch : paging::kAllArches)
        if (name == arch->name)
            return arch;
    return nullptr;
}

/** "aarch64/16k" -> "aarch64_16k": token usable in a file name. */
std::string
fileToken(const std::string &name)
{
    std::string token = name;
    std::replace(token.begin(), token.end(), '/', '_');
    return token;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ctamem::sim;
    using defense::DefenseKind;

    const paging::Arch *arch = &paging::kX86_64;
    std::string out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--arch" && i + 1 < argc) {
            arch = findArch(argv[++i]);
            if (!arch) {
                std::cerr << "bench_table1: unknown arch "
                          << argv[i] << " (see attack_lab --list)\n";
                return 2;
            }
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--arch NAME] [--out <path>]\n";
            return 2;
        }
    }
    if (out.empty()) {
        out = arch == &paging::kX86_64
                  ? "BENCH_table1.json"
                  : "BENCH_table1_" + fileToken(arch->name) + ".json";
    }

    // The shared paper-default preset: one default-parameter machine
    // per defense (256 MiB, Pf=1e-3, the Drammer arena of 1024
    // pages), every attack, attack-major.  scenarios/
    // paper-default.json is the manifest twin of this grid; --arch
    // swaps the paging backend under the identical sweep.
    const std::vector<DefenseKind> defenses =
        scenarios::table1Defenses();
    const std::vector<AttackKind> attacks =
        scenarios::table1Attacks();
    std::vector<MachineConfig> configs = scenarios::table1Configs();
    for (MachineConfig &config : configs) {
        config.arch = arch->isa;
        config.granule = arch->granuleBytes();
    }
    Campaign campaign;
    campaign.addGrid(configs, attacks);
    runtime::ThreadPool pool;
    const CampaignReport report = campaign.run(pool);

    std::cout << "Attack x defense outcome matrix (256 MiB machines, "
                 "Pf=1e-3, seed 1234, arch "
              << arch->name << ")\n\n";
    std::cout << std::left << std::setw(26) << "attack \\ defense";
    for (DefenseKind defense : defenses)
        std::cout << std::setw(17) << defense::defenseName(defense);
    std::cout << '\n';

    BenchReport cells;
    bool cta_holds = true;
    std::size_t index = 0;
    for (AttackKind kind : attacks) {
        std::cout << std::setw(26) << attackName(kind);
        for (DefenseKind defense : defenses) {
            const CellResult &cell = report.cells.at(index++);
            std::string text =
                attack::outcomeName(cell.result.outcome);
            if (cell.anvilTriggered)
                text += "*";
            std::cout << std::setw(17) << text;
            cells.add(std::string(attackToken(kind)) + "__" +
                          defense::defenseToken(defense),
                      static_cast<double>(cell.result.flipsInduced),
                      text, cell.result.hammerPasses);
            if ((defense == DefenseKind::Cta ||
                 defense == DefenseKind::CtaRestricted) &&
                (cell.result.outcome == attack::Outcome::Escalated ||
                 cell.result.outcome ==
                     attack::Outcome::SelfReference)) {
                cta_holds = false;
            }
        }
        std::cout << '\n';
    }

    std::cout << "\n(*) ANVIL detector raised an alarm during the "
                 "attack.\nKERNEL-CORRUPTED = isolation broken but no "
                 "PTE self-reference (CTA tolerates it by design: "
                 "monotonic pointers cannot self-reference).\n";
    std::cout << "\nsweep: " << report.cells.size() << " cells on "
              << pool.size() << " workers, wall "
              << std::setprecision(3) << report.wallSeconds
              << " s (serial-equivalent "
              << report.cellSecondsTotal() << " s, speedup "
              << report.cellSecondsTotal() /
                     std::max(report.wallSeconds, 1e-9)
              << "x)\n";
    std::cout << "\nCTA columns free of escalation/self-reference: "
              << (cta_holds ? "YES" : "NO") << '\n';

    if (!cells.writeFile(out)) {
        std::cerr << "bench_table1: cannot write " << out << '\n';
        return 1;
    }
    std::cout << "report: " << out << '\n';
    return cta_holds ? 0 : 1;
}
