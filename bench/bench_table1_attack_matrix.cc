/**
 * @file
 * Reproduces the Table 1 landscape as an executable matrix: every
 * implemented RowHammer attack class against every defense, printing
 * the outcome.  The paper's claim reads off the CTA columns: all
 * PTE-based privilege escalations end BLOCKED / NO-CORRUPTION, while
 * the baseline and the published bypass targets fall.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "sim/machine.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::sim;
    using defense::DefenseKind;

    const std::vector<DefenseKind> defenses{
        DefenseKind::None,       DefenseKind::RefreshBoost,
        DefenseKind::Para,       DefenseKind::Anvil,
        DefenseKind::Catt,       DefenseKind::Zebram,
        DefenseKind::Cta,        DefenseKind::CtaRestricted,
    };
    const std::vector<AttackKind> attacks{
        AttackKind::ProjectZero,       AttackKind::Drammer,
        AttackKind::Algorithm1,        AttackKind::RemapBypass,
        AttackKind::DoubleOwnedBypass,
    };

    std::cout << "Attack x defense outcome matrix (256 MiB machines, "
                 "Pf=1e-3, seed 1234)\n\n";
    std::cout << std::left << std::setw(26) << "attack \\ defense";
    for (DefenseKind defense : defenses)
        std::cout << std::setw(17) << defense::defenseName(defense);
    std::cout << '\n';

    bool cta_holds = true;
    for (AttackKind kind : attacks) {
        std::cout << std::setw(26) << attackName(kind);
        for (DefenseKind defense : defenses) {
            MachineConfig config;
            config.defense = defense;
            // The Drammer templating phase is the slow part; shrink
            // its arena via the machine default (1024 pages).
            Machine machine(config);
            const attack::AttackResult result = machine.attack(kind);
            const bool anvil_flag =
                machine.anvil() && machine.anvil()->triggered();
            std::string cell = attack::outcomeName(result.outcome);
            if (anvil_flag)
                cell += "*";
            std::cout << std::setw(17) << cell;
            if ((defense == DefenseKind::Cta ||
                 defense == DefenseKind::CtaRestricted) &&
                (result.outcome == attack::Outcome::Escalated ||
                 result.outcome == attack::Outcome::SelfReference)) {
                cta_holds = false;
            }
        }
        std::cout << '\n';
    }

    std::cout << "\n(*) ANVIL detector raised an alarm during the "
                 "attack.\nKERNEL-CORRUPTED = isolation broken but no "
                 "PTE self-reference (CTA tolerates it by design: "
                 "monotonic pointers cannot self-reference).\n";
    std::cout << "\nCTA columns free of escalation/self-reference: "
              << (cta_holds ? "YES" : "NO") << '\n';
    return cta_holds ? 0 : 1;
}
