/**
 * @file
 * Reproduces the Table 1 landscape as an executable matrix: every
 * implemented RowHammer attack class against every defense, printing
 * the outcome.  The paper's claim reads off the CTA columns: all
 * PTE-based privilege escalations end BLOCKED / NO-CORRUPTION, while
 * the baseline and the published bypass targets fall.
 *
 * The matrix is one sim::Campaign grid: every (attack, defense) cell
 * is an independent machine run as a thread-pool task, and the table
 * below renders from the campaign's result table.
 */

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "runtime/thread_pool.hh"
#include "sim/scenarios.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::sim;
    using defense::DefenseKind;

    // The shared paper-default preset: one default-parameter machine
    // per defense (256 MiB, Pf=1e-3, the Drammer arena of 1024
    // pages), every attack, attack-major.  scenarios/
    // paper-default.json is the manifest twin of this grid.
    const std::vector<DefenseKind> defenses =
        scenarios::table1Defenses();
    const std::vector<AttackKind> attacks =
        scenarios::table1Attacks();
    Campaign campaign = scenarios::paperDefault();
    runtime::ThreadPool pool;
    const CampaignReport report = campaign.run(pool);

    std::cout << "Attack x defense outcome matrix (256 MiB machines, "
                 "Pf=1e-3, seed 1234)\n\n";
    std::cout << std::left << std::setw(26) << "attack \\ defense";
    for (DefenseKind defense : defenses)
        std::cout << std::setw(17) << defense::defenseName(defense);
    std::cout << '\n';

    bool cta_holds = true;
    std::size_t index = 0;
    for (AttackKind kind : attacks) {
        std::cout << std::setw(26) << attackName(kind);
        for (DefenseKind defense : defenses) {
            const CellResult &cell = report.cells.at(index++);
            std::string text =
                attack::outcomeName(cell.result.outcome);
            if (cell.anvilTriggered)
                text += "*";
            std::cout << std::setw(17) << text;
            if ((defense == DefenseKind::Cta ||
                 defense == DefenseKind::CtaRestricted) &&
                (cell.result.outcome == attack::Outcome::Escalated ||
                 cell.result.outcome ==
                     attack::Outcome::SelfReference)) {
                cta_holds = false;
            }
        }
        std::cout << '\n';
    }

    std::cout << "\n(*) ANVIL detector raised an alarm during the "
                 "attack.\nKERNEL-CORRUPTED = isolation broken but no "
                 "PTE self-reference (CTA tolerates it by design: "
                 "monotonic pointers cannot self-reference).\n";
    std::cout << "\nsweep: " << report.cells.size() << " cells on "
              << pool.size() << " workers, wall "
              << std::setprecision(3) << report.wallSeconds
              << " s (serial-equivalent "
              << report.cellSecondsTotal() << " s, speedup "
              << report.cellSecondsTotal() /
                     std::max(report.wallSeconds, 1e-9)
              << "x)\n";
    std::cout << "\nCTA columns free of escalation/self-reference: "
              << (cta_holds ? "YES" : "NO") << '\n';
    return cta_holds ? 0 : 1;
}
