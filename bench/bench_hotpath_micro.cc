/**
 * @file
 * Hot-path microbenchmarks: page-walk rate (TLB off/on), raw DRAM
 * store throughput, and a small Campaign sweep — the three layers the
 * simulated-access fast path crosses.  Emits BENCH_hotpath.json (see
 * DESIGN.md "Hot-path architecture") so successive PRs can track the
 * perf trajectory.
 *
 * Usage: bench_hotpath_micro [--smoke] [--out <path>]
 *   --smoke  tiny iteration counts (the bench-smoke ctest entry; only
 *            proves the bench still runs, numbers are meaningless)
 *   --out    JSON report path (default: BENCH_hotpath.json)
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_report.hh"
#include "kernel/kernel.hh"
#include "model/montecarlo.hh"
#include "sim/campaign.hh"

namespace {

using namespace ctamem;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** A kernel with one process and @p pages resident anonymous pages. */
struct WalkFixture
{
    kernel::Kernel kernel;
    int pid;
    VAddr base;
    std::uint64_t pages;

    explicit WalkFixture(std::uint64_t pages_)
        : kernel(makeConfig()), pid(kernel.createProcess("bench")),
          pages(pages_)
    {
        base = kernel.mmapAnon(pid, pages * pageSize,
                               paging::PageFlags{true, true});
        if (base == 0) {
            std::cerr << "bench: mmap failed\n";
            std::exit(1);
        }
        for (std::uint64_t i = 0; i < pages; ++i) {
            if (!kernel.writeUser(pid, base + i * pageSize, i + 1)) {
                std::cerr << "bench: populate failed\n";
                std::exit(1);
            }
        }
    }

    static kernel::KernelConfig
    makeConfig()
    {
        kernel::KernelConfig config;
        config.dram.capacity = 64 * MiB;
        config.dram.banks = 1;
        return config;
    }
};

/** Full 4-level walks, no TLB: the walker + DRAM-read fast path. */
double
benchWalksTlbOff(WalkFixture &fx, std::uint64_t iterations)
{
    paging::PageWalker &walker = fx.kernel.mmu().walker();
    const Pfn root = fx.kernel.process(fx.pid).rootPfn;
    std::uint64_t sink = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
        const VAddr vaddr = fx.base + (i % fx.pages) * pageSize;
        const paging::WalkResult result = walker.walk(
            root, vaddr, paging::AccessType::Read,
            paging::Privilege::User);
        sink += result.phys;
    }
    const double wall = secondsSince(start);
    if (sink == 0)
        std::cerr << "bench: impossible sink\n";
    return static_cast<double>(iterations) / wall;
}

/** MMU translations over a TLB-resident working set: the hit path. */
double
benchWalksTlbOn(WalkFixture &fx, std::uint64_t iterations)
{
    paging::Mmu &mmu = fx.kernel.mmu();
    const Pfn root = fx.kernel.process(fx.pid).rootPfn;
    // Working set well under the 64-entry TLB: almost pure hits.
    const std::uint64_t working_set = std::min<std::uint64_t>(
        fx.pages, 32);
    std::uint64_t sink = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
        const VAddr vaddr = fx.base + (i % working_set) * pageSize;
        sink += mmu.translate(root, vaddr, paging::AccessType::Read,
                              paging::Privilege::User).phys;
    }
    const double wall = secondsSince(start);
    if (sink == 0)
        std::cerr << "bench: impossible sink\n";
    return static_cast<double>(iterations) / wall;
}

/** Sequential 64-bit stores into the sparse store, in MiB/s. */
double
benchDramWrite(dram::DramModule &module, std::uint64_t words,
               std::uint64_t passes)
{
    const Addr base = 8 * MiB;
    const auto start = Clock::now();
    for (std::uint64_t pass = 0; pass < passes; ++pass) {
        for (std::uint64_t w = 0; w < words; ++w)
            module.writeU64(base + w * 8, w ^ pass);
    }
    const double wall = secondsSince(start);
    return static_cast<double>(words * passes * 8) / wall /
           static_cast<double>(MiB);
}

/** Sequential 64-bit loads from the sparse store, in MiB/s. */
double
benchDramRead(dram::DramModule &module, std::uint64_t words,
              std::uint64_t passes)
{
    const Addr base = 8 * MiB;
    std::uint64_t sink = 0;
    const auto start = Clock::now();
    for (std::uint64_t pass = 0; pass < passes; ++pass) {
        for (std::uint64_t w = 0; w < words; ++w)
            sink += module.readU64(base + w * 8);
    }
    const double wall = secondsSince(start);
    if (sink == 0 && words > 1)
        std::cerr << "bench: impossible sink\n";
    return static_cast<double>(words * passes * 8) / wall /
           static_cast<double>(MiB);
}

/** Monte-Carlo trials/s of one sampler on the boosted headline spec. */
double
benchMcTrials(model::Sampler sampler, std::uint64_t trials)
{
    model::McSpec spec;
    spec.params.errors.pf = 0.05;
    spec.params.errors.p01True = 0.3;
    spec.params.errors.p10True = 0.7;
    spec.sampler = sampler;
    spec.zeros = 1;
    spec.trials = trials;
    const auto start = Clock::now();
    const model::McEstimate estimate = model::runMc(spec);
    const double wall = secondsSince(start);
    if (estimate.trials != trials)
        std::cerr << "bench: trial count mismatch\n";
    return static_cast<double>(trials) / wall;
}

/** Wall-clock of a small end-to-end Campaign sweep. */
double
benchCampaign(bool smoke)
{
    sim::MachineConfig none;
    none.memBytes = 64 * MiB;
    none.ptpBytes = 2 * MiB;
    sim::MachineConfig cta = none;
    cta.defense = defense::DefenseKind::CtaRestricted;

    sim::Campaign campaign;
    campaign.add(none, sim::AttackKind::ProjectZero);
    if (!smoke) {
        campaign.add(cta, sim::AttackKind::ProjectZero);
        campaign.add(none, sim::AttackKind::Drammer);
        campaign.add(cta, sim::AttackKind::Drammer);
    }
    return campaign.run().wallSeconds;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_hotpath.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--smoke] [--out <path>]\n";
            return 2;
        }
    }

    const std::uint64_t walk_iters = smoke ? 20'000 : 2'000'000;
    const std::uint64_t hit_iters = smoke ? 20'000 : 4'000'000;
    const std::uint64_t dram_words = smoke ? 64'000 : 512 * 1024;
    const std::uint64_t dram_passes = smoke ? 1 : 8;

    BenchReport report;

    WalkFixture fx(/*pages=*/256);
    const double walks_off = benchWalksTlbOff(fx, walk_iters);
    report.add("walk_tlb_off", walks_off, "walks/s", walk_iters);
    std::cout << "walk_tlb_off:   " << walks_off << " walks/s\n";

    const double walks_on = benchWalksTlbOn(fx, hit_iters);
    report.add("walk_tlb_on", walks_on, "translations/s", hit_iters);
    std::cout << "walk_tlb_on:    " << walks_on
              << " translations/s\n";

    dram::DramConfig dram_config;
    dram_config.capacity = 64 * MiB;
    dram_config.banks = 1;
    dram::DramModule module(dram_config);
    const double wr = benchDramWrite(module, dram_words, dram_passes);
    report.add("dram_write", wr, "MiB/s", dram_words * dram_passes);
    std::cout << "dram_write:     " << wr << " MiB/s\n";

    const double rd = benchDramRead(module, dram_words, dram_passes);
    report.add("dram_read", rd, "MiB/s", dram_words * dram_passes);
    std::cout << "dram_read:      " << rd << " MiB/s\n";

    const std::uint64_t mc_scalar_trials = smoke ? 20'000 : 2'000'000;
    const std::uint64_t mc_batched_trials = smoke ? 64'000 : 8'000'000;
    const double mc_scalar =
        benchMcTrials(model::Sampler::FixedZeros, mc_scalar_trials);
    report.add("mc_trials_per_s_scalar", mc_scalar, "trials/s",
               mc_scalar_trials);
    std::cout << "mc_trials_per_s_scalar: " << mc_scalar
              << " trials/s\n";

    const double mc_batched = benchMcTrials(
        model::Sampler::FixedZerosBatched, mc_batched_trials);
    report.add("mc_trials_per_s", mc_batched, "trials/s",
               mc_batched_trials);
    std::cout << "mc_trials_per_s: " << mc_batched
              << " trials/s (batched/scalar "
              << mc_batched / mc_scalar << "x)\n";

    const double sweep = benchCampaign(smoke);
    report.add("campaign_sweep", sweep, "s", smoke ? 1 : 4);
    std::cout << "campaign_sweep: " << sweep << " s\n";

    if (!report.writeFile(out)) {
        std::cerr << "bench: cannot write " << out << '\n';
        return 1;
    }
    std::cout << "report: " << out << '\n';
    return 0;
}
