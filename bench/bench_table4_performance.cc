/**
 * @file
 * Reproduces Table 4: per-benchmark performance delta with CTA on
 * versus off, for the SPEC CPU2006 and Phoronix suites, on an
 * "8 GiB-class" and a "128 GiB-class" simulated machine (scaled to
 * 256 MiB / 1 GiB with proportional ZONE_PTPs — the paper's claim is
 * about *relative* footprints: page tables fit the zone, so the fast
 * path never changes).
 */

#include <iostream>

#include "sim/perf_harness.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::sim;
    using defense::DefenseKind;

    struct SystemCase
    {
        const char *label;
        MachineConfig config;
    };
    MachineConfig small;
    small.memBytes = 256 * MiB;
    small.ptpBytes = 2 * MiB; // 1/128 of memory, like 64MB of 8GB
    MachineConfig large;
    large.memBytes = 1 * GiB;
    large.ptpBytes = 8 * MiB;
    const SystemCase systems[] = {
        {"8GB-class system (scaled: 256 MiB, 2 MiB ZONE_PTP)", small},
        {"128GB-class system (scaled: 1 GiB, 8 MiB ZONE_PTP)", large},
    };

    int status = 0;
    for (const SystemCase &system : systems) {
        for (const auto &suite :
             {spec2006Suite(), phoronixSuite()}) {
            PtFootprint footprint;
            const std::vector<PerfRow> rows =
                comparePolicies(system.config, suite,
                                DefenseKind::None, DefenseKind::Cta,
                                &footprint);
            printPerfTable(std::cout,
                           std::string("Table 4 - ") + system.label +
                               " - " + rows.front().suite,
                           rows);
            std::cout << "peak page-table footprint: "
                      << footprint.peakTableBytes / KiB
                      << " KiB of "
                      << footprint.ptpCapacityBytes / KiB
                      << " KiB ZONE_PTP ("
                      << footprint.pteAllocFailures
                      << " allocation failures)\n\n";
            for (const PerfRow &row : rows) {
                if (row.deltaPct() < -1.0 || row.deltaPct() > 1.0)
                    status = 1; // overhead where the paper has none
            }
            if (footprint.pteAllocFailures != 0)
                status = 1;
        }
    }
    std::cout << "paper reference: mean deltas -0.07%/-0.08% (8GB) "
                 "and 0.04%/0.25% (128GB) — all within measurement "
                 "noise of zero.\n";
    return status;
}
