/**
 * @file
 * Cold-boot guard characterization (Section 8): across temperatures
 * and off-times, when does the guard proceed vs halt, and does its
 * decision always bound DRAM remanence?  (Safe = it never proceeds
 * while any sampled secret cell still holds charge.)
 */

#include <iomanip>
#include <iostream>

#include "common/rng.hh"
#include "dram/module.hh"
#include "ext/coldboot.hh"

namespace {

using namespace ctamem;

struct Cell
{
    Addr addr;
    unsigned bit;
};

} // namespace

int
main()
{
    std::cout << "Cold-boot guard decision windows (8 canaries from "
                 "64 KiB profile)\n\n";
    std::cout << std::left << std::setw(12) << "temp (C)"
              << std::setw(14) << "off-time (s)" << std::setw(12)
              << "decision" << std::setw(20) << "secret bits alive"
              << std::setw(10) << "safe" << '\n';

    int status = 0;
    for (const double celsius : {20.0, -10.0, -40.0}) {
        for (const double off_sec : {0.1, 1.0, 10.0, 60.0, 600.0,
                                     3600.0}) {
            dram::DramConfig config;
            config.capacity = 64 * MiB;
            config.rowBytes = 128 * KiB;
            config.banks = 1;
            config.seed = 15;
            dram::DramModule module(config);

            ext::ColdBootGuard guard =
                ext::ColdBootGuard::withProfiledCanaries(
                    module, 0, 64 * KiB, 8);

            // "Secrets": 4096 charged bits spread over a distant row.
            Rng rng(3);
            std::vector<Cell> secrets;
            for (int i = 0; i < 4096; ++i) {
                const Cell cell{2 * 128 * KiB + rng.below(64 * KiB),
                                static_cast<unsigned>(rng.below(8))};
                module.store().writeBit(
                    cell.addr, cell.bit,
                    dram::chargedBit(module.cellTypeAt(cell.addr)));
                secrets.push_back(cell);
            }
            guard.arm();
            module.powerOff(
                static_cast<SimTime>(off_sec *
                                     static_cast<double>(seconds)),
                celsius);

            const ext::BootDecision decision = guard.check();
            std::uint64_t alive = 0;
            for (const Cell &cell : secrets) {
                if (module.store().readBit(cell.addr, cell.bit) ==
                    dram::chargedBit(module.cellTypeAt(cell.addr))) {
                    ++alive;
                }
            }
            // Safety: never proceed while remanence persists.
            const bool safe =
                decision == ext::BootDecision::Halt || alive == 0;
            if (!safe)
                status = 1;
            std::cout << std::left << std::setw(12) << celsius
                      << std::setw(14) << off_sec << std::setw(12)
                      << (decision == ext::BootDecision::Proceed ?
                              "PROCEED" :
                              "HALT")
                      << std::setw(20) << alive << std::setw(10)
                      << (safe ? "yes" : "NO") << '\n';
        }
    }
    std::cout << "\nthe guard is conservative: it proceeds only "
                 "after even the longest-retention canaries decayed, "
                 "which upper-bounds every other cell's remanence at "
                 "the same temperature.\n";
    return status;
}
