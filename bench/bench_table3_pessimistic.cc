/**
 * @file
 * Reproduces Table 3: the pessimistic technology-scaling scenario
 * (Pf = 5e-4, P(0->1) = 0.5%) over the same sweep as Table 2.
 */

#include <iostream>

#include "model/tables.hh"

int
main()
{
    using namespace ctamem::model;

    printTable(std::cout,
               "Table 3: pessimistic scaling (Pf=5e-4, P01=0.5%)",
               makeTable3(), paperTable3());

    std::cout << "\nNote: restricted attack times equal Table 2's — "
                 "conditioned on the rare vulnerable system having "
                 "exactly one exploitable PTE, the expected search "
                 "covers half the pages regardless of Pf.\n";
    return 0;
}
