/**
 * @file
 * Reproduces Table 3: the pessimistic technology-scaling scenario
 * (Pf = 5e-4, P(0->1) = 0.5%) over the same sweep as Table 2, with a
 * thread-pool Monte-Carlo cross-check of the scaling direction: the
 * pessimistic parameters must raise the estimated exploitability of
 * every sweep cell.
 */

#include <iostream>
#include <vector>

#include "model/montecarlo.hh"
#include "model/tables.hh"
#include "runtime/thread_pool.hh"

int
main()
{
    using namespace ctamem;
    using namespace ctamem::model;

    printTable(std::cout,
               "Table 3: pessimistic scaling (Pf=5e-4, P01=0.5%)",
               makeTable3(), paperTable3());

    std::cout << "\nNote: restricted attack times equal Table 2's — "
                 "conditioned on the rare vulnerable system having "
                 "exactly one exploitable PTE, the expected search "
                 "covers half the pages regardless of Pf.\n";

    // Monte-Carlo scaling check on the pool: for each sweep cell,
    // Table-3's boosted-Pf estimate must exceed Table-2's.
    runtime::ThreadPool pool;
    bool scaling_holds = true;
    std::cout << "\nMC scaling cross-check (boosted params, "
              << pool.size() << " workers):\n";
    for (const TableRow &row : makeTable3()) {
        McSpec base;
        base.params.memBytes = row.memBytes;
        base.params.ptpBytes = row.ptpBytes;
        base.params.errors.pf = 0.02;
        base.params.errors.p01True = 0.3;
        base.params.errors.p10True = 0.7;
        base.zeros = row.restricted ? 2 : 1;
        base.trials = 400'000;

        McSpec pessimistic = base;
        pessimistic.params.errors.pf = 0.1; // the 5x Pf scaling

        const McEstimate table2 = runMc(base, pool);
        const McEstimate table3 = runMc(pessimistic, pool);
        const bool rises = table3.mean > table2.mean;
        if (!rises)
            scaling_holds = false;
        std::cout << "  " << row.memBytes / GiB << "GB/"
                  << row.ptpBytes / MiB << "MB"
                  << (row.restricted ? " restricted  " : " open        ")
                  << "P(exploitable) " << table2.mean << " -> "
                  << table3.mean << (rises ? "" : "  (NOT RISING)")
                  << '\n';
    }
    std::cout << "pessimistic scaling raises every cell: "
              << (scaling_holds ? "YES" : "NO") << '\n';
    return scaling_holds ? 0 : 1;
}
