/**
 * @file
 * Reproduces Table 3: the pessimistic technology-scaling scenario
 * (Pf = 5e-4, P(0->1) = 0.5%) over the same sweep as Table 2, with a
 * thread-pool Monte-Carlo cross-check of the scaling direction: the
 * pessimistic parameters must raise the estimated exploitability of
 * every sweep cell.  `--batched` opts the cross-check into the
 * bit-sliced batched kernel.
 */

#include <iostream>
#include <string>
#include <vector>

#include "model/montecarlo.hh"
#include "model/tables.hh"
#include "runtime/thread_pool.hh"

int
main(int argc, char **argv)
{
    using namespace ctamem;
    using namespace ctamem::model;

    bool batched = false;
    std::uint64_t granule = 4 * KiB;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--batched") {
            batched = true;
        } else if (std::string(argv[i]) == "--granule" &&
                   i + 1 < argc) {
            granule = std::stoull(argv[++i]) * KiB;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--batched] [--granule KiB]\n";
            return 2;
        }
    }
    const Sampler sampler =
        batched ? Sampler::FixedZerosBatched : Sampler::FixedZeros;

    // Paper references apply to the 4 KiB x86-64 granule only.
    printTable(std::cout,
               "Table 3: pessimistic scaling (Pf=5e-4, P01=0.5%, "
               "granule " +
                   std::to_string(granule / KiB) + " KiB)",
               makeTable3(granule),
               granule == 4 * KiB
                   ? paperTable3()
                   : std::vector<PaperReference>{});

    std::cout << "\nNote: restricted attack times equal Table 2's — "
                 "conditioned on the rare vulnerable system having "
                 "exactly one exploitable PTE, the expected search "
                 "covers half the pages regardless of Pf.\n";

    // Monte-Carlo scaling check on the pool: for each sweep cell,
    // Table-3's boosted-Pf estimate must exceed Table-2's.
    runtime::ThreadPool pool;
    bool scaling_holds = true;
    std::cout << "\nMC scaling cross-check (boosted params, "
              << pool.size() << " workers):\n";
    const std::vector<TableRow> rows = makeTable3();
    const std::vector<McSpec> base_specs =
        mcSweepSpecs(rows, 0.02, sampler, 400'000);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const TableRow &row = rows[i];
        const McSpec &base = base_specs[i];
        McSpec pessimistic = base;
        pessimistic.params.errors.pf = 0.1; // the 5x Pf scaling

        const McEstimate table2 = runMc(base, pool);
        const McEstimate table3 = runMc(pessimistic, pool);
        const bool rises = table3.mean > table2.mean;
        if (!rises)
            scaling_holds = false;
        std::cout << "  " << row.memBytes / GiB << "GB/"
                  << row.ptpBytes / MiB << "MB"
                  << (row.restricted ? " restricted  " : " open        ")
                  << "P(exploitable) " << table2.mean << " -> "
                  << table3.mean << (rises ? "" : "  (NOT RISING)")
                  << '\n';
    }
    std::cout << "pessimistic scaling raises every cell: "
              << (scaling_holds ? "YES" : "NO") << '\n';
    return scaling_holds ? 0 : 1;
}
