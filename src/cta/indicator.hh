/**
 * @file
 * PTP-indicator arithmetic.
 *
 * The PTP indicator of a physical address is the set of n top address
 * bits that must all be '1' for the address to lie in ZONE_PTP, where
 * n = log2(memory size / ZONE_PTP size).  The security analysis of
 * Section 5 is entirely a statement about how many indicator bits an
 * attacker must flip upward — this class is the shared vocabulary
 * between the zone builder, the allocator restriction, and the
 * analytic model.
 */

#ifndef CTAMEM_CTA_INDICATOR_HH
#define CTAMEM_CTA_INDICATOR_HH

#include <cstdint>

#include "common/bitops.hh"
#include "common/types.hh"

namespace ctamem::cta {

/** The n-bit PTP indicator of a machine configuration. */
class PtpIndicator
{
  public:
    /**
     * @param mem_bytes physical memory size (power of two)
     * @param ptp_bytes ZONE_PTP size (power of two dividing mem_bytes)
     */
    PtpIndicator(std::uint64_t mem_bytes, std::uint64_t ptp_bytes);

    /** Number of indicator bits n. */
    unsigned bits() const { return bits_; }

    /** Lowest address bit position belonging to the indicator. */
    unsigned shift() const { return shift_; }

    /** Indicator field value of @p addr. */
    std::uint64_t
    value(Addr addr) const
    {
        return ctamem::bits(addr, shift_ + bits_ - 1, shift_);
    }

    /** Number of '0' bits in the indicator of @p addr. */
    unsigned
    zeros(Addr addr) const
    {
        return bits_ - popcount(value(addr));
    }

    /** True iff the indicator of @p addr is all-ones (ZONE_PTP). */
    bool
    allOnes(Addr addr) const
    {
        return value(addr) == (bits_ >= 64 ? ~0ULL :
                               (1ULL << bits_) - 1);
    }

    /**
     * The "ideal" low water mark: the base of the top region whose
     * indicator is all-ones.
     */
    Addr
    regionBase() const
    {
        return ((1ULL << bits_) - 1) << shift_;
    }

    /** Bytes per indicator-distinguished region. */
    std::uint64_t
    regionBytes() const
    {
        return 1ULL << shift_;
    }

  private:
    unsigned bits_;
    unsigned shift_;
};

} // namespace ctamem::cta

#endif // CTAMEM_CTA_INDICATOR_HH
