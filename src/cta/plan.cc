#include "cta/plan.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/log.hh"
#include "mm/phys_mem.hh"

namespace ctamem::cta {

using mm::FrameSpan;
using mm::ZoneId;
using mm::ZoneSpec;

std::vector<FrameSpan>
subtractSpans(const std::vector<FrameSpan> &from,
              const std::vector<FrameSpan> &holes)
{
    std::vector<FrameSpan> result = from;
    for (const FrameSpan &hole : holes) {
        std::vector<FrameSpan> next;
        for (const FrameSpan &span : result) {
            const Pfn lo = std::max(span.basePfn, hole.basePfn);
            const Pfn hi = std::min(span.endPfn(), hole.endPfn());
            if (lo >= hi) {
                next.push_back(span); // no overlap
                continue;
            }
            if (span.basePfn < lo)
                next.push_back(FrameSpan{span.basePfn,
                                         lo - span.basePfn});
            if (hi < span.endPfn())
                next.push_back(FrameSpan{hi, span.endPfn() - hi});
        }
        result = std::move(next);
    }
    std::erase_if(result,
                  [](const FrameSpan &span) { return span.frames == 0; });
    return result;
}

CtaPlan
buildCtaPlan(dram::DramModule &module, const CtaConfig &config)
{
    CtaPlan plan;
    plan.ptp = std::make_unique<PtpZone>(module, config);
    const Addr lwm = plan.ptp->lowWaterMark();

    // Standard zones stop at the low water mark (Rule 2: nothing but
    // page tables above it — the region above simply is not handed to
    // the general allocator).
    plan.physSpecs = mm::standardZoneSpecs(
        module.geometry().capacity(), lwm);

    if (config.minIndicatorZeros == 0)
        return plan;

    // Reserve every below-LWM region whose indicator has fewer than
    // minIndicatorZeros zeros for the kernel / trusted processes.
    const PtpIndicator &ind = plan.ptp->indicator();
    std::vector<FrameSpan> rsv;
    const std::uint64_t regions = 1ULL << ind.bits();
    const std::uint64_t region_frames = ind.regionBytes() / pageSize;
    const Pfn lwm_pfn = addrToPfn(lwm);
    for (std::uint64_t value = 0; value < regions; ++value) {
        const unsigned zero_bits =
            ind.bits() - popcount(value);
        if (zero_bits >= config.minIndicatorZeros)
            continue;
        FrameSpan span{value * region_frames, region_frames};
        // Clip to below the low water mark (the all-ones region and
        // any region tail above LWM belong to ZONE_PTP or is waste).
        if (span.basePfn >= lwm_pfn)
            continue;
        span.frames = std::min(span.frames, lwm_pfn - span.basePfn);
        rsv.push_back(span);
    }

    if (!rsv.empty()) {
        for (ZoneSpec &spec : plan.physSpecs)
            spec.spans = subtractSpans(spec.spans, rsv);
        std::erase_if(plan.physSpecs, [](const ZoneSpec &spec) {
            return spec.spans.empty();
        });
        plan.physSpecs.push_back(ZoneSpec{ZoneId::KernelRsv, rsv});
    }
    return plan;
}

} // namespace ctamem::cta
