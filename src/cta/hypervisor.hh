/**
 * @file
 * Section 7 virtual-machine support.
 *
 * The hypervisor reserves ZONE_HYPERVISOR — the highest true-cell
 * region of the module — and hands each guest OS a disjoint slice to
 * use as its ZONE_PTP.  All regular guest data is served from below
 * the zone, so the No Self-Reference theorem applies *globally*: no
 * corrupted pointer in any guest's page tables can reach any page
 * table of the same or another VM.
 */

#ifndef CTAMEM_CTA_HYPERVISOR_HH
#define CTAMEM_CTA_HYPERVISOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/module.hh"
#include "mm/zone.hh"

namespace ctamem::cta {

/** The ZONE_PTP slice assigned to one guest. */
struct GuestZone
{
    int guestId;
    std::vector<mm::FrameSpan> spans; //!< true-cell frames, top-down
    std::uint64_t bytes;

    /** Lowest physical address of the slice. */
    Addr lowestAddr() const;
};

/** Owns ZONE_HYPERVISOR and parcels it out to guests. */
class Hypervisor
{
  public:
    /**
     * Reserve @p zone_bytes of true-cell memory from the top of
     * @p module for guest page-table slices.
     * @throws FatalError when the module cannot supply it.
     */
    Hypervisor(dram::DramModule &module, std::uint64_t zone_bytes);

    /** Base of ZONE_HYPERVISOR: every guest's data low water mark. */
    Addr zoneBase() const { return zoneBase_; }

    /** Anti-cell bytes skipped while reserving (capacity cost). */
    std::uint64_t skippedAntiBytes() const { return skippedAnti_; }

    /** True-cell bytes not yet assigned. */
    std::uint64_t remainingBytes() const { return remaining_; }

    /**
     * Assign @p bytes of the zone to a new guest (row-granular).
     * Slices are carved top-down, so earlier guests sit higher.
     * @throws FatalError when the zone is exhausted.
     */
    GuestZone assignGuestZone(std::uint64_t bytes);

    /** All assignments so far. */
    const std::vector<GuestZone> &guests() const { return guests_; }

    /**
     * Cross-VM audit: true iff every assigned slice lies fully above
     * the zone base, in true-cells, and no two slices overlap.
     */
    bool auditIsolation() const;

  private:
    dram::DramModule &module_;
    Addr zoneBase_ = 0;
    std::uint64_t skippedAnti_ = 0;
    std::uint64_t remaining_ = 0;
    /** Unassigned true-cell spans, ordered top of memory first. */
    std::vector<mm::FrameSpan> freeSpans_;
    std::vector<GuestZone> guests_;
    int nextGuestId_ = 1;
};

} // namespace ctamem::cta

#endif // CTAMEM_CTA_HYPERVISOR_HH
