/**
 * @file
 * ZONE_PTP: the true-cell page-table zone above the low water mark.
 *
 * The builder walks DRAM rows downward from the top of physical
 * memory, collecting true-cell rows into sub-zones and skipping
 * anti-cell stripes (Figure 8 of the paper), until the configured
 * amount of true-cell memory is gathered.  The lowest collected
 * address is the low water mark; skipped anti-cell bytes are the
 * §6.2 capacity loss.
 *
 * With multi-level zoning (Section 7) the collected frames are
 * partitioned per paging level, higher levels at higher physical
 * addresses, and — optionally — candidate frames whose PS-bit cells
 * can flip '1'->'0' are screened out of the level>=2 partitions.
 */

#ifndef CTAMEM_CTA_PTP_ZONE_HH
#define CTAMEM_CTA_PTP_ZONE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cta/config.hh"
#include "cta/indicator.hh"
#include "dram/module.hh"
#include "mm/buddy.hh"
#include "mm/zone.hh"

namespace ctamem::cta {

/**
 * Materialized result of the ZONE_PTP layout scan: everything the
 * builder derives from the module's cell map, in plain data form.
 * Snapshots carry one of these so a restored machine can rebuild the
 * zone without re-walking rows or re-screening PS-bit cells — the
 * expensive part of a CTA boot.
 */
struct PtpLayout
{
    Addr lowWaterMark = 0;
    std::uint64_t trueBytes = 0;
    std::uint64_t skippedAntiBytes = 0;
    std::uint64_t screenedFrames = 0;
    bool multiLevel = false;
    std::vector<mm::FrameSpan> spans;
    std::array<std::vector<mm::FrameSpan>, 5> levelSpans;

    bool operator==(const PtpLayout &) const = default;
};

/** The page-table zone and its allocator. */
class PtpZone
{
  public:
    /**
     * Build the zone from @p module's cell layout.
     * @throws FatalError when the module cannot supply the requested
     *         true-cell bytes above the 4 GiB line.
     */
    PtpZone(dram::DramModule &module, const CtaConfig &config);

    /**
     * Rebuild the zone from a previously captured layout(), skipping
     * the row walk and PS-bit screening scan.  The layout must have
     * been produced by a module with the same geometry, cell map and
     * seed — snapshot restore guarantees this by keying blobs on the
     * full machine config.
     */
    PtpZone(dram::DramModule &module, const CtaConfig &config,
            const PtpLayout &layout);

    /** @name Layout results */
    /** @{ */
    /** Lowest physical address belonging to ZONE_PTP. */
    Addr lowWaterMark() const { return lowWaterMark_; }

    /** True-cell bytes collected (== config.ptpBytes). */
    std::uint64_t trueBytes() const { return trueBytes_; }

    /** Anti-cell bytes skipped while collecting (capacity loss). */
    std::uint64_t skippedAntiBytes() const { return skippedAntiBytes_; }

    /** Frames dropped by PS-bit screening. */
    std::uint64_t screenedFrames() const { return screenedFrames_; }

    /** True-cell sub-zones, ordered top of memory first. */
    const std::vector<mm::FrameSpan> &subZones() const
    {
        return spans_;
    }

    /** The machine's PTP indicator. */
    const PtpIndicator &indicator() const { return indicator_; }

    /** Scan results in plain data form, for snapshots. */
    PtpLayout layout() const;
    /** @} */

    /** @name Allocation */
    /** @{ */
    /**
     * Allocate one zeroed table granule for a level-@p level table
     * (1 = leaf table .. root level).  Returns the base PFN of a
     * naturally aligned run of granuleFrames() 4 KiB frames (one
     * frame on x86-64).  Without multi-level zoning all levels share
     * one partition.
     */
    std::optional<Pfn> allocate(unsigned level);

    /** Return a frame obtained from allocate(). */
    void free(Pfn pfn);

    /** True iff @p pfn lies in a ZONE_PTP sub-zone. */
    bool contains(Pfn pfn) const;

    std::uint64_t freeFrames() const;
    std::uint64_t totalFrames() const;
    /** @} */

    /** Counters: allocs, frees, failures per level. */
    StatGroup &stats() { return stats_; }

  private:
    /** Partition the collected spans across paging levels. */
    void partitionLevels(const CtaConfig &config);

    /** Drop level>=2 frames with block-bit cells that can flip the
     *  entry into a block leaf (PS 1->0 on x86; the screen direction
     *  is the same on ARM, whose type bit is block-when-clear). */
    void screenPageSizeBits();

    dram::DramModule &module_;
    const paging::Arch *arch_;
    PtpIndicator indicator_;
    Addr lowWaterMark_ = 0;
    std::uint64_t trueBytes_ = 0;
    std::uint64_t skippedAntiBytes_ = 0;
    std::uint64_t screenedFrames_ = 0;
    bool multiLevel_ = false;

    std::vector<mm::FrameSpan> spans_;

    /** Buddy allocators per level partition (index 0 unused). */
    std::array<std::vector<mm::BuddyAllocator>, 5> levelBuddies_;
    /** Which level a frame was allocated from, for free(). */
    std::array<std::vector<mm::FrameSpan>, 5> levelSpans_;

    StatGroup stats_;
    /** Per-partition alloc/failure handles (index 0 unused). */
    std::array<StatId, 5> allocsLIds_;
    std::array<StatId, 5> failuresLIds_;
    StatId freesId_;
};

} // namespace ctamem::cta

#endif // CTAMEM_CTA_PTP_ZONE_HH
