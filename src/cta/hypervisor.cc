#include "cta/hypervisor.hh"

#include <algorithm>

#include "common/log.hh"

namespace ctamem::cta {

using mm::FrameSpan;

Addr
GuestZone::lowestAddr() const
{
    Addr lowest = ~0ULL;
    for (const FrameSpan &span : spans)
        lowest = std::min(lowest, pfnToAddr(span.basePfn));
    return lowest;
}

Hypervisor::Hypervisor(dram::DramModule &module,
                       std::uint64_t zone_bytes)
    : module_(module)
{
    const auto &geom = module.geometry();
    const std::uint64_t row_bytes = geom.rowBytes();
    if (zone_bytes % row_bytes != 0)
        fatal("ZONE_HYPERVISOR size must be row-aligned");
    const Addr floor = geom.capacity() / 2;

    std::uint64_t collected = 0;
    Addr row = geom.capacity();
    while (collected < zone_bytes) {
        if (row < floor + row_bytes) {
            fatal("cannot reserve ", zone_bytes,
                  " true-cell bytes for ZONE_HYPERVISOR");
        }
        row -= row_bytes;
        if (module.cellTypeAt(row) == dram::CellType::True) {
            const Pfn base = addrToPfn(row);
            const std::uint64_t frames = row_bytes / pageSize;
            if (!freeSpans_.empty() &&
                freeSpans_.back().basePfn == base + frames) {
                freeSpans_.back().basePfn = base;
                freeSpans_.back().frames += frames;
            } else {
                freeSpans_.push_back(FrameSpan{base, frames});
            }
            collected += row_bytes;
        } else {
            skippedAnti_ += row_bytes;
        }
    }
    zoneBase_ = row;
    remaining_ = collected;
}

GuestZone
Hypervisor::assignGuestZone(std::uint64_t bytes)
{
    if (bytes == 0 || bytes % pageSize != 0)
        fatal("guest zone size must be a nonzero page multiple");
    if (bytes > remaining_)
        fatal("ZONE_HYPERVISOR exhausted: ", remaining_,
              " bytes left, ", bytes, " requested");

    GuestZone guest{nextGuestId_++, {}, bytes};
    std::uint64_t need = bytes / pageSize;
    while (need > 0) {
        FrameSpan &span = freeSpans_.front();
        const std::uint64_t take =
            std::min<std::uint64_t>(need, span.frames);
        // Carve from the top of the span so earlier guests sit at
        // higher physical addresses.
        guest.spans.push_back(
            FrameSpan{span.basePfn + span.frames - take, take});
        span.frames -= take;
        need -= take;
        if (span.frames == 0)
            freeSpans_.erase(freeSpans_.begin());
    }
    remaining_ -= bytes;
    guests_.push_back(guest);
    return guest;
}

bool
Hypervisor::auditIsolation() const
{
    for (std::size_t i = 0; i < guests_.size(); ++i) {
        for (const FrameSpan &span : guests_[i].spans) {
            if (pfnToAddr(span.basePfn) < zoneBase_)
                return false;
            if (module_.cellTypeAt(pfnToAddr(span.basePfn)) !=
                dram::CellType::True) {
                return false;
            }
            for (std::size_t j = i + 1; j < guests_.size(); ++j) {
                for (const FrameSpan &other : guests_[j].spans) {
                    if (span.basePfn < other.endPfn() &&
                        other.basePfn < span.endPfn()) {
                        return false;
                    }
                }
            }
        }
    }
    return true;
}

} // namespace ctamem::cta
