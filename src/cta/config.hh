/**
 * @file
 * Configuration of the Cell-Type-Aware allocation policy.
 */

#ifndef CTAMEM_CTA_CONFIG_HH
#define CTAMEM_CTA_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "paging/arch.hh"

namespace ctamem::cta {

/** Tunables of the CTA defense (Sections 4-7 of the paper). */
struct CtaConfig
{
    /**
     * Paging architecture ZONE_PTP serves: decides the table-granule
     * size (frames per table page), the level count the zone
     * partitions across, and — for the block-bit screen — which
     * descriptor bit marks a block leaf.  Points at one of the
     * static `paging` descriptors; never owned.
     */
    const paging::Arch *arch = &paging::kX86_64;

    /**
     * True-cell bytes ZONE_PTP must provide (the paper evaluates
     * 32 MiB and 64 MiB; 32 MiB suffices for typical systems).
     */
    std::uint64_t ptpBytes = 32 * MiB;

    /**
     * Minimum number of '0' bits the PTP indicator of any
     * user-reachable physical address must contain.  0 disables the
     * restriction; the paper's hardened configuration uses 2, which
     * reserves addresses with fewer zeros for the kernel and trusted
     * processes and drives the expected number of exploitable PTEs
     * below 1e-5.
     */
    unsigned minIndicatorZeros = 0;

    /**
     * Place each paging level in its own PTP zone, higher levels at
     * higher physical addresses (Section 7's defense for multiple
     * page sizes).
     */
    bool multiLevelZones = false;

    /**
     * With multi-level zones: screen out candidate table frames whose
     * PS-bit cells are RowHammer-vulnerable in the '1'->'0' direction
     * (Section 7's final hardening step).
     */
    bool screenPageSizeBit = false;
};

} // namespace ctamem::cta

#endif // CTAMEM_CTA_CONFIG_HH
