/**
 * @file
 * Executable form of the paper's No Self-Reference Theorem and the
 * monotonicity property (Section 4).
 *
 * Theorem: if every page-table page lives above a low water mark P,
 * every pointer held in a page table points below P, and all pointer
 * bits are stored in true-cells, then no RowHammer-corrupted pointer
 * gamma(p) can reach a page-table entry: gamma(p) <= p < P <= e.
 *
 * The checkers here are used three ways: as test oracles, as runtime
 * invariant assertions in the kernel, and as the victory condition
 * auditors for the attack harness.
 */

#ifndef CTAMEM_CTA_THEOREM_HH
#define CTAMEM_CTA_THEOREM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "paging/arch.hh"

namespace ctamem::cta {

/**
 * True iff @p after is reachable from @p before using only '1'->'0'
 * flips — the only transitions a true-cell word admits.  Equivalent
 * to: @p after has no bit set that @p before lacks.
 */
constexpr bool
reachableByDownFlips(std::uint64_t before, std::uint64_t after)
{
    return (after & ~before) == 0;
}

/**
 * True iff @p after is reachable from @p before using only '0'->'1'
 * flips (anti-cell words).
 */
constexpr bool
reachableByUpFlips(std::uint64_t before, std::uint64_t after)
{
    return (before & ~after) == 0;
}

/**
 * The monotonicity property: any down-flip-reachable value is
 * numerically <= the original (the corrupted monotonic pointer can
 * only move toward address zero).
 */
constexpr bool
monotonicityHolds(std::uint64_t before, std::uint64_t after)
{
    return !reachableByDownFlips(before, after) || after <= before;
}

/**
 * @name Pointer-field-restricted forms
 *
 * The theorem only needs monotonicity of the *pointer field*, whose
 * bounds are an architecture fact: x86-64 PTEs hold it in bits
 * 12..51, ARMv8-A descriptors in bits granuleShift..47.  These
 * variants take the field bounds from the descriptor, so the screen
 * works unchanged on any backend whose PFN field is the pointer.
 */
/** @{ */

/**
 * True iff the pointer field of @p after is reachable from that of
 * @p before using only '1'->'0' flips, ignoring every non-pointer
 * descriptor bit.
 */
constexpr bool
pointerReachableByDownFlips(const paging::Arch &arch,
                            std::uint64_t before, std::uint64_t after)
{
    const std::uint64_t mask = arch.pointerFieldMask();
    return reachableByDownFlips(before & mask, after & mask);
}

/**
 * Monotonicity of the pointer itself: any down-flip-reachable
 * descriptor decodes to a frame number <= the original's — the
 * corrupted monotonic pointer can only move toward address zero.
 */
constexpr bool
pointerMonotonicityHolds(const paging::Arch &arch,
                         std::uint64_t before, std::uint64_t after)
{
    return !pointerReachableByDownFlips(arch, before, after) ||
           arch.pfn(after) <= arch.pfn(before);
}
/** @} */

/** Result of auditing a system against the theorem's premises. */
struct TheoremAudit
{
    bool tablesAboveLwm = true;   //!< every PT frame above P
    bool pointersBelowLwm = true; //!< every PTE target below P
    bool tablesInTrueCells = true;//!< every PT frame in true-cells
    std::vector<std::string> violations;

    bool
    holds() const
    {
        return tablesAboveLwm && pointersBelowLwm && tablesInTrueCells;
    }
};

} // namespace ctamem::cta

#endif // CTAMEM_CTA_THEOREM_HH
