#include "cta/ptp_zone.hh"

#include <algorithm>
#include <string>

#include "common/log.hh"
#include "paging/pte.hh"

namespace ctamem::cta {

using mm::FrameSpan;

PtpZone::PtpZone(dram::DramModule &module, const CtaConfig &config,
                 const PtpLayout &layout)
    : module_(module), arch_(config.arch),
      indicator_(module.geometry().capacity(), config.ptpBytes),
      lowWaterMark_(layout.lowWaterMark),
      trueBytes_(layout.trueBytes),
      skippedAntiBytes_(layout.skippedAntiBytes),
      screenedFrames_(layout.screenedFrames),
      multiLevel_(layout.multiLevel),
      spans_(layout.spans)
{
    allocsLIds_[0] = failuresLIds_[0] = 0;
    for (unsigned partition = 1; partition <= 4; ++partition) {
        allocsLIds_[partition] = stats_.registerCounter(
            "allocsL" + std::to_string(partition));
        failuresLIds_[partition] = stats_.registerCounter(
            "failuresL" + std::to_string(partition));
    }
    freesId_ = stats_.registerCounter("frees");

    for (unsigned level = 1; level <= 4; ++level) {
        levelSpans_[level] = layout.levelSpans[level];
        for (const FrameSpan &span : levelSpans_[level]) {
            levelBuddies_[level].emplace_back(span.basePfn,
                                              span.frames);
        }
    }
}

PtpLayout
PtpZone::layout() const
{
    PtpLayout layout;
    layout.lowWaterMark = lowWaterMark_;
    layout.trueBytes = trueBytes_;
    layout.skippedAntiBytes = skippedAntiBytes_;
    layout.screenedFrames = screenedFrames_;
    layout.multiLevel = multiLevel_;
    layout.spans = spans_;
    for (unsigned level = 1; level <= 4; ++level)
        layout.levelSpans[level] = levelSpans_[level];
    return layout;
}

PtpZone::PtpZone(dram::DramModule &module, const CtaConfig &config)
    : module_(module), arch_(config.arch),
      indicator_(module.geometry().capacity(), config.ptpBytes),
      multiLevel_(config.multiLevelZones)
{
    allocsLIds_[0] = failuresLIds_[0] = 0;
    for (unsigned partition = 1; partition <= 4; ++partition) {
        allocsLIds_[partition] = stats_.registerCounter(
            "allocsL" + std::to_string(partition));
        failuresLIds_[partition] = stats_.registerCounter(
            "failuresL" + std::to_string(partition));
    }
    freesId_ = stats_.registerCounter("frees");
    const auto &geom = module.geometry();
    const std::uint64_t row_bytes = geom.rowBytes();
    const std::uint64_t capacity = geom.capacity();

    if (config.ptpBytes % row_bytes != 0) {
        fatal("ZONE_PTP size ", config.ptpBytes,
              " must be a multiple of the DRAM row size ", row_bytes);
    }
    // Never let the zone eat more than half the machine; a layout
    // that anti-cell-starved that badly is a configuration error.
    const Addr floor = capacity / 2;

    Addr row = capacity;
    while (trueBytes_ < config.ptpBytes) {
        if (row < floor + row_bytes) {
            fatal("cannot collect ", config.ptpBytes,
                  " true-cell bytes above the low water mark; "
                  "collected ", trueBytes_, " with ",
                  skippedAntiBytes_, " anti-cell bytes skipped");
        }
        row -= row_bytes;
        if (module.cellTypeAt(row) == dram::CellType::True) {
            const Pfn base = addrToPfn(row);
            const std::uint64_t frames = row_bytes / pageSize;
            if (!spans_.empty() &&
                spans_.back().basePfn == base + frames) {
                // Extend the previous (higher) span downward.
                spans_.back().basePfn = base;
                spans_.back().frames += frames;
            } else {
                spans_.push_back(FrameSpan{base, frames});
            }
            trueBytes_ += row_bytes;
        } else {
            skippedAntiBytes_ += row_bytes;
        }
    }
    lowWaterMark_ = row;

    partitionLevels(config);
    if (config.screenPageSizeBit && multiLevel_)
        screenPageSizeBits();

    for (unsigned level = 1; level <= 4; ++level) {
        for (const FrameSpan &span : levelSpans_[level]) {
            levelBuddies_[level].emplace_back(span.basePfn,
                                              span.frames);
        }
    }
}

void
PtpZone::partitionLevels(const CtaConfig &config)
{
    if (!config.multiLevelZones) {
        levelSpans_[1] = spans_;
        return;
    }

    const std::uint64_t total = trueBytes_ / pageSize;
    const unsigned top = arch_->levels;
    const std::uint64_t granule_frames = arch_->granuleFrames();
    // Heuristic reservations: leaf tables dominate (each level-k
    // table serves entriesPerTable level-(k-1) tables), so the upper
    // levels get small slices; higher levels sit at higher physical
    // addresses.  Slices are rounded down to whole table granules so
    // every partition can hand out naturally aligned granule runs.
    std::array<std::uint64_t, 5> want{};
    std::uint64_t upper = 0;
    for (unsigned level = top; level >= 2; --level) {
        want[level] = level == 2
                          ? std::min<std::uint64_t>(512, total / 8)
                          : std::min<std::uint64_t>(256, total / 16);
        want[level] &= ~(granule_frames - 1);
        upper += want[level];
    }
    want[1] = total - upper;

    // spans_ is ordered top-of-memory first; carve in root-first
    // level order so higher levels land higher.
    std::size_t span_idx = 0;
    std::uint64_t offset = 0; // frames consumed from spans_[span_idx]
    for (unsigned level = top; level >= 1; --level) {
        std::uint64_t need = want[level];
        while (need > 0) {
            if (span_idx >= spans_.size())
                ctamem_panic("level partition overran ZONE_PTP");
            const FrameSpan &span = spans_[span_idx];
            const std::uint64_t available = span.frames - offset;
            const std::uint64_t take =
                std::min<std::uint64_t>(need, available);
            // Spans are stored top-first; frames are carved from the
            // top of each span downward.
            const Pfn base = span.basePfn + available - take;
            levelSpans_[level].push_back(FrameSpan{base, take});
            need -= take;
            offset += take;
            if (offset == span.frames) {
                ++span_idx;
                offset = 0;
            }
        }
        if (level == 1)
            break;
    }
}

void
PtpZone::screenPageSizeBits()
{
    // Only levels whose entries can carry the block marker need
    // screening: on x86 a PD/PDPT entry whose PS bit flips '1'->'0'
    // stops being a 2 MiB / 1 GiB leaf, on ARM a table descriptor
    // whose type bit flips '1'->'0' *becomes* a block leaf — either
    // way the dangerous direction in true-cells is '1'->'0' on the
    // descriptor's block bit.  Level>=2 candidate granules with a
    // vulnerable block-bit cell in any slot are dropped whole.
    const dram::FaultModel &faults = module_.faults();
    const std::uint64_t granule_frames = arch_->granuleFrames();
    const std::uint64_t slots = arch_->entriesPerTable();
    for (unsigned level = 2; level <= arch_->levels; ++level) {
        std::vector<FrameSpan> clean;
        for (const FrameSpan &span : levelSpans_[level]) {
            for (Pfn pfn = span.basePfn; pfn < span.endPfn();
                 pfn += granule_frames) {
                bool exploitable = false;
                for (std::uint64_t slot = 0;
                     slot < slots && !exploitable; ++slot) {
                    const Addr addr = pfnToAddr(pfn) + slot * 8;
                    if (faults.vulnerable(addr, arch_->blockBit) &&
                        faults.flipDirection(
                            addr, arch_->blockBit,
                            dram::CellType::True) ==
                            dram::FlipDirection::OneToZero) {
                        exploitable = true;
                    }
                }
                if (exploitable) {
                    screenedFrames_ += granule_frames;
                } else if (!clean.empty() &&
                           clean.back().endPfn() == pfn) {
                    clean.back().frames += granule_frames;
                } else {
                    clean.push_back(FrameSpan{pfn, granule_frames});
                }
            }
        }
        levelSpans_[level] = std::move(clean);
    }
}

std::optional<Pfn>
PtpZone::allocate(unsigned level)
{
    if (level < 1 || level > arch_->levels) {
        fatal("PtpZone::allocate: level must be 1..", arch_->levels,
              " on ", arch_->name, ", got ", level);
    }
    const unsigned partition = multiLevel_ ? level : 1;
    stats_.at(allocsLIds_[partition]).increment();
    const unsigned order = arch_->tableOrder();
    for (mm::BuddyAllocator &buddy : levelBuddies_[partition]) {
        if (auto pfn = buddy.allocate(order)) {
            static const std::array<std::uint8_t, pageSize> zeros{};
            for (std::uint64_t frame = 0;
                 frame < arch_->granuleFrames(); ++frame) {
                module_.write(pfnToAddr(*pfn + frame), zeros.data(),
                              pageSize);
            }
            return pfn;
        }
    }
    stats_.at(failuresLIds_[partition]).increment();
    return std::nullopt;
}

void
PtpZone::free(Pfn pfn)
{
    stats_.at(freesId_).increment();
    for (unsigned level = 1; level <= 4; ++level) {
        for (mm::BuddyAllocator &buddy : levelBuddies_[level]) {
            if (buddy.contains(pfn)) {
                buddy.free(pfn, arch_->tableOrder());
                return;
            }
        }
    }
    ctamem_panic("PtpZone::free: pfn ", pfn, " not in ZONE_PTP");
}

bool
PtpZone::contains(Pfn pfn) const
{
    for (unsigned level = 1; level <= 4; ++level)
        for (const FrameSpan &span : levelSpans_[level])
            if (span.contains(pfn))
                return true;
    return false;
}

std::uint64_t
PtpZone::freeFrames() const
{
    std::uint64_t total = 0;
    for (unsigned level = 1; level <= 4; ++level)
        for (const mm::BuddyAllocator &buddy : levelBuddies_[level])
            total += buddy.freeFrames();
    return total;
}

std::uint64_t
PtpZone::totalFrames() const
{
    std::uint64_t total = 0;
    for (unsigned level = 1; level <= 4; ++level)
        for (const mm::BuddyAllocator &buddy : levelBuddies_[level])
            total += buddy.totalFrames();
    return total;
}

} // namespace ctamem::cta
