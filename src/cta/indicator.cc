#include "cta/indicator.hh"

#include "common/log.hh"

namespace ctamem::cta {

PtpIndicator::PtpIndicator(std::uint64_t mem_bytes,
                           std::uint64_t ptp_bytes)
{
    if (!isPowerOfTwo(mem_bytes) || !isPowerOfTwo(ptp_bytes))
        fatal("PTP indicator requires power-of-two sizes");
    if (ptp_bytes == 0 || ptp_bytes >= mem_bytes)
        fatal("ZONE_PTP size must be a proper divisor of memory size");
    bits_ = log2Floor(mem_bytes / ptp_bytes);
    shift_ = log2Floor(ptp_bytes);
}

} // namespace ctamem::cta
