/**
 * @file
 * Assembly of the whole-machine zone plan under CTA:
 *
 *  - ZONE_PTP above the low water mark (built by PtpZone),
 *  - optionally ZONE_KERNEL_RSV — the regions below the low water
 *    mark whose PTP indicator has fewer than `minIndicatorZeros`
 *    zeros, reserved for the kernel and trusted processes (the
 *    Section 5 restriction that drives the expected number of
 *    exploitable PTEs to ~1e-5),
 *  - the standard zones over what remains.
 */

#ifndef CTAMEM_CTA_PLAN_HH
#define CTAMEM_CTA_PLAN_HH

#include <memory>
#include <vector>

#include "cta/config.hh"
#include "cta/ptp_zone.hh"
#include "dram/module.hh"
#include "mm/zone.hh"

namespace ctamem::cta {

/** Everything the kernel needs to boot with CTA enabled. */
struct CtaPlan
{
    /** Zone specs for mm::PhysicalMemory (excludes ZONE_PTP). */
    std::vector<mm::ZoneSpec> physSpecs;

    /** The page-table zone, managed outside PhysicalMemory. */
    std::unique_ptr<PtpZone> ptp;
};

/**
 * Subtract span list @p holes from span list @p from (page granular).
 */
std::vector<mm::FrameSpan>
subtractSpans(const std::vector<mm::FrameSpan> &from,
              const std::vector<mm::FrameSpan> &holes);

/** Build the CTA zone plan for @p module. */
CtaPlan buildCtaPlan(dram::DramModule &module, const CtaConfig &config);

} // namespace ctamem::cta

#endif // CTAMEM_CTA_PLAN_HH
