/**
 * @file
 * Architecture descriptor for radix page tables.
 *
 * Every ISA-specific paging fact lives here in one plain-data
 * descriptor: level count, per-level index extraction, the granule
 * (translation page) size, and the PTE field layout — where the
 * pointer field sits, which bit means present/valid, how
 * writable/user are encoded (x86 R/W vs ARM AP[2], which is
 * active-low), and how a block/large-page leaf is marked (x86 PS is
 * set for blocks; the ARMv8-A type bit is *clear* for blocks).
 *
 * The walker, address-space builder, TLB, kernel mapping paths, the
 * CTA screens and the PTE-crafting attacks all consume the
 * descriptor instead of Intel constants, so the paper's monotonic-
 * pointer argument can be exercised on any backend whose PFN field
 * is the pointer.
 *
 * `kX86_64` is pinned bit-identical to the historical `pte.hh`
 * constants; the AArch64 descriptors follow the ARMv8-A stage-1
 * translation-table format (DDI 0487, D8) for 4 KiB / 16 KiB /
 * 64 KiB granules.
 */

#ifndef CTAMEM_PAGING_ARCH_HH
#define CTAMEM_PAGING_ARCH_HH

#include <cstdint>
#include <string>

#include "common/bitops.hh"
#include "common/types.hh"
#include "paging/pte.hh"

namespace ctamem::paging {

/** Instruction-set families with a paging backend. */
enum class Isa : std::uint8_t { X86_64, AArch64 };

/**
 * One paging architecture, fully described.  Plain aggregate — no
 * virtual dispatch — so descriptor methods inline into the walk hot
 * path exactly like the old free functions did.
 */
struct Arch
{
    Isa isa = Isa::X86_64;
    const char *name = "x86_64"; //!< registry/manifest token

    unsigned levels = 4;       //!< radix depth (root level == levels)
    unsigned granuleShift = 12; //!< log2(translation granule bytes)
    unsigned indexBits = 9;     //!< VA index bits consumed per level
    unsigned maxLeafLevel = 3;  //!< highest level a block leaf may use

    /** @name Descriptor bit layout */
    /** @{ */
    unsigned presentBit = 0;  //!< x86 P / ARM valid
    unsigned writableBit = 1; //!< x86 R/W / ARM AP[2]
    /** Set bit means *read-only* (ARM AP[2]) instead of writable. */
    bool writableLowActive = false;
    unsigned userBit = 2;     //!< x86 U/S / ARM AP[1] (EL0 access)
    unsigned accessedBit = 5; //!< x86 A / ARM AF
    unsigned dirtyBit = 6;    //!< x86 D / ARM software dirty
    unsigned nxBit = 63;      //!< x86 NX / ARM UXN
    unsigned blockBit = 7;    //!< x86 PS / ARM descriptor type bit
    /** Clear bit means block (ARM type bit) instead of set (x86 PS). */
    bool blockLowActive = false;
    /** Effective permissions AND across levels (x86); ARM table
     *  descriptors carry no permission bits, so leaves decide. */
    bool hierarchicalPerms = true;
    unsigned pointerLo = 12; //!< pointer (output-address) field lo bit
    unsigned pointerHi = 51; //!< pointer field hi bit, inclusive
    /** @} */

    /** @name Granule geometry */
    /** @{ */
    constexpr std::uint64_t granuleBytes() const
    {
        return 1ULL << granuleShift;
    }

    constexpr std::uint64_t granuleMask() const
    {
        return granuleBytes() - 1;
    }

    /** 8-byte descriptors per table page. */
    constexpr std::uint64_t entriesPerTable() const
    {
        return granuleBytes() / sizeof(std::uint64_t);
    }

    /** Buddy order of one table/data granule in 4 KiB frames. */
    constexpr unsigned tableOrder() const
    {
        return granuleShift - pageShift;
    }

    /** 4 KiB frames per granule. */
    constexpr std::uint64_t granuleFrames() const
    {
        return 1ULL << tableOrder();
    }

    /** Table index of @p vaddr at @p level (levels() = root .. 1). */
    constexpr std::uint64_t tableIndex(VAddr vaddr, unsigned level) const
    {
        const unsigned shift =
            granuleShift + indexBits * (level - 1);
        return (vaddr >> shift) & ((1ULL << indexBits) - 1);
    }

    /** Bytes mapped by one entry at @p level. */
    constexpr std::uint64_t levelCoverage(unsigned level) const
    {
        return 1ULL << (granuleShift + indexBits * (level - 1));
    }
    /** @} */

    /** @name Descriptor decoding */
    /** @{ */
    constexpr bool present(std::uint64_t raw) const
    {
        return bit(raw, presentBit);
    }

    constexpr bool writable(std::uint64_t raw) const
    {
        return bit(raw, writableBit) != writableLowActive;
    }

    constexpr bool user(std::uint64_t raw) const
    {
        return bit(raw, userBit);
    }

    constexpr bool noExecute(std::uint64_t raw) const
    {
        return bit(raw, nxBit);
    }

    /**
     * Raw block-marker predicate, no level guard: the x86 "PS bit
     * set" / ARM "type bit clear" test the descent paths apply at
     * every level (descent through a marked entry is blocked even
     * where a block leaf would be architecturally invalid).
     */
    constexpr bool blockMarked(std::uint64_t raw) const
    {
        return bit(raw, blockBit) != blockLowActive;
    }

    /** True iff the entry at @p level is a block (large-page) leaf. */
    constexpr bool blockAt(std::uint64_t raw, unsigned level) const
    {
        return level > 1 && level <= maxLeafLevel && blockMarked(raw);
    }

    /** True iff the entry at @p level terminates the walk. */
    constexpr bool leafAt(std::uint64_t raw, unsigned level) const
    {
        return level == 1 || blockAt(raw, level);
    }

    /**
     * The pointer field as a *4 KiB frame number* — the global Pfn
     * unit, whatever the granule (granule > 4 KiB descriptors hold
     * the frame number's high bits; the low bits are zero because
     * granules occupy naturally aligned frame runs).
     */
    constexpr Pfn pfn(std::uint64_t raw) const
    {
        return bits(raw, pointerHi, pointerLo)
               << (pointerLo - pageShift);
    }

    constexpr std::uint64_t setPfn(std::uint64_t raw, Pfn pfn) const
    {
        return insertBits(raw, pointerHi, pointerLo,
                          pfn >> (pointerLo - pageShift));
    }

    /** Mask of the raw descriptor bits holding the pointer field. */
    constexpr std::uint64_t pointerFieldMask() const
    {
        return insertBits(0, pointerHi, pointerLo, ~0ULL);
    }
    /** @} */

    /** @name Descriptor encoding */
    /** @{ */
    /**
     * A next-level table descriptor.  Table entries carry the most
     * permissive flags (the Linux convention on x86; ARM table
     * descriptors have no permission bits at all).
     */
    constexpr std::uint64_t makeTable(Pfn pfn) const
    {
        std::uint64_t raw = 1ULL << presentBit;
        if (isa == Isa::X86_64) {
            raw |= 1ULL << writableBit;
            raw |= 1ULL << userBit;
        } else {
            // ARM: bits[1:0] = 0b11 marks a table descriptor.
            raw |= 1ULL << blockBit;
        }
        return setPfn(raw, pfn);
    }

    /** A leaf (page or block) descriptor at @p level. */
    constexpr std::uint64_t
    makeLeaf(Pfn pfn, const PageFlags &flags, unsigned level) const
    {
        std::uint64_t raw = 1ULL << presentBit;
        if (flags.writable != writableLowActive)
            raw |= 1ULL << writableBit;
        if (flags.user)
            raw |= 1ULL << userBit;
        if (flags.noExecute)
            raw |= 1ULL << nxBit;
        // x86: PS set on blocks only.  ARM: type bit set on level-1
        // page descriptors, clear on blocks.
        if (blockLowActive ? (level == 1) : (level > 1))
            raw |= 1ULL << blockBit;
        // A valid ARM descriptor needs the access flag or the walk
        // takes an access-flag fault; x86 leaves A for the hardware.
        if (isa == Isa::AArch64)
            raw |= 1ULL << accessedBit;
        return setPfn(raw, pfn);
    }
    /** @} */

    /**
     * Address-space tag mixed into TLB keys so roots from different
     * architectures can never alias.  Zero for the historical x86-64
     * descriptor (keeping its set-index function bit-identical).
     */
    constexpr std::uint64_t tag() const
    {
        return isa == Isa::X86_64
                   ? 0
                   : (std::uint64_t(levels) << 8) | granuleShift;
    }

    bool operator==(const Arch &other) const
    {
        return isa == other.isa && levels == other.levels &&
               granuleShift == other.granuleShift;
    }
};

/** The historical backend: bit-identical to the `pte.hh` constants. */
inline constexpr Arch kX86_64{};

/** ARMv8-A, 4 KiB granule, 4 levels (48-bit VA). */
inline constexpr Arch kAArch64_4K{
    .isa = Isa::AArch64,
    .name = "aarch64/4k",
    .levels = 4,
    .granuleShift = 12,
    .indexBits = 9,
    .maxLeafLevel = 3, // blocks at 2 MiB and 1 GiB
    .presentBit = 0,
    .writableBit = 7, // AP[2]: set = read-only
    .writableLowActive = true,
    .userBit = 6,      // AP[1]: set = EL0 accessible
    .accessedBit = 10, // AF
    .dirtyBit = 55,    // software bit
    .nxBit = 54,       // UXN
    .blockBit = 1,     // type bit: clear = block
    .blockLowActive = true,
    .hierarchicalPerms = false,
    .pointerLo = 12,
    .pointerHi = 47,
};

/** ARMv8-A, 16 KiB granule, 4 levels (47-bit VA). */
inline constexpr Arch kAArch64_16K{
    .isa = Isa::AArch64,
    .name = "aarch64/16k",
    .levels = 4,
    .granuleShift = 14,
    .indexBits = 11,
    .maxLeafLevel = 2, // blocks at 32 MiB only
    .presentBit = 0,
    .writableBit = 7,
    .writableLowActive = true,
    .userBit = 6,
    .accessedBit = 10,
    .dirtyBit = 55,
    .nxBit = 54,
    .blockBit = 1,
    .blockLowActive = true,
    .hierarchicalPerms = false,
    .pointerLo = 14,
    .pointerHi = 47,
};

/** ARMv8-A, 64 KiB granule, 3 levels (42-bit VA). */
inline constexpr Arch kAArch64_64K{
    .isa = Isa::AArch64,
    .name = "aarch64/64k",
    .levels = 3,
    .granuleShift = 16,
    .indexBits = 13,
    .maxLeafLevel = 2, // blocks at 512 MiB only
    .presentBit = 0,
    .writableBit = 7,
    .writableLowActive = true,
    .userBit = 6,
    .accessedBit = 10,
    .dirtyBit = 55,
    .nxBit = 54,
    .blockBit = 1,
    .blockLowActive = true,
    .hierarchicalPerms = false,
    .pointerLo = 16,
    .pointerHi = 47,
};

/** Every built-in descriptor, for --list and the property suites. */
inline constexpr const Arch *kAllArches[] = {
    &kX86_64, &kAArch64_4K, &kAArch64_16K, &kAArch64_64K};

/**
 * The built-in descriptor for (@p isa, @p granule_bytes).  Fatal on
 * combinations no backend provides (x86-64 is 4 KiB only; AArch64
 * supports 4/16/64 KiB granules).
 */
const Arch &resolveArch(Isa isa, std::uint64_t granule_bytes);

/** Manifest token for an ISA ("x86_64" / "aarch64"). */
const char *isaName(Isa isa);

/** Parse an ISA token; nullptr-semantics via the bool. */
bool parseIsa(const std::string &name, Isa &out);

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_ARCH_HH
