/**
 * @file
 * MMU facade: TLB-accelerated translation over the page walker.
 */

#ifndef CTAMEM_PAGING_MMU_HH
#define CTAMEM_PAGING_MMU_HH

#include "common/types.hh"
#include "dram/module.hh"
#include "paging/tlb.hh"
#include "paging/walker.hh"

namespace ctamem::paging {

/** Translates virtual accesses, caching 4 KiB leaf translations. */
class Mmu
{
  public:
    explicit Mmu(dram::DramModule &module, std::size_t tlb_entries = 64)
        : walker_(module), tlb_(tlb_entries)
    {}

    /**
     * Translate @p vaddr in the space rooted at @p root.  TLB hits
     * skip the walk but still enforce the cached R/W / U/S bits.
     */
    WalkResult
    translate(Pfn root, VAddr vaddr, AccessType access,
              Privilege privilege)
    {
        if (const TlbEntry *hit = tlb_.lookup(root, vaddr)) {
            WalkResult result;
            result.writable = hit->writable;
            result.user = hit->user;
            if ((privilege == Privilege::User && !hit->user) ||
                (access == AccessType::Write && !hit->writable)) {
                result.fault = Fault::Protection;
                return result;
            }
            result.phys = hit->physBase | (vaddr & pageMask);
            return result;
        }
        WalkResult result = walker_.walk(root, vaddr, access,
                                         privilege);
        if (result.ok() && result.leafLevel == 1) {
            tlb_.insert(TlbEntry{root, vaddr >> pageShift,
                                 pageAlignDown(result.phys),
                                 result.writable, result.user});
        }
        return result;
    }

    PageWalker &walker() { return walker_; }
    Tlb &tlb() { return tlb_; }

  private:
    PageWalker walker_;
    Tlb tlb_;
};

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_MMU_HH
