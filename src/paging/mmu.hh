/**
 * @file
 * MMU facade: TLB-accelerated translation over the page walker.
 */

#ifndef CTAMEM_PAGING_MMU_HH
#define CTAMEM_PAGING_MMU_HH

#include "common/types.hh"
#include "dram/module.hh"
#include "paging/arch.hh"
#include "paging/tlb.hh"
#include "paging/walker.hh"

namespace ctamem::paging {

/** Translates virtual accesses, caching base-granule translations. */
class Mmu
{
  public:
    explicit Mmu(dram::DramModule &module, std::size_t tlb_entries = 64,
                 const Arch &arch = kX86_64)
        : walker_(module, arch), tlb_(tlb_entries, 8, arch.granuleShift)
    {}

    /**
     * Translate @p vaddr in the space rooted at @p root.  TLB hits
     * skip the walk but still enforce the cached writable/user bits.
     */
    WalkResult
    translate(Pfn root, VAddr vaddr, AccessType access,
              Privilege privilege)
    {
        const Arch &arch = walker_.arch();
        if (const TlbEntry *hit =
                tlb_.lookup(root, vaddr, arch.tag())) {
            WalkResult result;
            result.writable = hit->writable;
            result.user = hit->user;
            if ((privilege == Privilege::User && !hit->user) ||
                (access == AccessType::Write && !hit->writable)) {
                result.fault = Fault::Protection;
                return result;
            }
            result.phys = hit->physBase | (vaddr & arch.granuleMask());
            return result;
        }
        WalkResult result = walker_.walk(root, vaddr, access,
                                         privilege);
        if (result.ok() && result.leafLevel == 1) {
            tlb_.insert(TlbEntry{root, vaddr >> arch.granuleShift,
                                 result.phys & ~arch.granuleMask(),
                                 result.writable, result.user,
                                 arch.tag()});
        }
        return result;
    }

    const Arch &arch() const { return walker_.arch(); }
    PageWalker &walker() { return walker_; }
    Tlb &tlb() { return tlb_; }

  private:
    PageWalker walker_;
    Tlb tlb_;
};

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_MMU_HH
