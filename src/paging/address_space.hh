/**
 * @file
 * Kernel-side construction of a process's page-table hierarchy.
 *
 * All table pages are allocated through a caller-supplied allocation
 * hook — the simulated `pte_alloc_one`.  This indirection is the
 * whole point of the reproduction: the CTA policy changes *only*
 * what that hook returns (frames from ZONE_PTP true-cells), nothing
 * else in the paging machinery.
 */

#ifndef CTAMEM_PAGING_ADDRESS_SPACE_HH
#define CTAMEM_PAGING_ADDRESS_SPACE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "dram/module.hh"
#include "paging/arch.hh"
#include "paging/pte.hh"
#include "paging/walker.hh"

namespace ctamem::paging {

/**
 * Allocates one zeroed page-table page; returns its PFN, or nullopt
 * when the backing zone is exhausted.  @p level is the paging level
 * the new table will serve (3 = PDPT .. 1 = PT), so multi-level CTA
 * zoning (Section 7) can place different levels in different zones.
 */
using PteAllocFn = std::function<std::optional<Pfn>(unsigned level)>;

/** Frees a page-table page previously returned by the alloc hook. */
using PteFreeFn = std::function<void(Pfn pfn)>;

/** Bookkeeping for one allocated table page. */
struct TableRecord
{
    Pfn pfn;
    unsigned level;        //!< 1 = leaf table .. levels-1
    Addr parentEntryAddr;  //!< physical address of the owning entry
};

/** One process's radix page-table hierarchy. */
class AddressSpace
{
  public:
    /**
     * @param module    DRAM holding the tables
     * @param alloc     the pte_alloc_one hook
     * @param free_fn   the matching release hook
     * @param root      root table frame (already allocated, zeroed)
     * @param arch      paging architecture the tables follow
     */
    AddressSpace(dram::DramModule &module, PteAllocFn alloc,
                 PteFreeFn free_fn, Pfn root,
                 const Arch &arch = kX86_64);

    Pfn root() const { return root_; }

    /** The descriptor this space encodes entries with. */
    const Arch &arch() const { return arch_; }

    /**
     * Map the base-granule page at @p vaddr to @p pfn.  Intermediate
     * tables are created on demand via the alloc hook.
     * @return false when a table allocation failed (out of zone).
     */
    bool map(VAddr vaddr, Pfn pfn, const PageFlags &flags);

    /**
     * Map a large (block) page at @p level — on x86-64, level 2 =
     * 2 MiB, level 3 = 1 GiB — by writing a block descriptor at the
     * corresponding level.
     */
    bool mapLarge(VAddr vaddr, Pfn pfn, const PageFlags &flags,
                  unsigned level);

    /** Remove the mapping at @p vaddr. @return true if one existed. */
    bool unmap(VAddr vaddr);

    /** All table pages (excluding the root) this space allocated. */
    const std::vector<TableRecord> &tablePages() const
    {
        return tables_;
    }

    /** Total table pages including the root. */
    std::uint64_t
    tablePageCount() const
    {
        return tables_.size() + 1;
    }

    /**
     * Reclaim the oldest leaf (level-1) table page: zero its parent
     * entry so the region demand-faults back later, remove it from
     * the bookkeeping, and return its record.  The caller releases
     * the frame.  Returns nullopt when no leaf table exists.
     *
     * This is the pte-reclaim path the paper's Section 6.3 alludes
     * to when ZONE_PTP runs short: mapped data frames stay resident,
     * only the translation structure is rebuilt on the next fault.
     */
    std::optional<TableRecord> evictLeafTable();

    /** Release every table page (not the mapped data pages). */
    void releaseTables();

  private:
    /**
     * Descend to the level-@p target table for @p vaddr, creating
     * missing intermediate tables.  Returns the table's PFN.
     */
    std::optional<Pfn> ensureTable(VAddr vaddr, unsigned target);

    dram::DramModule &module_;
    PteAllocFn alloc_;
    PteFreeFn free_;
    Pfn root_;
    const Arch &arch_;
    std::vector<TableRecord> tables_;
};

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_ADDRESS_SPACE_HH
