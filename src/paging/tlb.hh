/**
 * @file
 * A small software TLB model.
 *
 * RowHammer PTE attacks flush the TLB between hammer passes so the
 * MMU re-reads the (possibly corrupted) PTE from DRAM; the model
 * exists so that caching behaviour — and the attacker's need to
 * defeat it — is represented, and so the performance harness can
 * report hit rates.
 *
 * The organisation is N-way set-associative over contiguous storage:
 * lookup scans one set of at most `ways()` slots and replacement uses
 * per-set LRU stamp counters, so neither hits nor fills allocate.
 * Capacities of at most one way collapse to a single fully
 * associative LRU set — exactly the old list-based model, which is
 * what the small TLBs in the tests exercise.
 */

#ifndef CTAMEM_PAGING_TLB_HH
#define CTAMEM_PAGING_TLB_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "paging/walker.hh"

namespace ctamem::paging {

/** One cached translation. */
struct TlbEntry
{
    Pfn root;       //!< address-space identifier (PML4 frame)
    VAddr vpn;      //!< virtual page number
    Addr physBase;  //!< physical base of the 4 KiB frame
    bool writable;
    bool user;
};

/** Set-associative LRU TLB. */
class Tlb
{
  public:
    /**
     * @param capacity total number of entries
     * @param ways     target associativity; the set count is the
     *                 largest power of two with sets*ways <= capacity
     *                 (one fully associative set of @p capacity
     *                 entries when capacity <= ways)
     */
    explicit Tlb(std::size_t capacity = 64, std::size_t ways = 8);

    /** Look up (root, vaddr); nullptr on miss. */
    const TlbEntry *lookup(Pfn root, VAddr vaddr);

    /** Insert a translation (evicting the set's LRU when full). */
    void insert(const TlbEntry &entry);

    /** Drop everything (the attack's clflush/reload step). */
    void flushAll();

    /** Drop one page's translation across all address spaces. */
    void flushPage(VAddr vaddr);

    std::size_t size() const { return live_; }
    std::size_t ways() const { return ways_; }
    std::size_t sets() const { return sets_; }
    std::size_t capacity() const { return sets_ * ways_; }

    /** Counters: hits, misses, evictions, flushes. */
    StatGroup &stats() { return stats_; }

  private:
    struct Slot
    {
        TlbEntry entry{};
        std::uint64_t stamp = 0; //!< set-clock value at last use
        bool valid = false;
    };

    static std::uint64_t
    splitKey(Pfn root)
    {
        return root * 0x9e3779b97f4a7c15ULL;
    }

    /** Set index: low VPN bits, offset per address space. */
    std::size_t
    setIndex(Pfn root, VAddr vpn) const
    {
        return static_cast<std::size_t>(
            (vpn ^ (splitKey(root) >> 40)) & (sets_ - 1));
    }

    std::size_t ways_;
    std::size_t sets_; //!< always a power of two
    std::size_t live_ = 0;
    std::vector<Slot> slots_;            //!< sets_ * ways_, set-major
    std::vector<std::uint64_t> clocks_;  //!< per-set LRU stamp source
    StatGroup stats_;
    StatId hitsId_;
    StatId missesId_;
    StatId evictionsId_;
    StatId flushesId_;
};

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_TLB_HH
