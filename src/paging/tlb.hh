/**
 * @file
 * A small software TLB model.
 *
 * RowHammer PTE attacks flush the TLB between hammer passes so the
 * MMU re-reads the (possibly corrupted) PTE from DRAM; the model
 * exists so that caching behaviour — and the attacker's need to
 * defeat it — is represented, and so the performance harness can
 * report hit rates.
 */

#ifndef CTAMEM_PAGING_TLB_HH
#define CTAMEM_PAGING_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"
#include "paging/walker.hh"

namespace ctamem::paging {

/** One cached translation. */
struct TlbEntry
{
    Pfn root;       //!< address-space identifier (PML4 frame)
    VAddr vpn;      //!< virtual page number
    Addr physBase;  //!< physical base of the 4 KiB frame
    bool writable;
    bool user;
};

/** Fully associative LRU TLB. */
class Tlb
{
  public:
    explicit Tlb(std::size_t capacity = 64) : capacity_(capacity) {}

    /** Look up (root, vaddr); nullptr on miss. */
    const TlbEntry *lookup(Pfn root, VAddr vaddr);

    /** Insert a translation (evicting LRU if full). */
    void insert(const TlbEntry &entry);

    /** Drop everything (the attack's clflush/reload step). */
    void flushAll();

    /** Drop one page's translation across all address spaces. */
    void flushPage(VAddr vaddr);

    std::size_t size() const { return lru_.size(); }

    /** Counters: hits, misses, evictions, flushes. */
    StatGroup &stats() { return stats_; }

  private:
    static std::uint64_t
    key(Pfn root, VAddr vpn)
    {
        return splitKey(root) ^ vpn;
    }

    static std::uint64_t
    splitKey(Pfn root)
    {
        return root * 0x9e3779b97f4a7c15ULL;
    }

    std::size_t capacity_;
    /** LRU order: front = most recent. */
    std::list<TlbEntry> lru_;
    std::unordered_map<std::uint64_t, std::list<TlbEntry>::iterator>
        index_;
    StatGroup stats_;
};

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_TLB_HH
