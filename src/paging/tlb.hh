/**
 * @file
 * A small software TLB model.
 *
 * RowHammer PTE attacks flush the TLB between hammer passes so the
 * MMU re-reads the (possibly corrupted) PTE from DRAM; the model
 * exists so that caching behaviour — and the attacker's need to
 * defeat it — is represented, and so the performance harness can
 * report hit rates.
 *
 * The organisation is N-way set-associative over contiguous storage:
 * lookup scans one set of at most `ways()` slots and replacement uses
 * per-set LRU stamp counters, so neither hits nor fills allocate.
 * Capacities of at most one way collapse to a single fully
 * associative LRU set — exactly the old list-based model, which is
 * what the small TLBs in the tests exercise.
 *
 * Entries are keyed by (archTag, root, vpn): the root is the
 * architecture-neutral address-space identifier (the root table
 * frame), and the tag keeps translations minted under different
 * paging architectures from ever aliasing, even if two arches hand
 * out the same root frame number.
 */

#ifndef CTAMEM_PAGING_TLB_HH
#define CTAMEM_PAGING_TLB_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "paging/walker.hh"

namespace ctamem::paging {

/** One cached translation. */
struct TlbEntry
{
    Pfn root;       //!< address-space identifier (root table frame)
    VAddr vpn;      //!< virtual page number (granule units)
    Addr physBase;  //!< physical base of the translation granule
    bool writable;
    bool user;
    /** Arch::tag() of the minting architecture (0 = x86-64). */
    std::uint64_t archTag = 0;
};

/** Set-associative LRU TLB. */
class Tlb
{
  public:
    /**
     * @param capacity   total number of entries
     * @param ways       target associativity; the set count is the
     *                   largest power of two with sets*ways <=
     *                   capacity (one fully associative set of
     *                   @p capacity entries when capacity <= ways)
     * @param page_shift log2 of the translation granule the vpn is
     *                   expressed in (the arch's granuleShift)
     */
    explicit Tlb(std::size_t capacity = 64, std::size_t ways = 8,
                 unsigned page_shift = pageShift);

    /** Look up (tag, root, vaddr); nullptr on miss. */
    const TlbEntry *lookup(Pfn root, VAddr vaddr,
                           std::uint64_t arch_tag = 0);

    /** Insert a translation (evicting the set's LRU when full). */
    void insert(const TlbEntry &entry);

    /** Drop everything (the attack's clflush/reload step). */
    void flushAll();

    /** Drop one page's translation across all address spaces. */
    void flushPage(VAddr vaddr);

    std::size_t size() const { return live_; }
    std::size_t ways() const { return ways_; }
    std::size_t sets() const { return sets_; }
    std::size_t capacity() const { return sets_ * ways_; }
    unsigned pageShiftBits() const { return pageShift_; }

    /** Counters: hits, misses, evictions, flushes. */
    StatGroup &stats() { return stats_; }

  private:
    struct Slot
    {
        TlbEntry entry{};
        std::uint64_t stamp = 0; //!< set-clock value at last use
        bool valid = false;
    };

    static std::uint64_t
    splitKey(Pfn root, std::uint64_t arch_tag)
    {
        // arch_tag is 0 for the historical x86-64 descriptor, so its
        // set-index function is bit-identical to the tag-free one.
        return (root ^ arch_tag) * 0x9e3779b97f4a7c15ULL;
    }

    /** Set index: low VPN bits, offset per (arch, address space). */
    std::size_t
    setIndex(Pfn root, VAddr vpn, std::uint64_t arch_tag) const
    {
        return static_cast<std::size_t>(
            (vpn ^ (splitKey(root, arch_tag) >> 40)) & (sets_ - 1));
    }

    std::size_t ways_;
    std::size_t sets_; //!< always a power of two
    unsigned pageShift_;
    std::size_t live_ = 0;
    std::vector<Slot> slots_;            //!< sets_ * ways_, set-major
    std::vector<std::uint64_t> clocks_;  //!< per-set LRU stamp source
    StatGroup stats_;
    StatId hitsId_;
    StatId missesId_;
    StatId evictionsId_;
    StatId flushesId_;
};

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_TLB_HH
