/**
 * @file
 * Hardware-semantics page-table walker.
 *
 * Reads every table entry from *simulated DRAM* and believes what it
 * finds — exactly like an MMU.  A RowHammer flip in a PTE is thus
 * architecturally visible: if a corrupted entry points into the
 * page-table zone, the walker will happily translate user accesses
 * into it (when CTA is off).
 */

#ifndef CTAMEM_PAGING_WALKER_HH
#define CTAMEM_PAGING_WALKER_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/module.hh"
#include "paging/pte.hh"

namespace ctamem::paging {

/** Kind of memory access being translated. */
enum class AccessType : std::uint8_t { Read, Write, Execute };

/** Privilege of the access. */
enum class Privilege : std::uint8_t { User, Supervisor };

/** Why a translation failed. */
enum class Fault : std::uint8_t
{
    None,
    NotPresent, //!< a non-present entry on the walk path
    Protection, //!< U/S, R/W or NX check failed
    OutOfRange, //!< an entry pointed past the end of physical memory
};

/** Result of one page walk. */
struct WalkResult
{
    Fault fault = Fault::None;
    Addr phys = 0;        //!< translated physical address
    unsigned leafLevel = 1; //!< level the leaf was found at (1/2/3)
    bool writable = false;
    bool user = false;

    bool ok() const { return fault == Fault::None; }
};

/** Walks 4-level x86-64 page tables held in a DramModule. */
class PageWalker
{
  public:
    explicit PageWalker(dram::DramModule &module);

    /**
     * Translate @p vaddr through the hierarchy rooted at @p root.
     * Permission semantics follow x86: for user accesses every level
     * must have U/S set; writes require R/W at every level.
     */
    WalkResult walk(Pfn root, VAddr vaddr, AccessType access,
                    Privilege privilege);

    /**
     * Physical address of the level-@p level entry that @p vaddr's
     * walk visits (no permission checks) — what an attack corrupts
     * and what invariant checkers inspect.  Returns 0 on a
     * non-present intermediate entry.
     */
    Addr entryAddress(Pfn root, VAddr vaddr, unsigned level);

    /** Read the entry at @p level for @p vaddr (raw, unchecked). */
    Pte entryAt(Pfn root, VAddr vaddr, unsigned level);

    /** Counters: walks, faults, leafLevel1/2/3 hits. */
    StatGroup &stats() { return stats_; }

  private:
    /** Largest level a leaf can occur at (1 GiB pages). */
    static constexpr unsigned maxLeafLevel = 3;

    dram::DramModule &module_;
    StatGroup stats_;
    StatId walksId_;
    StatId faultsId_;
    /** Pre-registered "leafLevel<n>" handles, indexed by level. */
    StatId leafLevelIds_[maxLeafLevel + 1];
};

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_WALKER_HH
