/**
 * @file
 * Hardware-semantics page-table walker.
 *
 * Reads every table entry from *simulated DRAM* and believes what it
 * finds — exactly like an MMU.  A RowHammer flip in a PTE is thus
 * architecturally visible: if a corrupted entry points into the
 * page-table zone, the walker will happily translate user accesses
 * into it (when CTA is off).
 */

#ifndef CTAMEM_PAGING_WALKER_HH
#define CTAMEM_PAGING_WALKER_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/module.hh"
#include "paging/arch.hh"
#include "paging/pte.hh"

namespace ctamem::paging {

/** Kind of memory access being translated. */
enum class AccessType : std::uint8_t { Read, Write, Execute };

/** Privilege of the access. */
enum class Privilege : std::uint8_t { User, Supervisor };

/** Why a translation failed. */
enum class Fault : std::uint8_t
{
    None,
    NotPresent, //!< a non-present entry on the walk path
    Protection, //!< user/writable check failed
    OutOfRange, //!< an entry pointed past the end of physical memory
};

/** Result of one page walk. */
struct WalkResult
{
    Fault fault = Fault::None;
    Addr phys = 0;        //!< translated physical address
    unsigned leafLevel = 1; //!< level the leaf was found at
    bool writable = false;
    bool user = false;

    bool ok() const { return fault == Fault::None; }
};

/**
 * Walks the radix page tables described by a paging::Arch held in a
 * DramModule.  Defaults to the historical x86-64 4-level descriptor.
 */
class PageWalker
{
  public:
    explicit PageWalker(dram::DramModule &module,
                        const Arch &arch = kX86_64);

    /**
     * Translate @p vaddr through the hierarchy rooted at @p root.
     * Permission semantics follow the descriptor: with hierarchical
     * permissions (x86) every level must allow the access; otherwise
     * (ARM) the leaf alone decides.
     */
    WalkResult walk(Pfn root, VAddr vaddr, AccessType access,
                    Privilege privilege);

    /**
     * Physical address of the level-@p level entry that @p vaddr's
     * walk visits (no permission checks) — what an attack corrupts
     * and what invariant checkers inspect.  Returns 0 on a
     * non-present intermediate entry.
     */
    Addr entryAddress(Pfn root, VAddr vaddr, unsigned level);

    /** Read the entry at @p level for @p vaddr (raw, unchecked). */
    std::uint64_t entryAt(Pfn root, VAddr vaddr, unsigned level);

    /** The descriptor this walker decodes entries with. */
    const Arch &arch() const { return arch_; }

    /** Counters: walks, faults, leafLevel<n> hits. */
    StatGroup &stats() { return stats_; }

  private:
    /** Largest level count any descriptor admits. */
    static constexpr unsigned maxLevels = 4;

    dram::DramModule &module_;
    const Arch &arch_;
    StatGroup stats_;
    StatId walksId_;
    StatId faultsId_;
    /** Pre-registered "leafLevel<n>" handles, indexed by level. */
    StatId leafLevelIds_[maxLevels + 1];
};

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_WALKER_HH
