#include "paging/walker.hh"

#include <string>

namespace ctamem::paging {

PageWalker::PageWalker(dram::DramModule &module) : module_(module)
{
    walksId_ = stats_.registerCounter("walks");
    faultsId_ = stats_.registerCounter("faults");
    // The per-walk "leafLevel" + to_string allocation was the single
    // hottest stat; pre-register one handle per possible leaf level.
    leafLevelIds_[0] = walksId_; // unused
    for (unsigned level = 1; level <= maxLeafLevel; ++level) {
        leafLevelIds_[level] = stats_.registerCounter(
            "leafLevel" + std::to_string(level));
    }
}

WalkResult
PageWalker::walk(Pfn root, VAddr vaddr, AccessType access,
                 Privilege privilege)
{
    stats_.at(walksId_).increment();
    const std::uint64_t capacity = module_.geometry().capacity();

    WalkResult result;
    result.writable = true;
    result.user = true;

    Pfn table = root;
    for (unsigned level = pagingLevels; level >= 1; --level) {
        const Addr entry_addr =
            pfnToAddr(table) + tableIndex(vaddr, level) * 8;
        if (entry_addr + 8 > capacity) {
            result.fault = Fault::OutOfRange;
            stats_.at(faultsId_).increment();
            return result;
        }
        const Pte entry(module_.readU64(entry_addr));

        if (!entry.present()) {
            result.fault = Fault::NotPresent;
            stats_.at(faultsId_).increment();
            return result;
        }

        // Effective permissions are the AND across levels.
        result.writable = result.writable && entry.writable();
        result.user = result.user && entry.user();

        const bool leaf =
            level == 1 || (level <= 3 && entry.pageSize());
        if (leaf) {
            if (privilege == Privilege::User && !result.user) {
                result.fault = Fault::Protection;
                stats_.at(faultsId_).increment();
                return result;
            }
            if (access == AccessType::Write && !result.writable) {
                result.fault = Fault::Protection;
                stats_.at(faultsId_).increment();
                return result;
            }
            const std::uint64_t coverage = levelCoverage(level);
            const Addr base = pfnToAddr(entry.pfn());
            // Large-page leaves interpret the PFN field at their own
            // granularity: low PFN bits select within the big page.
            const Addr phys =
                (base & ~(coverage - 1)) | (vaddr & (coverage - 1));
            if (phys >= capacity) {
                result.fault = Fault::OutOfRange;
                stats_.at(faultsId_).increment();
                return result;
            }
            result.phys = phys;
            result.leafLevel = level;
            stats_.at(leafLevelIds_[level]).increment();
            return result;
        }

        table = entry.pfn();
        if (pfnToAddr(table) >= capacity) {
            result.fault = Fault::OutOfRange;
            stats_.at(faultsId_).increment();
            return result;
        }
    }
    // Unreachable: level 1 always returns.
    result.fault = Fault::NotPresent;
    return result;
}

Addr
PageWalker::entryAddress(Pfn root, VAddr vaddr, unsigned level)
{
    const std::uint64_t capacity = module_.geometry().capacity();
    Pfn table = root;
    for (unsigned current = pagingLevels; current >= 1; --current) {
        const Addr entry_addr =
            pfnToAddr(table) + tableIndex(vaddr, current) * 8;
        if (current == level)
            return entry_addr;
        if (entry_addr + 8 > capacity)
            return 0;
        const Pte entry(module_.readU64(entry_addr));
        if (!entry.present() || entry.pageSize())
            return 0;
        table = entry.pfn();
    }
    return 0;
}

Pte
PageWalker::entryAt(Pfn root, VAddr vaddr, unsigned level)
{
    const Addr addr = entryAddress(root, vaddr, level);
    return addr ? Pte(module_.readU64(addr)) : Pte(0);
}

} // namespace ctamem::paging
