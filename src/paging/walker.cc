#include "paging/walker.hh"

#include <string>

namespace ctamem::paging {

PageWalker::PageWalker(dram::DramModule &module, const Arch &arch)
    : module_(module), arch_(arch)
{
    walksId_ = stats_.registerCounter("walks");
    faultsId_ = stats_.registerCounter("faults");
    // The per-walk "leafLevel" + to_string allocation was the single
    // hottest stat; pre-register one handle per possible leaf level.
    for (unsigned level = 0; level <= maxLevels; ++level)
        leafLevelIds_[level] = walksId_; // unused slots
    for (unsigned level = 1; level <= arch_.maxLeafLevel; ++level) {
        leafLevelIds_[level] = stats_.registerCounter(
            "leafLevel" + std::to_string(level));
    }
}

WalkResult
PageWalker::walk(Pfn root, VAddr vaddr, AccessType access,
                 Privilege privilege)
{
    stats_.at(walksId_).increment();
    const std::uint64_t capacity = module_.geometry().capacity();

    WalkResult result;
    result.writable = true;
    result.user = true;

    Pfn table = root;
    for (unsigned level = arch_.levels; level >= 1; --level) {
        const Addr entry_addr =
            pfnToAddr(table) + arch_.tableIndex(vaddr, level) * 8;
        if (entry_addr + 8 > capacity) {
            result.fault = Fault::OutOfRange;
            stats_.at(faultsId_).increment();
            return result;
        }
        const std::uint64_t entry = module_.readU64(entry_addr);

        if (!arch_.present(entry)) {
            result.fault = Fault::NotPresent;
            stats_.at(faultsId_).increment();
            return result;
        }

        const bool leaf = arch_.leafAt(entry, level);
        if (arch_.hierarchicalPerms) {
            // Effective permissions are the AND across levels.
            result.writable = result.writable && arch_.writable(entry);
            result.user = result.user && arch_.user(entry);
        } else if (leaf) {
            // ARM table descriptors carry no permission bits; the
            // leaf alone decides.
            result.writable = arch_.writable(entry);
            result.user = arch_.user(entry);
        }

        if (leaf) {
            if (privilege == Privilege::User && !result.user) {
                result.fault = Fault::Protection;
                stats_.at(faultsId_).increment();
                return result;
            }
            if (access == AccessType::Write && !result.writable) {
                result.fault = Fault::Protection;
                stats_.at(faultsId_).increment();
                return result;
            }
            const std::uint64_t coverage = arch_.levelCoverage(level);
            const Addr base = pfnToAddr(arch_.pfn(entry));
            // Large-page leaves interpret the pointer field at their
            // own granularity: low bits select within the big page.
            const Addr phys =
                (base & ~(coverage - 1)) | (vaddr & (coverage - 1));
            if (phys >= capacity) {
                result.fault = Fault::OutOfRange;
                stats_.at(faultsId_).increment();
                return result;
            }
            result.phys = phys;
            result.leafLevel = level;
            stats_.at(leafLevelIds_[level]).increment();
            return result;
        }

        table = arch_.pfn(entry);
        if (pfnToAddr(table) >= capacity) {
            result.fault = Fault::OutOfRange;
            stats_.at(faultsId_).increment();
            return result;
        }
    }
    // Unreachable: level 1 always returns.
    result.fault = Fault::NotPresent;
    return result;
}

Addr
PageWalker::entryAddress(Pfn root, VAddr vaddr, unsigned level)
{
    const std::uint64_t capacity = module_.geometry().capacity();
    Pfn table = root;
    for (unsigned current = arch_.levels; current >= 1; --current) {
        const Addr entry_addr =
            pfnToAddr(table) + arch_.tableIndex(vaddr, current) * 8;
        if (current == level)
            return entry_addr;
        if (entry_addr + 8 > capacity)
            return 0;
        const std::uint64_t entry = module_.readU64(entry_addr);
        if (!arch_.present(entry) || arch_.blockMarked(entry))
            return 0;
        table = arch_.pfn(entry);
    }
    return 0;
}

std::uint64_t
PageWalker::entryAt(Pfn root, VAddr vaddr, unsigned level)
{
    const Addr addr = entryAddress(root, vaddr, level);
    return addr ? module_.readU64(addr) : 0;
}

} // namespace ctamem::paging
