/**
 * @file
 * x86-64 page-table entry layout (Intel SDM Vol. 3, 4-level paging).
 *
 * The bits that matter to the paper:
 *  - the physical frame number field (bits 12..51): the "monotonic
 *    pointer" CTA protects;
 *  - bit 7 (PS): in PDPT/PD entries, '1' means the entry maps a
 *    1 GiB / 2 MiB data page rather than pointing at a lower table
 *    (the Section 7 multi-page-size discussion);
 *  - U/S and R/W, which decide what a user-mode attacker may touch.
 */

#ifndef CTAMEM_PAGING_PTE_HH
#define CTAMEM_PAGING_PTE_HH

#include <cstdint>

#include "common/bitops.hh"
#include "common/types.hh"

namespace ctamem::paging {

/** Software view of page permissions. */
struct PageFlags
{
    bool writable = false;
    bool user = false;
    bool noExecute = false;
};

/** One 64-bit page-table entry. */
class Pte
{
  public:
    static constexpr unsigned presentBit = 0;
    static constexpr unsigned writableBit = 1;
    static constexpr unsigned userBit = 2;
    static constexpr unsigned accessedBit = 5;
    static constexpr unsigned dirtyBit = 6;
    static constexpr unsigned pageSizeBit = 7;
    static constexpr unsigned nxBit = 63;
    static constexpr unsigned pfnLo = 12;
    static constexpr unsigned pfnHi = 51;

    constexpr Pte() = default;
    constexpr explicit Pte(std::uint64_t raw) : raw_(raw) {}

    /** Build a present leaf/table entry. */
    static Pte
    make(Pfn pfn, const PageFlags &flags, bool page_size = false)
    {
        std::uint64_t raw = 0;
        raw |= 1ULL << presentBit;
        if (flags.writable)
            raw |= 1ULL << writableBit;
        if (flags.user)
            raw |= 1ULL << userBit;
        if (page_size)
            raw |= 1ULL << pageSizeBit;
        if (flags.noExecute)
            raw |= 1ULL << nxBit;
        raw = insertBits(raw, pfnHi, pfnLo, pfn);
        return Pte(raw);
    }

    std::uint64_t raw() const { return raw_; }

    bool present() const { return bit(raw_, presentBit); }
    bool writable() const { return bit(raw_, writableBit); }
    bool user() const { return bit(raw_, userBit); }
    bool accessed() const { return bit(raw_, accessedBit); }
    bool dirty() const { return bit(raw_, dirtyBit); }
    bool pageSize() const { return bit(raw_, pageSizeBit); }
    bool noExecute() const { return bit(raw_, nxBit); }

    /** The physical frame number field — the monotonic pointer. */
    Pfn pfn() const { return bits(raw_, pfnHi, pfnLo); }

    void setPfn(Pfn pfn) { raw_ = insertBits(raw_, pfnHi, pfnLo, pfn); }
    void setAccessed() { raw_ |= 1ULL << accessedBit; }
    void setDirty() { raw_ |= 1ULL << dirtyBit; }

    bool operator==(const Pte &other) const = default;

  private:
    std::uint64_t raw_ = 0;
};

/** Entries per 4 KiB page-table page. */
constexpr std::uint64_t ptesPerPage = pageSize / sizeof(std::uint64_t);

/** Number of paging levels (PML4, PDPT, PD, PT). */
constexpr unsigned pagingLevels = 4;

/** 9-bit table index of @p vaddr at @p level (4 = PML4 ... 1 = PT). */
constexpr std::uint64_t
tableIndex(VAddr vaddr, unsigned level)
{
    const unsigned shift = 12 + 9 * (level - 1);
    return (vaddr >> shift) & 0x1ff;
}

/** Bytes mapped by one entry at @p level (4 KiB / 2 MiB / 1 GiB...). */
constexpr std::uint64_t
levelCoverage(unsigned level)
{
    return 1ULL << (12 + 9 * (level - 1));
}

} // namespace ctamem::paging

#endif // CTAMEM_PAGING_PTE_HH
