#include "paging/arch.hh"

#include "common/log.hh"

namespace ctamem::paging {

const Arch &
resolveArch(Isa isa, std::uint64_t granule_bytes)
{
    if (isa == Isa::X86_64) {
        if (granule_bytes != 4 * KiB) {
            fatal("x86-64 paging has a fixed 4 KiB granule, not ",
                  granule_bytes, " bytes");
        }
        return kX86_64;
    }
    switch (granule_bytes) {
      case 4 * KiB:
        return kAArch64_4K;
      case 16 * KiB:
        return kAArch64_16K;
      case 64 * KiB:
        return kAArch64_64K;
      default:
        fatal("aarch64 granule must be 4 KiB, 16 KiB or 64 KiB, not ",
              granule_bytes, " bytes");
    }
}

const char *
isaName(Isa isa)
{
    return isa == Isa::X86_64 ? "x86_64" : "aarch64";
}

bool
parseIsa(const std::string &name, Isa &out)
{
    if (name == "x86_64") {
        out = Isa::X86_64;
        return true;
    }
    if (name == "aarch64") {
        out = Isa::AArch64;
        return true;
    }
    return false;
}

} // namespace ctamem::paging
