#include "paging/tlb.hh"

namespace ctamem::paging {

const TlbEntry *
Tlb::lookup(Pfn root, VAddr vaddr)
{
    const VAddr vpn = vaddr >> pageShift;
    auto it = index_.find(key(root, vpn));
    if (it == index_.end()) {
        stats_.counter("misses").increment();
        return nullptr;
    }
    // Verify (hash collisions possible with the flat key).
    if (it->second->root != root || it->second->vpn != vpn) {
        stats_.counter("misses").increment();
        return nullptr;
    }
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    stats_.counter("hits").increment();
    return &*lru_.begin();
}

void
Tlb::insert(const TlbEntry &entry)
{
    const std::uint64_t k = key(entry.root, entry.vpn);
    auto it = index_.find(k);
    if (it != index_.end()) {
        lru_.erase(it->second);
        index_.erase(it);
    }
    if (lru_.size() >= capacity_) {
        const TlbEntry &victim = lru_.back();
        index_.erase(key(victim.root, victim.vpn));
        lru_.pop_back();
        stats_.counter("evictions").increment();
    }
    lru_.push_front(entry);
    index_[k] = lru_.begin();
}

void
Tlb::flushAll()
{
    lru_.clear();
    index_.clear();
    stats_.counter("flushes").increment();
}

void
Tlb::flushPage(VAddr vaddr)
{
    const VAddr vpn = vaddr >> pageShift;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->vpn == vpn) {
            index_.erase(key(it->root, it->vpn));
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace ctamem::paging
