#include "paging/tlb.hh"

#include <bit>

namespace ctamem::paging {

Tlb::Tlb(std::size_t capacity, std::size_t ways, unsigned page_shift)
    : pageShift_(page_shift)
{
    if (capacity == 0)
        capacity = 1;
    if (ways == 0)
        ways = 1;
    ways_ = std::min(ways, capacity);
    sets_ = std::bit_floor(capacity / ways_);
    if (sets_ == 0)
        sets_ = 1;
    if (sets_ == 1)
        ways_ = capacity; // fully associative: keep every entry
    slots_.resize(sets_ * ways_);
    clocks_.resize(sets_, 0);
    hitsId_ = stats_.registerCounter("hits");
    missesId_ = stats_.registerCounter("misses");
    evictionsId_ = stats_.registerCounter("evictions");
    flushesId_ = stats_.registerCounter("flushes");
}

const TlbEntry *
Tlb::lookup(Pfn root, VAddr vaddr, std::uint64_t arch_tag)
{
    const VAddr vpn = vaddr >> pageShift_;
    const std::size_t set = setIndex(root, vpn, arch_tag);
    Slot *base = slots_.data() + set * ways_;
    for (std::size_t way = 0; way < ways_; ++way) {
        Slot &slot = base[way];
        if (slot.valid && slot.entry.vpn == vpn &&
            slot.entry.root == root &&
            slot.entry.archTag == arch_tag) {
            slot.stamp = ++clocks_[set];
            stats_.at(hitsId_).increment();
            return &slot.entry;
        }
    }
    stats_.at(missesId_).increment();
    return nullptr;
}

void
Tlb::insert(const TlbEntry &entry)
{
    const std::size_t set =
        setIndex(entry.root, entry.vpn, entry.archTag);
    Slot *base = slots_.data() + set * ways_;
    Slot *victim = nullptr;
    for (std::size_t way = 0; way < ways_; ++way) {
        Slot &slot = base[way];
        if (!slot.valid) {
            if (!victim || victim->valid)
                victim = &slot;
            continue;
        }
        if (slot.entry.vpn == entry.vpn &&
            slot.entry.root == entry.root &&
            slot.entry.archTag == entry.archTag) {
            // Refresh in place.
            slot.entry = entry;
            slot.stamp = ++clocks_[set];
            return;
        }
        if (!victim || (victim->valid && slot.stamp < victim->stamp))
            victim = &slot;
    }
    if (victim->valid)
        stats_.at(evictionsId_).increment();
    else
        ++live_;
    victim->entry = entry;
    victim->valid = true;
    victim->stamp = ++clocks_[set];
}

void
Tlb::flushAll()
{
    for (Slot &slot : slots_)
        slot.valid = false;
    for (std::uint64_t &clock : clocks_)
        clock = 0;
    live_ = 0;
    stats_.at(flushesId_).increment();
}

void
Tlb::flushPage(VAddr vaddr)
{
    // The set index depends on the root, so a (vpn, any-root) flush
    // must scan the whole array — same cost as the old list walk.
    const VAddr vpn = vaddr >> pageShift_;
    for (Slot &slot : slots_) {
        if (slot.valid && slot.entry.vpn == vpn) {
            slot.valid = false;
            --live_;
        }
    }
}

} // namespace ctamem::paging
