#include "paging/address_space.hh"

#include "common/log.hh"

namespace ctamem::paging {

AddressSpace::AddressSpace(dram::DramModule &module, PteAllocFn alloc,
                           PteFreeFn free_fn, Pfn root,
                           const Arch &arch)
    : module_(module), alloc_(std::move(alloc)),
      free_(std::move(free_fn)), root_(root), arch_(arch)
{
}

std::optional<Pfn>
AddressSpace::ensureTable(VAddr vaddr, unsigned target)
{
    Pfn table = root_;
    for (unsigned level = arch_.levels; level > target; --level) {
        const Addr entry_addr =
            pfnToAddr(table) + arch_.tableIndex(vaddr, level) * 8;
        std::uint64_t entry = module_.readU64(entry_addr);
        if (!arch_.present(entry)) {
            auto fresh = alloc_(level - 1);
            if (!fresh)
                return std::nullopt;
            tables_.push_back(
                TableRecord{*fresh, level - 1, entry_addr});
            entry = arch_.makeTable(*fresh);
            module_.writeU64(entry_addr, entry);
        } else if (arch_.blockMarked(entry)) {
            // A block leaf blocks descent.
            return std::nullopt;
        }
        table = arch_.pfn(entry);
    }
    return table;
}

bool
AddressSpace::map(VAddr vaddr, Pfn pfn, const PageFlags &flags)
{
    auto table = ensureTable(vaddr, 1);
    if (!table)
        return false;
    const Addr entry_addr =
        pfnToAddr(*table) + arch_.tableIndex(vaddr, 1) * 8;
    module_.writeU64(entry_addr, arch_.makeLeaf(pfn, flags, 1));
    return true;
}

bool
AddressSpace::mapLarge(VAddr vaddr, Pfn pfn, const PageFlags &flags,
                       unsigned level)
{
    if (level < 2 || level > arch_.maxLeafLevel) {
        fatal("mapLarge: level must be 2..", arch_.maxLeafLevel,
              " on ", arch_.name, ", got ", level);
    }
    if (vaddr & (arch_.levelCoverage(level) - 1))
        fatal("mapLarge: vaddr not aligned to the page size");
    auto table = ensureTable(vaddr, level);
    if (!table)
        return false;
    const Addr entry_addr =
        pfnToAddr(*table) + arch_.tableIndex(vaddr, level) * 8;
    module_.writeU64(entry_addr, arch_.makeLeaf(pfn, flags, level));
    return true;
}

bool
AddressSpace::unmap(VAddr vaddr)
{
    Pfn table = root_;
    for (unsigned level = arch_.levels; level >= 1; --level) {
        const Addr entry_addr =
            pfnToAddr(table) + arch_.tableIndex(vaddr, level) * 8;
        const std::uint64_t entry = module_.readU64(entry_addr);
        if (!arch_.present(entry))
            return false;
        if (level == 1 || arch_.blockMarked(entry)) {
            module_.writeU64(entry_addr, 0);
            return true;
        }
        table = arch_.pfn(entry);
    }
    return false;
}

std::optional<TableRecord>
AddressSpace::evictLeafTable()
{
    for (auto it = tables_.begin(); it != tables_.end(); ++it) {
        if (it->level != 1)
            continue;
        const TableRecord record = *it;
        module_.writeU64(record.parentEntryAddr, 0);
        tables_.erase(it);
        return record;
    }
    return std::nullopt;
}

void
AddressSpace::releaseTables()
{
    for (const TableRecord &record : tables_)
        free_(record.pfn);
    tables_.clear();
}

} // namespace ctamem::paging
