#include "paging/address_space.hh"

#include "common/log.hh"

namespace ctamem::paging {

AddressSpace::AddressSpace(dram::DramModule &module, PteAllocFn alloc,
                           PteFreeFn free_fn, Pfn root)
    : module_(module), alloc_(std::move(alloc)),
      free_(std::move(free_fn)), root_(root)
{
}

std::optional<Pfn>
AddressSpace::ensureTable(VAddr vaddr, unsigned target)
{
    Pfn table = root_;
    for (unsigned level = pagingLevels; level > target; --level) {
        const Addr entry_addr =
            pfnToAddr(table) + tableIndex(vaddr, level) * 8;
        Pte entry(module_.readU64(entry_addr));
        if (!entry.present()) {
            auto fresh = alloc_(level - 1);
            if (!fresh)
                return std::nullopt;
            tables_.push_back(
                TableRecord{*fresh, level - 1, entry_addr});
            // Table entries carry the most permissive flags; leaves
            // enforce the real policy (the Linux convention).
            entry = Pte::make(*fresh, PageFlags{true, true, false});
            module_.writeU64(entry_addr, entry.raw());
        } else if (entry.pageSize()) {
            // A large-page leaf blocks descent.
            return std::nullopt;
        }
        table = entry.pfn();
    }
    return table;
}

bool
AddressSpace::map(VAddr vaddr, Pfn pfn, const PageFlags &flags)
{
    auto table = ensureTable(vaddr, 1);
    if (!table)
        return false;
    const Addr entry_addr =
        pfnToAddr(*table) + tableIndex(vaddr, 1) * 8;
    module_.writeU64(entry_addr, Pte::make(pfn, flags).raw());
    return true;
}

bool
AddressSpace::mapLarge(VAddr vaddr, Pfn pfn, const PageFlags &flags,
                       unsigned level)
{
    if (level < 2 || level > 3)
        fatal("mapLarge: level must be 2 (2 MiB) or 3 (1 GiB)");
    if (vaddr & (levelCoverage(level) - 1))
        fatal("mapLarge: vaddr not aligned to the page size");
    auto table = ensureTable(vaddr, level);
    if (!table)
        return false;
    const Addr entry_addr =
        pfnToAddr(*table) + tableIndex(vaddr, level) * 8;
    module_.writeU64(entry_addr,
                     Pte::make(pfn, flags, /*page_size=*/true).raw());
    return true;
}

bool
AddressSpace::unmap(VAddr vaddr)
{
    Pfn table = root_;
    for (unsigned level = pagingLevels; level >= 1; --level) {
        const Addr entry_addr =
            pfnToAddr(table) + tableIndex(vaddr, level) * 8;
        const Pte entry(module_.readU64(entry_addr));
        if (!entry.present())
            return false;
        if (level == 1 || entry.pageSize()) {
            module_.writeU64(entry_addr, 0);
            return true;
        }
        table = entry.pfn();
    }
    return false;
}

std::optional<TableRecord>
AddressSpace::evictLeafTable()
{
    for (auto it = tables_.begin(); it != tables_.end(); ++it) {
        if (it->level != 1)
            continue;
        const TableRecord record = *it;
        module_.writeU64(record.parentEntryAddr, 0);
        tables_.erase(it);
        return record;
    }
    return std::nullopt;
}

void
AddressSpace::releaseTables()
{
    for (const TableRecord &record : tables_)
        free_(record.pfn);
    tables_.clear();
}

} // namespace ctamem::paging
