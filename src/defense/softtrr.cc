#include "defense/softtrr.hh"

#include <algorithm>

#include "defense/registry.hh"

namespace ctamem::defense {

bool
SoftTrrObserver::onHammer(const dram::DisturbanceEvent &event)
{
    const std::uint64_t key =
        (event.bank << 40) | event.aggressorRow;

    Slot *slot = nullptr;
    for (Slot &candidate : table_) {
        if (candidate.key == key) {
            slot = &candidate;
            break;
        }
    }
    if (!slot) {
        if (table_.size() < maxTracked_) {
            table_.push_back(Slot{key, 0});
            slot = &table_.back();
        } else {
            // Recycle the coldest slot (first on ties, so eviction
            // is deterministic).
            slot = &*std::min_element(
                table_.begin(), table_.end(),
                [](const Slot &a, const Slot &b) {
                    return a.count < b.count;
                });
            slot->key = key;
            slot->count = 0;
            ++evictions_;
        }
    }

    slot->count += event.activations;
    if (slot->count >= threshold_) {
        // Target-row refresh: re-read the victims, restoring their
        // charge; the pass induces no flips.
        slot->count = 0;
        ++mitigations_;
        return true;
    }
    return false;
}

namespace detail {

void
registerSoftTrrDefense(Registry &registry)
{
    registry.add(DefenseSpec{
        DefenseKind::SoftTrr, "softtrr", "SoftTRR",
        /*configureKernel=*/nullptr, // Standard policy: the defense
                                     // is software-only by design
        [](const DefenseParams &params) {
            return std::make_unique<SoftTrrObserver>(
                params.softTrrThreshold, params.softTrrTracked);
        }});
}

} // namespace detail

} // namespace ctamem::defense
