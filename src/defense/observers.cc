#include "defense/observers.hh"

#include "common/combinatorics.hh"
#include "common/log.hh"

namespace ctamem::defense {

namespace {

std::vector<std::uint64_t>
rngWords(const Rng &rng)
{
    const auto state = rng.state();
    return {state.begin(), state.end()};
}

void
loadRngWords(Rng &rng, const std::vector<std::uint64_t> &words,
             const char *who)
{
    if (words.size() != 4) {
        fatal(who, ": RNG state must be 4 words, got ",
              words.size());
    }
    rng.setState({words[0], words[1], words[2], words[3]});
}

} // namespace

std::vector<std::uint64_t>
ParaObserver::rngState() const
{
    return rngWords(rng_);
}

void
ParaObserver::setRngState(const std::vector<std::uint64_t> &state)
{
    loadRngWords(rng_, state, "PARA");
}

std::vector<std::uint64_t>
RefreshBoostObserver::rngState() const
{
    return rngWords(rng_);
}

void
RefreshBoostObserver::setRngState(
    const std::vector<std::uint64_t> &state)
{
    loadRngWords(rng_, state, "RefreshBoost");
}

bool
ParaObserver::onHammer(const dram::DisturbanceEvent &event)
{
    // Victims survive one pass only if no activation triggered the
    // probabilistic neighbour refresh.
    const double p_refreshed = atLeastOne(
        probability_, static_cast<double>(event.activations));
    if (rng_.chance(p_refreshed)) {
        ++mitigations_;
        return true;
    }
    return false;
}

bool
RefreshBoostObserver::onHammer(const dram::DisturbanceEvent &)
{
    // One pass in `factor_` still accumulates enough disturbance
    // within the shortened refresh window.
    if (rng_.below(factor_) != 0) {
        ++mitigations_;
        return true;
    }
    return false;
}

bool
AnvilObserver::observe(std::uint64_t bank, std::uint64_t row,
                       std::uint64_t activations)
{
    ++passCount_;
    if (passCount_ % windowPasses_ == 0)
        decayWindow();
    std::uint64_t &count = counts_[{bank, row}];
    count += activations;
    return count >= threshold_;
}

void
AnvilObserver::decayWindow()
{
    counts_.clear();
}

bool
AnvilObserver::onHammer(const dram::DisturbanceEvent &event)
{
    if (observe(event.bank, event.aggressorRow, event.activations)) {
        ++detections_;
        ++mitigations_; // targeted neighbour refresh
        return true;
    }
    return false;
}

bool
AnvilObserver::noteBenignActivity(std::uint64_t bank,
                                  std::uint64_t row,
                                  std::uint64_t activations)
{
    if (observe(bank, row, activations)) {
        ++falsePositives_;
        return true;
    }
    return false;
}

} // namespace ctamem::defense
