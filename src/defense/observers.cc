#include "defense/observers.hh"

#include "common/combinatorics.hh"

namespace ctamem::defense {

bool
ParaObserver::onHammer(const dram::DisturbanceEvent &event)
{
    // Victims survive one pass only if no activation triggered the
    // probabilistic neighbour refresh.
    const double p_refreshed = atLeastOne(
        probability_, static_cast<double>(event.activations));
    if (rng_.chance(p_refreshed)) {
        ++mitigations_;
        return true;
    }
    return false;
}

bool
RefreshBoostObserver::onHammer(const dram::DisturbanceEvent &)
{
    // One pass in `factor_` still accumulates enough disturbance
    // within the shortened refresh window.
    if (rng_.below(factor_) != 0) {
        ++mitigations_;
        return true;
    }
    return false;
}

bool
AnvilObserver::observe(std::uint64_t bank, std::uint64_t row,
                       std::uint64_t activations)
{
    ++passCount_;
    if (passCount_ % windowPasses_ == 0)
        decayWindow();
    std::uint64_t &count = counts_[{bank, row}];
    count += activations;
    return count >= threshold_;
}

void
AnvilObserver::decayWindow()
{
    counts_.clear();
}

bool
AnvilObserver::onHammer(const dram::DisturbanceEvent &event)
{
    if (observe(event.bank, event.aggressorRow, event.activations)) {
        ++detections_;
        ++mitigations_; // targeted neighbour refresh
        return true;
    }
    return false;
}

bool
AnvilObserver::noteBenignActivity(std::uint64_t bank,
                                  std::uint64_t row,
                                  std::uint64_t activations)
{
    if (observe(bank, row, activations)) {
        ++falsePositives_;
        return true;
    }
    return false;
}

} // namespace ctamem::defense
