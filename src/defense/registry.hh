/**
 * @file
 * Name-keyed defense factory registry.
 *
 * A defense is two optional factories: a kernel-config hook (pick the
 * AllocPolicy and CTA tunables the machine boots with) and an
 * observer factory (the memory-controller / software mitigation side
 * plugged into the hammer engine).  `Machine::Machine` dispatches
 * through this table instead of switching on `DefenseKind`, so a new
 * defense — SoftTRR is the proof (defense/softtrr.*) — is registered
 * here without touching machine.cc or kernel.cc.
 */

#ifndef CTAMEM_DEFENSE_REGISTRY_HH
#define CTAMEM_DEFENSE_REGISTRY_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hh"
#include "defense/defense.hh"
#include "kernel/kernel.hh"

namespace ctamem::defense {

/**
 * Every tunable a defense factory may consult, decoupled from the
 * sim layer's MachineConfig (which copies its fields in here) so the
 * defense registry stays below sim in the layer order.
 */
struct DefenseParams
{
    std::uint64_t seed = seeds::kMachine; //!< machine seed (streams
                                          //!< are derived per defense)
    std::uint64_t ptpBytes = 4 * MiB;     //!< for the CTA defenses
    bool ctaMultiLevelZones = false;      //!< per-level PTP zoning
    bool ctaScreenPageSize = false;       //!< PS-bit frame screening
    unsigned refreshBoostFactor = 4;      //!< for RefreshBoost
    double paraProbability = 0.001;       //!< for PARA
    std::uint64_t anvilThreshold = 1'000'000; //!< for ANVIL
    std::uint64_t softTrrThreshold = 500'000; //!< for SoftTRR
    std::uint64_t softTrrTracked = 32;        //!< for SoftTRR
    unsigned trrSamplers = 4;                 //!< for TrrSampler
    unsigned trrWindow = 8;                   //!< for TrrSampler
};

/** One registered defense. */
struct DefenseSpec
{
    DefenseKind kind = DefenseKind::None;
    std::string name;    //!< canonical manifest token ("cta")
    std::string display; //!< table heading ("CTA")

    /**
     * Adjust the kernel boot configuration (allocation policy, CTA
     * tunables).  Null means "boot the vulnerable Standard policy".
     */
    std::function<void(const DefenseParams &, kernel::KernelConfig &)>
        configureKernel;

    /**
     * Build the mitigation observer plugged into the hammer engine.
     * Null means the defense has no observer side.
     */
    std::function<std::unique_ptr<ObserverDefense>(
        const DefenseParams &)>
        makeObserver;
};

/** The process-wide defense table (built-ins self-register). */
class Registry
{
  public:
    static Registry &instance();

    /** Register a spec; fatals on a duplicate kind or name. */
    void add(DefenseSpec spec);

    const DefenseSpec *find(DefenseKind kind) const;
    /** Lookup by canonical token or display name. */
    const DefenseSpec *find(std::string_view name) const;

    /** All specs, in registration order (stable addresses). */
    const std::vector<std::unique_ptr<DefenseSpec>> &all() const
    {
        return specs_;
    }

  private:
    Registry() = default;

    std::vector<std::unique_ptr<DefenseSpec>> specs_;
};

/** Canonical manifest token (e.g. "cta-restricted"). */
const char *defenseToken(DefenseKind kind);

} // namespace ctamem::defense

#endif // CTAMEM_DEFENSE_REGISTRY_HH
