/**
 * @file
 * In-DRAM Target Row Refresh with probabilistic activation sampling —
 * the mitigation class shipping in DDR4 devices, and the one
 * Blacksmith-style frequency/phase patterns are designed to slip
 * past (Jattke et al., "Blacksmith: Scalable Rowhammering in the
 * Frequency Domain").
 *
 * The device keeps a handful of sampler slots per bank.  Within each
 * REF-to-REF window it can only observe the first few activate
 * commands (a fixed sampling window: real TRR implementations latch
 * early ACTs because the sampler logic shares the command decoder);
 * observed aggressors fill the slots by reservoir sampling, so every
 * *eligible* activation has an equal chance of being held when REF
 * arrives.  At REF, the rows adjacent to each sampled aggressor get a
 * targeted refresh — wiping whatever disturbance pressure they
 * carried — and the reservoir resets for the next window.
 *
 * The bypass the fuzzer searches for is exactly the published one:
 * lead each interval with decoy activations that monopolize the
 * sampling window, then hammer the real aggressor pair in later
 * phases where the sampler is blind.  Uniform (untimed) hammering,
 * by contrast, is a whole window of identical activations — the
 * sampler always holds the aggressor at REF time, so those passes
 * are reliably suppressed.
 */

#ifndef CTAMEM_DEFENSE_TRR_SAMPLER_HH
#define CTAMEM_DEFENSE_TRR_SAMPLER_HH

#include <vector>

#include "common/rng.hh"
#include "defense/defense.hh"

namespace ctamem::defense {

class Registry;

/** In-DRAM TRR sampler observer. */
class TrrSamplerObserver : public ObserverDefense
{
  public:
    explicit TrrSamplerObserver(unsigned samplers = 4,
                                unsigned window = 8,
                                std::uint64_t seed = 0x7225)
        : samplers_(samplers ? samplers : 1),
          window_(window ? window : 1), rng_(seed)
    {
        sampled_.reserve(samplers_);
    }

    const char *name() const override { return "TRR-sampler"; }

    bool onHammer(const dram::DisturbanceEvent &event) override;

    void onRef(const dram::RefEvent &event,
               std::vector<std::uint64_t> &refresh_rows) override;

    /** Aggressor rows currently held in the reservoir. */
    std::size_t sampledRows() const { return sampled_.size(); }

    double
    overheadFactor() const override
    {
        // A few targeted refreshes folded into REFs the device issues
        // anyway; in-DRAM TRR is marketed as free.
        return 0.001;
    }

    std::vector<std::uint64_t>
    rngState() const override
    {
        const auto words = rng_.state();
        return {words.begin(), words.end()};
    }

    void
    setRngState(const std::vector<std::uint64_t> &state) override
    {
        if (state.size() != 4)
            return;
        rng_.setState({state[0], state[1], state[2], state[3]});
    }

  private:
    unsigned samplers_; //!< reservoir slots
    unsigned window_;   //!< eligible burst phases per interval
    Rng rng_;
    std::vector<std::uint64_t> sampled_; //!< held aggressor rows
    std::uint64_t eligibleSeen_ = 0;     //!< eligible bursts this window
};

namespace detail {

/** Called by the registry bootstrap; registers the "trr" spec. */
void registerTrrSamplerDefense(Registry &registry);

} // namespace detail

} // namespace ctamem::defense

#endif // CTAMEM_DEFENSE_TRR_SAMPLER_HH
