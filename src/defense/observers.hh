/**
 * @file
 * Concrete RowHammer mitigation observers: PARA, refresh boosting,
 * and ANVIL-style detection.
 */

#ifndef CTAMEM_DEFENSE_OBSERVERS_HH
#define CTAMEM_DEFENSE_OBSERVERS_HH

#include <map>

#include "common/rng.hh"
#include "defense/defense.hh"

namespace ctamem::defense {

/**
 * PARA (Kim et al. ISCA'14): on every row close, refresh the adjacent
 * rows with probability p.  Over the ~1.3M activations of one hammer
 * pass the victims are refreshed with probability 1 - (1-p)^N, which
 * is essentially 1 for practical p — PARA works, at the price of a
 * memory-controller change legacy systems cannot get (the paper's
 * argument for CTA).
 */
class ParaObserver : public ObserverDefense
{
  public:
    explicit ParaObserver(double probability = 0.001,
                          std::uint64_t seed = seeds::kParaStream)
        : probability_(probability), rng_(seed)
    {}

    const char *name() const override { return "PARA"; }

    bool onHammer(const dram::DisturbanceEvent &event) override;

    double
    overheadFactor() const override
    {
        // Two extra neighbour refreshes per activation with prob p.
        return 2.0 * probability_;
    }

    std::vector<std::uint64_t> rngState() const override;
    void setRngState(const std::vector<std::uint64_t> &state) override;

  private:
    double probability_;
    Rng rng_;
};

/**
 * Refresh-rate boosting: refreshing k times faster shortens the
 * hammer window, so only passes that fit k times the activation
 * budget trip cells.  Modeled as suppressing a pass unless a
 * 1-in-k deterministic chance lets it through — preserving the
 * paper's observation that even high rates carry no guarantee.
 */
class RefreshBoostObserver : public ObserverDefense
{
  public:
    explicit RefreshBoostObserver(unsigned factor = 4,
                                  std::uint64_t seed =
                                      seeds::kRefreshBoostStream)
        : factor_(factor ? factor : 1), rng_(seed)
    {}

    const char *name() const override { return "RefreshBoost"; }

    bool onHammer(const dram::DisturbanceEvent &event) override;

    double
    overheadFactor() const override
    {
        return static_cast<double>(factor_);
    }

    std::vector<std::uint64_t> rngState() const override;
    void setRngState(const std::vector<std::uint64_t> &state) override;

  private:
    unsigned factor_;
    Rng rng_;
};

/**
 * ANVIL-style detection (Aweke et al. ASPLOS'16): watch per-row
 * activation counts through performance counters; rows exceeding the
 * threshold within a window get their neighbours refreshed and the
 * event is flagged.  Being heuristic, benign row-thrashing workloads
 * can trip it too (false positives), which the benches measure via
 * noteBenignActivity().
 */
class AnvilObserver : public ObserverDefense
{
  public:
    explicit AnvilObserver(std::uint64_t threshold = 200'000,
                           std::uint64_t window_passes = 8)
        : threshold_(threshold), windowPasses_(window_passes)
    {}

    const char *name() const override { return "ANVIL"; }

    bool onHammer(const dram::DisturbanceEvent &event) override;

    /** Feed benign access activity; returns true on false positive. */
    bool noteBenignActivity(std::uint64_t bank, std::uint64_t row,
                            std::uint64_t activations);

    bool triggered() const { return detections_ > 0; }
    std::uint64_t detections() const { return detections_; }
    std::uint64_t falsePositives() const { return falsePositives_; }

    double
    overheadFactor() const override
    {
        // Counter sampling overhead, small constant per the paper.
        return 0.01;
    }

  private:
    bool observe(std::uint64_t bank, std::uint64_t row,
                 std::uint64_t activations);
    void decayWindow();

    std::uint64_t threshold_;
    std::uint64_t windowPasses_;
    std::uint64_t passCount_ = 0;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
        counts_;
    std::uint64_t detections_ = 0;
    std::uint64_t falsePositives_ = 0;
};

} // namespace ctamem::defense

#endif // CTAMEM_DEFENSE_OBSERVERS_HH
