#include "defense/registry.hh"

#include "common/log.hh"
#include "defense/observers.hh"
#include "defense/softtrr.hh"
#include "defense/trr_sampler.hh"

namespace ctamem::defense {

namespace {

using kernel::AllocPolicy;
using kernel::KernelConfig;

/**
 * The defense families the paper compares (Table 1 columns), exactly
 * as the old `Machine::Machine` switch built them.
 */
void
registerBuiltinDefenses(Registry &registry)
{
    registry.add(DefenseSpec{DefenseKind::None, "none", "none",
                             nullptr, nullptr});

    registry.add(DefenseSpec{
        DefenseKind::Cta, "cta", "CTA",
        [](const DefenseParams &params, KernelConfig &kconfig) {
            kconfig.policy = AllocPolicy::Cta;
            kconfig.cta.ptpBytes = params.ptpBytes;
            kconfig.cta.multiLevelZones = params.ctaMultiLevelZones;
            kconfig.cta.screenPageSizeBit = params.ctaScreenPageSize;
        },
        nullptr});

    registry.add(DefenseSpec{
        DefenseKind::CtaRestricted, "cta-restricted",
        "CTA+restriction",
        [](const DefenseParams &params, KernelConfig &kconfig) {
            kconfig.policy = AllocPolicy::Cta;
            kconfig.cta.ptpBytes = params.ptpBytes;
            kconfig.cta.multiLevelZones = params.ctaMultiLevelZones;
            kconfig.cta.screenPageSizeBit = params.ctaScreenPageSize;
            kconfig.cta.minIndicatorZeros = 2;
        },
        nullptr});

    registry.add(DefenseSpec{
        DefenseKind::Catt, "catt", "CATT",
        [](const DefenseParams &, KernelConfig &kconfig) {
            kconfig.policy = AllocPolicy::Catt;
        },
        nullptr});

    registry.add(DefenseSpec{
        DefenseKind::Zebram, "zebram", "ZebRAM-lite",
        [](const DefenseParams &, KernelConfig &kconfig) {
            kconfig.policy = AllocPolicy::Zebram;
        },
        nullptr});

    registry.add(DefenseSpec{
        DefenseKind::RefreshBoost, "refresh", "refresh-boost",
        nullptr,
        [](const DefenseParams &params) {
            return std::make_unique<RefreshBoostObserver>(
                params.refreshBoostFactor,
                deriveSeed(params.seed, seeds::kRefreshBoostStream));
        }});

    registry.add(DefenseSpec{
        DefenseKind::Para, "para", "PARA", nullptr,
        [](const DefenseParams &params) {
            return std::make_unique<ParaObserver>(
                params.paraProbability,
                deriveSeed(params.seed, seeds::kParaStream));
        }});

    registry.add(DefenseSpec{
        DefenseKind::Anvil, "anvil", "ANVIL", nullptr,
        [](const DefenseParams &params) {
            return std::make_unique<AnvilObserver>(
                params.anvilThreshold);
        }});
}

} // namespace

Registry &
Registry::instance()
{
    static Registry *registry = [] {
        auto *r = new Registry;
        registerBuiltinDefenses(*r);
        // Extension defenses hook in here — each registers itself
        // against the table without touching the sim/kernel layers.
        detail::registerSoftTrrDefense(*r);
        detail::registerTrrSamplerDefense(*r);
        return r;
    }();
    return *registry;
}

void
Registry::add(DefenseSpec spec)
{
    for (const auto &existing : specs_) {
        if (existing->kind == spec.kind ||
            existing->name == spec.name) {
            fatal("defense registry: duplicate registration of \"",
                  spec.name, "\"");
        }
    }
    specs_.push_back(std::make_unique<DefenseSpec>(std::move(spec)));
}

const DefenseSpec *
Registry::find(DefenseKind kind) const
{
    for (const auto &spec : specs_)
        if (spec->kind == kind)
            return spec.get();
    return nullptr;
}

const DefenseSpec *
Registry::find(std::string_view name) const
{
    for (const auto &spec : specs_)
        if (spec->name == name || spec->display == name)
            return spec.get();
    return nullptr;
}

const char *
defenseName(DefenseKind kind)
{
    const DefenseSpec *spec = Registry::instance().find(kind);
    return spec ? spec->display.c_str() : "?";
}

const char *
defenseToken(DefenseKind kind)
{
    const DefenseSpec *spec = Registry::instance().find(kind);
    return spec ? spec->name.c_str() : "?";
}

std::optional<DefenseKind>
parseDefenseKind(std::string_view name)
{
    const DefenseSpec *spec = Registry::instance().find(name);
    if (!spec)
        return std::nullopt;
    return spec->kind;
}

} // namespace ctamem::defense
