/**
 * @file
 * SoftTRR: a software-only target-row-refresh defense (Zhang et al.,
 * "SoftTRR: Protect Page Tables against Rowhammer Attacks using
 * Software-only Target Row Refresh").
 *
 * The kernel samples row activations through the PMU and keeps a
 * bounded table of per-row counters; when a tracked row's activation
 * count crosses the refresh threshold within the decay window, the
 * adjacent (victim) rows are re-read — refreshing their cells — and
 * the counter resets.  Modeled here as a DisturbanceObserver: one
 * `onHammer` call is one sampled burst, a triggered refresh
 * suppresses the pass.
 *
 * The reproduction-scale simplification: real SoftTRR tracks only
 * rows adjacent to page-table pages; this observer tracks every
 * hammered row through the same bounded counter table (lowest-count
 * eviction), which is conservative for the single-machine sweeps the
 * benches run.  Its residual weakness is the same as the original's:
 * an attacker interleaving more aggressor rows than the table tracks
 * can evict counters before they trip.
 *
 * This defense exists to prove the registry layer out: it is wired
 * into sweeps purely via `defense::Registry` registration — no edits
 * to machine.cc or kernel.cc (see defense/softtrr.cc).
 */

#ifndef CTAMEM_DEFENSE_SOFTTRR_HH
#define CTAMEM_DEFENSE_SOFTTRR_HH

#include <vector>

#include "defense/defense.hh"

namespace ctamem::defense {

class Registry;

/** Software target-row-refresh observer. */
class SoftTrrObserver : public ObserverDefense
{
  public:
    explicit SoftTrrObserver(std::uint64_t threshold = 500'000,
                             std::uint64_t max_tracked = 32)
        : threshold_(threshold ? threshold : 1),
          maxTracked_(max_tracked ? max_tracked : 1)
    {}

    const char *name() const override { return "SoftTRR"; }

    bool onHammer(const dram::DisturbanceEvent &event) override;

    /** Rows currently holding a counter slot. */
    std::size_t trackedRows() const { return table_.size(); }

    /** Counter slots recycled because the table was full. */
    std::uint64_t evictions() const { return evictions_; }

    double
    overheadFactor() const override
    {
        // PMU sampling + occasional victim re-reads; the paper
        // measures ~1% on PTE-heavy workloads.
        return 0.01;
    }

  private:
    struct Slot
    {
        std::uint64_t key;   //!< (bank, device row) combined
        std::uint64_t count; //!< activations since the last refresh
    };

    std::uint64_t threshold_;
    std::uint64_t maxTracked_;
    std::vector<Slot> table_;
    std::uint64_t evictions_ = 0;
};

namespace detail {

/** Called by the registry bootstrap; registers the "softtrr" spec. */
void registerSoftTrrDefense(Registry &registry);

} // namespace detail

} // namespace ctamem::defense

#endif // CTAMEM_DEFENSE_SOFTTRR_HH
