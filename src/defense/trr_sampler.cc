#include "defense/trr_sampler.hh"

#include "defense/registry.hh"

namespace ctamem::defense {

bool
TrrSamplerObserver::onHammer(const dram::DisturbanceEvent &event)
{
    if (!event.timed) {
        // A whole-window untimed pass is one long run of identical
        // activations: the reservoir necessarily holds the aggressor
        // when REF arrives, so the victims are refreshed before any
        // of the window's charge loss can accumulate.  This is why
        // uniform hammering fails against in-DRAM TRR.
        ++mitigations_;
        return true;
    }

    if (event.phase >= window_)
        return false; // sampler is blind past its latch window

    ++eligibleSeen_;
    if (sampled_.size() < samplers_) {
        sampled_.push_back(event.aggressorRow);
    } else {
        // Reservoir sampling: each eligible burst ends up held with
        // probability samplers / eligibleSeen.
        const std::uint64_t j = rng_.below(eligibleSeen_);
        if (j < samplers_)
            sampled_[j] = event.aggressorRow;
    }
    return false; // sampling never blocks the activation itself
}

void
TrrSamplerObserver::onRef(const dram::RefEvent &event,
                          std::vector<std::uint64_t> &refresh_rows)
{
    (void)event;
    for (const std::uint64_t aggressor : sampled_) {
        if (aggressor > 0)
            refresh_rows.push_back(aggressor - 1);
        refresh_rows.push_back(aggressor + 1);
        ++mitigations_;
    }
    sampled_.clear();
    eligibleSeen_ = 0;
}

namespace detail {

void
registerTrrSamplerDefense(Registry &registry)
{
    registry.add(DefenseSpec{
        DefenseKind::TrrSampler, "trr", "TRR-sampler",
        /*configureKernel=*/nullptr, // in-DRAM: the kernel boots the
                                     // vulnerable Standard policy
        [](const DefenseParams &params) {
            return std::make_unique<TrrSamplerObserver>(
                params.trrSamplers, params.trrWindow,
                deriveSeed(params.seed, seeds::kTrrSamplerStream));
        }});
}

} // namespace detail

} // namespace ctamem::defense
