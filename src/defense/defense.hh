/**
 * @file
 * Memory-controller / software RowHammer mitigations the paper
 * compares against (Section 2.5), expressed as DisturbanceObserver
 * implementations plugged into the hammer engine.
 *
 * Allocation-policy defenses (CTA itself, CATT, ZebRAM) live in the
 * kernel's AllocPolicy; the observers here model the
 * hardware/firmware side: PARA, refresh-rate boosting, and
 * ANVIL-style detection.
 */

#ifndef CTAMEM_DEFENSE_DEFENSE_HH
#define CTAMEM_DEFENSE_DEFENSE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dram/hammer.hh"

namespace ctamem::defense {

/** The defense families the benches compare. */
enum class DefenseKind : std::uint8_t
{
    None,
    Cta,          //!< the paper's defense (allocation policy)
    CtaRestricted,//!< CTA + >=2-zeros indicator restriction
    Catt,         //!< kernel/user physical partition (policy)
    Zebram,       //!< zebra-striped data rows (policy)
    RefreshBoost, //!< higher DRAM refresh rate (observer)
    Para,         //!< probabilistic adjacent-row activation (observer)
    Anvil,        //!< performance-counter detection (observer)
    SoftTrr,      //!< software target-row refresh (observer)
    TrrSampler,   //!< in-DRAM TRR activation sampler (observer)
};

/** Human-readable defense name (the Table-1 column heading). */
const char *defenseName(DefenseKind kind);

/**
 * Inverse of defenseName: accepts the canonical manifest token
 * ("cta-restricted") or the display name ("CTA+restriction").
 * Returns nullopt for unknown names.
 */
std::optional<DefenseKind> parseDefenseKind(std::string_view name);

/** Base class adding bookkeeping to observers. */
class ObserverDefense : public dram::DisturbanceObserver
{
  public:
    ~ObserverDefense() override = default;

    virtual const char *name() const = 0;

    /** Mitigation events (victim refreshes) performed. */
    std::uint64_t mitigations() const { return mitigations_; }

    /**
     * Energy/overhead proxy: extra row refreshes issued relative to
     * the baseline refresh schedule.
     */
    virtual double overheadFactor() const = 0;

    /** @name RNG state capture (machine snapshots)
     *
     * Stochastic observers (PARA, refresh boosting) expose their
     * generator words so a restored machine resumes the exact random
     * stream of the machine it was snapshotted from.  Deterministic
     * observers return an empty vector and ignore restores.
     */
    /** @{ */
    virtual std::vector<std::uint64_t> rngState() const { return {}; }
    virtual void setRngState(const std::vector<std::uint64_t> &) {}
    /** @} */

  protected:
    std::uint64_t mitigations_ = 0;
};

} // namespace ctamem::defense

#endif // CTAMEM_DEFENSE_DEFENSE_HH
