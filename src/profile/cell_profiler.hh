/**
 * @file
 * System-level DRAM cell-type identification (Section 2.2 of the
 * paper).
 *
 * Protocol: write logical '1' to every cell under test, disable
 * refresh, wait longer than the retention time of most cells, and
 * read back.  True-cells (charged = '1') leak to '0'; anti-cells
 * (write of '1' put them in the discharged state) still read '1'.
 * The profiler classifies each row by majority vote over sampled
 * bytes, then extracts contiguous same-type regions — the input the
 * CTA zone builder consumes.
 */

#ifndef CTAMEM_PROFILE_CELL_PROFILER_HH
#define CTAMEM_PROFILE_CELL_PROFILER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/cell_types.hh"
#include "dram/module.hh"

namespace ctamem::profile {

/** A run of consecutive same-type rows within one bank. */
struct RowRegion
{
    std::uint64_t bank;
    std::uint64_t firstRow; //!< inclusive
    std::uint64_t lastRow;  //!< inclusive
    dram::CellType type;

    std::uint64_t rows() const { return lastRow - firstRow + 1; }

    bool operator==(const RowRegion &other) const = default;
};

/** Identifies true-cell/anti-cell regions via the retention protocol. */
class CellTypeProfiler
{
  public:
    /**
     * @param module      the module under test (its data is destroyed
     *                    in the profiled range — run at boot)
     * @param settle_time unrefreshed wait; must exceed the retention
     *                    of essentially all cells (default 5 minutes)
     * @param sample_bytes bytes sampled per row for the majority vote
     */
    explicit CellTypeProfiler(dram::DramModule &module,
                              SimTime settle_time = 300 * seconds,
                              std::uint64_t sample_bytes = 64)
        : module_(module), settleTime_(settle_time),
          sampleBytes_(sample_bytes)
    {}

    /** Classify a single row of a bank using the full protocol. */
    dram::CellType classifyRow(std::uint64_t bank, std::uint64_t row);

    /**
     * Classify rows [first_row, last_row] of @p bank in one
     * disable-refresh pass and return per-row types.
     */
    std::vector<dram::CellType>
    classifyRows(std::uint64_t bank, std::uint64_t first_row,
                 std::uint64_t last_row);

    /**
     * Classify a row range and merge consecutive rows of equal type
     * into regions.
     */
    std::vector<RowRegion>
    profileRegions(std::uint64_t bank, std::uint64_t first_row,
                   std::uint64_t last_row);

    /** Only the true-cell regions of profileRegions(). */
    std::vector<RowRegion>
    trueCellRegions(std::uint64_t bank, std::uint64_t first_row,
                    std::uint64_t last_row);

  private:
    /** Addresses sampled within a row (spread across the row). */
    std::vector<Addr> sampleAddresses(std::uint64_t bank,
                                      std::uint64_t row) const;

    dram::DramModule &module_;
    SimTime settleTime_;
    std::uint64_t sampleBytes_;
};

} // namespace ctamem::profile

#endif // CTAMEM_PROFILE_CELL_PROFILER_HH
