/**
 * @file
 * Retention-time profiling: measures how long individual cells hold
 * charge, using only read/write/refresh-control operations (the same
 * system-level access a bootloader has).  Used by the cold-boot
 * defense (Section 8) to select long-retention canary cells.
 */

#ifndef CTAMEM_PROFILE_RETENTION_PROFILER_HH
#define CTAMEM_PROFILE_RETENTION_PROFILER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/cell_types.hh"
#include "dram/module.hh"

namespace ctamem::profile {

/** One profiled cell. */
struct CellRetention
{
    Addr addr;
    unsigned bit;
    dram::CellType type;
    /** Measured retention (lower bound if it exceeded the cap). */
    SimTime retention;
    bool exceededCap; //!< true when retention > the measurement cap
};

/** Measures per-cell retention via charge/wait/read binary search. */
class RetentionProfiler
{
  public:
    /**
     * @param module the module under test (sampled cells' data is
     *               destroyed)
     * @param cap    longest wait the profiler will attempt
     */
    explicit RetentionProfiler(dram::DramModule &module,
                               SimTime cap = 600 * seconds)
        : module_(module), cap_(cap)
    {}

    /**
     * Measure the retention of one cell at @p celsius by binary
     * search over unrefreshed wait times: charge the cell, disable
     * refresh, wait, read back; repeat narrowing the interval.
     * Accurate to @p tolerance.
     */
    CellRetention measure(Addr addr, unsigned bit,
                          double celsius = 20.0,
                          SimTime tolerance = 50 * milliseconds);

    /**
     * Profile @p samples evenly spaced cells in [base, base+length)
     * and return them sorted by retention, longest first.
     */
    std::vector<CellRetention>
    profileRegion(Addr base, std::uint64_t length,
                  std::uint64_t samples, double celsius = 20.0);

    /**
     * The @p count longest-retention cells of a region: the canary
     * candidates for the cold-boot guard.
     */
    std::vector<CellRetention>
    findCanaries(Addr base, std::uint64_t length, std::uint64_t count,
                 std::uint64_t samples = 4096, double celsius = 20.0);

  private:
    /** True iff the cell decayed after @p wait unrefreshed. */
    bool decaysWithin(Addr addr, unsigned bit, SimTime wait,
                      double celsius);

    dram::DramModule &module_;
    SimTime cap_;
};

} // namespace ctamem::profile

#endif // CTAMEM_PROFILE_RETENTION_PROFILER_HH
