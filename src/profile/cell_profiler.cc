#include "profile/cell_profiler.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace ctamem::profile {

using dram::CellType;
using dram::Geometry;
using dram::Location;

std::vector<Addr>
CellTypeProfiler::sampleAddresses(std::uint64_t bank,
                                  std::uint64_t row) const
{
    const Geometry &geom = module_.geometry();
    // Samples cluster in the row's first frame: decay simulation
    // cost is per touched frame, and one frame is plenty for a
    // majority vote over hundreds of bits.
    const std::uint64_t window =
        std::min<std::uint64_t>(geom.rowBytes(), pageSize);
    const std::uint64_t count =
        std::min<std::uint64_t>(sampleBytes_, window);
    const std::uint64_t stride = window / count;
    std::vector<Addr> addrs;
    addrs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        addrs.push_back(geom.address(Location{bank, row, i * stride}));
    return addrs;
}

CellType
CellTypeProfiler::classifyRow(std::uint64_t bank, std::uint64_t row)
{
    return classifyRows(bank, row, row).front();
}

std::vector<CellType>
CellTypeProfiler::classifyRows(std::uint64_t bank,
                               std::uint64_t first_row,
                               std::uint64_t last_row)
{
    if (last_row < first_row ||
        last_row >= module_.geometry().rowsPerBank()) {
        fatal("classifyRows: bad row range [", first_row, ", ",
              last_row, "]");
    }

    // Step 1: write all-ones into the sampled cells.
    for (std::uint64_t row = first_row; row <= last_row; ++row)
        for (Addr addr : sampleAddresses(bank, row))
            module_.writeByte(addr, 0xff);

    // Step 2: let charge leak with refresh disabled.
    const bool was_enabled = module_.refreshEnabled();
    module_.setRefreshEnabled(false);
    module_.advance(settleTime_);
    module_.setRefreshEnabled(was_enabled);

    // Step 3: read back; majority of leaked-to-'0' bits => true-cells.
    std::vector<CellType> types;
    types.reserve(last_row - first_row + 1);
    for (std::uint64_t row = first_row; row <= last_row; ++row) {
        std::uint64_t zero_bits = 0;
        std::uint64_t one_bits = 0;
        for (Addr addr : sampleAddresses(bank, row)) {
            const unsigned ones = popcount(module_.readByte(addr));
            one_bits += ones;
            zero_bits += 8 - ones;
        }
        types.push_back(zero_bits > one_bits ? CellType::True :
                                               CellType::Anti);
    }
    return types;
}

std::vector<RowRegion>
CellTypeProfiler::profileRegions(std::uint64_t bank,
                                 std::uint64_t first_row,
                                 std::uint64_t last_row)
{
    const std::vector<CellType> types =
        classifyRows(bank, first_row, last_row);
    std::vector<RowRegion> regions;
    for (std::uint64_t i = 0; i < types.size(); ++i) {
        const std::uint64_t row = first_row + i;
        if (!regions.empty() && regions.back().type == types[i] &&
            regions.back().lastRow + 1 == row) {
            regions.back().lastRow = row;
        } else {
            regions.push_back(RowRegion{bank, row, row, types[i]});
        }
    }
    return regions;
}

std::vector<RowRegion>
CellTypeProfiler::trueCellRegions(std::uint64_t bank,
                                  std::uint64_t first_row,
                                  std::uint64_t last_row)
{
    std::vector<RowRegion> all =
        profileRegions(bank, first_row, last_row);
    std::erase_if(all, [](const RowRegion &region) {
        return region.type != CellType::True;
    });
    return all;
}

} // namespace ctamem::profile
