#include "profile/retention_profiler.hh"

#include <algorithm>

#include "common/log.hh"

namespace ctamem::profile {

using dram::CellType;

bool
RetentionProfiler::decaysWithin(Addr addr, unsigned bit, SimTime wait,
                                double celsius)
{
    const CellType type = module_.cellTypeAt(addr);
    module_.store().writeBit(addr, bit, dram::chargedBit(type));
    const bool was_enabled = module_.refreshEnabled();
    module_.setRefreshEnabled(false);
    module_.advance(wait, celsius);
    module_.setRefreshEnabled(was_enabled);
    return module_.store().readBit(addr, bit) ==
           dram::dischargedBit(type);
}

CellRetention
RetentionProfiler::measure(Addr addr, unsigned bit, double celsius,
                           SimTime tolerance)
{
    const CellType type = module_.cellTypeAt(addr);
    if (!decaysWithin(addr, bit, cap_, celsius))
        return CellRetention{addr, bit, type, cap_, true};

    SimTime lo = 0;  // holds at lo
    SimTime hi = cap_; // decays by hi
    while (hi - lo > tolerance) {
        const SimTime mid = lo + (hi - lo) / 2;
        if (decaysWithin(addr, bit, mid, celsius))
            hi = mid;
        else
            lo = mid;
    }
    return CellRetention{addr, bit, type, hi, false};
}

std::vector<CellRetention>
RetentionProfiler::profileRegion(Addr base, std::uint64_t length,
                                 std::uint64_t samples, double celsius)
{
    if (samples == 0 || length == 0)
        fatal("profileRegion: empty region or zero samples");
    const std::uint64_t cells = length * 8;
    const std::uint64_t count = std::min(samples, cells);
    const std::uint64_t stride = cells / count;

    std::vector<CellRetention> results;
    results.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t cell = i * stride;
        results.push_back(measure(base + cell / 8,
                                  static_cast<unsigned>(cell % 8),
                                  celsius));
    }
    std::sort(results.begin(), results.end(),
              [](const CellRetention &a, const CellRetention &b) {
                  return a.retention > b.retention;
              });
    return results;
}

std::vector<CellRetention>
RetentionProfiler::findCanaries(Addr base, std::uint64_t length,
                                std::uint64_t count,
                                std::uint64_t samples, double celsius)
{
    std::vector<CellRetention> sorted =
        profileRegion(base, length, samples, celsius);
    if (sorted.size() > count)
        sorted.resize(count);
    return sorted;
}

} // namespace ctamem::profile
