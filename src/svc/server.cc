#include "svc/server.hh"

#include <atomic>
#include <chrono>
#include <utility>

#include "common/log.hh"
#include "fuzz/fuzzer.hh"
#include "sim/scenario.hh"
#include "svc/snapshot.hh"
#include "svc/wire.hh"

namespace ctamem::svc {

using json::Json;
using sim::CampaignCell;
using sim::CellResult;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

Json
errorFrame(const Json &id, const std::string &message)
{
    Json j = Json::object();
    j.set("type", std::string("error"));
    j.set("id", id);
    j.set("message", message);
    return j;
}

} // namespace

/** Shared state of one accepted submission. */
struct CampaignService::Job
{
    Json id;
    std::vector<CellResult> results;
    std::vector<char> cached;
    std::atomic<std::size_t> remaining{0};
    Clock::time_point start = Clock::now();
};

CampaignService::CampaignService(const ServiceConfig &config)
    : config_(config),
      cache_(config.memCacheEntries, config.cacheDir),
      pool_(config.workers)
{}

CampaignService::~CampaignService()
{
    // Workers hold references to serve()-scoped streams; never tear
    // the pool down with cells still in flight.
    waitIdle();
}

ServiceCounters
CampaignService::counters() const
{
    std::lock_guard<std::mutex> lock(countersMutex_);
    return counters_;
}

void
CampaignService::waitIdle()
{
    std::unique_lock<std::mutex> lock(pendingMutex_);
    idle_.wait(lock, [this] { return pendingCells_ == 0; });
}

CellResult
CampaignService::runCellWarm(const CampaignCell &cell)
{
    if (!config_.snapshotWarmStart)
        return sim::runCell(cell);

    const Clock::time_point start = Clock::now();
    const std::string key = configCacheKey(cell.config);

    std::shared_ptr<const std::vector<std::uint8_t>> blob;
    {
        std::lock_guard<std::mutex> lock(snapshotMutex_);
        auto it = snapshots_.find(key);
        if (it != snapshots_.end())
            blob = it->second;
    }

    std::unique_ptr<sim::Machine> machine;
    if (blob) {
        machine = restoreMachine(
            deserialize(blob->data(), blob->size()));
        std::lock_guard<std::mutex> lock(countersMutex_);
        ++counters_.snapshotRestores;
    } else {
        machine = std::make_unique<sim::Machine>(cell.config);
        auto taken = std::make_shared<const std::vector<std::uint8_t>>(
            serialize(captureSnapshot(*machine)));
        {
            std::lock_guard<std::mutex> lock(snapshotMutex_);
            if (snapshots_.emplace(key, std::move(taken)).second) {
                snapshotLru_.push_back(key);
                while (snapshots_.size() > config_.snapshotEntries) {
                    snapshots_.erase(snapshotLru_.front());
                    snapshotLru_.pop_front();
                }
            }
        }
        std::lock_guard<std::mutex> lock(countersMutex_);
        ++counters_.snapshotCaptures;
    }

    CellResult out;
    out.cell = cell;
    out.result = machine->runAttack(cell.attack);
    out.anvilTriggered =
        machine->anvil() && machine->anvil()->triggered();
    out.wallSeconds = secondsSince(start);
    return out;
}

CampaignService::CellOutcome
CampaignService::runCellCached(const CampaignCell &cell)
{
    const std::string key = cellCacheKey(cell);
    if (auto hit = cache_.lookup(key)) {
        CellOutcome outcome;
        // The stored row is replayed verbatim — original wallSeconds
        // included — so a fully cached resubmission assembles a
        // report bit-identical to the cold run's.
        outcome.result = sim::cellResultFromJson(*hit);
        outcome.cached = true;
        std::lock_guard<std::mutex> lock(countersMutex_);
        ++counters_.cellsCached;
        return outcome;
    }

    CellOutcome outcome;
    outcome.result = runCellWarm(cell);
    outcome.cached = false;
    cache_.insert(key, sim::toJson(outcome.result));
    std::lock_guard<std::mutex> lock(countersMutex_);
    ++counters_.cellsExecuted;
    return outcome;
}

Json
CampaignService::statsJson()
{
    const CacheStats cache = cache_.stats();
    const ServiceCounters counters = this->counters();
    const dram::ProfileCacheStats profiles =
        dram::profileCacheStats();

    std::size_t pending;
    {
        std::lock_guard<std::mutex> lock(pendingMutex_);
        pending = pendingCells_;
    }
    std::size_t snapshotCount;
    {
        std::lock_guard<std::mutex> lock(snapshotMutex_);
        snapshotCount = snapshots_.size();
    }

    Json resultCache = Json::object();
    resultCache.set("hits", cache.hits)
        .set("misses", cache.misses)
        .set("memHits", cache.memHits)
        .set("diskHits", cache.diskHits)
        .set("insertions", cache.insertions)
        .set("evictions", cache.evictions)
        .set("memEntries", static_cast<std::uint64_t>(cache.memEntries))
        .set("memCapacity",
             static_cast<std::uint64_t>(cache.memCapacity))
        .set("hitRate", cache.hitRate());

    Json profileCache = Json::object();
    profileCache.set("hits", profiles.hits)
        .set("misses", profiles.misses)
        .set("evictions", profiles.evictions)
        .set("entries", static_cast<std::uint64_t>(profiles.entries))
        .set("capacity",
             static_cast<std::uint64_t>(profiles.capacity));

    // Fuzz campaigns run for many generations per cell; these
    // process-wide counters let a client watch search progress the
    // same way it watches cache behaviour.
    const fuzz::FuzzStats fuzzers = fuzz::fuzzStats();
    Json fuzzJson = Json::object();
    fuzzJson.set("runs", fuzzers.runs)
        .set("patternsEvaluated", fuzzers.patternsEvaluated)
        .set("generations", fuzzers.generations)
        .set("bypassesFound", fuzzers.bypassesFound)
        .set("bestFlips", fuzzers.bestFlips);

    Json j = Json::object();
    j.set("type", std::string("stats"))
        .set("schemaVersion", sim::kScenarioSchemaVersion)
        .set("workers", static_cast<std::uint64_t>(pool_.size()))
        .set("queueCapacity",
             static_cast<std::uint64_t>(config_.queueCapacity))
        .set("pendingCells", static_cast<std::uint64_t>(pending))
        .set("jobsAccepted", counters.jobsAccepted)
        .set("jobsRejected", counters.jobsRejected)
        .set("cellsExecuted", counters.cellsExecuted)
        .set("cellsCached", counters.cellsCached)
        .set("snapshotCaptures", counters.snapshotCaptures)
        .set("snapshotRestores", counters.snapshotRestores)
        .set("snapshotEntries",
             static_cast<std::uint64_t>(snapshotCount))
        .set("resultCache", std::move(resultCache))
        .set("profileCache", std::move(profileCache))
        .set("fuzz", std::move(fuzzJson));
    return j;
}

void
CampaignService::handleSubmit(const Json &request, std::ostream &out)
{
    Json id; // null unless the client tagged the submission
    if (const Json *requestId = request.find("id"))
        id = *requestId;

    const Json *manifest = request.find("manifest");
    if (!manifest) {
        std::lock_guard<std::mutex> lock(outMutex_);
        writeFrame(out,
                   errorFrame(id, "submit request has no manifest"));
        return;
    }

    sim::Campaign campaign;
    try {
        campaign = sim::campaignFromJson(*manifest);
    } catch (const json::JsonError &err) {
        std::lock_guard<std::mutex> lock(outMutex_);
        writeFrame(out, errorFrame(id, err.what()));
        return;
    }
    const std::size_t cellCount = campaign.size();

    // Backpressure: admission is all-or-nothing per submission, and
    // the bound covers every in-flight cell, not per-job counts.
    {
        std::lock_guard<std::mutex> lock(pendingMutex_);
        if (pendingCells_ + cellCount > config_.queueCapacity) {
            Json rejected = Json::object();
            rejected.set("type", std::string("rejected"))
                .set("id", id)
                .set("reason", std::string("queue-full"))
                .set("cells", static_cast<std::uint64_t>(cellCount))
                .set("pending",
                     static_cast<std::uint64_t>(pendingCells_))
                .set("capacity", static_cast<std::uint64_t>(
                                     config_.queueCapacity));
            {
                std::lock_guard<std::mutex> outLock(outMutex_);
                writeFrame(out, rejected);
            }
            std::lock_guard<std::mutex> countersLock(countersMutex_);
            ++counters_.jobsRejected;
            return;
        }
        pendingCells_ += cellCount;
    }
    {
        std::lock_guard<std::mutex> lock(countersMutex_);
        ++counters_.jobsAccepted;
    }

    auto job = std::make_shared<Job>();
    job->id = id;
    job->results.resize(cellCount);
    job->cached.assign(cellCount, 0);
    job->remaining.store(cellCount);

    {
        Json accepted = Json::object();
        accepted.set("type", std::string("accepted"))
            .set("id", id)
            .set("cells", static_cast<std::uint64_t>(cellCount));
        std::lock_guard<std::mutex> lock(outMutex_);
        writeFrame(out, accepted);
    }

    for (std::size_t i = 0; i < cellCount; ++i) {
        const CampaignCell cell = campaign.cells()[i];
        pool_.submit([this, job, i, cell, &out] {
            CellOutcome outcome = runCellCached(cell);

            Json frame = Json::object();
            frame.set("type", std::string("cell"))
                .set("id", job->id)
                .set("index", static_cast<std::uint64_t>(i))
                .set("cached", outcome.cached)
                .set("result", sim::toJson(outcome.result));
            {
                std::lock_guard<std::mutex> lock(outMutex_);
                writeFrame(out, frame);
            }

            job->results[i] = std::move(outcome.result);
            job->cached[i] = outcome.cached ? 1 : 0;

            if (job->remaining.fetch_sub(1) == 1) {
                // Last cell: assemble the manifest-ordered report.
                sim::CampaignReport report;
                report.cells = std::move(job->results);
                report.wallSeconds = secondsSince(job->start);

                std::uint64_t cachedCells = 0;
                for (const char wasCached : job->cached)
                    cachedCells += wasCached;

                Json done = Json::object();
                done.set("type", std::string("done"))
                    .set("id", job->id)
                    .set("cachedCells", cachedCells)
                    .set("report", report.toJson());
                std::lock_guard<std::mutex> lock(outMutex_);
                writeFrame(out, done);
            }

            {
                std::lock_guard<std::mutex> lock(pendingMutex_);
                --pendingCells_;
                if (pendingCells_ == 0)
                    idle_.notify_all();
            }
        });
    }
}

void
CampaignService::serve(std::istream &in, std::ostream &out)
{
    for (;;) {
        std::optional<Json> frame;
        try {
            frame = readFrame(in);
        } catch (const WireError &err) {
            // The stream is unframed garbage from here on; report
            // and stop rather than resynchronize heuristically.
            std::lock_guard<std::mutex> lock(outMutex_);
            writeFrame(out, errorFrame(Json(), err.what()));
            break;
        }
        if (!frame)
            break; // clean end-of-stream

        std::string type;
        try {
            type = frame->at("type").asString();
        } catch (const json::JsonError &err) {
            std::lock_guard<std::mutex> lock(outMutex_);
            writeFrame(out, errorFrame(Json(), err.what()));
            continue;
        }

        if (type == "ping") {
            Json pong = Json::object();
            pong.set("type", std::string("pong"));
            std::lock_guard<std::mutex> lock(outMutex_);
            writeFrame(out, pong);
        } else if (type == "stats") {
            Json stats = statsJson();
            std::lock_guard<std::mutex> lock(outMutex_);
            writeFrame(out, stats);
        } else if (type == "shutdown") {
            waitIdle();
            Json bye = Json::object();
            bye.set("type", std::string("bye"));
            std::lock_guard<std::mutex> lock(outMutex_);
            writeFrame(out, bye);
            break;
        } else if (type == "submit") {
            handleSubmit(*frame, out);
        } else {
            std::lock_guard<std::mutex> lock(outMutex_);
            writeFrame(out, errorFrame(
                                Json(), "unknown request type \"" +
                                            type + "\""));
        }
    }
    waitIdle();
}

} // namespace ctamem::svc
