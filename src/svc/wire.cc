#include "svc/wire.hh"

#include <istream>
#include <ostream>
#include <string>

namespace ctamem::svc {

void
writeFrame(std::ostream &out, const json::Json &message)
{
    const std::string payload = message.dump();
    if (payload.size() > kMaxFrameBytes)
        throw WireError("frame payload exceeds the frame size limit");
    const auto size = static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(payload.size() + 4);
    for (int i = 0; i < 4; ++i)
        frame.push_back(static_cast<char>((size >> (8 * i)) & 0xff));
    frame += payload;
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    out.flush();
    if (!out)
        throw WireError("frame write failed");
}

std::optional<json::Json>
readFrame(std::istream &in)
{
    char prefix[4];
    in.read(prefix, sizeof(prefix));
    if (in.gcount() == 0 && in.eof())
        return std::nullopt; // clean end-of-stream between frames
    if (in.gcount() != sizeof(prefix))
        throw WireError("stream truncated inside a frame prefix");

    std::uint32_t size = 0;
    for (int i = 0; i < 4; ++i) {
        size |= std::uint32_t{static_cast<unsigned char>(prefix[i])}
                << (8 * i);
    }
    if (size > kMaxFrameBytes)
        throw WireError("frame length " + std::to_string(size) +
                        " exceeds the frame size limit");

    std::string payload(size, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(size));
    if (in.gcount() != static_cast<std::streamsize>(size))
        throw WireError("stream truncated inside a frame payload");

    try {
        return json::Json::parse(payload);
    } catch (const json::JsonError &err) {
        throw WireError(std::string("frame payload is not valid "
                                    "JSON: ") +
                        err.what());
    }
}

} // namespace ctamem::svc
