/**
 * @file
 * Framing for the campaign-service pipe protocol.
 *
 * Messages are JSON objects, each preceded by a 4-byte little-endian
 * payload length.  The JSON layer reuses the scenario schema: a
 * submit request carries a PR-4 manifest verbatim, and result frames
 * carry toJson(CellResult) / CampaignReport::toJson() output, so the
 * wire format is the checked-in file format plus framing — nothing to
 * keep in sync.
 *
 * Frame grammar (requests -> responses):
 *
 *   {"type":"ping"}          -> {"type":"pong"}
 *   {"type":"stats"}         -> {"type":"stats", ...counters...}
 *   {"type":"shutdown"}      -> {"type":"bye"}, then the server exits
 *   {"type":"submit","id":J,"manifest":{...}}
 *     -> {"type":"rejected","id":J,"reason":"queue-full",...}   (backpressure)
 *      | {"type":"error","id":J,"message":"..."}                (bad manifest)
 *      | {"type":"accepted","id":J,"cells":N}
 *        then N x {"type":"cell","id":J,"index":i,"cached":b,"result":{...}}
 *        (in completion order), then
 *        {"type":"done","id":J,"report":{...}}                  (cells in
 *        manifest order — bit-identical across cold and cached runs)
 */

#ifndef CTAMEM_SVC_WIRE_HH
#define CTAMEM_SVC_WIRE_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>

#include "common/json.hh"

namespace ctamem::svc {

/** Thrown on malformed frames: truncation mid-frame, oversized
 *  length prefixes, or payloads that are not valid JSON. */
class WireError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Upper bound on one frame's payload; larger prefixes are treated
 *  as stream corruption rather than allocated. */
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** Write one length-prefixed frame and flush. */
void writeFrame(std::ostream &out, const json::Json &message);

/**
 * Read one frame.  Returns nullopt on clean end-of-stream (EOF
 * before any prefix byte); throws WireError on a partial prefix,
 * truncated payload, oversized length, or invalid JSON.
 */
std::optional<json::Json> readFrame(std::istream &in);

} // namespace ctamem::svc

#endif // CTAMEM_SVC_WIRE_HH
