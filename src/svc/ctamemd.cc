/**
 * @file
 * ctamemd: the campaign service daemon.
 *
 * Speaks the framed pipe protocol (svc/wire.hh) on stdin/stdout —
 * run it under a supervisor or drive it from scripts/ctamem_client.py:
 *
 *   scripts/ctamem_client.py --daemon build/ctamemd \
 *       submit scenarios/paper-default.json
 *
 * All diagnostics go to stderr; stdout carries only protocol frames.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/server.hh"

namespace {

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [options]\n"
        << "  --workers N        worker threads (default: cores)\n"
        << "  --queue N          max in-flight cells (default 64)\n"
        << "  --mem-entries N    in-memory cache entries "
           "(default 1024)\n"
        << "  --cache-dir PATH   disk cache directory (default "
           ".ctamem-cache)\n"
        << "  --no-disk-cache    keep results in memory only\n"
        << "  --no-snapshot      always cold-boot machines\n"
        << "Protocol frames are read from stdin and written to "
           "stdout.\n";
    return 2;
}

bool
parseCount(const std::string &text, std::uint64_t &value)
{
    try {
        std::size_t used = 0;
        value = std::stoull(text, &used);
        return used == text.size();
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ctamem::svc::ServiceConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        std::uint64_t value = 0;
        if (arg == "--workers" && hasValue &&
            parseCount(argv[++i], value)) {
            config.workers = static_cast<unsigned>(value);
        } else if (arg == "--queue" && hasValue &&
                   parseCount(argv[++i], value)) {
            config.queueCapacity = value;
        } else if (arg == "--mem-entries" && hasValue &&
                   parseCount(argv[++i], value)) {
            config.memCacheEntries = value;
        } else if (arg == "--cache-dir" && hasValue) {
            config.cacheDir = argv[++i];
        } else if (arg == "--no-disk-cache") {
            config.cacheDir.clear();
        } else if (arg == "--no-snapshot") {
            config.snapshotWarmStart = false;
        } else {
            return usage(argv[0]);
        }
    }

    std::ios::sync_with_stdio(false);
    // cin and cerr are tied to cout by default, so the serve loop's
    // blocking reads (and any stderr diagnostics) would flush cout
    // from outside the service's output mutex — a data race against
    // worker threads streaming frames. Untie them: the service
    // flushes after every frame itself.
    std::cin.tie(nullptr);
    std::cerr.tie(nullptr);
    try {
        ctamem::svc::CampaignService service(config);
        service.serve(std::cin, std::cout);
    } catch (const std::exception &err) {
        std::cerr << "ctamemd: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
