#include "svc/cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/rng.hh"
#include "sim/scenario.hh"

namespace ctamem::svc {

namespace fs = std::filesystem;

namespace {

std::string
hexDigest(std::uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

std::string
keyOf(const json::Json &j)
{
    const std::string dump = j.dump();
    const std::uint64_t content = hashBytes(dump.data(), dump.size());
    // Chained with the result-cache *epoch*, not the schema version:
    // additive schema bumps (v3 -> v4) leave canonical dumps — and so
    // cached results — for unchanged machines intact.
    return hexDigest(
        stableHash(content, sim::kResultCacheEpoch));
}

} // namespace

std::string
cellCacheKey(const sim::CampaignCell &cell)
{
    return keyOf(sim::toJson(cell));
}

std::string
configCacheKey(const sim::MachineConfig &config)
{
    return keyOf(sim::toJson(config));
}

ResultCache::ResultCache(std::size_t mem_entries,
                         std::string disk_dir)
    : capacity_(mem_entries ? mem_entries : 1),
      diskDir_(std::move(disk_dir))
{
    stats_.memCapacity = capacity_;
}

std::string
ResultCache::diskPath(const std::string &key) const
{
    return diskDir_ + "/" + key + ".json";
}

std::optional<json::Json>
ResultCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        ++stats_.hits;
        ++stats_.memHits;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return json::Json::parse(it->second.dump);
    }

    if (!diskDir_.empty()) {
        std::ifstream file(diskPath(key), std::ios::binary);
        if (file) {
            std::ostringstream text;
            text << file.rdbuf();
            std::string dump = std::move(text).str();
            try {
                json::Json value = json::Json::parse(dump);
                ++stats_.hits;
                ++stats_.diskHits;
                remember(key, std::move(dump)); // promote
                return value;
            } catch (const json::JsonError &) {
                // A torn or corrupted file is a miss, not an error:
                // the cell simply re-runs and the insert overwrites.
            }
        }
    }

    ++stats_.misses;
    return std::nullopt;
}

void
ResultCache::insert(const std::string &key, const json::Json &value)
{
    std::string dump = value.dump();

    if (!diskDir_.empty()) {
        // Write-then-rename so a concurrent reader never sees a torn
        // file; racing writers of the same key write identical bytes.
        std::error_code ec;
        fs::create_directories(diskDir_, ec);
        const std::string path = diskPath(key);
        const std::string tmp = path + ".tmp";
        {
            std::ofstream file(tmp, std::ios::binary);
            file.write(dump.data(),
                       static_cast<std::streamsize>(dump.size()));
        }
        fs::rename(tmp, path, ec);
        if (ec)
            fs::remove(tmp, ec);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.insertions;
    remember(key, std::move(dump));
}

void
ResultCache::remember(const std::string &key, std::string dump)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second.dump = std::move(dump);
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{std::move(dump), lru_.begin()});
    while (map_.size() > capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
    }
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats stats = stats_;
    stats.memEntries = map_.size();
    return stats;
}

} // namespace ctamem::svc
