/**
 * @file
 * Content-addressed result cache: the memoization layer of the
 * campaign service.
 *
 * Keys are derived from the canonical JSON dump of a CampaignCell
 * (config + attack + label — the seed rides in the config) chained
 * with the scenario schema version, so a key names exactly one
 * deterministic simulation outcome and cached rows cannot outlive a
 * schema change.  Values are stored as canonical JSON dumps of the
 * CellResult, returned verbatim on hits — including the original
 * wallSeconds — which is what makes a fully cached resubmission's
 * CampaignReport bit-identical to the cold run's.
 *
 * Two tiers: a mutex-protected in-memory LRU in front of an optional
 * on-disk store (one file per key under the cache directory, written
 * via rename for atomicity).  Disk hits are promoted into memory.
 */

#ifndef CTAMEM_SVC_CACHE_HH
#define CTAMEM_SVC_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/json.hh"
#include "sim/campaign.hh"

namespace ctamem::svc {

/** Counters and occupancy of a ResultCache. */
struct CacheStats
{
    std::uint64_t hits = 0;     //!< lookups served (either tier)
    std::uint64_t misses = 0;   //!< lookups that found nothing
    std::uint64_t memHits = 0;  //!< subset of hits from the LRU
    std::uint64_t diskHits = 0; //!< subset of hits from disk
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0; //!< LRU entries dropped at capacity
    std::size_t memEntries = 0;
    std::size_t memCapacity = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

/** Two-tier (memory LRU + optional disk) string-keyed JSON cache. */
class ResultCache
{
  public:
    /**
     * @param mem_entries LRU capacity (>= 1)
     * @param disk_dir    on-disk store directory, created on first
     *                    insert; empty disables the disk tier
     */
    explicit ResultCache(std::size_t mem_entries,
                         std::string disk_dir = {});

    /** Cached value for @p key, from memory or disk. */
    std::optional<json::Json> lookup(const std::string &key);

    /** Store @p value under @p key in both tiers. */
    void insert(const std::string &key, const json::Json &value);

    CacheStats stats() const;

    const std::string &diskDir() const { return diskDir_; }

  private:
    /** Front-insert into the LRU, evicting at capacity.  Caller
     *  holds the mutex. */
    void remember(const std::string &key, std::string dump);

    std::string diskPath(const std::string &key) const;

    struct Entry
    {
        std::string dump; //!< canonical JSON text
        std::list<std::string>::iterator lruIt;
    };

    const std::size_t capacity_;
    const std::string diskDir_;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> map_;
    std::list<std::string> lru_; //!< front = most recently used
    CacheStats stats_;
};

/**
 * Content-address of one campaign cell: a hex digest of the cell's
 * canonical JSON chained with kResultCacheEpoch.
 */
std::string cellCacheKey(const sim::CampaignCell &cell);

/** Content-address of a machine config (snapshot-store key). */
std::string configCacheKey(const sim::MachineConfig &config);

} // namespace ctamem::svc

#endif // CTAMEM_SVC_CACHE_HH
