/**
 * @file
 * Machine snapshot/restore: the warm-start path of the campaign
 * service.
 *
 * A snapshot captures a freshly booted machine — MachineConfig,
 * kernel boot image (zone specs, ZONE_PTP layout, secret frame),
 * observer RNG state, and the materialized SparseStore frames — into
 * a versioned, checksummed binary blob.  Restoring rebuilds an
 * equivalent machine without re-running the CTA zone scans (the row
 * walk and PS-bit screening that dominate a CTA boot), and attack
 * runs on the restored machine are bit-identical to runs on a cold
 * boot (property-tested).
 *
 * Snapshots are only taken post-boot, before any process exists:
 * the blob deliberately carries no process, VMA or page-table state.
 */

#ifndef CTAMEM_SVC_SNAPSHOT_HH
#define CTAMEM_SVC_SNAPSHOT_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/machine.hh"

namespace ctamem::svc {

/** Thrown when a blob fails validation (corrupt, truncated, or from
 *  an unknown format version). */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** In-memory form of a machine snapshot. */
struct MachineSnapshot
{
    /** One materialized SparseStore frame. */
    struct Frame
    {
        Pfn pfn = 0;
        std::vector<std::uint8_t> bytes; //!< exactly pageSize bytes
    };

    sim::MachineConfig config;
    kernel::BootImage image;
    /** Observer generator words; empty for RNG-free defenses. */
    std::vector<std::uint64_t> observerRng;
    /** Materialized frames, ascending pfn. */
    std::vector<Frame> frames;
};

/**
 * Capture @p machine into a snapshot.  Fatal unless the machine is in
 * its post-boot state (see kernel::Kernel::bootImage).
 */
MachineSnapshot captureSnapshot(sim::Machine &machine);

/**
 * Build a machine from @p snapshot: warm-boot the kernel from the
 * boot image, then restore DRAM contents and observer RNG state.
 */
std::unique_ptr<sim::Machine>
restoreMachine(const MachineSnapshot &snapshot);

/** @name Blob format
 *
 * Little-endian, versioned, with a trailing FNV-1a checksum over
 * every preceding byte.  deserialize() throws SnapshotError on bad
 * magic, unknown version, checksum mismatch, truncation, or any
 * out-of-bounds length field.
 */
/** @{ */

/** Current blob format version. */
inline constexpr std::uint32_t kSnapshotVersion = 1;

std::vector<std::uint8_t> serialize(const MachineSnapshot &snapshot);

MachineSnapshot deserialize(const std::uint8_t *data,
                            std::size_t size);

inline MachineSnapshot
deserialize(const std::vector<std::uint8_t> &blob)
{
    return deserialize(blob.data(), blob.size());
}

/** @} */

} // namespace ctamem::svc

#endif // CTAMEM_SVC_SNAPSHOT_HH
