#include "svc/snapshot.hh"

#include <algorithm>
#include <string>

#include "common/rng.hh"
#include "sim/scenario.hh"

namespace ctamem::svc {

namespace {

/** "CTAMSNAP" read as a little-endian u64. */
constexpr std::uint64_t kMagic = 0x50414e534d415443ULL;

/** Little-endian append-only blob writer. */
class Writer
{
  public:
    void
    u8(std::uint8_t value)
    {
        bytes_.push_back(value);
    }

    void
    u32(std::uint32_t value)
    {
        for (int shift = 0; shift < 32; shift += 8)
            bytes_.push_back((value >> shift) & 0xff);
    }

    void
    u64(std::uint64_t value)
    {
        for (int shift = 0; shift < 64; shift += 8)
            bytes_.push_back((value >> shift) & 0xff);
    }

    void
    raw(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const std::uint8_t *>(data);
        bytes_.insert(bytes_.end(), bytes, bytes + size);
    }

    void
    str(const std::string &value)
    {
        u32(static_cast<std::uint32_t>(value.size()));
        raw(value.data(), value.size());
    }

    void
    spanList(const std::vector<mm::FrameSpan> &spans)
    {
        u32(static_cast<std::uint32_t>(spans.size()));
        for (const mm::FrameSpan &span : spans) {
            u64(span.basePfn);
            u64(span.frames);
        }
    }

    std::vector<std::uint8_t>
    finish()
    {
        const std::uint64_t checksum =
            hashBytes(bytes_.data(), bytes_.size());
        u64(checksum);
        return std::move(bytes_);
    }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked little-endian blob reader. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t value = 0;
        for (int shift = 0; shift < 32; shift += 8)
            value |= std::uint32_t{data_[pos_++]} << shift;
        return value;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t value = 0;
        for (int shift = 0; shift < 64; shift += 8)
            value |= std::uint64_t{data_[pos_++]} << shift;
        return value;
    }

    std::string
    str()
    {
        const std::uint32_t size = u32();
        need(size);
        std::string value(reinterpret_cast<const char *>(data_ + pos_),
                          size);
        pos_ += size;
        return value;
    }

    std::vector<std::uint8_t>
    bytes(std::size_t size)
    {
        need(size);
        std::vector<std::uint8_t> value(data_ + pos_,
                                        data_ + pos_ + size);
        pos_ += size;
        return value;
    }

    std::vector<mm::FrameSpan>
    spanList()
    {
        const std::uint32_t count = u32();
        // Each span is 16 bytes; reject counts the blob cannot hold
        // before allocating.
        need(static_cast<std::size_t>(count) * 16);
        std::vector<mm::FrameSpan> spans;
        spans.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            mm::FrameSpan span;
            span.basePfn = u64();
            span.frames = u64();
            spans.push_back(span);
        }
        return spans;
    }

    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }

  private:
    void
    need(std::size_t count)
    {
        if (size_ - pos_ < count)
            throw SnapshotError("snapshot blob truncated");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace

MachineSnapshot
captureSnapshot(sim::Machine &machine)
{
    MachineSnapshot snapshot;
    snapshot.config = machine.config();
    snapshot.image = machine.kernel().bootImage();
    if (defense::ObserverDefense *observer = machine.observer())
        snapshot.observerRng = observer->rngState();

    const dram::SparseStore &store = machine.dram().store();
    std::vector<Pfn> pfns = store.touchedFrames();
    std::sort(pfns.begin(), pfns.end());
    snapshot.frames.reserve(pfns.size());
    for (const Pfn pfn : pfns) {
        MachineSnapshot::Frame frame;
        frame.pfn = pfn;
        frame.bytes.resize(pageSize);
        store.read(pfnToAddr(pfn), frame.bytes.data(), pageSize);
        snapshot.frames.push_back(std::move(frame));
    }
    return snapshot;
}

std::unique_ptr<sim::Machine>
restoreMachine(const MachineSnapshot &snapshot)
{
    auto machine = std::make_unique<sim::Machine>(snapshot.config,
                                                  snapshot.image);
    dram::SparseStore &store = machine->dram().store();
    store.clear();
    for (const MachineSnapshot::Frame &frame : snapshot.frames) {
        store.write(pfnToAddr(frame.pfn), frame.bytes.data(),
                    frame.bytes.size());
    }
    if (!snapshot.observerRng.empty()) {
        if (defense::ObserverDefense *observer = machine->observer())
            observer->setRngState(snapshot.observerRng);
    }
    return machine;
}

std::vector<std::uint8_t>
serialize(const MachineSnapshot &snapshot)
{
    Writer writer;
    writer.u64(kMagic);
    writer.u32(kSnapshotVersion);
    writer.str(sim::toJson(snapshot.config).dump());

    const kernel::BootImage &image = snapshot.image;
    writer.u8(image.ptpLayout ? 1 : 0);
    if (image.ptpLayout) {
        const cta::PtpLayout &layout = *image.ptpLayout;
        writer.u64(layout.lowWaterMark);
        writer.u64(layout.trueBytes);
        writer.u64(layout.skippedAntiBytes);
        writer.u64(layout.screenedFrames);
        writer.u8(layout.multiLevel ? 1 : 0);
        writer.spanList(layout.spans);
        for (unsigned level = 1; level <= 4; ++level)
            writer.spanList(layout.levelSpans[level]);
    }

    writer.u32(static_cast<std::uint32_t>(image.physSpecs.size()));
    for (const mm::ZoneSpec &spec : image.physSpecs) {
        writer.u8(static_cast<std::uint8_t>(spec.id));
        writer.spanList(spec.spans);
    }
    writer.u64(image.secretPfn);
    writer.u64(image.secretAddr);
    writer.u64(image.simTime);

    writer.u32(static_cast<std::uint32_t>(
        snapshot.observerRng.size()));
    for (const std::uint64_t word : snapshot.observerRng)
        writer.u64(word);

    writer.u32(static_cast<std::uint32_t>(snapshot.frames.size()));
    for (const MachineSnapshot::Frame &frame : snapshot.frames) {
        writer.u64(frame.pfn);
        writer.raw(frame.bytes.data(), frame.bytes.size());
    }
    return writer.finish();
}

MachineSnapshot
deserialize(const std::uint8_t *data, std::size_t size)
{
    if (size < 8 + 4 + 8)
        throw SnapshotError("snapshot blob truncated");

    // Validate the checksum before interpreting anything else: every
    // corruption mode, not just ones that trip a bounds check, must
    // be rejected.
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= std::uint64_t{data[size - 8 + i]} << (8 * i);
    if (hashBytes(data, size - 8) != stored)
        throw SnapshotError("snapshot blob checksum mismatch");

    Reader reader(data, size - 8);
    if (reader.u64() != kMagic)
        throw SnapshotError("not a snapshot blob (bad magic)");
    const std::uint32_t version = reader.u32();
    if (version != kSnapshotVersion) {
        throw SnapshotError("snapshot blob version " +
                            std::to_string(version) +
                            " is not supported (this build writes " +
                            std::to_string(kSnapshotVersion) + ")");
    }

    MachineSnapshot snapshot;
    try {
        snapshot.config = sim::machineConfigFromJson(
            json::Json::parse(reader.str()));
    } catch (const json::JsonError &err) {
        throw SnapshotError(std::string("snapshot config: ") +
                            err.what());
    }

    if (reader.u8()) {
        cta::PtpLayout layout;
        layout.lowWaterMark = reader.u64();
        layout.trueBytes = reader.u64();
        layout.skippedAntiBytes = reader.u64();
        layout.screenedFrames = reader.u64();
        layout.multiLevel = reader.u8() != 0;
        layout.spans = reader.spanList();
        for (unsigned level = 1; level <= 4; ++level)
            layout.levelSpans[level] = reader.spanList();
        snapshot.image.ptpLayout = std::move(layout);
    }

    const std::uint32_t specCount = reader.u32();
    snapshot.image.physSpecs.reserve(specCount);
    for (std::uint32_t i = 0; i < specCount; ++i) {
        mm::ZoneSpec spec;
        const std::uint8_t id = reader.u8();
        if (id >= static_cast<std::uint8_t>(mm::ZoneId::NumZones))
            throw SnapshotError("snapshot blob names an unknown zone");
        spec.id = static_cast<mm::ZoneId>(id);
        spec.spans = reader.spanList();
        snapshot.image.physSpecs.push_back(std::move(spec));
    }
    snapshot.image.secretPfn = reader.u64();
    snapshot.image.secretAddr = reader.u64();
    snapshot.image.simTime = reader.u64();

    const std::uint32_t rngWords = reader.u32();
    snapshot.observerRng.reserve(rngWords);
    for (std::uint32_t i = 0; i < rngWords; ++i)
        snapshot.observerRng.push_back(reader.u64());

    const std::uint32_t frameCount = reader.u32();
    snapshot.frames.reserve(frameCount);
    for (std::uint32_t i = 0; i < frameCount; ++i) {
        MachineSnapshot::Frame frame;
        frame.pfn = reader.u64();
        frame.bytes = reader.bytes(pageSize);
        snapshot.frames.push_back(std::move(frame));
    }

    if (reader.remaining() != 0)
        throw SnapshotError("snapshot blob has trailing bytes");
    return snapshot;
}

} // namespace ctamem::svc
