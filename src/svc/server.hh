/**
 * @file
 * The campaign service: a long-running server loop that accepts
 * scenario manifests over the framed pipe protocol (svc/wire.hh),
 * expands them into campaign cells, and executes the cells across a
 * ThreadPool — streaming each cell's result back as it finishes and
 * a manifest-ordered CampaignReport when the whole submission is
 * done.
 *
 * Three mechanisms make the service cheaper than one-shot runs:
 *
 *  - results are memoized in a two-tier content-addressed cache
 *    (svc/cache.hh): resubmitting a manifest — the common loop while
 *    editing one — replays stored rows verbatim, and the replayed
 *    report is bit-identical to the cold run's;
 *  - machines warm-start from snapshots (svc/snapshot.hh): the first
 *    cell of each distinct MachineConfig boots cold and captures a
 *    blob post-boot, later cells restore it and skip the CTA zone
 *    scans;
 *  - backpressure: a submission whose cells would push the in-flight
 *    count past the queue capacity is rejected up front with a
 *    "queue-full" frame instead of being buffered unboundedly.
 */

#ifndef CTAMEM_SVC_SERVER_HH
#define CTAMEM_SVC_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/thread_pool.hh"
#include "svc/cache.hh"

namespace ctamem::svc {

/** Construction parameters of a CampaignService. */
struct ServiceConfig
{
    /** Worker threads; 0 = runtime::defaultWorkerCount(). */
    unsigned workers = 0;
    /** Max cells in flight; submissions beyond it are rejected. */
    std::size_t queueCapacity = 64;
    /** In-memory result-cache entries. */
    std::size_t memCacheEntries = 1024;
    /** Disk cache directory; empty disables the disk tier. */
    std::string cacheDir = ".ctamem-cache";
    /** Warm-start machines from post-boot snapshots. */
    bool snapshotWarmStart = true;
    /** Distinct configs whose snapshot blobs are kept (LRU). */
    std::size_t snapshotEntries = 32;
};

/** Service-level counters (cache counters live in CacheStats). */
struct ServiceCounters
{
    std::uint64_t jobsAccepted = 0;
    std::uint64_t jobsRejected = 0;
    std::uint64_t cellsExecuted = 0; //!< ran a machine
    std::uint64_t cellsCached = 0;   //!< served from the result cache
    std::uint64_t snapshotCaptures = 0;
    std::uint64_t snapshotRestores = 0;
};

/** The campaign server.  One instance serves one session at a time. */
class CampaignService
{
  public:
    explicit CampaignService(const ServiceConfig &config = {});
    ~CampaignService();

    CampaignService(const CampaignService &) = delete;
    CampaignService &operator=(const CampaignService &) = delete;

    /**
     * Serve framed requests from @p in until end-of-stream or a
     * shutdown request, writing responses to @p out.  Returns after
     * every in-flight cell has drained.
     */
    void serve(std::istream &in, std::ostream &out);

    /** Outcome of one cell dispatch. */
    struct CellOutcome
    {
        sim::CellResult result;
        bool cached = false;
    };

    /**
     * Run one cell through the cache and the snapshot warm-start
     * path — the unit of work serve() dispatches per cell, exposed
     * for benches and tests.
     */
    CellOutcome runCellCached(const sim::CampaignCell &cell);

    ResultCache &cache() { return cache_; }
    ServiceCounters counters() const;
    const ServiceConfig &config() const { return config_; }

    /** The "stats" response body. */
    json::Json statsJson();

  private:
    /** Shared state of one accepted submission. */
    struct Job;

    void handleSubmit(const json::Json &request, std::ostream &out);

    /** Execute a cell on a warm-started (or cold) machine. */
    sim::CellResult runCellWarm(const sim::CampaignCell &cell);

    /** Block until no cells are in flight. */
    void waitIdle();

    ServiceConfig config_;
    ResultCache cache_;
    runtime::ThreadPool pool_;

    /** Snapshot blobs by configCacheKey, LRU-bounded. */
    std::mutex snapshotMutex_;
    std::unordered_map<std::string,
                       std::shared_ptr<const std::vector<std::uint8_t>>>
        snapshots_;
    std::list<std::string> snapshotLru_;

    mutable std::mutex countersMutex_;
    ServiceCounters counters_;

    /** In-flight cell accounting (backpressure + drain). */
    std::mutex pendingMutex_;
    std::condition_variable idle_;
    std::size_t pendingCells_ = 0;

    /** Serializes response frames from workers and the serve loop. */
    std::mutex outMutex_;
};

} // namespace ctamem::svc

#endif // CTAMEM_SVC_SERVER_HH
