#include "ext/sandbox.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace ctamem::ext {

namespace {

/** Bytes per instruction: [opcode, a, b, imm]. */
constexpr std::uint64_t insnBytes = 4;

/** Privileged opcodes carry bit 7 under the monotone encoding. */
constexpr std::uint8_t privilegeBit = 0x80;

std::uint8_t
naiveCode(Op op)
{
    switch (op) {
      case Op::Nop: return 0x10;
      case Op::LoadImm: return 0x11;
      case Op::Add: return 0x13;
      case Op::Store: return 0x16;
      case Op::Jmp: return 0x19;
      case Op::Halt: return 0x1f;
      // One cleared bit below Add: the classic flip target.
      case Op::HostCall: return 0x03;
      case Op::Invalid: break;
    }
    return 0xff;
}

std::uint8_t
monotoneCode(Op op)
{
    if (op == Op::HostCall)
        return privilegeBit | 0x13;
    if (op == Op::Invalid)
        return 0xff;
    return naiveCode(op);
}

} // namespace

std::uint8_t
encodeOp(Op op, OpcodeEncoding encoding)
{
    return encoding == OpcodeEncoding::Naive ? naiveCode(op) :
                                               monotoneCode(op);
}

Op
decodeOp(std::uint8_t byte, OpcodeEncoding encoding)
{
    for (const Op op : {Op::Nop, Op::LoadImm, Op::Add, Op::Store,
                        Op::Jmp, Op::Halt, Op::HostCall}) {
        if (encodeOp(op, encoding) == byte)
            return op;
    }
    return Op::Invalid;
}

bool
Sandbox::verify(std::uint64_t bytes) const
{
    for (Addr pc = 0; pc + insnBytes <= bytes; pc += insnBytes) {
        const Op op = decodeOp(module_.readByte(codeBase_ + pc),
                               encoding_);
        if (op == Op::HostCall || op == Op::Invalid)
            return false;
    }
    return true;
}

SandboxRun
Sandbox::run(std::uint64_t bytes, std::uint64_t max_steps) const
{
    SandboxRun result;
    std::uint64_t regs[8] = {};
    std::uint8_t scratch[256] = {};
    std::uint64_t pc = 0;

    while (result.steps < max_steps) {
        if (pc + insnBytes > bytes)
            break; // fell off the end: treated as halt
        const Addr insn = codeBase_ + pc;
        const Op op = decodeOp(module_.readByte(insn), encoding_);
        const std::uint8_t a = module_.readByte(insn + 1) % 8;
        const std::uint8_t b = module_.readByte(insn + 2) % 8;
        const std::uint8_t imm = module_.readByte(insn + 3);
        ++result.steps;
        pc += insnBytes;

        switch (op) {
          case Op::Nop:
            break;
          case Op::LoadImm:
            regs[a] = imm;
            break;
          case Op::Add:
            regs[a] += regs[b];
            break;
          case Op::Store:
            scratch[regs[a] % sizeof(scratch)] =
                static_cast<std::uint8_t>(regs[b]);
            break;
          case Op::Jmp: {
            const std::int64_t delta =
                static_cast<std::int8_t>(imm) *
                static_cast<std::int64_t>(insnBytes);
            const std::int64_t target =
                static_cast<std::int64_t>(pc) + delta;
            if (target < 0 ||
                static_cast<std::uint64_t>(target) >= bytes) {
                result.crashed = true;
                return result;
            }
            pc = static_cast<std::uint64_t>(target);
            break;
          }
          case Op::Halt:
            return result;
          case Op::HostCall:
            // The escape: a privileged operation ran inside a
            // verified sandbox.
            result.escaped = true;
            return result;
          case Op::Invalid:
            result.crashed = true;
            return result;
        }
    }
    return result;
}

void
Sandbox::writeBenignProgram(std::uint64_t bytes,
                            std::uint64_t seed) const
{
    if (bytes % insnBytes != 0)
        fatal("program size must be a multiple of ", insnBytes);
    Rng rng(seed);
    const Op pool[] = {Op::Nop, Op::LoadImm, Op::Add, Op::Add,
                       Op::Store};
    for (Addr pc = 0; pc + insnBytes <= bytes; pc += insnBytes) {
        const bool last = pc + insnBytes * 2 > bytes;
        const Op op = last ? Op::Halt : pool[rng.below(5)];
        module_.writeByte(codeBase_ + pc, encodeOp(op, encoding_));
        module_.writeByte(codeBase_ + pc + 1,
                          static_cast<std::uint8_t>(rng.below(8)));
        module_.writeByte(codeBase_ + pc + 2,
                          static_cast<std::uint8_t>(rng.below(8)));
        module_.writeByte(codeBase_ + pc + 3,
                          static_cast<std::uint8_t>(rng.below(200)));
    }
}

} // namespace ctamem::ext
