#include "ext/coldboot.hh"

#include "common/log.hh"

namespace ctamem::ext {

using dram::CellType;

ColdBootGuard::ColdBootGuard(
    dram::DramModule &module,
    std::vector<profile::CellRetention> canaries)
    : module_(module), canaries_(std::move(canaries))
{
    if (canaries_.empty())
        fatal("ColdBootGuard: no canary cells");
}

ColdBootGuard
ColdBootGuard::withProfiledCanaries(dram::DramModule &module,
                                    Addr region_base,
                                    std::uint64_t region_bytes,
                                    std::uint64_t count)
{
    profile::RetentionProfiler profiler(module);
    return ColdBootGuard(module,
                         profiler.findCanaries(region_base,
                                               region_bytes, count));
}

void
ColdBootGuard::arm()
{
    for (const profile::CellRetention &cell : canaries_) {
        module_.store().writeBit(cell.addr, cell.bit,
                                 dram::chargedBit(cell.type));
    }
}

bool
ColdBootGuard::fullyDecayed() const
{
    for (const profile::CellRetention &cell : canaries_) {
        if (module_.store().readBit(cell.addr, cell.bit) ==
            dram::chargedBit(cell.type)) {
            return false;
        }
    }
    return true;
}

BootDecision
ColdBootGuard::check() const
{
    return fullyDecayed() ? BootDecision::Proceed : BootDecision::Halt;
}

BootDecision
ColdBootGuard::paperLiteral() const
{
    // Proceed iff true-cell canaries read '1', anti-cell read '0' —
    // i.e. the inverse of the sound condition.
    return fullyDecayed() ? BootDecision::Halt : BootDecision::Proceed;
}

} // namespace ctamem::ext
