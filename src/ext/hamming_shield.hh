/**
 * @file
 * Hamming-weight error detection (Section 8).
 *
 * Data words live in true-cells (weight can only *decrease* under
 * faults); their popcounts live in anti-cells (stored weight can only
 * *increase*).  A mismatch where observed < stored is therefore a
 * reliable fault indicator; one POPCNT per word and log2(64)+1 = 7
 * bits (we store a byte) of overhead per word.
 *
 * The rare wrong-direction flips (0.2% of vulnerable cells) cause the
 * small false-negative/false-positive rates the paper accepts for
 * approximate-computing use cases; the bench measures them.
 */

#ifndef CTAMEM_EXT_HAMMING_SHIELD_HH
#define CTAMEM_EXT_HAMMING_SHIELD_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/module.hh"

namespace ctamem::ext {

/** Shields a run of 64-bit words with anti-cell weight bytes. */
class HammingShield
{
  public:
    /**
     * @param module      backing DRAM
     * @param data_base   base of the protected words (true-cells)
     * @param weight_base base of the weight bytes (anti-cells)
     * @param words       number of 64-bit words protected
     * @param enforce_cells fail unless cell types are as recommended
     */
    HammingShield(dram::DramModule &module, Addr data_base,
                  Addr weight_base, std::uint64_t words,
                  bool enforce_cells = true);

    std::uint64_t words() const { return words_; }

    /** Write @p value to word @p index and record its weight. */
    void storeWord(std::uint64_t index, std::uint64_t value);

    /** Read word @p index without checking. */
    std::uint64_t loadWord(std::uint64_t index) const;

    /** Recompute and re-store every weight (after bulk updates). */
    void protect();

    /** Per-word check outcome. */
    enum class WordState : std::uint8_t
    {
        Clean,        //!< weights match
        FaultDetected,//!< observed weight < stored: data decayed
        Suspicious,   //!< observed > stored: weight cell decayed
    };

    WordState checkWord(std::uint64_t index) const;

    /** Aggregate check. */
    struct CheckReport
    {
        std::uint64_t clean = 0;
        std::uint64_t faults = 0;
        std::uint64_t suspicious = 0;
    };

    CheckReport check() const;

  private:
    void checkIndex(std::uint64_t index) const;
    Addr wordAddr(std::uint64_t index) const
    {
        return dataBase_ + index * 8;
    }
    Addr weightAddr(std::uint64_t index) const
    {
        return weightBase_ + index;
    }

    dram::DramModule &module_;
    Addr dataBase_;
    Addr weightBase_;
    std::uint64_t words_;
};

} // namespace ctamem::ext

#endif // CTAMEM_EXT_HAMMING_SHIELD_HH
