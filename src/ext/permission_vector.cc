#include "ext/permission_vector.hh"

#include <vector>

#include "common/log.hh"

namespace ctamem::ext {

PermissionVector::PermissionVector(dram::DramModule &module, Addr base,
                                   std::uint64_t count,
                                   bool require_true_cells)
    : module_(module), base_(base), count_(count)
{
    if (count == 0)
        fatal("PermissionVector: empty vector");
    const Addr last = base + (count - 1) / 8;
    if (!module.geometry().contains(last))
        fatal("PermissionVector: vector extends past DRAM");
    if (require_true_cells) {
        const std::uint64_t row_bytes = module.geometry().rowBytes();
        for (Addr addr = base; addr <= last;
             addr += row_bytes) {
            if (module.cellTypeAt(addr) != dram::CellType::True) {
                fatal("PermissionVector: true-cell placement "
                      "required but address ", addr,
                      " is in anti-cells");
            }
        }
        if (module.cellTypeAt(last) != dram::CellType::True)
            fatal("PermissionVector: tail lies in anti-cells");
    }
}

void
PermissionVector::checkIndex(std::uint64_t index) const
{
    if (index >= count_)
        fatal("PermissionVector: index ", index, " out of range");
}

void
PermissionVector::grant(std::uint64_t index)
{
    checkIndex(index);
    module_.store().writeBit(base_ + index / 8,
                             static_cast<unsigned>(index % 8), true);
}

void
PermissionVector::deny(std::uint64_t index)
{
    checkIndex(index);
    module_.store().writeBit(base_ + index / 8,
                             static_cast<unsigned>(index % 8), false);
}

bool
PermissionVector::allowed(std::uint64_t index) const
{
    checkIndex(index);
    return module_.store().readBit(
        base_ + index / 8, static_cast<unsigned>(index % 8));
}

dram::CellType
PermissionVector::cellType() const
{
    return module_.cellTypeAt(base_);
}

PermissionVector::DriftReport
PermissionVector::audit(const std::vector<bool> &reference) const
{
    if (reference.size() != count_)
        fatal("PermissionVector::audit: reference size mismatch");
    DriftReport report;
    for (std::uint64_t i = 0; i < count_; ++i) {
        const bool now = allowed(i);
        if (now && !reference[i])
            ++report.deniedToAllowed;
        else if (!now && reference[i])
            ++report.allowedToDenied;
    }
    return report;
}

} // namespace ctamem::ext
