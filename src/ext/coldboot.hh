/**
 * @file
 * Cold-boot defense (Section 8).
 *
 * A reserved set of *long-retention* canary cells is kept charged
 * during operation (true-cell canaries hold '1', anti-cell canaries
 * hold '0').  At boot, the loader reads them:
 *
 *  - if even the longest-retention cells have fully decayed, every
 *    shorter-retention data cell certainly has too — no remanence,
 *    safe to proceed;
 *  - if the canaries still hold charge, the off-period was short or
 *    the module was chilled: DRAM remanence may expose secrets, so
 *    the loader halts/scrubs.
 *
 * Note on fidelity: the paper's text says to proceed when true-cell
 * canaries read '1' and anti-cell canaries read '0' — but those are
 * the *charged* states, i.e. the remanence-present case the defense
 * exists to catch.  We implement the semantically sound check
 * (proceed on full decay) by default and provide paperLiteral() for
 * the text's inverted condition; EXPERIMENTS.md records the
 * discrepancy.
 */

#ifndef CTAMEM_EXT_COLDBOOT_HH
#define CTAMEM_EXT_COLDBOOT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/module.hh"
#include "profile/retention_profiler.hh"

namespace ctamem::ext {

/** What the boot-time check decides. */
enum class BootDecision : std::uint8_t
{
    Proceed, //!< no remanence detected
    Halt,    //!< canaries still charged: possible cold-boot attack
};

/** The reserved canary set plus the boot-time protocol. */
class ColdBootGuard
{
  public:
    /**
     * @param module   the DRAM module
     * @param canaries long-retention cells selected by the
     *                 RetentionProfiler
     */
    ColdBootGuard(dram::DramModule &module,
                  std::vector<profile::CellRetention> canaries);

    /** Convenience: profile a region and pick @p count canaries. */
    static ColdBootGuard
    withProfiledCanaries(dram::DramModule &module, Addr region_base,
                         std::uint64_t region_bytes,
                         std::uint64_t count);

    std::size_t canaryCount() const { return canaries_.size(); }

    /** Charge every canary (run while the system operates). */
    void arm();

    /** True iff every canary has decayed to its discharged value. */
    bool fullyDecayed() const;

    /** The sound boot check: proceed only after full decay. */
    BootDecision check() const;

    /**
     * The paper's literal condition: proceed iff true-cell canaries
     * read '1' and anti-cell canaries read '0'.
     */
    BootDecision paperLiteral() const;

  private:
    dram::DramModule &module_;
    std::vector<profile::CellRetention> canaries_;
};

} // namespace ctamem::ext

#endif // CTAMEM_EXT_COLDBOOT_HH
