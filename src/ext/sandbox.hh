/**
 * @file
 * Sandbox-escape-by-bit-flip (the second attack class of Table 1:
 * Seaborn & Dullien flipped opcodes to escape the NaCl sandbox), and
 * a monotonicity-based countermeasure in the spirit of Section 8.
 *
 * The substrate is a deliberately small register machine whose
 * program bytes live in simulated DRAM.  Its ISA has unprivileged
 * opcodes and one privileged opcode (a host call).  A verifier admits
 * only unprivileged programs — but RowHammer flips program bytes
 * *after* verification, exactly like the published attack.
 *
 * Countermeasure: a *monotone opcode encoding*.  With program pages
 * in true-cells, faults only clear bits; if every privileged opcode
 * contains a set bit that no unprivileged opcode has (here: bit 7),
 * no amount of '1'->'0' corruption can turn a verified program
 * privileged.  The naive encoding (privileged = 0x00-adjacent values)
 * is down-flip-reachable and falls.
 */

#ifndef CTAMEM_EXT_SANDBOX_HH
#define CTAMEM_EXT_SANDBOX_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/module.hh"

namespace ctamem::ext {

/** How opcodes are assigned numeric encodings. */
enum class OpcodeEncoding : std::uint8_t
{
    /**
     * Naive: HOSTCALL sits one cleared bit below common opcodes
     * (e.g. ADD = 0x13, HOSTCALL = 0x03) — a single '1'->'0' flip
     * in a verified program escapes the sandbox.
     */
    Naive,
    /**
     * Monotone: every privileged opcode has bit 7 set, every
     * unprivileged one has it clear.  In true-cells, downward faults
     * can never mint a privileged opcode.
     */
    Monotone,
};

/** The mini ISA, independent of encoding. */
enum class Op : std::uint8_t
{
    Nop,
    LoadImm, //!< reg[a] = imm
    Add,     //!< reg[a] += reg[b]
    Store,   //!< mem[reg[a] & mask] = reg[b] (sandbox-local scratch)
    Jmp,     //!< relative jump (verified bounds)
    Halt,
    HostCall, //!< PRIVILEGED: touches the host (the escape)
    Invalid,
};

/** Encode @p op under @p encoding. */
std::uint8_t encodeOp(Op op, OpcodeEncoding encoding);

/** Decode a program byte under @p encoding. */
Op decodeOp(std::uint8_t byte, OpcodeEncoding encoding);

/** Outcome of one sandboxed execution. */
struct SandboxRun
{
    bool escaped = false;     //!< a privileged opcode executed
    bool crashed = false;     //!< invalid opcode / bounds violation
    std::uint64_t steps = 0;
};

/** A sandboxed interpreter over program bytes held in DRAM. */
class Sandbox
{
  public:
    /**
     * @param module     DRAM holding the program
     * @param code_base  physical base of the program bytes
     * @param encoding   the opcode numbering in force
     */
    Sandbox(dram::DramModule &module, Addr code_base,
            OpcodeEncoding encoding)
        : module_(module), codeBase_(code_base), encoding_(encoding)
    {}

    /**
     * Verifier: admit the @p bytes-long program only if it contains
     * no privileged opcode (run before the program is exposed to
     * hammering, as NaCl's validator was).
     */
    bool verify(std::uint64_t bytes) const;

    /** Execute up to @p max_steps instructions. */
    SandboxRun run(std::uint64_t bytes,
                   std::uint64_t max_steps = 10000) const;

    /**
     * Write a benign demo program of @p bytes instructions (NOP/ADD/
     * LOADIMM mix) at the code base.
     */
    void writeBenignProgram(std::uint64_t bytes,
                            std::uint64_t seed = 1) const;

    OpcodeEncoding encoding() const { return encoding_; }

  private:
    dram::DramModule &module_;
    Addr codeBase_;
    OpcodeEncoding encoding_;
};

} // namespace ctamem::ext

#endif // CTAMEM_EXT_SANDBOX_HH
