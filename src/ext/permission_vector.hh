/**
 * @file
 * Permission-vector protection (Section 8).
 *
 * Security-critical bit vectors (file rwx bits, SELinux access
 * vectors, PTE permission bits) use '1' = allowed.  Stored in
 * true-cells, charge-leak faults can only move permissions from
 * allowed to denied — annoying, but never a confidentiality
 * violation.  Stored in anti-cells, the same fault grants access.
 */

#ifndef CTAMEM_EXT_PERMISSION_VECTOR_HH
#define CTAMEM_EXT_PERMISSION_VECTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/module.hh"

namespace ctamem::ext {

/** A bit vector of permissions living in simulated DRAM. */
class PermissionVector
{
  public:
    /**
     * @param module  backing DRAM
     * @param base    physical address of the vector
     * @param count   number of permission bits
     * @param require_true_cells fail construction unless the vector
     *        lies entirely in true-cell rows (the CTA-recommended
     *        placement); pass false to build the vulnerable variant
     *        for comparison experiments
     */
    PermissionVector(dram::DramModule &module, Addr base,
                     std::uint64_t count,
                     bool require_true_cells = true);

    std::uint64_t count() const { return count_; }
    Addr base() const { return base_; }

    /** Grant permission @p index ('1'). */
    void grant(std::uint64_t index);

    /** Deny permission @p index ('0'). */
    void deny(std::uint64_t index);

    /** Current state of permission @p index. */
    bool allowed(std::uint64_t index) const;

    /** Cell type backing the vector. */
    dram::CellType cellType() const;

    /**
     * Audit against a reference state: counts how many permissions
     * drifted denied->allowed (confidentiality violations) and
     * allowed->denied (availability losses) relative to @p reference
     * (bit i of reference = expected state of permission i).
     */
    struct DriftReport
    {
        std::uint64_t deniedToAllowed = 0; //!< security violations
        std::uint64_t allowedToDenied = 0; //!< availability losses
    };

    DriftReport audit(const std::vector<bool> &reference) const;

  private:
    void checkIndex(std::uint64_t index) const;

    dram::DramModule &module_;
    Addr base_;
    std::uint64_t count_;
};

} // namespace ctamem::ext

#endif // CTAMEM_EXT_PERMISSION_VECTOR_HH
