#include "ext/hamming_shield.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace ctamem::ext {

HammingShield::HammingShield(dram::DramModule &module, Addr data_base,
                             Addr weight_base, std::uint64_t words,
                             bool enforce_cells)
    : module_(module), dataBase_(data_base), weightBase_(weight_base),
      words_(words)
{
    if (words == 0)
        fatal("HammingShield: zero words");
    if (!module.geometry().contains(data_base + words * 8 - 1) ||
        !module.geometry().contains(weight_base + words - 1)) {
        fatal("HammingShield: region extends past DRAM");
    }
    // Data and weights must not overlap.
    const Addr data_end = data_base + words * 8;
    const Addr weight_end = weight_base + words;
    if (data_base < weight_end && weight_base < data_end)
        fatal("HammingShield: data and weight regions overlap");
    if (enforce_cells) {
        if (module.cellTypeAt(data_base) != dram::CellType::True ||
            module.cellTypeAt(data_end - 1) != dram::CellType::True) {
            fatal("HammingShield: data must live in true-cells");
        }
        if (module.cellTypeAt(weight_base) != dram::CellType::Anti ||
            module.cellTypeAt(weight_end - 1) !=
                dram::CellType::Anti) {
            fatal("HammingShield: weights must live in anti-cells");
        }
    }
}

void
HammingShield::checkIndex(std::uint64_t index) const
{
    if (index >= words_)
        fatal("HammingShield: word index ", index, " out of range");
}

void
HammingShield::storeWord(std::uint64_t index, std::uint64_t value)
{
    checkIndex(index);
    module_.writeU64(wordAddr(index), value);
    module_.writeByte(weightAddr(index),
                      static_cast<std::uint8_t>(popcount(value)));
}

std::uint64_t
HammingShield::loadWord(std::uint64_t index) const
{
    checkIndex(index);
    return module_.readU64(wordAddr(index));
}

void
HammingShield::protect()
{
    for (std::uint64_t index = 0; index < words_; ++index) {
        module_.writeByte(
            weightAddr(index),
            static_cast<std::uint8_t>(
                popcount(module_.readU64(wordAddr(index)))));
    }
}

HammingShield::WordState
HammingShield::checkWord(std::uint64_t index) const
{
    checkIndex(index);
    const unsigned observed =
        popcount(module_.readU64(wordAddr(index)));
    const unsigned stored = module_.readByte(weightAddr(index));
    if (observed == stored)
        return WordState::Clean;
    // Data in true-cells only loses ones; a lower observed weight is
    // a data fault.  A higher observed weight means the stored weight
    // byte itself grew (anti-cell decay) — suspicious but the data
    // may be fine.
    return observed < stored ? WordState::FaultDetected :
                               WordState::Suspicious;
}

HammingShield::CheckReport
HammingShield::check() const
{
    CheckReport report;
    for (std::uint64_t index = 0; index < words_; ++index) {
        switch (checkWord(index)) {
          case WordState::Clean:
            ++report.clean;
            break;
          case WordState::FaultDetected:
            ++report.faults;
            break;
          case WordState::Suspicious:
            ++report.suspicious;
            break;
        }
    }
    return report;
}

} // namespace ctamem::ext
