/**
 * @file
 * The RowHammer disturbance engine.
 *
 * Repeated activation of an aggressor row accelerates charge leakage
 * in its device-adjacent victim rows.  The engine applies the module's
 * stable per-cell fault model: a vulnerable cell flips when (a) the
 * hammer intensity reaches the cell's trip threshold, (b) the cell
 * currently stores the value its flip direction consumes, and (c) no
 * mitigation suppressed the disturbance.
 *
 * The data path is row-granular and bit-parallel: each disturbed row
 * is described by a RowVulnProfile — per-64-cell-word masks of
 * vulnerability, flip direction and single-sided trip — and a hammer
 * pass is AND/XOR/popcount over those masks against the store's
 * readU64()/writeU64() fast path.  Profiles are pure functions of the
 * module seed, so they are cached per (bank, device row) and shared
 * process-wide between engines that simulate identical modules.
 *
 * Mitigations (PARA, ANVIL, refresh boosting, SoftTRR...) observe
 * activations through the DisturbanceObserver interface, implemented
 * in src/defense/ — the DRAM layer stays independent of defense
 * policy.  One pass is announced as one DisturbanceEvent per
 * aggressor row.
 *
 * Two hammer paths share the disturbance math:
 *
 *  - the *untimed* path (hammerRow/hammerDoubleSided): one call is a
 *    whole refresh window of tight activations, applied instantly —
 *    the right granularity for uniform attacks, where only counts
 *    matter;
 *  - the *timed* path (activate/refTick): the caller schedules bursts
 *    against a simulated refresh clock (RefTiming: tREFI intervals,
 *    REF commands).  Disturbance accumulates per victim row as
 *    activation pressure and is only converted into flips when the
 *    row's own refresh slot comes around; a REF also gives TRR-style
 *    mitigations their sampling opportunity (DisturbanceObserver::
 *    onRef), whose targeted refreshes clear pressure early.  This is
 *    what makes activation *timing and ordering* matter — the
 *    substrate the Blacksmith-style pattern fuzzer (src/fuzz/)
 *    searches over.
 */

#ifndef CTAMEM_DRAM_HAMMER_HH
#define CTAMEM_DRAM_HAMMER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/module.hh"

namespace ctamem::dram {

class RowHammerEngine;

/**
 * Geometry of the simulated refresh clock driving the timed hammer
 * path.  Defaults follow JEDEC shape: a 64 ms retention window split
 * into 8192 tREFI intervals (~7.8 us each), with room for ~160
 * activations per interval — so a pattern saturating every interval
 * issues ~1.3M activations per window, the untimed path's
 * activationsPerPass.
 */
struct RefTiming
{
    /** REF commands per retention window (64 ms / tREFI). */
    std::uint64_t refsPerWindow = 8192;
    /** Activation budget of one tREFI interval. */
    std::uint64_t actsPerInterval = 160;

    bool operator==(const RefTiming &) const = default;
};

/** One bit flip produced by a hammer pass. */
struct FlipEvent
{
    Addr addr;          //!< logical physical address of the byte
    unsigned bit;       //!< bit index within the byte
    FlipDirection dir;  //!< direction the value moved
};

/** Outcome of one hammer pass. */
struct HammerResult
{
    std::uint64_t flips10 = 0; //!< '1'->'0' flips applied
    std::uint64_t flips01 = 0; //!< '0'->'1' flips applied
    /**
     * Individual flips, populated only when the engine's event
     * recording is on (RowHammerEngine::setRecordEvents) — campaign
     * hot loops skip the per-pass vector entirely.
     */
    std::vector<FlipEvent> events;
    bool suppressed = false;   //!< a mitigation refreshed the victims

    std::uint64_t total() const { return flips10 + flips01; }
};

/**
 * One burst of activations on an aggressor row, as seen by a
 * mitigation.  Replaces the old positional (bank, row, activations,
 * victims-vector) callback with one extensible struct: defenses that
 * only count activations read three fields, row-aware defenses get
 * the disturbed device-row span, and per-row vulnerability summaries
 * are available lazily through the engine back-pointer without the
 * hot path paying for them.
 */
struct DisturbanceEvent
{
    std::uint64_t bank = 0;
    std::uint64_t aggressorRow = 0; //!< device row being activated
    std::uint64_t activations = 0;
    /**
     * Device rows that may be disturbed by this pass, inclusive and
     * clamped to the bank.  The span contains the aggressor row
     * itself (which is refreshed by its own activations, not
     * disturbed); a double-sided pass reports the full
     * [victim-2, victim+2] reach of its aggressor pair.
     */
    std::uint64_t victimFirst = 0;
    std::uint64_t victimLast = 0;
    /** Issuing engine, or null for synthetic events in tests. */
    RowHammerEngine *engine = nullptr;

    /** @name Timed-path fields (RowHammerEngine::activate)
     *
     * Bursts issued against the refresh clock report which tREFI
     * interval they landed in and their issue order within it — the
     * coordinates in-DRAM TRR samplers key their sampling window on.
     * Untimed whole-window passes leave them zero with timed false.
     */
    /** @{ */
    std::uint64_t refInterval = 0; //!< tREFI index of the burst
    std::uint64_t phase = 0;       //!< burst position in the interval
    bool timed = false;            //!< true for REF-clocked bursts
    /** @} */

    /**
     * Vulnerable-cell count of @p device_row (0 without an engine) —
     * the per-row summary row-aware defenses rank victims by.
     */
    std::uint64_t vulnerableCellsIn(std::uint64_t device_row) const;
};

/** One REF command being retired on the timed hammer path. */
struct RefEvent
{
    std::uint64_t bank = 0;
    std::uint64_t interval = 0; //!< tREFI index being retired
    /** Issuing engine, or null for synthetic events in tests. */
    RowHammerEngine *engine = nullptr;
};

/** Hook for RowHammer mitigations; one call per aggressor burst. */
class DisturbanceObserver
{
  public:
    virtual ~DisturbanceObserver() = default;

    /**
     * Observe one aggressor burst.
     * @return true when the mitigation neutralized the disturbance
     *         (e.g. refreshed the victims) for this pass.
     */
    virtual bool onHammer(const DisturbanceEvent &event) = 0;

    /**
     * One REF command retired (timed path only).  TRR-capable
     * mitigations append the device rows they target-refresh with
     * this REF to @p refresh_rows; the engine clears those rows'
     * accumulated disturbance pressure.  Default: no targeted
     * refreshes.
     */
    virtual void
    onRef(const RefEvent &event, std::vector<std::uint64_t> &refresh_rows)
    {
        (void)event;
        (void)refresh_rows;
    }
};

/** A cached vulnerable cell within one device row. */
struct VulnerableBit
{
    std::uint64_t column; //!< byte offset within the row
    unsigned bit;
    double threshold;     //!< minimum intensity that trips it
};

/**
 * Fault masks of one 64-cell word (8 bytes) of a row.  Bit k of each
 * mask describes the cell backing bit k of a little-endian u64 load
 * at (row base + word * 8) — i.e. cell (base + word*8 + k/8, k%8).
 */
struct MaskWord
{
    std::uint32_t word;  //!< 8-byte word index within the row
    std::uint64_t vuln;  //!< vulnerable cells
    std::uint64_t dir10; //!< subset of vuln flipping '1'->'0'
    std::uint64_t trip;  //!< subset of vuln tripping single-sided
};

/**
 * Bit-parallel fault profile of one device row: only words containing
 * at least one vulnerable cell appear, in ascending order.  A pure
 * function of (module seed, error stats, row base address, cell
 * type), which is what makes process-wide sharing sound.
 */
struct RowVulnProfile
{
    Addr base = 0;       //!< logical address of the row's first byte
    CellType type = CellType::True;
    bool mapped = false; //!< false: device row vacated by re-mapping
    std::vector<MaskWord> words;
    std::uint64_t vulnerableCells = 0;
    std::uint64_t tripSingleCells = 0;
};

/** Applies RowHammer disturbance to a DramModule. */
class RowHammerEngine
{
  public:
    /** Effective intensity of a single-sided hammer pass. */
    static constexpr double singleSidedIntensity = 0.2;
    /** Effective intensity of a double-sided hammer pass. */
    static constexpr double doubleSidedIntensity = 1.0;
    /** Activations per pass (one refresh window of tight reads). */
    static constexpr std::uint64_t activationsPerPass = 1'300'000;

    explicit RowHammerEngine(DramModule &module,
                             DisturbanceObserver *observer = nullptr)
        : module_(module), observer_(observer)
    {
        // Sized for a templating sweep over a few hundred rows; the
        // map only rehashes on campaigns far beyond that.
        profiles_.reserve(256);
        passesId_ = stats_.registerCounter("passes");
        suppressedPassesId_ = stats_.registerCounter("suppressedPasses");
        flips10Id_ = stats_.registerCounter("flips10");
        flips01Id_ = stats_.registerCounter("flips01");
        timedActivationsId_ =
            stats_.registerCounter("timedActivations");
        refTicksId_ = stats_.registerCounter("refTicks");
        trrRefreshesId_ = stats_.registerCounter("trrRefreshes");
    }

    void setObserver(DisturbanceObserver *observer)
    {
        observer_ = observer;
    }

    /** The module this engine disturbs. */
    DramModule &module() { return module_; }
    const DramModule &module() const { return module_; }

    /** @name Flip-event recording (opt-in)
     *
     * Recording is off by default: campaign loops only consume flip
     * *counts*, so the per-pass event vector would be pure overhead.
     * Tests and tools that inspect individual flips turn it on; an
     * event sink additionally accumulates every flip across passes
     * (the Drammer templating scan and attack_lab use it).
     */
    /** @{ */
    void setRecordEvents(bool record) { recordEvents_ = record; }
    bool recordEvents() const { return recordEvents_; }
    void setEventSink(std::vector<FlipEvent> *sink) { sink_ = sink; }
    std::vector<FlipEvent> *eventSink() const { return sink_; }
    /** @} */

    /**
     * Hammer logical row @p row of @p bank for one refresh window.
     * Disturbs the device-adjacent rows at single-sided intensity.
     */
    HammerResult hammerRow(std::uint64_t bank, std::uint64_t row);

    /**
     * Double-sided hammer: activate the logical rows directly above
     * and below @p victim_row alternately; the sandwiched victim sees
     * full intensity, the outer neighbours single-sided intensity.
     */
    HammerResult hammerDoubleSided(std::uint64_t bank,
                                   std::uint64_t victim_row);

    /** @name REF-interval timed hammering
     *
     * The timed path: activate() issues one aggressor burst inside
     * the current tREFI interval, refTick() retires one REF command.
     * Disturbance accumulates per victim row as (below, above)
     * neighbour-activation pressure; a row converts its pressure into
     * flips when its own refresh slot arrives (device row r is
     * refreshed by the REF whose interval index matches
     * r % refsPerWindow), then starts from full charge again.  A
     * mitigation's onRef() targeted refreshes clear pressure early.
     *
     * Pressure maps onto the untimed intensities: a window of paired
     * (double-sided) activations reaches doubleSidedIntensity, a
     * window of one-sided activations reaches singleSidedIntensity —
     * so a pattern saturating the clock reproduces the untimed
     * hammer, and anything sparser or interrupted by TRR lands
     * proportionally lower.
     */
    /** @{ */
    void setRefTiming(const RefTiming &timing) { refTiming_ = timing; }
    const RefTiming &refTiming() const { return refTiming_; }

    /** tREFI intervals retired so far (the current interval index). */
    std::uint64_t refInterval() const { return refInterval_; }

    /**
     * Issue @p activations activations of logical row @p row within
     * the current tREFI interval, as burst number @p phase of that
     * interval.  Announces one timed DisturbanceEvent; a suppressing
     * observer voids the burst's pressure.
     */
    void activate(std::uint64_t bank, std::uint64_t row,
                  std::uint64_t activations, std::uint64_t phase,
                  HammerResult &result);

    /**
     * Retire one REF command: give the observer its sampling
     * opportunity (onRef), clear the pressure of its target-refreshed
     * rows, then refresh the rows whose slot this interval is —
     * evaluating their accumulated pressure into flips first.
     */
    void refTick(std::uint64_t bank, HammerResult &result);

    /**
     * Evaluate all outstanding pressure in @p bank as if each row's
     * refresh slot arrived now (end of a timed run), in ascending
     * device-row order.
     */
    void drainPressure(std::uint64_t bank, HammerResult &result);

    /** Victim rows currently carrying unevaluated pressure. */
    std::size_t pendingPressureRows() const { return pressure_.size(); }
    /** @} */

    /**
     * Mask profile of a device row (lazily built, cached, shared
     * between engines over identical modules).  Stable against row
     * re-mapping: the cached entry revalidates against the current
     * logical base.
     */
    const RowVulnProfile &rowProfile(std::uint64_t bank,
                                     std::uint64_t device_row);

    /**
     * Compatibility view of a row's vulnerable cells, materialized
     * from the mask profile and sorted by ascending trip threshold
     * with a (column, bit) tie-break — the order the scalar engine
     * used.  Cold path only: it re-derives per-cell thresholds, so
     * callers on hot loops should consume rowProfile() masks instead.
     */
    std::vector<VulnerableBit> vulnerableBits(std::uint64_t bank,
                                              std::uint64_t device_row);

    /** Counters: passes, flips10, flips01, suppressedPasses. */
    StatGroup &stats() { return stats_; }

  private:
    /** Apply disturbance of @p intensity to one device row. */
    void disturbDeviceRow(std::uint64_t bank, std::uint64_t device_row,
                          double intensity, HammerResult &result);

    /**
     * Neighbour-activation pressure accumulated on one victim row
     * since its last refresh: activations of the device row below it
     * and of the device row above it, tracked separately so paired
     * (double-sided) pressure can be told from one-sided.
     */
    struct RowPressure
    {
        std::uint64_t below = 0; //!< activations of the row beneath
        std::uint64_t above = 0; //!< activations of the row on top
    };

    /** Effective disturbance intensity of accumulated pressure. */
    double pressureIntensity(const RowPressure &pressure) const;

    /** Convert one victim row's pressure into flips and clear it. */
    void evaluatePressure(std::uint64_t key, HammerResult &result);

    DramModule &module_;
    DisturbanceObserver *observer_;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const RowVulnProfile>>
        profiles_;
    std::vector<std::uint64_t> scanBuffer_; //!< bulk-scan scratch
    bool recordEvents_ = false;
    std::vector<FlipEvent> *sink_ = nullptr;

    // Timed-path state.
    RefTiming refTiming_;
    std::uint64_t refInterval_ = 0;
    /** Outstanding pressure keyed like the profile map (bank, row). */
    std::unordered_map<std::uint64_t, RowPressure> pressure_;
    std::vector<std::uint64_t> trrScratch_;  //!< onRef refresh targets
    std::vector<std::uint64_t> evalScratch_; //!< keys due this REF

    StatGroup stats_;
    StatId passesId_;
    StatId suppressedPassesId_;
    StatId flips10Id_;
    StatId flips01Id_;
    StatId timedActivationsId_;
    StatId refTicksId_;
    StatId trrRefreshesId_;
};

/** @name Process-wide row-profile cache controls
 *
 * Row profiles are shared between engines through one process-wide
 * cache (see hammer.cc).  Long-running multi-config services sweep
 * arbitrarily many distinct modules through one process, so the cache
 * is LRU-bounded: these hooks set the bound and read the counters the
 * service exports.
 */
/** @{ */

/** Counters and occupancy of the shared row-profile cache. */
struct ProfileCacheStats
{
    std::uint64_t hits = 0;      //!< profile served from the cache
    std::uint64_t misses = 0;    //!< profile had to be (re)built
    std::uint64_t evictions = 0; //!< LRU entries dropped at capacity
    std::size_t entries = 0;     //!< profiles currently cached
    std::size_t capacity = 0;    //!< current entry cap
};

ProfileCacheStats profileCacheStats();

/**
 * Cap the shared profile cache at @p max_entries (spread across its
 * shards, at least one per shard).  Shrinking evicts LRU entries
 * immediately.  Engines keep shared_ptr references to profiles they
 * hold, so eviction never invalidates a live profile.
 */
void profileCacheSetCapacity(std::size_t max_entries);

/** @} */

namespace reference {

/**
 * Retained scalar reference implementation of the disturbance pass —
 * the pre-mask cell-at-a-time algorithm, kept verbatim so the
 * equivalence property tests can check the bit-parallel engine
 * cell-for-cell against it.  Not used on any hot path.
 */
HammerResult hammerRowScalar(DramModule &module, std::uint64_t bank,
                             std::uint64_t row);
HammerResult hammerDoubleSidedScalar(DramModule &module,
                                     std::uint64_t bank,
                                     std::uint64_t victim_row);

} // namespace reference

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_HAMMER_HH
