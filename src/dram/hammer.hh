/**
 * @file
 * The RowHammer disturbance engine.
 *
 * Repeated activation of an aggressor row accelerates charge leakage
 * in its device-adjacent victim rows.  The engine applies the module's
 * stable per-cell fault model: a vulnerable cell flips when (a) the
 * hammer intensity reaches the cell's trip threshold, (b) the cell
 * currently stores the value its flip direction consumes, and (c) no
 * mitigation suppressed the disturbance.
 *
 * Mitigations (PARA, ANVIL, refresh boosting...) observe activations
 * through the DisturbanceObserver interface, implemented in
 * src/defense/ — the DRAM layer stays independent of defense policy.
 */

#ifndef CTAMEM_DRAM_HAMMER_HH
#define CTAMEM_DRAM_HAMMER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/module.hh"

namespace ctamem::dram {

/** One bit flip produced by a hammer pass. */
struct FlipEvent
{
    Addr addr;          //!< logical physical address of the byte
    unsigned bit;       //!< bit index within the byte
    FlipDirection dir;  //!< direction the value moved
};

/** Outcome of one hammer pass. */
struct HammerResult
{
    std::uint64_t flips10 = 0; //!< '1'->'0' flips applied
    std::uint64_t flips01 = 0; //!< '0'->'1' flips applied
    std::vector<FlipEvent> events;
    bool suppressed = false;   //!< a mitigation refreshed the victims

    std::uint64_t total() const { return flips10 + flips01; }
};

/**
 * Hook for RowHammer mitigations.  Called once per hammer pass with
 * the aggressor's device coordinates and the candidate victim rows.
 */
class DisturbanceObserver
{
  public:
    virtual ~DisturbanceObserver() = default;

    /**
     * Observe a burst of activations on (bank, device row).
     * @return true when the mitigation neutralized the disturbance
     *         (e.g. refreshed the victims) for this pass.
     */
    virtual bool onHammer(std::uint64_t bank, std::uint64_t device_row,
                          std::uint64_t activations,
                          const std::vector<std::uint64_t> &victims) = 0;
};

/** A cached vulnerable cell within one device row. */
struct VulnerableBit
{
    std::uint64_t column; //!< byte offset within the row
    unsigned bit;
    double threshold;     //!< minimum intensity that trips it
};

/** Applies RowHammer disturbance to a DramModule. */
class RowHammerEngine
{
  public:
    /** Effective intensity of a single-sided hammer pass. */
    static constexpr double singleSidedIntensity = 0.2;
    /** Effective intensity of a double-sided hammer pass. */
    static constexpr double doubleSidedIntensity = 1.0;
    /** Activations per pass (one refresh window of tight reads). */
    static constexpr std::uint64_t activationsPerPass = 1'300'000;

    explicit RowHammerEngine(DramModule &module,
                             DisturbanceObserver *observer = nullptr)
        : module_(module), observer_(observer)
    {
        // Sized for a templating sweep over a few hundred rows; the
        // map only rehashes on campaigns far beyond that.
        vulnCache_.reserve(256);
        passesId_ = stats_.registerCounter("passes");
        suppressedPassesId_ = stats_.registerCounter("suppressedPasses");
        flips10Id_ = stats_.registerCounter("flips10");
        flips01Id_ = stats_.registerCounter("flips01");
    }

    void setObserver(DisturbanceObserver *observer)
    {
        observer_ = observer;
    }

    /**
     * Hammer logical row @p row of @p bank for one refresh window.
     * Disturbs the device-adjacent rows at single-sided intensity.
     */
    HammerResult hammerRow(std::uint64_t bank, std::uint64_t row);

    /**
     * Double-sided hammer: activate the logical rows directly above
     * and below @p victim_row alternately; the sandwiched victim sees
     * full intensity, the outer neighbours single-sided intensity.
     */
    HammerResult hammerDoubleSided(std::uint64_t bank,
                                   std::uint64_t victim_row);

    /**
     * Vulnerable cells of a device row (lazily scanned, cached),
     * sorted by ascending trip threshold so disturbance passes can
     * early-exit once the intensity is out of reach.  Exposed so
     * attacks can reason about templating cost.
     */
    const std::vector<VulnerableBit> &
    vulnerableBits(std::uint64_t bank, std::uint64_t device_row);

    /** Counters: passes, flips10, flips01, suppressedPasses. */
    StatGroup &stats() { return stats_; }

  private:
    /** Apply disturbance of @p intensity to one device row. */
    void disturbDeviceRow(std::uint64_t bank, std::uint64_t device_row,
                          double intensity, HammerResult &result);

    DramModule &module_;
    DisturbanceObserver *observer_;
    std::unordered_map<std::uint64_t, std::vector<VulnerableBit>>
        vulnCache_;
    StatGroup stats_;
    StatId passesId_;
    StatId suppressedPassesId_;
    StatId flips10Id_;
    StatId flips01Id_;
};

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_HAMMER_HH
