/**
 * @file
 * The RowHammer disturbance engine.
 *
 * Repeated activation of an aggressor row accelerates charge leakage
 * in its device-adjacent victim rows.  The engine applies the module's
 * stable per-cell fault model: a vulnerable cell flips when (a) the
 * hammer intensity reaches the cell's trip threshold, (b) the cell
 * currently stores the value its flip direction consumes, and (c) no
 * mitigation suppressed the disturbance.
 *
 * The data path is row-granular and bit-parallel: each disturbed row
 * is described by a RowVulnProfile — per-64-cell-word masks of
 * vulnerability, flip direction and single-sided trip — and a hammer
 * pass is AND/XOR/popcount over those masks against the store's
 * readU64()/writeU64() fast path.  Profiles are pure functions of the
 * module seed, so they are cached per (bank, device row) and shared
 * process-wide between engines that simulate identical modules.
 *
 * Mitigations (PARA, ANVIL, refresh boosting, SoftTRR...) observe
 * activations through the DisturbanceObserver interface, implemented
 * in src/defense/ — the DRAM layer stays independent of defense
 * policy.  One pass is announced as one DisturbanceEvent per
 * aggressor row.
 */

#ifndef CTAMEM_DRAM_HAMMER_HH
#define CTAMEM_DRAM_HAMMER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/module.hh"

namespace ctamem::dram {

class RowHammerEngine;

/** One bit flip produced by a hammer pass. */
struct FlipEvent
{
    Addr addr;          //!< logical physical address of the byte
    unsigned bit;       //!< bit index within the byte
    FlipDirection dir;  //!< direction the value moved
};

/** Outcome of one hammer pass. */
struct HammerResult
{
    std::uint64_t flips10 = 0; //!< '1'->'0' flips applied
    std::uint64_t flips01 = 0; //!< '0'->'1' flips applied
    /**
     * Individual flips, populated only when the engine's event
     * recording is on (RowHammerEngine::setRecordEvents) — campaign
     * hot loops skip the per-pass vector entirely.
     */
    std::vector<FlipEvent> events;
    bool suppressed = false;   //!< a mitigation refreshed the victims

    std::uint64_t total() const { return flips10 + flips01; }
};

/**
 * One burst of activations on an aggressor row, as seen by a
 * mitigation.  Replaces the old positional (bank, row, activations,
 * victims-vector) callback with one extensible struct: defenses that
 * only count activations read three fields, row-aware defenses get
 * the disturbed device-row span, and per-row vulnerability summaries
 * are available lazily through the engine back-pointer without the
 * hot path paying for them.
 */
struct DisturbanceEvent
{
    std::uint64_t bank = 0;
    std::uint64_t aggressorRow = 0; //!< device row being activated
    std::uint64_t activations = 0;
    /**
     * Device rows that may be disturbed by this pass, inclusive and
     * clamped to the bank.  The span contains the aggressor row
     * itself (which is refreshed by its own activations, not
     * disturbed); a double-sided pass reports the full
     * [victim-2, victim+2] reach of its aggressor pair.
     */
    std::uint64_t victimFirst = 0;
    std::uint64_t victimLast = 0;
    /** Issuing engine, or null for synthetic events in tests. */
    RowHammerEngine *engine = nullptr;

    /**
     * Vulnerable-cell count of @p device_row (0 without an engine) —
     * the per-row summary row-aware defenses rank victims by.
     */
    std::uint64_t vulnerableCellsIn(std::uint64_t device_row) const;
};

/** Hook for RowHammer mitigations; one call per aggressor burst. */
class DisturbanceObserver
{
  public:
    virtual ~DisturbanceObserver() = default;

    /**
     * Observe one aggressor burst.
     * @return true when the mitigation neutralized the disturbance
     *         (e.g. refreshed the victims) for this pass.
     */
    virtual bool onHammer(const DisturbanceEvent &event) = 0;
};

/** A cached vulnerable cell within one device row. */
struct VulnerableBit
{
    std::uint64_t column; //!< byte offset within the row
    unsigned bit;
    double threshold;     //!< minimum intensity that trips it
};

/**
 * Fault masks of one 64-cell word (8 bytes) of a row.  Bit k of each
 * mask describes the cell backing bit k of a little-endian u64 load
 * at (row base + word * 8) — i.e. cell (base + word*8 + k/8, k%8).
 */
struct MaskWord
{
    std::uint32_t word;  //!< 8-byte word index within the row
    std::uint64_t vuln;  //!< vulnerable cells
    std::uint64_t dir10; //!< subset of vuln flipping '1'->'0'
    std::uint64_t trip;  //!< subset of vuln tripping single-sided
};

/**
 * Bit-parallel fault profile of one device row: only words containing
 * at least one vulnerable cell appear, in ascending order.  A pure
 * function of (module seed, error stats, row base address, cell
 * type), which is what makes process-wide sharing sound.
 */
struct RowVulnProfile
{
    Addr base = 0;       //!< logical address of the row's first byte
    CellType type = CellType::True;
    bool mapped = false; //!< false: device row vacated by re-mapping
    std::vector<MaskWord> words;
    std::uint64_t vulnerableCells = 0;
    std::uint64_t tripSingleCells = 0;
};

/** Applies RowHammer disturbance to a DramModule. */
class RowHammerEngine
{
  public:
    /** Effective intensity of a single-sided hammer pass. */
    static constexpr double singleSidedIntensity = 0.2;
    /** Effective intensity of a double-sided hammer pass. */
    static constexpr double doubleSidedIntensity = 1.0;
    /** Activations per pass (one refresh window of tight reads). */
    static constexpr std::uint64_t activationsPerPass = 1'300'000;

    explicit RowHammerEngine(DramModule &module,
                             DisturbanceObserver *observer = nullptr)
        : module_(module), observer_(observer)
    {
        // Sized for a templating sweep over a few hundred rows; the
        // map only rehashes on campaigns far beyond that.
        profiles_.reserve(256);
        passesId_ = stats_.registerCounter("passes");
        suppressedPassesId_ = stats_.registerCounter("suppressedPasses");
        flips10Id_ = stats_.registerCounter("flips10");
        flips01Id_ = stats_.registerCounter("flips01");
    }

    void setObserver(DisturbanceObserver *observer)
    {
        observer_ = observer;
    }

    /** @name Flip-event recording (opt-in)
     *
     * Recording is off by default: campaign loops only consume flip
     * *counts*, so the per-pass event vector would be pure overhead.
     * Tests and tools that inspect individual flips turn it on; an
     * event sink additionally accumulates every flip across passes
     * (the Drammer templating scan and attack_lab use it).
     */
    /** @{ */
    void setRecordEvents(bool record) { recordEvents_ = record; }
    bool recordEvents() const { return recordEvents_; }
    void setEventSink(std::vector<FlipEvent> *sink) { sink_ = sink; }
    std::vector<FlipEvent> *eventSink() const { return sink_; }
    /** @} */

    /**
     * Hammer logical row @p row of @p bank for one refresh window.
     * Disturbs the device-adjacent rows at single-sided intensity.
     */
    HammerResult hammerRow(std::uint64_t bank, std::uint64_t row);

    /**
     * Double-sided hammer: activate the logical rows directly above
     * and below @p victim_row alternately; the sandwiched victim sees
     * full intensity, the outer neighbours single-sided intensity.
     */
    HammerResult hammerDoubleSided(std::uint64_t bank,
                                   std::uint64_t victim_row);

    /**
     * Mask profile of a device row (lazily built, cached, shared
     * between engines over identical modules).  Stable against row
     * re-mapping: the cached entry revalidates against the current
     * logical base.
     */
    const RowVulnProfile &rowProfile(std::uint64_t bank,
                                     std::uint64_t device_row);

    /**
     * Compatibility view of a row's vulnerable cells, materialized
     * from the mask profile and sorted by ascending trip threshold
     * with a (column, bit) tie-break — the order the scalar engine
     * used.  Cold path only: it re-derives per-cell thresholds, so
     * callers on hot loops should consume rowProfile() masks instead.
     */
    std::vector<VulnerableBit> vulnerableBits(std::uint64_t bank,
                                              std::uint64_t device_row);

    /** Counters: passes, flips10, flips01, suppressedPasses. */
    StatGroup &stats() { return stats_; }

  private:
    /** Apply disturbance of @p intensity to one device row. */
    void disturbDeviceRow(std::uint64_t bank, std::uint64_t device_row,
                          double intensity, HammerResult &result);

    DramModule &module_;
    DisturbanceObserver *observer_;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const RowVulnProfile>>
        profiles_;
    std::vector<std::uint64_t> scanBuffer_; //!< bulk-scan scratch
    bool recordEvents_ = false;
    std::vector<FlipEvent> *sink_ = nullptr;
    StatGroup stats_;
    StatId passesId_;
    StatId suppressedPassesId_;
    StatId flips10Id_;
    StatId flips01Id_;
};

/** @name Process-wide row-profile cache controls
 *
 * Row profiles are shared between engines through one process-wide
 * cache (see hammer.cc).  Long-running multi-config services sweep
 * arbitrarily many distinct modules through one process, so the cache
 * is LRU-bounded: these hooks set the bound and read the counters the
 * service exports.
 */
/** @{ */

/** Counters and occupancy of the shared row-profile cache. */
struct ProfileCacheStats
{
    std::uint64_t hits = 0;      //!< profile served from the cache
    std::uint64_t misses = 0;    //!< profile had to be (re)built
    std::uint64_t evictions = 0; //!< LRU entries dropped at capacity
    std::size_t entries = 0;     //!< profiles currently cached
    std::size_t capacity = 0;    //!< current entry cap
};

ProfileCacheStats profileCacheStats();

/**
 * Cap the shared profile cache at @p max_entries (spread across its
 * shards, at least one per shard).  Shrinking evicts LRU entries
 * immediately.  Engines keep shared_ptr references to profiles they
 * hold, so eviction never invalidates a live profile.
 */
void profileCacheSetCapacity(std::size_t max_entries);

/** @} */

namespace reference {

/**
 * Retained scalar reference implementation of the disturbance pass —
 * the pre-mask cell-at-a-time algorithm, kept verbatim so the
 * equivalence property tests can check the bit-parallel engine
 * cell-for-cell against it.  Not used on any hot path.
 */
HammerResult hammerRowScalar(DramModule &module, std::uint64_t bank,
                             std::uint64_t row);
HammerResult hammerDoubleSidedScalar(DramModule &module,
                                     std::uint64_t bank,
                                     std::uint64_t victim_row);

} // namespace reference

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_HAMMER_HH
