/**
 * @file
 * Measured RowHammer bit-flip statistics (Kim et al. ISCA'14, as used
 * in Section 5 of the paper) plus the derived per-direction flip
 * probabilities for each cell type.
 */

#ifndef CTAMEM_DRAM_ERROR_STATS_HH
#define CTAMEM_DRAM_ERROR_STATS_HH

#include "dram/cell_types.hh"

namespace ctamem::dram {

/**
 * RowHammer error statistics for a DRAM module.
 *
 * pf is the probability that a given cell is vulnerable (flippable)
 * under a double-sided hammer.  Among vulnerable *true*-cells, p10True
 * flip '1'->'0' (the leak direction) and p01True flip '0'->'1' (rare
 * circuit effects such as voltage coupling).  Anti-cells mirror the
 * directions.
 */
struct ErrorStats
{
    /** Probability a cell is vulnerable to RowHammer at all. */
    double pf = 1e-4;

    /** P('0'->'1' | vulnerable true-cell). Paper: 0.2%. */
    double p01True = 0.002;

    /** P('1'->'0' | vulnerable true-cell). Paper: 99.8%. */
    double p10True = 0.998;

    /** Probability a random true-cell bit can flip 0->1. */
    double upFlipProbTrue() const { return pf * p01True; }

    /** Probability a random true-cell bit can flip 1->0. */
    double downFlipProbTrue() const { return pf * p10True; }

    /**
     * Probability a random bit in cells of @p type can flip 0->1.
     * Anti-cells leak toward '1', so their up-flip direction is the
     * common one.
     */
    double
    upFlipProb(CellType type) const
    {
        return type == CellType::True ? pf * p01True : pf * p10True;
    }

    /** Probability a random bit in cells of @p type can flip 1->0. */
    double
    downFlipProb(CellType type) const
    {
        return type == CellType::True ? pf * p10True : pf * p01True;
    }

    /** The paper's pessimistic technology-scaling scenario (Table 3). */
    static ErrorStats
    pessimistic()
    {
        return ErrorStats{5e-4, 0.005, 0.995};
    }
};

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_ERROR_STATS_HH
