/**
 * @file
 * The simulated DRAM module: data storage, cell-type map, fault
 * model, refresh/decay behaviour, and row re-mapping.
 *
 * Data is addressed by *logical* physical address (what the memory
 * controller sees).  Row re-mapping (manufacturers replacing a faulty
 * row with a spare, Section 7 of the paper) changes which *device* row
 * a logical row's cells occupy; adjacency and cell type follow the
 * device row, data addressing does not change.
 */

#ifndef CTAMEM_DRAM_MODULE_HH
#define CTAMEM_DRAM_MODULE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/cell_types.hh"
#include "dram/fault_model.hh"
#include "dram/geometry.hh"
#include "dram/sparse_store.hh"

namespace ctamem::dram {

/** Construction parameters for a simulated module. */
struct DramConfig
{
    std::uint64_t capacity = 8 * GiB;
    std::uint64_t rowBytes = 128 * KiB; //!< paper's typical row size
    std::uint64_t banks = 8;
    AddressScheme scheme = AddressScheme::BankBlocked;
    CellTypeMap cellMap = CellTypeMap::alternating(512);
    ErrorStats errors;
    std::uint64_t seed = 1;
    SimTime refreshInterval = 64 * milliseconds; //!< JEDEC default
};

/** One simulated DRAM module. */
class DramModule
{
  public:
    explicit DramModule(const DramConfig &config);

    const DramConfig &config() const { return config_; }
    const Geometry &geometry() const { return geometry_; }
    const FaultModel &faults() const { return faults_; }
    const CellTypeMap &cellMap() const { return config_.cellMap; }
    SparseStore &store() { return store_; }
    const SparseStore &store() const { return store_; }

    /** @name Data access (logical physical addresses)
     *
     * Inline pass-throughs to the store so the walker's per-level
     * entry reads compile down to the store's frame-cache fast path.
     */
    /** @{ */
    void
    read(Addr addr, void *out, std::size_t len) const
    {
        store_.read(addr, out, len);
    }

    void
    write(Addr addr, const void *in, std::size_t len)
    {
        store_.write(addr, in, len);
    }

    std::uint8_t readByte(Addr addr) const
    {
        return store_.readByte(addr);
    }

    void writeByte(Addr addr, std::uint8_t value)
    {
        store_.writeByte(addr, value);
    }

    std::uint64_t readU64(Addr addr) const
    {
        return store_.readU64(addr);
    }

    void writeU64(Addr addr, std::uint64_t value)
    {
        store_.writeU64(addr, value);
    }
    /** @} */

    /** @name Cell-type and row queries */
    /** @{ */
    /** Device coordinates of a logical address (before re-mapping). */
    Location locate(Addr addr) const { return geometry_.locate(addr); }

    /** Device row a logical (bank, row) actually occupies. */
    std::uint64_t deviceRow(std::uint64_t bank, std::uint64_t row) const;

    /** Logical row currently occupying device (bank, row). */
    std::uint64_t logicalRow(std::uint64_t bank,
                             std::uint64_t device_row) const;

    /**
     * Logical address of the first byte whose data device row
     * (@p bank, @p device_row) holds, or ~0 when the device row was
     * vacated by re-mapping.  The hammer engine keys fault masks on
     * this base: the fault model speaks logical addresses, adjacency
     * speaks device rows.
     */
    Addr rowBase(std::uint64_t bank, std::uint64_t device_row) const;

    /** Cell type of the device row backing logical (bank, row). */
    CellType rowCellType(std::uint64_t bank, std::uint64_t row) const;

    /** Cell type of the cells backing logical address @p addr. */
    CellType cellTypeAt(Addr addr) const;
    /** @} */

    /** @name Row re-mapping */
    /** @{ */
    /**
     * Re-map logical row @p row of @p bank to device row
     * @p spare_row (the two device rows swap logical identities, so
     * the mapping stays bijective).  Fatal if the spare's cell type
     * differs from the original's: sense amplifiers require
     * like-for-like replacement (Section 7), which is why re-mapping
     * cannot break CTA — but it silently breaks defenses built on
     * *address-space* adjacency, such as CATT.
     */
    void remapRow(std::uint64_t bank, std::uint64_t row,
                  std::uint64_t spare_row);

    /** Number of re-map swaps applied. */
    std::size_t remapCount() const { return remapByLogical_.size() / 2; }
    /** @} */

    /** @name Refresh and decay */
    /** @{ */
    bool refreshEnabled() const { return refreshEnabled_; }

    /**
     * Enable/disable refresh.  Re-enabling restores charge in every
     * cell that has not yet decayed, so the unrefreshed-time clock
     * resets; already-decayed cells keep their corrupted value until
     * rewritten.
     */
    void
    setRefreshEnabled(bool enabled)
    {
        refreshEnabled_ = enabled;
        if (enabled)
            unrefreshedTime_ = 0;
    }

    /**
     * Advance simulated time.  If refresh is disabled (or the module
     * is powered off), cells whose retention time at @p celsius is
     * shorter than the accumulated unrefreshed interval decay to
     * their discharged value.
     */
    void advance(SimTime dt, double celsius = 20.0);

    /**
     * Model a power-off of @p duration at @p celsius: equivalent to
     * advancing that long with refresh disabled, then restoring the
     * previous refresh setting.
     */
    void powerOff(SimTime duration, double celsius = 20.0);
    /** @} */

    /** Event counters: decayedBits, remaps, reads, writes. */
    StatGroup &stats() { return stats_; }

  private:
    void decayTouchedFrames(SimTime unrefreshed, double celsius);

    DramConfig config_;
    Geometry geometry_;
    FaultModel faults_;
    SparseStore store_;
    bool refreshEnabled_ = true;
    SimTime unrefreshedTime_ = 0;

    /**
     * (bank, logical row) -> device row for re-mapped rows.  Swaps
     * keep the relation symmetric, so this single map also answers
     * the device-to-logical question.
     */
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
        remapByLogical_;

    StatGroup stats_;
    StatId remapsId_;
    StatId decayedBitsId_;
};

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_MODULE_HH
