#include "dram/geometry.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace ctamem::dram {

Geometry::Geometry(std::uint64_t capacity, std::uint64_t row_bytes,
                   std::uint64_t banks, AddressScheme scheme)
    : capacity_(capacity), rowBytes_(row_bytes), banks_(banks),
      scheme_(scheme)
{
    if (!isPowerOfTwo(capacity))
        fatal("DRAM capacity must be a power of two, got ", capacity);
    if (!isPowerOfTwo(row_bytes) || row_bytes < pageSize)
        fatal("DRAM row size must be a power of two >= 4 KiB, got ",
              row_bytes);
    if (!isPowerOfTwo(banks) || banks == 0)
        fatal("DRAM bank count must be a nonzero power of two, got ",
              banks);
    if (capacity < row_bytes * banks)
        fatal("DRAM capacity ", capacity, " too small for ", banks,
              " banks of ", row_bytes, "-byte rows");
    totalRows_ = capacity_ / rowBytes_;
    rowsPerBank_ = totalRows_ / banks_;
}

Location
Geometry::locate(Addr addr) const
{
    if (!contains(addr))
        ctamem_panic("address ", addr, " outside DRAM capacity ",
                     capacity_);
    const std::uint64_t global_row = addr / rowBytes_;
    const std::uint64_t column = addr % rowBytes_;
    if (scheme_ == AddressScheme::BankBlocked) {
        return Location{global_row / rowsPerBank_,
                        global_row % rowsPerBank_, column};
    }
    return Location{global_row % banks_, global_row / banks_, column};
}

Addr
Geometry::address(const Location &loc) const
{
    if (loc.bank >= banks_ || loc.row >= rowsPerBank_ ||
        loc.column >= rowBytes_) {
        ctamem_panic("location out of range: bank=", loc.bank,
                     " row=", loc.row, " column=", loc.column);
    }
    std::uint64_t global_row;
    if (scheme_ == AddressScheme::BankBlocked)
        global_row = loc.bank * rowsPerBank_ + loc.row;
    else
        global_row = loc.row * banks_ + loc.bank;
    return global_row * rowBytes_ + loc.column;
}

Addr
Geometry::rowBase(Addr addr) const
{
    return (addr / rowBytes_) * rowBytes_;
}

} // namespace ctamem::dram
