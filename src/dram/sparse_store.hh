/**
 * @file
 * Sparse byte-addressable backing store for simulated physical memory.
 *
 * We simulate machines with 8-128 GiB of DRAM; only the frames a test
 * or attack actually touches get materialized (4 KiB at a time).
 * Untouched memory reads as the frame fill pattern.
 */

#ifndef CTAMEM_DRAM_SPARSE_STORE_HH
#define CTAMEM_DRAM_SPARSE_STORE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ctamem::dram {

/** Sparse, page-granular storage of simulated memory contents. */
class SparseStore
{
  public:
    /** @param fill byte value newly materialized frames start with */
    explicit SparseStore(std::uint8_t fill = 0) : fill_(fill) {}

    /** Read @p len bytes at @p addr into @p out. */
    void read(Addr addr, void *out, std::size_t len) const;

    /** Write @p len bytes from @p in at @p addr. */
    void write(Addr addr, const void *in, std::size_t len);

    /** Read one byte. */
    std::uint8_t readByte(Addr addr) const;

    /** Write one byte. */
    void writeByte(Addr addr, std::uint8_t value);

    /** Read a little-endian 64-bit word. */
    std::uint64_t readU64(Addr addr) const;

    /** Write a little-endian 64-bit word. */
    void writeU64(Addr addr, std::uint64_t value);

    /** Read one bit (bit @p bit of the byte at @p addr). */
    bool readBit(Addr addr, unsigned bit) const;

    /** Write one bit. */
    void writeBit(Addr addr, unsigned bit, bool value);

    /** True iff the frame containing @p addr has been materialized. */
    bool touched(Addr addr) const;

    /** Number of materialized frames. */
    std::size_t frameCount() const { return frames_.size(); }

    /** Frame numbers of all materialized frames (unordered). */
    std::vector<Pfn> touchedFrames() const;

    /** Drop every materialized frame (memory returns to fill value). */
    void clear() { frames_.clear(); }

  private:
    using Frame = std::unique_ptr<std::uint8_t[]>;

    /** Frame for @p pfn, or nullptr when never written. */
    const std::uint8_t *peek(Pfn pfn) const;

    /** Frame for @p pfn, materializing it on first use. */
    std::uint8_t *touch(Pfn pfn);

    std::uint8_t fill_;
    std::unordered_map<Pfn, Frame> frames_;
};

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_SPARSE_STORE_HH
