/**
 * @file
 * Sparse byte-addressable backing store for simulated physical memory.
 *
 * We simulate machines with 8-128 GiB of DRAM; only the frames a test
 * or attack actually touches get materialized (4 KiB at a time).
 * Untouched memory reads as the frame fill pattern.
 *
 * Hot-path design: a one-entry last-frame cache (pfn + frame pointer)
 * lets sequential and page-local accesses — page walks hammering the
 * same table frames, streaming workloads — skip the hash lookup, and
 * the word accessors memcpy within a frame instead of going through
 * the byte-wise span loop.  Frame storage is heap-allocated per page,
 * so the cached pointer stays valid across map rehashes; only clear()
 * invalidates it.
 */

#ifndef CTAMEM_DRAM_SPARSE_STORE_HH
#define CTAMEM_DRAM_SPARSE_STORE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ctamem::dram {

/** Sparse, page-granular storage of simulated memory contents. */
class SparseStore
{
  public:
    /** @param fill byte value newly materialized frames start with */
    explicit SparseStore(std::uint8_t fill = 0) : fill_(fill) {}

    /** Read @p len bytes at @p addr into @p out. */
    void read(Addr addr, void *out, std::size_t len) const;

    /** Write @p len bytes from @p in at @p addr. */
    void write(Addr addr, const void *in, std::size_t len);

    /** Read one byte. */
    std::uint8_t
    readByte(Addr addr) const
    {
        if (const std::uint8_t *frame = peek(addrToPfn(addr)))
            return frame[addr & pageMask];
        return fill_;
    }

    /** Write one byte. */
    void
    writeByte(Addr addr, std::uint8_t value)
    {
        touch(addrToPfn(addr))[addr & pageMask] = value;
    }

    /** Read a little-endian 64-bit word. */
    std::uint64_t
    readU64(Addr addr) const
    {
        const std::size_t offset = addr & pageMask;
        std::uint64_t value;
        if (offset + sizeof(value) <= pageSize) {
            if (const std::uint8_t *frame = peek(addrToPfn(addr)))
                std::memcpy(&value, frame + offset, sizeof(value));
            else
                std::memset(&value, fill_, sizeof(value));
            return value;
        }
        // Straddles a frame boundary: take the span-wise slow path.
        value = 0;
        read(addr, &value, sizeof(value));
        return value;
    }

    /** Write a little-endian 64-bit word. */
    void
    writeU64(Addr addr, std::uint64_t value)
    {
        const std::size_t offset = addr & pageMask;
        if (offset + sizeof(value) <= pageSize) {
            std::memcpy(touch(addrToPfn(addr)) + offset, &value,
                        sizeof(value));
            return;
        }
        write(addr, &value, sizeof(value));
    }

    /** Read one bit (bit @p bit of the byte at @p addr). */
    bool readBit(Addr addr, unsigned bit) const;

    /** Write one bit. */
    void writeBit(Addr addr, unsigned bit, bool value);

    /** True iff the frame containing @p addr has been materialized. */
    bool touched(Addr addr) const;

    /** Number of materialized frames. */
    std::size_t frameCount() const { return frames_.size(); }

    /**
     * Pre-size the frame table for @p frames entries.  Frame pointers
     * survive rehashes anyway; this only saves the rehash work itself
     * on workloads that touch many frames.
     */
    void reserve(std::size_t frames) { frames_.reserve(frames); }

    /** Frame numbers of all materialized frames (unordered). */
    std::vector<Pfn> touchedFrames() const;

    /** Drop every materialized frame (memory returns to fill value). */
    void
    clear()
    {
        frames_.clear();
        cachedPfn_ = invalidPfn;
        cachedFrame_ = nullptr;
    }

  private:
    using Frame = std::unique_ptr<std::uint8_t[]>;

    /** Frame for @p pfn, or nullptr when never written. */
    const std::uint8_t *
    peek(Pfn pfn) const
    {
        if (pfn == cachedPfn_)
            return cachedFrame_;
        return peekSlow(pfn);
    }

    /** Frame for @p pfn, materializing it on first use. */
    std::uint8_t *
    touch(Pfn pfn)
    {
        if (pfn == cachedPfn_)
            return cachedFrame_;
        return touchSlow(pfn);
    }

    const std::uint8_t *peekSlow(Pfn pfn) const;
    std::uint8_t *touchSlow(Pfn pfn);

    std::uint8_t fill_;
    std::unordered_map<Pfn, Frame> frames_;

    /** Last materialized frame hit (never caches absent frames). */
    mutable Pfn cachedPfn_ = invalidPfn;
    mutable std::uint8_t *cachedFrame_ = nullptr;
};

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_SPARSE_STORE_HH
