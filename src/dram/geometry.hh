/**
 * @file
 * DRAM geometry and the physical-address-to-device mapping.
 *
 * The unit that matters for RowHammer is the *physical row within a
 * bank*: an aggressor row disturbs the rows directly above and below
 * it in the same bank, and cell types are assigned per in-bank row.
 */

#ifndef CTAMEM_DRAM_GEOMETRY_HH
#define CTAMEM_DRAM_GEOMETRY_HH

#include <cstdint>

#include "common/types.hh"

namespace ctamem::dram {

/** Device coordinates of one byte of physical memory. */
struct Location
{
    std::uint64_t bank;
    std::uint64_t row;    //!< row index within the bank
    std::uint64_t column; //!< byte offset within the row

    bool
    operator==(const Location &other) const = default;
};

/** How consecutive physical addresses are spread across banks. */
enum class AddressScheme : std::uint8_t
{
    /**
     * Each bank owns one contiguous slab of the address space; rows
     * within a bank are contiguous.  This matches the paper's model,
     * where a 128 KiB-aligned region is one row and adjacent regions
     * are adjacent rows.
     */
    BankBlocked,
    /** Rows round-robin across banks (row interleaving). */
    RowInterleaved,
};

/**
 * Geometry of one simulated DRAM module and the bidirectional mapping
 * between flat physical addresses and (bank, row, column).
 */
class Geometry
{
  public:
    /**
     * @param capacity   total module bytes (power of two)
     * @param row_bytes  bytes per row (paper: 128 KiB)
     * @param banks      number of banks (power of two)
     * @param scheme     address interleaving scheme
     */
    Geometry(std::uint64_t capacity, std::uint64_t row_bytes,
             std::uint64_t banks = 8,
             AddressScheme scheme = AddressScheme::BankBlocked);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t rowBytes() const { return rowBytes_; }
    std::uint64_t banks() const { return banks_; }
    std::uint64_t totalRows() const { return totalRows_; }
    std::uint64_t rowsPerBank() const { return rowsPerBank_; }
    AddressScheme scheme() const { return scheme_; }

    /** Pages (4 KiB frames) per DRAM row. */
    std::uint64_t
    pagesPerRow() const
    {
        return rowBytes_ / pageSize;
    }

    /** Map a physical byte address to device coordinates. */
    Location locate(Addr addr) const;

    /** Map device coordinates back to the physical byte address. */
    Addr address(const Location &loc) const;

    /** Base physical address of the row containing @p addr. */
    Addr rowBase(Addr addr) const;

    /**
     * Physical address range check.  All ctamem physical addresses
     * must satisfy this before touching the module.
     */
    bool
    contains(Addr addr) const
    {
        return addr < capacity_;
    }

  private:
    std::uint64_t capacity_;
    std::uint64_t rowBytes_;
    std::uint64_t banks_;
    std::uint64_t totalRows_;
    std::uint64_t rowsPerBank_;
    AddressScheme scheme_;
};

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_GEOMETRY_HH
