#include "dram/fault_model.hh"

#include <cmath>

#include "common/rng.hh"

namespace ctamem::dram {

namespace {

// Salts keep the independent per-cell properties decorrelated.
constexpr std::uint64_t saltVulnerable = 0x76756c6eULL;  // "vuln"
constexpr std::uint64_t saltDirection = 0x64697265ULL;   // "dire"
constexpr std::uint64_t saltThreshold = 0x74687265ULL;   // "thre"
constexpr std::uint64_t saltRetention = 0x72657465ULL;   // "rete"

/** Retention distribution at 20 C: 128 ms floor + Exp(mean 2 s). */
constexpr double retentionFloorSec = 0.128;
constexpr double retentionMeanSec = 2.0;

} // namespace

bool
FaultModel::vulnerable(Addr addr, unsigned bit) const
{
    return hash01(seed_, saltVulnerable, cellIndex(addr, bit)) <
           stats_.pf;
}

FlipDirection
FaultModel::flipDirection(Addr addr, unsigned bit, CellType type) const
{
    const double u =
        hash01(seed_, saltDirection, cellIndex(addr, bit));
    const bool dominant = u < stats_.p10True;
    if (type == CellType::True) {
        // Dominant: leak from the charged '1' state.
        return dominant ? FlipDirection::OneToZero :
                          FlipDirection::ZeroToOne;
    }
    // Anti-cells leak from the charged '0' state.
    return dominant ? FlipDirection::ZeroToOne :
                      FlipDirection::OneToZero;
}

double
FaultModel::tripThreshold(Addr addr, unsigned bit) const
{
    return hash01(seed_, saltThreshold, cellIndex(addr, bit));
}

SimTime
FaultModel::retentionTime(Addr addr, unsigned bit, double celsius) const
{
    const double u =
        hash01(seed_, saltRetention, cellIndex(addr, bit));
    // Inverse-CDF sample of the exponential tail; clamp u away from 1
    // so log1p stays finite.
    const double clamped = u > 0.999999999999 ? 0.999999999999 : u;
    const double base_sec =
        retentionFloorSec - retentionMeanSec * std::log1p(-clamped);
    // Retention roughly doubles for every 10 C drop below 20 C.
    const double scale = std::exp2((20.0 - celsius) / 10.0);
    return static_cast<SimTime>(base_sec * scale *
                                static_cast<double>(seconds));
}

} // namespace ctamem::dram
