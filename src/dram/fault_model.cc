#include "dram/fault_model.hh"

#include <cmath>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define CTAMEM_HAVE_AVX512_SCAN 1
#endif

namespace ctamem::dram {

namespace {

/** Retention distribution at 20 C: 128 ms floor + Exp(mean 2 s). */
constexpr double retentionFloorSec = 0.128;
constexpr double retentionMeanSec = 2.0;

#ifdef CTAMEM_HAVE_AVX512_SCAN

/**
 * Eight-lane splitmix64 over consecutive cell indices.  vpmullq
 * (AVX-512DQ) gives the two 64-bit multiplies of the mixer natively,
 * and the unsigned-compare mask register is exactly the 8 mask bits
 * a word scan needs — the whole vulnerability mask of a 64-cell word
 * falls out of 8 vector steps.  Bit-identical to the scalar chain by
 * construction: same adds, same xors, same multiplies.
 */
__attribute__((target("avx512f,avx512dq"))) void
scanAvx512(std::uint64_t base, std::uint64_t idx0, std::uint64_t lt,
           std::size_t words, std::uint64_t *out)
{
    const __m512i vbase = _mm512_set1_epi64(
        static_cast<long long>(base));
    const __m512i vgamma = _mm512_set1_epi64(
        static_cast<long long>(0x9e3779b97f4a7c15ULL));
    const __m512i vmul1 = _mm512_set1_epi64(
        static_cast<long long>(0xbf58476d1ce4e5b9ULL));
    const __m512i vmul2 = _mm512_set1_epi64(
        static_cast<long long>(0x94d049bb133111ebULL));
    const __m512i vlt = _mm512_set1_epi64(static_cast<long long>(lt));
    const __m512i lane = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
    const __m512i veight = _mm512_set1_epi64(8);

    // Running (cell index + M) vector: +8 per octet, no per-step
    // broadcast from a scalar register.
    __m512i vidx = _mm512_add_epi64(
        _mm512_set1_epi64(
            static_cast<long long>(idx0 + kStableHashMix)),
        lane);
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t mask = 0;
        // Two interleaved octet chains: the mixer is a serial
        // dependency chain dominated by vpmullq latency, so a single
        // chain leaves the multiplier idle most of the time.
        for (unsigned j = 0; j < 8; j += 2) {
            __m512i a = _mm512_xor_si512(vbase, vidx);
            __m512i b = _mm512_xor_si512(
                vbase, _mm512_add_epi64(vidx, veight));
            vidx = _mm512_add_epi64(
                vidx, _mm512_add_epi64(veight, veight));
            // Two splitmix64 rounds: the key-folding round over the
            // cell index plus stableHash's terminal finalizer.
            for (int round = 0; round < 2; ++round) {
                a = _mm512_add_epi64(a, vgamma);
                b = _mm512_add_epi64(b, vgamma);
                a = _mm512_mullo_epi64(
                    _mm512_xor_si512(a, _mm512_srli_epi64(a, 30)),
                    vmul1);
                b = _mm512_mullo_epi64(
                    _mm512_xor_si512(b, _mm512_srli_epi64(b, 30)),
                    vmul1);
                a = _mm512_mullo_epi64(
                    _mm512_xor_si512(a, _mm512_srli_epi64(a, 27)),
                    vmul2);
                b = _mm512_mullo_epi64(
                    _mm512_xor_si512(b, _mm512_srli_epi64(b, 27)),
                    vmul2);
                a = _mm512_xor_si512(a, _mm512_srli_epi64(a, 31));
                b = _mm512_xor_si512(b, _mm512_srli_epi64(b, 31));
            }
            const __mmask8 hit_a = _mm512_cmplt_epu64_mask(
                _mm512_srli_epi64(a, 11), vlt);
            const __mmask8 hit_b = _mm512_cmplt_epu64_mask(
                _mm512_srli_epi64(b, 11), vlt);
            mask |= (static_cast<std::uint64_t>(hit_a) |
                     (static_cast<std::uint64_t>(hit_b) << 8))
                    << (j * 8);
        }
        out[w] = mask;
    }
}

bool
haveAvx512Scan()
{
    static const bool have = __builtin_cpu_supports("avx512f") &&
                             __builtin_cpu_supports("avx512dq");
    return have;
}

#endif // CTAMEM_HAVE_AVX512_SCAN

/** Portable scalar fallback of the bulk scan. */
void
scanScalar(std::uint64_t base, std::uint64_t idx0, std::uint64_t lt,
           std::size_t words, std::uint64_t *out)
{
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t mask = 0;
        for (unsigned k = 0; k < 64; ++k) {
            const std::uint64_t h =
                splitmix64(splitmix64(
                    base ^ (idx0 + w * 64 + k + kStableHashMix))) >>
                11;
            mask |= static_cast<std::uint64_t>(h < lt) << k;
        }
        out[w] = mask;
    }
}

} // namespace

void
FaultModel::vulnMaskRow(Addr addr, std::size_t words,
                        std::uint64_t *out) const
{
#ifdef CTAMEM_HAVE_AVX512_SCAN
    if (haveAvx512Scan()) {
        scanAvx512(vulnBase_, addr * 8, vulnLt_, words, out);
        return;
    }
#endif
    scanScalar(vulnBase_, addr * 8, vulnLt_, words, out);
}

SimTime
FaultModel::retentionTime(Addr addr, unsigned bit, double celsius) const
{
    const double u = toUnit(cellHash(retBase_, cellIndex(addr, bit)));
    // Inverse-CDF sample of the exponential tail; clamp u away from 1
    // so log1p stays finite.
    const double clamped = u > 0.999999999999 ? 0.999999999999 : u;
    const double base_sec =
        retentionFloorSec - retentionMeanSec * std::log1p(-clamped);
    // Retention roughly doubles for every 10 C drop below 20 C.
    const double scale = std::exp2((20.0 - celsius) / 10.0);
    return static_cast<SimTime>(base_sec * scale *
                                static_cast<double>(seconds));
}

} // namespace ctamem::dram
