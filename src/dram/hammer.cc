#include "dram/hammer.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <list>
#include <mutex>

#include "common/log.hh"
#include "common/rng.hh"

namespace ctamem::dram {

namespace {

/** Flat cache key for (bank, device row). */
std::uint64_t
rowKey(std::uint64_t bank, std::uint64_t device_row)
{
    return (bank << 40) | device_row;
}

/** Build the mask profile of one row from the fault model. */
std::shared_ptr<const RowVulnProfile>
buildProfile(const FaultModel &faults, Addr base, CellType type,
             std::uint64_t row_bytes, std::vector<std::uint64_t> &scratch)
{
    auto profile = std::make_shared<RowVulnProfile>();
    profile->base = base;
    profile->type = type;
    profile->mapped = true;

    const std::size_t row_words = row_bytes / 8;
    scratch.resize(row_words);
    faults.vulnMaskRow(base, row_words, scratch.data());

    for (std::size_t w = 0; w < row_words; ++w) {
        const std::uint64_t vuln = scratch[w];
        if (!vuln)
            continue;
        const Addr waddr = base + w * 8;
        // Direction and trip masks only need the vulnerable lanes:
        // the apply step never consults them outside `vuln`.
        const std::uint64_t dir10 =
            faults.flipDirMaskWord(waddr, type, vuln);
        const std::uint64_t trip = faults.tripMaskWord(
            waddr, RowHammerEngine::singleSidedIntensity, vuln);
        profile->words.push_back(
            MaskWord{static_cast<std::uint32_t>(w), vuln, dir10, trip});
        profile->vulnerableCells += std::popcount(vuln);
        profile->tripSingleCells += std::popcount(trip);
    }
    return profile;
}

/**
 * Process-wide row-profile cache.  Profiles are pure functions of
 * (seed, error stats, row base, cell type, row size), so engines over
 * identical modules — e.g. the per-defense machines of one campaign
 * sweep, which all boot the same seed — share one scan per row.
 * Sharded mutexes keep campaign worker threads out of each other's
 * way; a racing double-build is harmless (both results are identical)
 * and first-insert-wins.
 *
 * Each shard is LRU-bounded: service workloads stream arbitrarily
 * many distinct module configs through one process, and an unbounded
 * map would grow with every one of them.  Eviction only drops the
 * cache's own reference — engines hold shared_ptrs to the profiles
 * they are using.
 */
class ProfileCache
{
  public:
    static ProfileCache &
    instance()
    {
        static ProfileCache cache;
        return cache;
    }

    std::shared_ptr<const RowVulnProfile>
    fetch(const FaultModel &faults, Addr base, CellType type,
          std::uint64_t row_bytes, std::vector<std::uint64_t> &scratch)
    {
        const Key key{faults.seed(),
                      std::bit_cast<std::uint64_t>(faults.stats().pf),
                      std::bit_cast<std::uint64_t>(
                          faults.stats().p10True),
                      row_bytes, base, type};
        Shard &shard = shards_[KeyHash{}(key) % kShards];
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                ++shard.hits;
                // Move to the front of the recency list.
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second.lruIt);
                return it->second.profile;
            }
            ++shard.misses;
        }
        auto built = buildProfile(faults, base, type, row_bytes,
                                  scratch);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end())
            return it->second.profile; // lost the race: share winner
        shard.lru.push_front(key);
        shard.map.emplace(key, Entry{built, shard.lru.begin()});
        shard.evictToCapacity(perShardCapacity_);
        return built;
    }

    ProfileCacheStats
    stats()
    {
        ProfileCacheStats total;
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total.hits += shard.hits;
            total.misses += shard.misses;
            total.evictions += shard.evictions;
            total.entries += shard.map.size();
        }
        total.capacity = perShardCapacity_ * kShards;
        return total;
    }

    void
    setCapacity(std::size_t max_entries)
    {
        const std::size_t per_shard =
            std::max<std::size_t>(1, max_entries / kShards);
        perShardCapacity_ = per_shard;
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.evictToCapacity(per_shard);
        }
    }

  private:
    struct Key
    {
        std::uint64_t seed;
        std::uint64_t pfBits;
        std::uint64_t p10Bits;
        std::uint64_t rowBytes;
        Addr base;
        CellType type;

        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key &key) const
        {
            return stableHash(key.seed, key.pfBits, key.p10Bits,
                              key.rowBytes, key.base,
                              static_cast<std::uint64_t>(key.type));
        }
    };

    struct Entry
    {
        std::shared_ptr<const RowVulnProfile> profile;
        std::list<Key>::iterator lruIt;
    };

    static constexpr unsigned kShards = 8;
    static constexpr std::size_t kDefaultPerShard = 128;

    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<Key, Entry, KeyHash> map;
        /** Front = most recently used. */
        std::list<Key> lru;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;

        /** Drop LRU entries until at most @p capacity remain.
         *  Caller holds the shard mutex. */
        void
        evictToCapacity(std::size_t capacity)
        {
            while (map.size() > capacity) {
                map.erase(lru.back());
                lru.pop_back();
                ++evictions;
            }
        }
    };

    Shard shards_[kShards];
    std::atomic<std::size_t> perShardCapacity_{kDefaultPerShard};
};

} // namespace

ProfileCacheStats
profileCacheStats()
{
    return ProfileCache::instance().stats();
}

void
profileCacheSetCapacity(std::size_t max_entries)
{
    ProfileCache::instance().setCapacity(max_entries);
}

std::uint64_t
DisturbanceEvent::vulnerableCellsIn(std::uint64_t device_row) const
{
    if (!engine)
        return 0;
    return engine->rowProfile(bank, device_row).vulnerableCells;
}

const RowVulnProfile &
RowHammerEngine::rowProfile(std::uint64_t bank,
                            std::uint64_t device_row)
{
    static const RowVulnProfile vacant{};
    // The fault model keys on the *logical* address whose data the
    // device row holds; follow the remap table back.
    const Addr base = module_.rowBase(bank, device_row);
    if (base == ~0ULL)
        return vacant; // vacated by re-mapping: no logical data
    const CellType type = module_.cellMap().rowType(device_row);

    const std::uint64_t key = rowKey(bank, device_row);
    auto it = profiles_.find(key);
    if (it != profiles_.end() && it->second->base == base &&
        it->second->type == type) {
        return *it->second; // still describes this device row
    }
    auto shared = ProfileCache::instance().fetch(
        module_.faults(), base, type, module_.geometry().rowBytes(),
        scanBuffer_);
    auto &slot = profiles_[key];
    slot = std::move(shared);
    return *slot;
}

std::vector<VulnerableBit>
RowHammerEngine::vulnerableBits(std::uint64_t bank,
                                std::uint64_t device_row)
{
    const RowVulnProfile &profile = rowProfile(bank, device_row);
    const FaultModel &faults = module_.faults();
    std::vector<VulnerableBit> found;
    found.reserve(profile.vulnerableCells);
    for (const MaskWord &mw : profile.words) {
        for (std::uint64_t rest = mw.vuln; rest; rest &= rest - 1) {
            const unsigned k = std::countr_zero(rest);
            const std::uint64_t column = mw.word * 8ULL + k / 8;
            const unsigned bit = k % 8;
            found.push_back(VulnerableBit{
                column, bit,
                faults.tripThreshold(profile.base + column, bit)});
        }
    }
    // Ascending trip threshold with a (column, bit) tie-break — the
    // order the scalar disturbance loop consumed.
    std::sort(found.begin(), found.end(),
              [](const VulnerableBit &a, const VulnerableBit &b) {
                  if (a.threshold != b.threshold)
                      return a.threshold < b.threshold;
                  return a.column != b.column ? a.column < b.column
                                              : a.bit < b.bit;
              });
    return found;
}

void
RowHammerEngine::disturbDeviceRow(std::uint64_t bank,
                                  std::uint64_t device_row,
                                  double intensity,
                                  HammerResult &result)
{
    const RowVulnProfile &profile = rowProfile(bank, device_row);
    if (!profile.mapped || profile.words.empty())
        return;

    SparseStore &store = module_.store();
    const FaultModel &faults = module_.faults();
    const bool full = intensity >= doubleSidedIntensity;
    const bool single = intensity == singleSidedIntensity;
    const bool emit = recordEvents_ || sink_ != nullptr;

    for (const MaskWord &mw : profile.words) {
        const Addr waddr = profile.base + mw.word * 8ULL;
        // Candidate cells: intensity at or above the trip threshold.
        // Full intensity trips every vulnerable cell (thresholds live
        // in [0,1)); the single-sided mask is precomputed; any other
        // intensity asks the fault model directly.
        const std::uint64_t candidates =
            full ? mw.vuln :
            single ? mw.trip :
                     faults.tripMaskWord(waddr, intensity, mw.vuln);
        if (!candidates)
            continue;
        const std::uint64_t stored = store.readU64(waddr);
        // A flip consumes the stored value its direction leaks from.
        const std::uint64_t f10 = candidates & mw.dir10 & stored;
        const std::uint64_t f01 = candidates & ~mw.dir10 & ~stored;
        const std::uint64_t flips = f10 | f01;
        if (!flips)
            continue;
        store.writeU64(waddr, (stored & ~f10) | f01);
        result.flips10 += std::popcount(f10);
        result.flips01 += std::popcount(f01);
        if (emit) {
            for (std::uint64_t rest = flips; rest; rest &= rest - 1) {
                const unsigned k = std::countr_zero(rest);
                const FlipEvent event{
                    waddr + (k >> 3), k & 7u,
                    (f10 >> k) & 1 ? FlipDirection::OneToZero :
                                     FlipDirection::ZeroToOne};
                if (recordEvents_)
                    result.events.push_back(event);
                if (sink_)
                    sink_->push_back(event);
            }
        }
    }
}

HammerResult
RowHammerEngine::hammerRow(std::uint64_t bank, std::uint64_t row)
{
    const Geometry &geom = module_.geometry();
    if (bank >= geom.banks() || row >= geom.rowsPerBank())
        fatal("hammerRow: row out of range");

    HammerResult result;
    stats_.at(passesId_).increment();

    const std::uint64_t aggressor = module_.deviceRow(bank, row);
    const std::uint64_t rows = geom.rowsPerBank();
    const bool below = aggressor > 0;
    const bool above = aggressor + 1 < rows;

    if (observer_) {
        const DisturbanceEvent event{
            bank, aggressor, activationsPerPass,
            below ? aggressor - 1 : aggressor,
            above ? aggressor + 1 : aggressor, this};
        if (observer_->onHammer(event)) {
            result.suppressed = true;
            stats_.at(suppressedPassesId_).increment();
            return result;
        }
    }

    if (below)
        disturbDeviceRow(bank, aggressor - 1, singleSidedIntensity,
                         result);
    if (above)
        disturbDeviceRow(bank, aggressor + 1, singleSidedIntensity,
                         result);

    stats_.at(flips10Id_).increment(result.flips10);
    stats_.at(flips01Id_).increment(result.flips01);
    return result;
}

HammerResult
RowHammerEngine::hammerDoubleSided(std::uint64_t bank,
                                   std::uint64_t victim_row)
{
    const Geometry &geom = module_.geometry();
    if (bank >= geom.banks() || victim_row >= geom.rowsPerBank())
        fatal("hammerDoubleSided: row out of range");

    HammerResult result;
    stats_.at(passesId_).increment();

    const std::uint64_t victim = module_.deviceRow(bank, victim_row);
    const std::uint64_t rows = geom.rowsPerBank();
    if (victim == 0 || victim + 1 >= rows) {
        // No sandwich possible at the bank edge; fall back to
        // single-sided behaviour on the one existing neighbour.
        return hammerRow(bank, victim_row);
    }

    bool suppressed = false;
    if (observer_) {
        // One event per aggressor; the span covers every row the
        // pair can disturb (the outer neighbours see single-sided
        // intensity).
        const std::uint64_t first = victim >= 2 ? victim - 2 :
                                                  victim - 1;
        const std::uint64_t last = victim + 2 < rows ? victim + 2 :
                                                       victim + 1;
        const DisturbanceEvent lower{bank, victim - 1,
                                     activationsPerPass, first, last,
                                     this};
        const DisturbanceEvent upper{bank, victim + 1,
                                     activationsPerPass, first, last,
                                     this};
        suppressed |= observer_->onHammer(lower);
        suppressed |= observer_->onHammer(upper);
    }
    if (suppressed) {
        result.suppressed = true;
        stats_.at(suppressedPassesId_).increment();
        return result;
    }

    disturbDeviceRow(bank, victim, doubleSidedIntensity, result);
    // The aggressors' outer neighbours see single-sided disturbance.
    if (victim >= 2)
        disturbDeviceRow(bank, victim - 2, singleSidedIntensity,
                         result);
    if (victim + 2 < rows)
        disturbDeviceRow(bank, victim + 2, singleSidedIntensity,
                         result);

    stats_.at(flips10Id_).increment(result.flips10);
    stats_.at(flips01Id_).increment(result.flips01);
    return result;
}

void
RowHammerEngine::activate(std::uint64_t bank, std::uint64_t row,
                          std::uint64_t activations,
                          std::uint64_t phase, HammerResult &result)
{
    const Geometry &geom = module_.geometry();
    if (bank >= geom.banks() || row >= geom.rowsPerBank())
        fatal("activate: row out of range");
    if (activations == 0)
        return;

    stats_.at(timedActivationsId_).increment(activations);

    const std::uint64_t aggressor = module_.deviceRow(bank, row);
    const std::uint64_t rows = geom.rowsPerBank();
    const bool below = aggressor > 0;
    const bool above = aggressor + 1 < rows;

    if (observer_) {
        DisturbanceEvent event;
        event.bank = bank;
        event.aggressorRow = aggressor;
        event.activations = activations;
        event.victimFirst = below ? aggressor - 1 : aggressor;
        event.victimLast = above ? aggressor + 1 : aggressor;
        event.engine = this;
        event.refInterval = refInterval_;
        event.phase = phase;
        event.timed = true;
        if (observer_->onHammer(event)) {
            result.suppressed = true;
            stats_.at(suppressedPassesId_).increment();
            return;
        }
    }

    // A victim's `below` pressure counts activations of the device
    // row beneath it (i.e. this aggressor when the victim sits above).
    if (below)
        pressure_[rowKey(bank, aggressor - 1)].above += activations;
    if (above)
        pressure_[rowKey(bank, aggressor + 1)].below += activations;
}

double
RowHammerEngine::pressureIntensity(const RowPressure &pressure) const
{
    // Paired (double-sided) activations disturb at full intensity,
    // the one-sided remainder at single-sided intensity; a whole
    // window of activations reproduces the untimed pass exactly.
    const std::uint64_t paired =
        2 * std::min(pressure.below, pressure.above);
    const std::uint64_t unpaired =
        pressure.below + pressure.above - paired;
    const double dose =
        (doubleSidedIntensity * static_cast<double>(paired) +
         singleSidedIntensity * static_cast<double>(unpaired)) /
        static_cast<double>(activationsPerPass);
    return std::min(doubleSidedIntensity, dose);
}

void
RowHammerEngine::evaluatePressure(std::uint64_t key,
                                  HammerResult &result)
{
    auto it = pressure_.find(key);
    if (it == pressure_.end())
        return;
    const double intensity = pressureIntensity(it->second);
    pressure_.erase(it);
    if (intensity <= 0.0)
        return;
    disturbDeviceRow(key >> 40, key & ((1ULL << 40) - 1), intensity,
                     result);
}

void
RowHammerEngine::refTick(std::uint64_t bank, HammerResult &result)
{
    stats_.at(refTicksId_).increment();

    if (observer_) {
        const RefEvent event{bank, refInterval_, this};
        trrScratch_.clear();
        observer_->onRef(event, trrScratch_);
        for (const std::uint64_t device_row : trrScratch_) {
            stats_.at(trrRefreshesId_).increment();
            pressure_.erase(rowKey(bank, device_row));
        }
    }

    // This REF refreshes the rows whose slot this interval is; their
    // accumulated pressure is what charge they lost since their last
    // refresh.  Keys are sorted so flips land in ascending device-row
    // order regardless of hash-map iteration order (the event-sink
    // determinism contract).
    const std::uint64_t rowMask = (1ULL << 40) - 1;
    const std::uint64_t slot =
        refInterval_ % refTiming_.refsPerWindow;
    evalScratch_.clear();
    for (const auto &[key, pressure] : pressure_) {
        if ((key >> 40) == bank &&
            (key & rowMask) % refTiming_.refsPerWindow == slot) {
            evalScratch_.push_back(key);
        }
    }
    std::sort(evalScratch_.begin(), evalScratch_.end());

    const std::uint64_t before10 = result.flips10;
    const std::uint64_t before01 = result.flips01;
    for (const std::uint64_t key : evalScratch_)
        evaluatePressure(key, result);
    stats_.at(flips10Id_).increment(result.flips10 - before10);
    stats_.at(flips01Id_).increment(result.flips01 - before01);

    ++refInterval_;
}

void
RowHammerEngine::drainPressure(std::uint64_t bank,
                               HammerResult &result)
{
    evalScratch_.clear();
    for (const auto &[key, pressure] : pressure_) {
        if ((key >> 40) == bank)
            evalScratch_.push_back(key);
    }
    std::sort(evalScratch_.begin(), evalScratch_.end());

    const std::uint64_t before10 = result.flips10;
    const std::uint64_t before01 = result.flips01;
    for (const std::uint64_t key : evalScratch_)
        evaluatePressure(key, result);
    stats_.at(flips10Id_).increment(result.flips10 - before10);
    stats_.at(flips01Id_).increment(result.flips01 - before01);
}

namespace reference {

namespace {

/** The scalar engine's row scan: every cell, one hash at a time. */
std::vector<VulnerableBit>
scanRowScalar(DramModule &module, std::uint64_t bank,
              std::uint64_t device_row)
{
    const Geometry &geom = module.geometry();
    const std::uint64_t logical = module.logicalRow(bank, device_row);
    std::vector<VulnerableBit> found;
    if (logical != ~0ULL) {
        const Addr base = geom.address(Location{bank, logical, 0});
        const FaultModel &faults = module.faults();
        for (std::uint64_t col = 0; col < geom.rowBytes(); ++col) {
            for (unsigned bit = 0; bit < 8; ++bit) {
                if (faults.vulnerable(base + col, bit)) {
                    found.push_back(VulnerableBit{
                        col, bit,
                        faults.tripThreshold(base + col, bit)});
                }
            }
        }
    }
    std::sort(found.begin(), found.end(),
              [](const VulnerableBit &a, const VulnerableBit &b) {
                  if (a.threshold != b.threshold)
                      return a.threshold < b.threshold;
                  return a.column != b.column ? a.column < b.column
                                              : a.bit < b.bit;
              });
    return found;
}

/** The scalar engine's disturbance pass: readBit/writeBit per cell. */
void
disturbScalar(DramModule &module, std::uint64_t bank,
              std::uint64_t device_row, double intensity,
              HammerResult &result)
{
    const std::uint64_t logical = module.logicalRow(bank, device_row);
    if (logical == ~0ULL)
        return;
    const Geometry &geom = module.geometry();
    const Addr base = geom.address(Location{bank, logical, 0});
    const CellType type = module.cellMap().rowType(device_row);
    const FaultModel &faults = module.faults();

    const std::vector<VulnerableBit> cells =
        scanRowScalar(module, bank, device_row);
    for (const VulnerableBit &cell : cells) {
        if (cell.threshold > intensity)
            break; // sorted ascending: nothing further can trip
        const Addr addr = base + cell.column;
        const FlipDirection dir =
            faults.flipDirection(addr, cell.bit, type);
        const bool stored = module.store().readBit(addr, cell.bit);
        if (dir == FlipDirection::OneToZero && stored) {
            module.store().writeBit(addr, cell.bit, false);
            ++result.flips10;
            result.events.push_back(FlipEvent{addr, cell.bit, dir});
        } else if (dir == FlipDirection::ZeroToOne && !stored) {
            module.store().writeBit(addr, cell.bit, true);
            ++result.flips01;
            result.events.push_back(FlipEvent{addr, cell.bit, dir});
        }
    }
}

} // namespace

HammerResult
hammerRowScalar(DramModule &module, std::uint64_t bank,
                std::uint64_t row)
{
    const Geometry &geom = module.geometry();
    if (bank >= geom.banks() || row >= geom.rowsPerBank())
        fatal("hammerRowScalar: row out of range");

    HammerResult result;
    const std::uint64_t aggressor = module.deviceRow(bank, row);
    if (aggressor > 0)
        disturbScalar(module, bank, aggressor - 1,
                      RowHammerEngine::singleSidedIntensity, result);
    if (aggressor + 1 < geom.rowsPerBank())
        disturbScalar(module, bank, aggressor + 1,
                      RowHammerEngine::singleSidedIntensity, result);
    return result;
}

HammerResult
hammerDoubleSidedScalar(DramModule &module, std::uint64_t bank,
                        std::uint64_t victim_row)
{
    const Geometry &geom = module.geometry();
    if (bank >= geom.banks() || victim_row >= geom.rowsPerBank())
        fatal("hammerDoubleSidedScalar: row out of range");

    const std::uint64_t victim = module.deviceRow(bank, victim_row);
    if (victim == 0 || victim + 1 >= geom.rowsPerBank())
        return hammerRowScalar(module, bank, victim_row);

    HammerResult result;
    disturbScalar(module, bank, victim,
                  RowHammerEngine::doubleSidedIntensity, result);
    if (victim >= 2)
        disturbScalar(module, bank, victim - 2,
                      RowHammerEngine::singleSidedIntensity, result);
    if (victim + 2 < geom.rowsPerBank())
        disturbScalar(module, bank, victim + 2,
                      RowHammerEngine::singleSidedIntensity, result);
    return result;
}

} // namespace reference

} // namespace ctamem::dram
