#include "dram/hammer.hh"

#include <algorithm>

#include "common/log.hh"

namespace ctamem::dram {

namespace {

/** Flat cache key for (bank, device row). */
std::uint64_t
rowKey(std::uint64_t bank, std::uint64_t device_row)
{
    return (bank << 40) | device_row;
}

} // namespace

const std::vector<VulnerableBit> &
RowHammerEngine::vulnerableBits(std::uint64_t bank,
                                std::uint64_t device_row)
{
    const std::uint64_t key = rowKey(bank, device_row);
    auto it = vulnCache_.find(key);
    if (it != vulnCache_.end())
        return it->second;

    const Geometry &geom = module_.geometry();
    // The fault model keys on the *logical* address whose data the
    // device row holds; follow the remap table back.
    const std::uint64_t logical = module_.logicalRow(bank, device_row);
    std::vector<VulnerableBit> found;
    if (logical != ~0ULL) {
        const Addr base =
            geom.address(Location{bank, logical, 0});
        const FaultModel &faults = module_.faults();
        for (std::uint64_t col = 0; col < geom.rowBytes(); ++col) {
            for (unsigned bit = 0; bit < 8; ++bit) {
                if (faults.vulnerable(base + col, bit)) {
                    found.push_back(VulnerableBit{
                        col, bit,
                        faults.tripThreshold(base + col, bit)});
                }
            }
        }
    }
    // Ascending trip threshold, so disturbance passes can stop at
    // the first cell their intensity cannot trip; (column, bit)
    // tie-break keeps templating runs bit-for-bit reproducible.
    std::sort(found.begin(), found.end(),
              [](const VulnerableBit &a, const VulnerableBit &b) {
                  if (a.threshold != b.threshold)
                      return a.threshold < b.threshold;
                  return a.column != b.column ? a.column < b.column
                                              : a.bit < b.bit;
              });
    return vulnCache_.emplace(key, std::move(found)).first->second;
}

void
RowHammerEngine::disturbDeviceRow(std::uint64_t bank,
                                  std::uint64_t device_row,
                                  double intensity,
                                  HammerResult &result)
{
    const std::uint64_t logical = module_.logicalRow(bank, device_row);
    if (logical == ~0ULL)
        return; // vacated by re-mapping: no logical data to corrupt
    const Geometry &geom = module_.geometry();
    const Addr base = geom.address(Location{bank, logical, 0});
    const CellType type = module_.cellMap().rowType(device_row);
    const FaultModel &faults = module_.faults();

    const std::vector<VulnerableBit> &cells =
        vulnerableBits(bank, device_row);
    result.events.reserve(result.events.size() + cells.size());
    for (const VulnerableBit &cell : cells) {
        if (cell.threshold > intensity)
            break; // sorted ascending: nothing further can trip
        const Addr addr = base + cell.column;
        const FlipDirection dir =
            faults.flipDirection(addr, cell.bit, type);
        const bool stored = module_.store().readBit(addr, cell.bit);
        if (dir == FlipDirection::OneToZero && stored) {
            module_.store().writeBit(addr, cell.bit, false);
            ++result.flips10;
            result.events.push_back(FlipEvent{addr, cell.bit, dir});
        } else if (dir == FlipDirection::ZeroToOne && !stored) {
            module_.store().writeBit(addr, cell.bit, true);
            ++result.flips01;
            result.events.push_back(FlipEvent{addr, cell.bit, dir});
        }
    }
}

HammerResult
RowHammerEngine::hammerRow(std::uint64_t bank, std::uint64_t row)
{
    const Geometry &geom = module_.geometry();
    if (bank >= geom.banks() || row >= geom.rowsPerBank())
        fatal("hammerRow: row out of range");

    HammerResult result;
    stats_.at(passesId_).increment();

    const std::uint64_t aggressor = module_.deviceRow(bank, row);
    std::vector<std::uint64_t> victims;
    if (aggressor > 0)
        victims.push_back(aggressor - 1);
    if (aggressor + 1 < geom.rowsPerBank())
        victims.push_back(aggressor + 1);

    if (observer_ &&
        observer_->onHammer(bank, aggressor, activationsPerPass,
                            victims)) {
        result.suppressed = true;
        stats_.at(suppressedPassesId_).increment();
        return result;
    }

    for (std::uint64_t victim : victims)
        disturbDeviceRow(bank, victim, singleSidedIntensity, result);

    stats_.at(flips10Id_).increment(result.flips10);
    stats_.at(flips01Id_).increment(result.flips01);
    return result;
}

HammerResult
RowHammerEngine::hammerDoubleSided(std::uint64_t bank,
                                   std::uint64_t victim_row)
{
    const Geometry &geom = module_.geometry();
    if (bank >= geom.banks() || victim_row >= geom.rowsPerBank())
        fatal("hammerDoubleSided: row out of range");

    HammerResult result;
    stats_.at(passesId_).increment();

    const std::uint64_t victim = module_.deviceRow(bank, victim_row);
    if (victim == 0 || victim + 1 >= geom.rowsPerBank()) {
        // No sandwich possible at the bank edge; fall back to
        // single-sided behaviour on the one existing neighbour.
        return hammerRow(bank, victim_row);
    }

    const std::vector<std::uint64_t> victims{victim - 1, victim,
                                             victim + 1};
    bool suppressed = false;
    if (observer_) {
        suppressed |= observer_->onHammer(bank, victim - 1,
                                          activationsPerPass, victims);
        suppressed |= observer_->onHammer(bank, victim + 1,
                                          activationsPerPass, victims);
    }
    if (suppressed) {
        result.suppressed = true;
        stats_.at(suppressedPassesId_).increment();
        return result;
    }

    disturbDeviceRow(bank, victim, doubleSidedIntensity, result);
    // The aggressors' outer neighbours see single-sided disturbance.
    if (victim >= 2)
        disturbDeviceRow(bank, victim - 2, singleSidedIntensity, result);
    if (victim + 2 < geom.rowsPerBank())
        disturbDeviceRow(bank, victim + 2, singleSidedIntensity, result);

    stats_.at(flips10Id_).increment(result.flips10);
    stats_.at(flips01Id_).increment(result.flips01);
    return result;
}

} // namespace ctamem::dram
