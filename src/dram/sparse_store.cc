#include "dram/sparse_store.hh"

#include <algorithm>

namespace ctamem::dram {

const std::uint8_t *
SparseStore::peek(Pfn pfn) const
{
    auto it = frames_.find(pfn);
    return it == frames_.end() ? nullptr : it->second.get();
}

std::uint8_t *
SparseStore::touch(Pfn pfn)
{
    auto it = frames_.find(pfn);
    if (it == frames_.end()) {
        auto frame = std::make_unique<std::uint8_t[]>(pageSize);
        std::memset(frame.get(), fill_, pageSize);
        it = frames_.emplace(pfn, std::move(frame)).first;
    }
    return it->second.get();
}

void
SparseStore::read(Addr addr, void *out, std::size_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        const Pfn pfn = addrToPfn(addr);
        const std::size_t offset = addr & pageMask;
        const std::size_t chunk = std::min<std::size_t>(
            len, pageSize - offset);
        if (const std::uint8_t *frame = peek(pfn))
            std::memcpy(dst, frame + offset, chunk);
        else
            std::memset(dst, fill_, chunk);
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
SparseStore::write(Addr addr, const void *in, std::size_t len)
{
    auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        const Pfn pfn = addrToPfn(addr);
        const std::size_t offset = addr & pageMask;
        const std::size_t chunk = std::min<std::size_t>(
            len, pageSize - offset);
        std::memcpy(touch(pfn) + offset, src, chunk);
        src += chunk;
        addr += chunk;
        len -= chunk;
    }
}

std::uint8_t
SparseStore::readByte(Addr addr) const
{
    if (const std::uint8_t *frame = peek(addrToPfn(addr)))
        return frame[addr & pageMask];
    return fill_;
}

void
SparseStore::writeByte(Addr addr, std::uint8_t value)
{
    touch(addrToPfn(addr))[addr & pageMask] = value;
}

std::uint64_t
SparseStore::readU64(Addr addr)const
{
    std::uint64_t value = 0;
    read(addr, &value, sizeof(value));
    return value;
}

void
SparseStore::writeU64(Addr addr, std::uint64_t value)
{
    write(addr, &value, sizeof(value));
}

bool
SparseStore::readBit(Addr addr, unsigned bit) const
{
    return (readByte(addr) >> bit) & 1;
}

void
SparseStore::writeBit(Addr addr, unsigned bit, bool value)
{
    std::uint8_t byte = readByte(addr);
    if (value)
        byte |= static_cast<std::uint8_t>(1u << bit);
    else
        byte &= static_cast<std::uint8_t>(~(1u << bit));
    writeByte(addr, byte);
}

bool
SparseStore::touched(Addr addr) const
{
    return frames_.contains(addrToPfn(addr));
}

std::vector<Pfn>
SparseStore::touchedFrames() const
{
    std::vector<Pfn> pfns;
    pfns.reserve(frames_.size());
    for (const auto &[pfn, frame] : frames_)
        pfns.push_back(pfn);
    return pfns;
}

} // namespace ctamem::dram
