#include "dram/sparse_store.hh"

#include <algorithm>

namespace ctamem::dram {

const std::uint8_t *
SparseStore::peekSlow(Pfn pfn) const
{
    auto it = frames_.find(pfn);
    if (it == frames_.end())
        return nullptr;
    cachedPfn_ = pfn;
    cachedFrame_ = it->second.get();
    return cachedFrame_;
}

std::uint8_t *
SparseStore::touchSlow(Pfn pfn)
{
    auto it = frames_.find(pfn);
    if (it == frames_.end()) {
        auto frame = std::make_unique<std::uint8_t[]>(pageSize);
        std::memset(frame.get(), fill_, pageSize);
        it = frames_.emplace(pfn, std::move(frame)).first;
    }
    cachedPfn_ = pfn;
    cachedFrame_ = it->second.get();
    return cachedFrame_;
}

void
SparseStore::read(Addr addr, void *out, std::size_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        const Pfn pfn = addrToPfn(addr);
        const std::size_t offset = addr & pageMask;
        const std::size_t chunk = std::min<std::size_t>(
            len, pageSize - offset);
        if (const std::uint8_t *frame = peek(pfn))
            std::memcpy(dst, frame + offset, chunk);
        else
            std::memset(dst, fill_, chunk);
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
SparseStore::write(Addr addr, const void *in, std::size_t len)
{
    auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        const Pfn pfn = addrToPfn(addr);
        const std::size_t offset = addr & pageMask;
        const std::size_t chunk = std::min<std::size_t>(
            len, pageSize - offset);
        std::memcpy(touch(pfn) + offset, src, chunk);
        src += chunk;
        addr += chunk;
        len -= chunk;
    }
}

bool
SparseStore::readBit(Addr addr, unsigned bit) const
{
    return (readByte(addr) >> bit) & 1;
}

void
SparseStore::writeBit(Addr addr, unsigned bit, bool value)
{
    std::uint8_t byte = readByte(addr);
    if (value)
        byte |= static_cast<std::uint8_t>(1u << bit);
    else
        byte &= static_cast<std::uint8_t>(~(1u << bit));
    writeByte(addr, byte);
}

bool
SparseStore::touched(Addr addr) const
{
    return frames_.contains(addrToPfn(addr));
}

std::vector<Pfn>
SparseStore::touchedFrames() const
{
    std::vector<Pfn> pfns;
    pfns.reserve(frames_.size());
    for (const auto &[pfn, frame] : frames_)
        pfns.push_back(pfn);
    return pfns;
}

} // namespace ctamem::dram
