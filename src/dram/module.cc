#include "dram/module.hh"

#include "common/log.hh"

namespace ctamem::dram {

DramModule::DramModule(const DramConfig &config)
    : config_(config),
      geometry_(config.capacity, config.rowBytes, config.banks,
                config.scheme),
      faults_(config.seed, config.errors)
{
    remapsId_ = stats_.registerCounter("remaps");
    decayedBitsId_ = stats_.registerCounter("decayedBits");
}

std::uint64_t
DramModule::deviceRow(std::uint64_t bank, std::uint64_t row) const
{
    auto it = remapByLogical_.find({bank, row});
    return it == remapByLogical_.end() ? row : it->second;
}

std::uint64_t
DramModule::logicalRow(std::uint64_t bank,
                       std::uint64_t device_row) const
{
    // Swap semantics make the relation symmetric.
    auto it = remapByLogical_.find({bank, device_row});
    return it == remapByLogical_.end() ? device_row : it->second;
}

Addr
DramModule::rowBase(std::uint64_t bank, std::uint64_t device_row) const
{
    const std::uint64_t logical = logicalRow(bank, device_row);
    if (logical == ~0ULL)
        return ~0ULL;
    return geometry_.address(Location{bank, logical, 0});
}

CellType
DramModule::rowCellType(std::uint64_t bank, std::uint64_t row) const
{
    return config_.cellMap.rowType(deviceRow(bank, row));
}

CellType
DramModule::cellTypeAt(Addr addr) const
{
    const Location loc = geometry_.locate(addr);
    return rowCellType(loc.bank, loc.row);
}

void
DramModule::remapRow(std::uint64_t bank, std::uint64_t row,
                     std::uint64_t spare_row)
{
    if (bank >= geometry_.banks() || row >= geometry_.rowsPerBank() ||
        spare_row >= geometry_.rowsPerBank()) {
        fatal("remapRow: coordinates out of range");
    }
    const CellType original = config_.cellMap.rowType(row);
    const CellType spare = config_.cellMap.rowType(spare_row);
    if (original != spare) {
        fatal("remapRow: spare row ", spare_row, " is ",
              cellTypeName(spare), " but logical row ", row, " is ",
              cellTypeName(original),
              "; sense amplifiers require like-for-like spares");
    }
    if (remapByLogical_.contains({bank, row}) ||
        remapByLogical_.contains({bank, spare_row})) {
        fatal("remapRow: row already re-mapped");
    }
    remapByLogical_[{bank, row}] = spare_row;
    remapByLogical_[{bank, spare_row}] = row;
    stats_.at(remapsId_).increment();
}

void
DramModule::advance(SimTime dt, double celsius)
{
    if (refreshEnabled_)
        return;
    unrefreshedTime_ += dt;
    decayTouchedFrames(unrefreshedTime_, celsius);
}

void
DramModule::powerOff(SimTime duration, double celsius)
{
    const bool was_enabled = refreshEnabled_;
    refreshEnabled_ = false;
    advance(duration, celsius);
    refreshEnabled_ = was_enabled;
    if (refreshEnabled_)
        unrefreshedTime_ = 0;
}

void
DramModule::decayTouchedFrames(SimTime unrefreshed, double celsius)
{
    Counter &decayed = stats_.at(decayedBitsId_);
    for (Pfn pfn : store_.touchedFrames()) {
        const Addr base = pfnToAddr(pfn);
        const CellType type = cellTypeAt(base);
        const std::uint8_t discharged_byte =
            dischargedBit(type) ? 0xff : 0x00;
        for (std::uint64_t off = 0; off < pageSize; ++off) {
            const Addr addr = base + off;
            std::uint8_t byte = store_.readByte(addr);
            if (byte == discharged_byte)
                continue; // nothing left to leak
            for (unsigned bit = 0; bit < 8; ++bit) {
                const bool value = (byte >> bit) & 1;
                if (value == dischargedBit(type))
                    continue;
                if (faults_.retentionTime(addr, bit, celsius) <
                    unrefreshed) {
                    byte = static_cast<std::uint8_t>(
                        dischargedBit(type) ?
                            byte | (1u << bit) :
                            byte & ~(1u << bit));
                    decayed.increment();
                }
            }
            store_.writeByte(addr, byte);
        }
    }
}

} // namespace ctamem::dram
