/**
 * @file
 * Per-cell fault properties of a simulated DRAM module.
 *
 * Every property is a pure, stable function of (module seed, cell
 * index): whether the cell is RowHammer-vulnerable, which direction a
 * vulnerable cell flips, the minimum hammer intensity that trips it,
 * and the cell's data-retention time.  Stability matters: Drammer-
 * style "memory templating" (van der Veen et al.) only works because a
 * real module's flippable bits are a fixed physical property, and the
 * attacks we reproduce rely on exactly that.
 *
 * Two access granularities share one definition of the properties:
 *
 *  - scalar accessors (vulnerable / flipDirection / tripThreshold /
 *    retentionTime) answer for a single (addr, bit) cell; and
 *  - word accessors (vulnMaskWord / flipDirMaskWord / tripMaskWord)
 *    answer for the 64 cells backing 8 consecutive bytes at once,
 *    bit k of the mask describing cell (addr + k/8, k%8) — the layout
 *    of a little-endian 64-bit load, so masks AND/XOR directly against
 *    SparseStore::readU64() words.
 *
 * The word accessors are *bit-identical* to 64 scalar calls: both
 * paths hoist the per-salt stableHash prefix into a precomputed base
 * (two splitmix64 rounds per cell instead of three) and compare the
 * raw 53-bit
 * hash against an integer threshold.  Multiplying a probability by
 * 2^53 is exact (power-of-two scaling), so `hash01(...) < p` and the
 * integer compare agree for every hash value.
 */

#ifndef CTAMEM_DRAM_FAULT_MODEL_HH
#define CTAMEM_DRAM_FAULT_MODEL_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/cell_types.hh"
#include "dram/error_stats.hh"

namespace ctamem::dram {

/** Direction a vulnerable cell flips when disturbed. */
enum class FlipDirection : std::uint8_t { OneToZero, ZeroToOne };

/** Per-cell stable fault properties. */
class FaultModel
{
  public:
    FaultModel(std::uint64_t seed, const ErrorStats &stats)
        : seed_(seed), stats_(stats),
          vulnBase_(saltBase(seed, saltVulnerable)),
          dirBase_(saltBase(seed, saltDirection)),
          thrBase_(saltBase(seed, saltThreshold)),
          retBase_(saltBase(seed, saltRetention)),
          vulnLt_(strictThreshold(stats.pf)),
          dirLt_(strictThreshold(stats.p10True))
    {}

    const ErrorStats &stats() const { return stats_; }
    std::uint64_t seed() const { return seed_; }

    /** True iff the cell at (@p addr, @p bit) is RowHammer-flippable. */
    bool
    vulnerable(Addr addr, unsigned bit) const
    {
        return cellHash(vulnBase_, cellIndex(addr, bit)) < vulnLt_;
    }

    /**
     * Flip direction of a *vulnerable* cell that sits in a row of
     * cell type @p type.  In true-cell rows the dominant direction is
     * '1'->'0' (probability p10True); the rare opposite direction
     * models circuit effects such as voltage coupling.  Anti-cell rows
     * mirror the distribution.
     */
    FlipDirection
    flipDirection(Addr addr, unsigned bit, CellType type) const
    {
        const bool dominant =
            cellHash(dirBase_, cellIndex(addr, bit)) < dirLt_;
        if (type == CellType::True) {
            // Dominant: leak from the charged '1' state.
            return dominant ? FlipDirection::OneToZero :
                              FlipDirection::ZeroToOne;
        }
        // Anti-cells leak from the charged '0' state.
        return dominant ? FlipDirection::ZeroToOne :
                          FlipDirection::OneToZero;
    }

    /**
     * Minimum hammer intensity (in [0,1]) that trips this vulnerable
     * cell.  A double-sided hammer applies intensity 1.0 and trips
     * every vulnerable cell; a single-sided hammer applies a smaller
     * intensity and trips only the most sensitive subset.
     */
    double
    tripThreshold(Addr addr, unsigned bit) const
    {
        return toUnit(cellHash(thrBase_, cellIndex(addr, bit)));
    }

    /**
     * Retention time of the cell at ambient temperature @p celsius.
     * Sampled from a shifted-exponential at 20 C and scaled by the
     * standard retention-doubles-per-10C-drop rule, so cold-boot
     * scenarios (Section 8) see realistic remanence.
     */
    SimTime retentionTime(Addr addr, unsigned bit,
                          double celsius = 20.0) const;

    /** @name Word-granular accessors (64 cells per call)
     *
     * Each mask describes the cells backing the 8 bytes at
     * [@p addr, @p addr + 8): bit k corresponds to cell
     * (addr + k/8, k%8), matching bit k of a little-endian u64 load
     * of those bytes.  @p lanes restricts the work to the set bits
     * (cleared lanes come back 0 and cost nothing); the default
     * computes all 64 and is bit-identical to 64 scalar calls.
     */
    /** @{ */
    /** Bit k set iff cell k is RowHammer-vulnerable. */
    std::uint64_t
    vulnMaskWord(Addr addr, std::uint64_t lanes = ~0ULL) const
    {
        return maskLt(vulnBase_, addr * 8, vulnLt_, lanes);
    }

    /** Bit k set iff vulnerable cell k flips '1'->'0' under @p type. */
    std::uint64_t
    flipDirMaskWord(Addr addr, CellType type,
                    std::uint64_t lanes = ~0ULL) const
    {
        const std::uint64_t dominant =
            maskLt(dirBase_, addr * 8, dirLt_, lanes);
        // True cells: dominant leak is '1'->'0'; anti-cells mirror.
        return type == CellType::True ? dominant : (lanes & ~dominant);
    }

    /** Bit k set iff cell k's trip threshold is <= @p intensity. */
    std::uint64_t
    tripMaskWord(Addr addr, double intensity,
                 std::uint64_t lanes = ~0ULL) const
    {
        if (intensity < 0.0)
            return 0;
        // tripThreshold <= i  <=>  hash53 <= floor(i * 2^53): the
        // hash is an integer exactly representable as a double, so
        // the real-number comparison truncates to an integer one.
        const std::uint64_t le =
            static_cast<std::uint64_t>(intensity *
                                       9007199254740992.0);
        return maskLe(thrBase_, addr * 8, le, lanes);
    }

    /**
     * Bulk scan: vulnerability masks for @p words consecutive 8-byte
     * words starting at @p addr (one row worth in the hammer engine).
     * Uses the AVX-512 lane kernel when the CPU has one; always
     * bit-identical to vulnMaskWord() per word.
     */
    void vulnMaskRow(Addr addr, std::size_t words,
                     std::uint64_t *out) const;
    /** @} */

  private:
    // Salts keep the independent per-cell properties decorrelated.
    static constexpr std::uint64_t saltVulnerable = 0x76756c6eULL;
    static constexpr std::uint64_t saltDirection = 0x64697265ULL;
    static constexpr std::uint64_t saltThreshold = 0x74687265ULL;
    static constexpr std::uint64_t saltRetention = 0x72657465ULL;

    static std::uint64_t
    cellIndex(Addr addr, unsigned bit)
    {
        return addr * 8 + bit;
    }

    /**
     * Hoisted prefix of stableHash(seed, salt, idx): the chain is
     * splitmix64(splitmix64(splitmix64(seed ^ (salt+M)) ^ (idx+M)))
     * — two key-folding rounds plus the terminal finalizer — and the
     * innermost term depends only on (seed, salt).
     */
    static std::uint64_t
    saltBase(std::uint64_t seed, std::uint64_t salt)
    {
        return splitmix64(seed ^ (salt + kStableHashMix));
    }

    /** 53-bit hash of one cell under a hoisted salt base. */
    static std::uint64_t
    cellHash(std::uint64_t base, std::uint64_t idx)
    {
        return splitmix64(splitmix64(base ^ (idx + kStableHashMix))) >>
               11;
    }

    /** The double in [0,1) hash01() would have produced. */
    static double
    toUnit(std::uint64_t hash53)
    {
        return static_cast<double>(hash53) *
               (1.0 / 9007199254740992.0);
    }

    /**
     * Integer threshold T with  hash53 < T  <=>  toUnit(hash53) < p.
     * p * 2^53 is exact, and hash53 converts to double exactly, so
     * the strict real comparison equals `hash53 < ceil-adjusted(T)`.
     */
    static std::uint64_t
    strictThreshold(double p)
    {
        const double scaled = p * 9007199254740992.0;
        if (scaled <= 0.0)
            return 0;
        if (scaled >= 9007199254740992.0)
            return 9007199254740992ULL; // every 53-bit hash passes
        const auto floor53 = static_cast<std::uint64_t>(scaled);
        return static_cast<double>(floor53) < scaled ? floor53 + 1 :
                                                       floor53;
    }

    /** Mask of lanes with cellHash < @p lt (strict compare). */
    std::uint64_t
    maskLt(std::uint64_t base, std::uint64_t idx0, std::uint64_t lt,
           std::uint64_t lanes) const
    {
        std::uint64_t mask = 0;
        for (std::uint64_t rest = lanes; rest; rest &= rest - 1) {
            const unsigned k = std::countr_zero(rest);
            mask |= static_cast<std::uint64_t>(
                        cellHash(base, idx0 + k) < lt)
                    << k;
        }
        return mask;
    }

    /** Mask of lanes with cellHash <= @p le. */
    std::uint64_t
    maskLe(std::uint64_t base, std::uint64_t idx0, std::uint64_t le,
           std::uint64_t lanes) const
    {
        std::uint64_t mask = 0;
        for (std::uint64_t rest = lanes; rest; rest &= rest - 1) {
            const unsigned k = std::countr_zero(rest);
            mask |= static_cast<std::uint64_t>(
                        cellHash(base, idx0 + k) <= le)
                    << k;
        }
        return mask;
    }

    std::uint64_t seed_;
    ErrorStats stats_;
    std::uint64_t vulnBase_;
    std::uint64_t dirBase_;
    std::uint64_t thrBase_;
    std::uint64_t retBase_;
    std::uint64_t vulnLt_;
    std::uint64_t dirLt_;
};

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_FAULT_MODEL_HH
