/**
 * @file
 * Per-cell fault properties of a simulated DRAM module.
 *
 * Every property is a pure, stable function of (module seed, cell
 * index): whether the cell is RowHammer-vulnerable, which direction a
 * vulnerable cell flips, the minimum hammer intensity that trips it,
 * and the cell's data-retention time.  Stability matters: Drammer-
 * style "memory templating" (van der Veen et al.) only works because a
 * real module's flippable bits are a fixed physical property, and the
 * attacks we reproduce rely on exactly that.
 */

#ifndef CTAMEM_DRAM_FAULT_MODEL_HH
#define CTAMEM_DRAM_FAULT_MODEL_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/cell_types.hh"
#include "dram/error_stats.hh"

namespace ctamem::dram {

/** Direction a vulnerable cell flips when disturbed. */
enum class FlipDirection : std::uint8_t { OneToZero, ZeroToOne };

/** Per-cell stable fault properties. */
class FaultModel
{
  public:
    FaultModel(std::uint64_t seed, const ErrorStats &stats)
        : seed_(seed), stats_(stats)
    {}

    const ErrorStats &stats() const { return stats_; }
    std::uint64_t seed() const { return seed_; }

    /** True iff the cell at (@p addr, @p bit) is RowHammer-flippable. */
    bool vulnerable(Addr addr, unsigned bit) const;

    /**
     * Flip direction of a *vulnerable* cell that sits in a row of
     * cell type @p type.  In true-cell rows the dominant direction is
     * '1'->'0' (probability p10True); the rare opposite direction
     * models circuit effects such as voltage coupling.  Anti-cell rows
     * mirror the distribution.
     */
    FlipDirection flipDirection(Addr addr, unsigned bit,
                                CellType type) const;

    /**
     * Minimum hammer intensity (in [0,1]) that trips this vulnerable
     * cell.  A double-sided hammer applies intensity 1.0 and trips
     * every vulnerable cell; a single-sided hammer applies a smaller
     * intensity and trips only the most sensitive subset.
     */
    double tripThreshold(Addr addr, unsigned bit) const;

    /**
     * Retention time of the cell at ambient temperature @p celsius.
     * Sampled from a shifted-exponential at 20 C and scaled by the
     * standard retention-doubles-per-10C-drop rule, so cold-boot
     * scenarios (Section 8) see realistic remanence.
     */
    SimTime retentionTime(Addr addr, unsigned bit,
                          double celsius = 20.0) const;

  private:
    static std::uint64_t
    cellIndex(Addr addr, unsigned bit)
    {
        return addr * 8 + bit;
    }

    std::uint64_t seed_;
    ErrorStats stats_;
};

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_FAULT_MODEL_HH
