#include "dram/cell_types.hh"

namespace ctamem::dram {

const char *
cellTypeName(CellType type)
{
    return type == CellType::True ? "true-cell" : "anti-cell";
}

} // namespace ctamem::dram
