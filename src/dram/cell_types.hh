/**
 * @file
 * DRAM cell types and the per-row cell-type map.
 *
 * Modern DRAM shares one sense amplifier between two bitlines
 * (Section 2.1 of the paper); rows on the complementary bitline store
 * inverted charge, giving two cell populations:
 *
 *  - true-cells: charged = '1'; charge leakage induces '1'->'0' only.
 *  - anti-cells: charged = '0'; leakage induces '0'->'1' only.
 *
 * Each physical row is uniformly one type, and types alternate every N
 * rows (N = 512 commonly reported), or in some modules appear with a
 * very large true:anti ratio (Section 2.2).
 */

#ifndef CTAMEM_DRAM_CELL_TYPES_HH
#define CTAMEM_DRAM_CELL_TYPES_HH

#include <cstdint>

namespace ctamem::dram {

/** The two DRAM cell populations. */
enum class CellType : std::uint8_t { True, Anti };

/** Human-readable cell-type name. */
const char *cellTypeName(CellType type);

/** The value a cell of @p type reads as once its charge has leaked. */
constexpr std::uint8_t
dischargedBit(CellType type)
{
    return type == CellType::True ? 0 : 1;
}

/** The value a cell of @p type holds while charged. */
constexpr std::uint8_t
chargedBit(CellType type)
{
    return type == CellType::True ? 1 : 0;
}

/** How cell types are laid out across the rows of a bank. */
enum class CellLayoutKind : std::uint8_t
{
    /** Types alternate every `period` rows (true first). */
    AlternatingTrueFirst,
    /** Types alternate every `period` rows (anti first). */
    AlternatingAntiFirst,
    /**
     * `ratio` true rows followed by one anti row, repeating — models
     * the 1000:1 modules of Section 2.2.
     */
    MostlyTrue,
    /** The mirror image: mostly anti-cells (hypothetical, Section 6.2). */
    MostlyAnti,
    /** Every row is a true-cell row. */
    AllTrue,
    /** Every row is an anti-cell row. */
    AllAnti,
};

/**
 * Pure function from in-bank row index to cell type, parameterized by
 * the layout kind.  Kept trivially copyable so every subsystem can
 * hold one by value.
 */
class CellTypeMap
{
  public:
    /** Default: alternating every 512 rows, true-cells first. */
    CellTypeMap()
        : kind_(CellLayoutKind::AlternatingTrueFirst), period_(512)
    {}

    CellTypeMap(CellLayoutKind kind, std::uint64_t period)
        : kind_(kind), period_(period ? period : 1)
    {}

    /** Alternating layout with @p period rows per stripe. */
    static CellTypeMap
    alternating(std::uint64_t period, bool true_first = true)
    {
        return CellTypeMap(true_first ?
                               CellLayoutKind::AlternatingTrueFirst :
                               CellLayoutKind::AlternatingAntiFirst,
                           period);
    }

    /** `ratio`:1 true:anti layout. */
    static CellTypeMap
    mostlyTrue(std::uint64_t ratio)
    {
        return CellTypeMap(CellLayoutKind::MostlyTrue, ratio + 1);
    }

    /** 1:`ratio` true:anti layout. */
    static CellTypeMap
    mostlyAnti(std::uint64_t ratio)
    {
        return CellTypeMap(CellLayoutKind::MostlyAnti, ratio + 1);
    }

    static CellTypeMap
    uniform(CellType type)
    {
        return CellTypeMap(type == CellType::True ?
                               CellLayoutKind::AllTrue :
                               CellLayoutKind::AllAnti,
                           1);
    }

    /** Cell type of in-bank physical row @p row. */
    CellType
    rowType(std::uint64_t row) const
    {
        switch (kind_) {
          case CellLayoutKind::AlternatingTrueFirst:
            return (row / period_) % 2 == 0 ? CellType::True :
                                              CellType::Anti;
          case CellLayoutKind::AlternatingAntiFirst:
            return (row / period_) % 2 == 0 ? CellType::Anti :
                                              CellType::True;
          case CellLayoutKind::MostlyTrue:
            return (row % period_) == period_ - 1 ? CellType::Anti :
                                                    CellType::True;
          case CellLayoutKind::MostlyAnti:
            return (row % period_) == period_ - 1 ? CellType::True :
                                                    CellType::Anti;
          case CellLayoutKind::AllTrue:
            return CellType::True;
          case CellLayoutKind::AllAnti:
            return CellType::Anti;
        }
        return CellType::True;
    }

    CellLayoutKind kind() const { return kind_; }
    std::uint64_t period() const { return period_; }

  private:
    CellLayoutKind kind_;
    std::uint64_t period_;
};

} // namespace ctamem::dram

#endif // CTAMEM_DRAM_CELL_TYPES_HH
