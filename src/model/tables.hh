/**
 * @file
 * Generators for the paper's Tables 2 and 3: expected exploitable
 * PTE counts and expected attack times over the
 * {8, 16, 32} GiB x {32, 64} MiB x {unrestricted, restricted} sweep.
 */

#ifndef CTAMEM_MODEL_TABLES_HH
#define CTAMEM_MODEL_TABLES_HH

#include <ostream>
#include <string>
#include <vector>

#include "model/montecarlo.hh"
#include "model/security_model.hh"

namespace ctamem::model {

/** One cell-pair of Table 2/3. */
struct TableRow
{
    std::uint64_t memBytes;
    std::uint64_t ptpBytes;
    bool restricted;        //!< >= two '0's enforced
    double expectedPtes;
    double attackDays;
};

/**
 * The sweep both tables share.  @p granule_bytes is the modeled
 * translation granule; the 4 KiB default reproduces the paper's
 * x86-64 numbers, larger AArch64 granules shrink the brute-force
 * page count (and so the attack days) proportionally.
 */
std::vector<TableRow> sweepTable(const dram::ErrorStats &errors,
                                 std::uint64_t granule_bytes = 4 * KiB);

/** Table 2: Pf = 1e-4, P01 = 0.2%. */
std::vector<TableRow>
makeTable2(std::uint64_t granule_bytes = 4 * KiB);

/** Table 3: the pessimistic Pf = 5e-4, P01 = 0.5% scaling scenario. */
std::vector<TableRow>
makeTable3(std::uint64_t granule_bytes = 4 * KiB);

/** The published values, for verification and printing. */
struct PaperReference
{
    double expectedPtes;
    double attackDays;
};

/** Paper values for Table 2, keyed like sweepTable's output order. */
std::vector<PaperReference> paperTable2();

/** Paper values for Table 3. */
std::vector<PaperReference> paperTable3();

/** Pretty-print a table with the paper's values alongside. */
void printTable(std::ostream &os, const std::string &title,
                const std::vector<TableRow> &rows,
                const std::vector<PaperReference> &reference);

/**
 * The benches' Monte-Carlo cross-check grid: one McSpec per sweep
 * row at boosted probabilities (@p pf with the fixed 0.3/0.7 flip
 * split — the production probabilities need ~1e9 trials to see one
 * event), restricted rows sampling two zeros.  @p sampler selects
 * the scalar reference path or the bit-sliced batched kernel.
 */
std::vector<McSpec> mcSweepSpecs(const std::vector<TableRow> &rows,
                                 double pf, Sampler sampler,
                                 std::uint64_t trials);

} // namespace ctamem::model

#endif // CTAMEM_MODEL_TABLES_HH
