/**
 * @file
 * The closed-form security model of Section 5.
 *
 * P_exploitable = sum_{i=minFlips}^{n} C(n,i) (Pf*P01)^i
 *                                            (1 - Pf*P10)^(n-i)
 *
 * where n is the number of PTP-indicator bits, minFlips is 1 without
 * the restriction or the enforced minimum number of '0's with it, and
 * the flip probabilities take the zone's cell type into account (the
 * anti-cell ablation swaps the dominant direction).  The expected
 * number of exploitable PTE locations multiplies by the PTE capacity
 * of ZONE_PTP; the attack-time model prices the Algorithm 1 loop with
 * the paper's measured per-step costs.
 */

#ifndef CTAMEM_MODEL_SECURITY_MODEL_HH
#define CTAMEM_MODEL_SECURITY_MODEL_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/cell_types.hh"
#include "dram/error_stats.hh"

namespace ctamem::model {

/** System parameters of one modeled configuration. */
struct SystemParams
{
    std::uint64_t memBytes = 8 * GiB;
    std::uint64_t ptpBytes = 32 * MiB;
    /** Enforced minimum zeros in the attacker's PTP indicator
     *  (0 = no restriction). */
    unsigned minIndicatorZeros = 0;
    /** Cell type backing ZONE_PTP (Anti = the LWM-only ablation). */
    dram::CellType zoneCells = dram::CellType::True;
    dram::ErrorStats errors;
    std::uint64_t rowBytes = 128 * KiB;

    /**
     * Translation granule of the modeled architecture: the size of
     * one Algorithm 1 fill-and-check target page, and the unit the
     * PTE pointer field addresses (4 KiB on x86-64; 4/16/64 KiB on
     * AArch64).  Larger granules mean fewer candidate pages below
     * the low water mark and fewer pointer bits per descriptor,
     * shortening the brute-force sweep proportionally.
     */
    std::uint64_t granuleBytes = 4 * KiB;

    /** Indicator width n = log2(mem / ptp). */
    unsigned indicatorBits() const;

    /**
     * Width of the descriptor's pointer field for this granule:
     * the bits addressing granule frames, log2(mem / granule).
     * The indicator is its top indicatorBits() bits.
     */
    unsigned pointerBits() const;

    /** PTEs that fit in ZONE_PTP (8 bytes each). */
    std::uint64_t pteCount() const { return ptpBytes / 8; }

    /** Physical pages below the low water mark. */
    std::uint64_t
    pagesBelowLwm() const
    {
        return memBytes / granuleBytes - ptpBytes / granuleBytes;
    }

    /** DRAM rows making up ZONE_PTP. */
    std::uint64_t ptpRows() const { return ptpBytes / rowBytes; }

    /** PTEs per DRAM row. */
    std::uint64_t ptesPerRow() const { return rowBytes / 8; }
};

/** Per-step costs of Algorithm 1 (Section 5 measurements). */
struct AttackCosts
{
    double fillSeconds = 0.184;       //!< step (1) per target page
    double hammerSeconds = 0.064;     //!< step (2) per row (refresh)
    double checkSeconds = 600e-9;     //!< step (3) per PTE
};

/** Probability one PTE location becomes exploitable. */
double pExploitable(const SystemParams &params);

/**
 * Probability a PTE whose indicator carries *exactly* @p zeros zero
 * bits is exploitable: every zero must flip up and every one must
 * hold.  pUp^zeros * (1 - pDown)^(n - zeros), evaluated in log space
 * — the single-content term the FixedZeros samplers estimate.
 * @pre zeros <= indicatorBits().
 */
double pExploitableExactZeros(const SystemParams &params,
                              unsigned zeros);

/**
 * Probability a *uniform* pointer below the low water mark (indicator
 * uniform over [0, 2^n - 1)) is exploitable:
 * [(pUp + 1 - pDown)^n - (1 - pDown)^n] / (2^n - 1) — what the
 * Uniform samplers estimate.
 */
double pExploitableUniform(const SystemParams &params);

/** Expected number of exploitable PTE locations in ZONE_PTP. */
double expectedExploitablePtes(const SystemParams &params);

/**
 * Fraction of systems in which the restricted configuration has at
 * least one exploitable PTE (the paper's "one out of 2.04e5").
 */
double vulnerableSystemFraction(const SystemParams &params);

/** Attack-time results in days. */
struct AttackTime
{
    double perPageSeconds; //!< fill + hammer-all-rows + check-all-PTEs
    double worstDays;      //!< full brute force over pages below LWM
    double avgDays;        //!< paper's expected-time rule
};

/**
 * Expected Algorithm 1 duration.  Average rule follows Section 5:
 * worst / (ceil(E)+1) when exploitable PTEs are plentiful, worst / 2
 * for the restricted case (conditioned on the rare vulnerable
 * system having exactly one exploitable location).
 */
AttackTime expectedAttackTime(const SystemParams &params,
                              const AttackCosts &costs = {});

} // namespace ctamem::model

#endif // CTAMEM_MODEL_SECURITY_MODEL_HH
