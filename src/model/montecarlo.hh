/**
 * @file
 * Monte-Carlo cross-checks of the closed-form security model.
 *
 * Two spray-content distributions:
 *  - attacker-optimal content (the paper's implicit assumption): the
 *    attacker sprays PTEs whose indicators carry the minimum number
 *    of zeros the restriction allows, and any choice of which bits
 *    are zero is equally available — matching the C(n,i) weighting
 *    of the formula;
 *  - uniform pointers below the low water mark, the conservative
 *    variant, showing the formula upper-bounds real spray content.
 *
 * Each exists in two implementations: the scalar reference samplers
 * (one RNG draw and one double compare per indicator bit per trial;
 * their draw sequences are frozen — the Table 1/2/3 cross-check
 * outputs depend on them) and the bit-sliced *batched* samplers,
 * which process trials in blocks of 64 lanes where every indicator
 * bit's flip outcome across the whole block is one Bernoulli mask
 * (Rng::bernoulliMask), reducing a block to ~n AND/OR word ops and a
 * popcount verdict.  The batched samplers also support importance
 * sampling (Mode::ImportanceSampled): flips are drawn from a tilted
 * distribution and every hit is weighted by its likelihood ratio,
 * making tails around 1e-9 and far below directly estimable.
 *
 * The entry point is runMc() over an McSpec.  Trials are evaluated in
 * fixed-size chunks; chunk i draws from Rng(deriveSeed(seed, i)) and
 * per-chunk results are folded in chunk-index order, so for a fixed
 * spec the estimate is bit-identical whether it runs serially or on
 * a thread pool of any size.  Scalar and batched samplers draw
 * *different* (identically distributed) streams from the same seed.
 */

#ifndef CTAMEM_MODEL_MONTECARLO_HH
#define CTAMEM_MODEL_MONTECARLO_HH

#include <cstdint>

#include "common/rng.hh"
#include "model/security_model.hh"

namespace ctamem::runtime {
class ThreadPool;
} // namespace ctamem::runtime

namespace ctamem::model {

/** Monte-Carlo estimate with its standard error. */
struct McEstimate
{
    double mean;
    double stderr;
    std::uint64_t trials;
    /**
     * Kish effective sample size: the hit count for the unweighted
     * samplers, (sum w)^2 / (sum w^2) over hits for the
     * importance-sampled ones.  0 when no trial hit.
     */
    double ess = 0.0;
};

/** Which spray-content distribution a Monte-Carlo run samples. */
enum class Sampler : std::uint8_t
{
    FixedZeros, //!< attacker-optimal: exactly `zeros` indicator zeros
    Uniform,    //!< uniform pointers below the low water mark
    /** Bit-sliced 64-lane kernel over FixedZeros content. */
    FixedZerosBatched,
    /** Bit-sliced 64-lane kernel over Uniform content. */
    UniformBatched,
};

/** True for the bit-sliced block samplers. */
constexpr bool
isBatched(Sampler sampler)
{
    return sampler == Sampler::FixedZerosBatched ||
           sampler == Sampler::UniformBatched;
}

/** How trials turn into the estimate. */
enum class Mode : std::uint8_t
{
    /** Direct indicator average (every weight is 1). */
    Standard,
    /**
     * Rare-event estimator: flips are sampled from a tilted
     * distribution (tiltUp/tiltDown, auto-chosen when 0) and each
     * hit is weighted by its likelihood ratio.  Unbiased for the
     * same probability the Standard mode estimates, but with
     * nonvanishing hit rates even at tail probabilities the direct
     * estimator cannot reach (batched samplers only).
     */
    ImportanceSampled,
};

/** One fully-specified Monte-Carlo experiment. */
struct McSpec
{
    SystemParams params;
    Sampler sampler = Sampler::FixedZeros;
    Mode mode = Mode::Standard;
    /** Indicator zeros per sprayed PTE (FixedZeros samplers only). */
    unsigned zeros = 1;
    std::uint64_t trials = 200'000;
    std::uint64_t seed = seeds::kMonteCarlo;
    /** Trials per seeding chunk; part of the result's identity. */
    std::uint64_t chunkSize = 16'384;
    /**
     * ImportanceSampled knobs: the tilted per-bit flip probabilities
     * actually sampled.  0 picks defaults — up-flips tilted to at
     * least 1/2 so hits are common, down-flips left untilted.
     */
    double tiltUp = 0.0;
    double tiltDown = 0.0;
};

/** Run the experiment serially. */
McEstimate runMc(const McSpec &spec);

/**
 * Run the experiment's chunks on @p pool.  Bit-identical to the
 * serial overload for the same spec, at any pool size.
 */
McEstimate runMc(const McSpec &spec, runtime::ThreadPool &pool);

/**
 * Estimate P_exploitable by simulating per-bit flips on PTEs whose
 * indicator has exactly @p zeros zero bits (attacker-optimal when
 * zeros == max(1, minIndicatorZeros)).  Thin wrapper over runMc().
 */
McEstimate mcExploitableFixedZeros(const SystemParams &params,
                                   unsigned zeros,
                                   std::uint64_t trials,
                                   std::uint64_t seed =
                                       seeds::kMonteCarlo);

/**
 * Estimate P_exploitable for uniform pointers below the low water
 * mark.  Thin wrapper over runMc().
 */
McEstimate mcExploitableUniform(const SystemParams &params,
                                std::uint64_t trials,
                                std::uint64_t seed =
                                    seeds::kMonteCarlo);

} // namespace ctamem::model

#endif // CTAMEM_MODEL_MONTECARLO_HH
