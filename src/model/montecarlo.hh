/**
 * @file
 * Monte-Carlo cross-checks of the closed-form security model.
 *
 * Two samplers:
 *  - attacker-optimal content (the paper's implicit assumption): the
 *    attacker sprays PTEs whose indicators carry the minimum number
 *    of zeros the restriction allows, and any choice of which bits
 *    are zero is equally available — matching the C(n,i) weighting
 *    of the formula;
 *  - uniform pointers below the low water mark, the conservative
 *    variant, showing the formula upper-bounds real spray content.
 *
 * The entry point is runMc() over an McSpec.  Trials are evaluated in
 * fixed-size chunks; chunk i draws from Rng(deriveSeed(seed, i)) and
 * per-chunk moments are folded in chunk-index order, so for a fixed
 * (seed, trials, chunkSize) the estimate is bit-identical whether it
 * runs serially or on a thread pool of any size.
 */

#ifndef CTAMEM_MODEL_MONTECARLO_HH
#define CTAMEM_MODEL_MONTECARLO_HH

#include <cstdint>

#include "common/rng.hh"
#include "model/security_model.hh"

namespace ctamem::runtime {
class ThreadPool;
} // namespace ctamem::runtime

namespace ctamem::model {

/** Monte-Carlo estimate with its standard error. */
struct McEstimate
{
    double mean;
    double stderr;
    std::uint64_t trials;
};

/** Which spray-content distribution a Monte-Carlo run samples. */
enum class Sampler : std::uint8_t
{
    FixedZeros, //!< attacker-optimal: exactly `zeros` indicator zeros
    Uniform,    //!< uniform pointers below the low water mark
};

/** One fully-specified Monte-Carlo experiment. */
struct McSpec
{
    SystemParams params;
    Sampler sampler = Sampler::FixedZeros;
    /** Indicator zeros per sprayed PTE (FixedZeros sampler only). */
    unsigned zeros = 1;
    std::uint64_t trials = 200'000;
    std::uint64_t seed = seeds::kMonteCarlo;
    /** Trials per seeding chunk; part of the result's identity. */
    std::uint64_t chunkSize = 16'384;
};

/** Run the experiment serially. */
McEstimate runMc(const McSpec &spec);

/**
 * Run the experiment's chunks on @p pool.  Bit-identical to the
 * serial overload for the same spec, at any pool size.
 */
McEstimate runMc(const McSpec &spec, runtime::ThreadPool &pool);

/**
 * Estimate P_exploitable by simulating per-bit flips on PTEs whose
 * indicator has exactly @p zeros zero bits (attacker-optimal when
 * zeros == max(1, minIndicatorZeros)).  Thin wrapper over runMc().
 */
McEstimate mcExploitableFixedZeros(const SystemParams &params,
                                   unsigned zeros,
                                   std::uint64_t trials,
                                   std::uint64_t seed =
                                       seeds::kMonteCarlo);

/**
 * Estimate P_exploitable for uniform pointers below the low water
 * mark.  Thin wrapper over runMc().
 */
McEstimate mcExploitableUniform(const SystemParams &params,
                                std::uint64_t trials,
                                std::uint64_t seed =
                                    seeds::kMonteCarlo);

} // namespace ctamem::model

#endif // CTAMEM_MODEL_MONTECARLO_HH
