/**
 * @file
 * Monte-Carlo cross-checks of the closed-form security model.
 *
 * Two samplers:
 *  - attacker-optimal content (the paper's implicit assumption): the
 *    attacker sprays PTEs whose indicators carry the minimum number
 *    of zeros the restriction allows, and any choice of which bits
 *    are zero is equally available — matching the C(n,i) weighting
 *    of the formula;
 *  - uniform pointers below the low water mark, the conservative
 *    variant, showing the formula upper-bounds real spray content.
 */

#ifndef CTAMEM_MODEL_MONTECARLO_HH
#define CTAMEM_MODEL_MONTECARLO_HH

#include <cstdint>

#include "model/security_model.hh"

namespace ctamem::model {

/** Monte-Carlo estimate with its standard error. */
struct McEstimate
{
    double mean;
    double stderr;
    std::uint64_t trials;
};

/**
 * Estimate P_exploitable by simulating per-bit flips on PTEs whose
 * indicator has exactly @p zeros zero bits (attacker-optimal when
 * zeros == max(1, minIndicatorZeros)).
 */
McEstimate mcExploitableFixedZeros(const SystemParams &params,
                                   unsigned zeros,
                                   std::uint64_t trials,
                                   std::uint64_t seed = 42);

/**
 * Estimate P_exploitable for uniform pointers below the low water
 * mark.
 */
McEstimate mcExploitableUniform(const SystemParams &params,
                                std::uint64_t trials,
                                std::uint64_t seed = 42);

} // namespace ctamem::model

#endif // CTAMEM_MODEL_MONTECARLO_HH
