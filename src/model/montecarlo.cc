#include "model/montecarlo.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "common/bitops.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "runtime/thread_pool.hh"

namespace ctamem::model {

namespace {

/** Flip probabilities shared by every trial of one spec. */
struct TrialSetup
{
    explicit TrialSetup(const SystemParams &params)
        : n(params.indicatorBits()),
          pUp(params.errors.upFlipProb(params.zoneCells)),
          pDown(params.errors.downFlipProb(params.zoneCells)),
          allOnes((1ULL << n) - 1)
    {}

    unsigned n;
    double pUp;
    double pDown;
    std::uint64_t allOnes;
};

bool
fixedZerosTrial(Rng &rng, const TrialSetup &setup, unsigned zeros,
                std::vector<unsigned> &positions)
{
    // Choose which indicator bits are zero (Fisher-Yates prefix).
    for (unsigned i = 0; i < setup.n; ++i)
        positions[i] = i;
    for (unsigned i = 0; i < zeros; ++i) {
        const unsigned j =
            i + static_cast<unsigned>(rng.below(setup.n - i));
        std::swap(positions[i], positions[j]);
    }
    bool exploitable = true;
    for (unsigned i = 0; i < setup.n && exploitable; ++i) {
        if (i < zeros)
            exploitable = rng.chance(setup.pUp);    // must flip up
        else
            exploitable = !rng.chance(setup.pDown); // must hold
    }
    return exploitable;
}

bool
uniformTrial(Rng &rng, const TrialSetup &setup)
{
    // Uniform pointer below the low water mark: its indicator is
    // uniform over [0, 2^n - 1) (the all-ones value IS the zone).
    const std::uint64_t indicator = rng.below(setup.allOnes);
    std::uint64_t value = indicator;
    for (unsigned bit = 0; bit < setup.n; ++bit) {
        const bool set = (value >> bit) & 1;
        if (!set && rng.chance(setup.pUp))
            value |= 1ULL << bit;
        else if (set && rng.chance(setup.pDown))
            value &= ~(1ULL << bit);
    }
    return value == setup.allOnes;
}

// ---------------------------------------------------------------
// Bit-sliced batched kernel.
//
// Trials run in blocks of 64 lanes.  For each indicator bit the flip
// outcome across the whole block is one Bernoulli mask, so a block's
// verdict ("value == allOnes" per lane) collapses to an AND-reduce
// over ~n words and a popcount.  Importance sampling reuses the same
// kernel: flips are drawn at tilted probabilities (qUp, qDown) and
// each hit contributes its likelihood ratio instead of 1 — Standard
// mode is the identity tilt, where every weight is exactly 1.
// ---------------------------------------------------------------

/** Per-chunk tallies of the batched kernel.  Summed in chunk-index
 *  order, so the fold is exact in the integer fields and performed
 *  in a fixed double-addition order — bit-identical at any thread
 *  count. */
struct BatchTally
{
    std::uint64_t trials = 0;
    std::uint64_t hits = 0;
    double sumW = 0.0;  //!< sum of hit weights (== hits, untitled)
    double sumW2 = 0.0; //!< sum of squared hit weights

    void
    merge(const BatchTally &other)
    {
        trials += other.trials;
        hits += other.hits;
        sumW += other.sumW;
        sumW2 += other.sumW2;
    }
};

/** Sampling probabilities and likelihood-ratio weights of one spec. */
struct BatchSetup
{
    BatchSetup(const McSpec &spec)
        : base(spec.params)
    {
        if (spec.mode == Mode::ImportanceSampled) {
            qUp = spec.tiltUp > 0.0
                      ? spec.tiltUp
                      : std::max(base.pUp, 0.5);
            qDown = spec.tiltDown > 0.0 ? spec.tiltDown : base.pDown;
        } else {
            qUp = base.pUp;
            qDown = base.pDown;
        }
        // FixedZeros hold masks collapse to one draw: the AND of
        // n - zeros independent Bernoulli(1 - qDown) masks is itself
        // Bernoulli((1 - qDown)^(n - zeros)) per lane.
        qHoldAll = std::pow(1.0 - qDown,
                            static_cast<int>(base.n - spec.zeros));
        identityWeights =
            qUp == base.pUp && qDown == base.pDown;
        // A hit with z indicator zeros saw z up-flips succeed and
        // n - z holds succeed; its likelihood ratio factorizes as
        // (pUp/qUp)^z * ((1-pDown)/(1-qDown))^(n-z).
        const double w_up = qUp > 0.0 ? base.pUp / qUp : 0.0;
        const double w_hold =
            qDown < 1.0 ? (1.0 - base.pDown) / (1.0 - qDown) : 0.0;
        weightByZeros.resize(base.n + 1);
        for (unsigned z = 0; z <= base.n; ++z) {
            weightByZeros[z] =
                std::pow(w_up, z) *
                std::pow(w_hold, base.n - z);
        }
    }

    TrialSetup base;
    double qUp;
    double qDown;
    /** P(no down-flip in any of the n - zeros held bits). */
    double qHoldAll;
    bool identityWeights;
    /** Hit weight as a function of the indicator's zero count. */
    std::vector<double> weightByZeros;
};

/** Fold @p hits_mask (restricted to live lanes) into @p tally with
 *  one shared weight — the FixedZeros case, and any case where all
 *  hits in the block weigh the same. */
void
tallyUniformWeight(std::uint64_t hits_mask, double weight,
                   BatchTally &tally)
{
    const unsigned h = popcount(hits_mask);
    tally.hits += h;
    tally.sumW += weight * h;
    tally.sumW2 += weight * weight * h;
}

/**
 * One 64-lane block of FixedZeros trials.  Which positions hold the
 * zeros never affects the verdict (the flip draws are i.i.d. across
 * positions), so the block reduces to: all `zeros` up-flips succeed
 * AND all n - zeros holds succeed — one up mask per zero bit, and
 * the holds collapsed into a single qHoldAll mask.
 */
void
fixedZerosBlock(Rng &rng, const BatchSetup &setup, unsigned zeros,
                std::uint64_t lane_mask, BatchTally &tally)
{
    // Each mask is restricted to the lanes still in play, so after
    // the first up mask kills most of the block the remaining draws
    // cost ~2 words each instead of ~8.
    std::uint64_t hits = lane_mask;
    for (unsigned i = 0; i < zeros && hits; ++i)
        hits &= rng.bernoulliMask(setup.qUp, hits);
    if (hits)
        hits &= rng.bernoulliMask(setup.qHoldAll, hits);
    tally.trials += popcount(lane_mask);
    tallyUniformWeight(hits, setup.weightByZeros[zeros], tally);
}

/**
 * One 64-lane block of Uniform trials.  ind[b] holds indicator bit b
 * of every lane; lanes that draw the all-ones indicator (the zone
 * itself) are redrawn scalar-wise from nextBounded, preserving the
 * uniform-below-allOnes distribution of the scalar sampler.
 */
void
uniformBlock(Rng &rng, const BatchSetup &setup,
             std::uint64_t lane_mask, BatchTally &tally)
{
    const unsigned n = setup.base.n;
    std::uint64_t ind[64];
    for (unsigned b = 0; b < n; ++b)
        ind[b] = rng.next();

    std::uint64_t all_ones = lane_mask;
    for (unsigned b = 0; b < n && all_ones; ++b)
        all_ones &= ind[b];
    while (all_ones) {
        const unsigned lane =
            static_cast<unsigned>(std::countr_zero(all_ones));
        all_ones &= all_ones - 1;
        const std::uint64_t redraw =
            rng.nextBounded(setup.base.allOnes);
        for (unsigned b = 0; b < n; ++b) {
            ind[b] = (ind[b] & ~(1ULL << lane)) |
                     (((redraw >> b) & 1ULL) << lane);
        }
    }

    std::uint64_t hits = lane_mask;
    for (unsigned b = 0; b < n && hits; ++b) {
        // Flip masks narrowed to the lanes still in play; dead lanes
        // get 0 bits, which the AND below ignores.
        const std::uint64_t up = rng.bernoulliMask(setup.qUp, hits);
        const std::uint64_t down = rng.bernoulliMask(setup.qDown, hits);
        // Post-flip value of bit b, lane-parallel.
        hits &= (ind[b] & ~down) | (~ind[b] & up);
    }

    tally.trials += popcount(lane_mask);
    if (setup.identityWeights) {
        tallyUniformWeight(hits, 1.0, tally);
        return;
    }
    // Tilted: a hit's weight depends on its indicator's zero count.
    while (hits) {
        const unsigned lane =
            static_cast<unsigned>(std::countr_zero(hits));
        hits &= hits - 1;
        unsigned zeros = 0;
        for (unsigned b = 0; b < n; ++b)
            zeros += !((ind[b] >> lane) & 1ULL);
        const double w = setup.weightByZeros[zeros];
        ++tally.hits;
        tally.sumW += w;
        tally.sumW2 += w * w;
    }
}

/** Run one seeding chunk of a batched spec (64-lane blocks; the
 *  ragged tail masks out the dead lanes). */
BatchTally
runBatchedChunk(const McSpec &spec, const BatchSetup &setup,
                std::uint64_t chunkIndex, std::uint64_t trials)
{
    Rng rng(deriveSeed(spec.seed, chunkIndex));
    BatchTally tally;
    for (std::uint64_t done = 0; done < trials; done += 64) {
        const std::uint64_t live =
            std::min<std::uint64_t>(64, trials - done);
        const std::uint64_t lane_mask =
            live == 64 ? ~0ULL : (1ULL << live) - 1;
        if (spec.sampler == Sampler::FixedZerosBatched)
            fixedZerosBlock(rng, setup, spec.zeros, lane_mask, tally);
        else
            uniformBlock(rng, setup, lane_mask, tally);
    }
    return tally;
}

/** Index-ordered fold of per-chunk tallies into the estimate. */
McEstimate
summarizeBatched(const std::vector<BatchTally> &chunks)
{
    BatchTally total;
    for (const BatchTally &chunk : chunks)
        total.merge(chunk);
    const double m = static_cast<double>(total.trials);
    const double mean = total.sumW / m;
    // Var(w * 1_hit) = E[w^2 1_hit] - mean^2; for the identity tilt
    // this is exactly the Bernoulli mean(1 - mean).
    const double var =
        std::max(0.0, total.sumW2 / m - mean * mean);
    McEstimate estimate;
    estimate.mean = mean;
    estimate.stderr = std::sqrt(var / m);
    estimate.trials = total.trials;
    estimate.ess =
        total.sumW2 > 0.0 ? total.sumW * total.sumW / total.sumW2
                          : 0.0;
    return estimate;
}

/** Trials covered by chunk @p index of the spec. */
std::uint64_t
chunkTrials(const McSpec &spec, std::uint64_t index,
            std::uint64_t chunks)
{
    if (index + 1 < chunks)
        return spec.chunkSize;
    return spec.trials - spec.chunkSize * (chunks - 1);
}

/**
 * Run one seeding chunk.  The chunk's Rng is derived from
 * (seed, chunkIndex) alone, so chunks are independent of execution
 * order and of each other.
 */
MomentAccumulator
runChunk(const McSpec &spec, std::uint64_t chunkIndex,
         std::uint64_t trials)
{
    const TrialSetup setup(spec.params);
    Rng rng(deriveSeed(spec.seed, chunkIndex));
    MomentAccumulator moments;
    std::vector<unsigned> positions(setup.n);
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        bool hit = false;
        switch (spec.sampler) {
          case Sampler::FixedZeros:
            hit = fixedZerosTrial(rng, setup, spec.zeros, positions);
            break;
          case Sampler::Uniform:
            hit = uniformTrial(rng, setup);
            break;
          case Sampler::FixedZerosBatched:
          case Sampler::UniformBatched:
            fatal("runChunk: batched sampler on the scalar path");
        }
        moments.record(hit ? 1.0 : 0.0);
    }
    return moments;
}

void
validate(const McSpec &spec)
{
    if (spec.trials == 0)
        fatal("runMc: zero trials");
    if (spec.chunkSize == 0)
        fatal("runMc: zero chunkSize");
    if ((spec.sampler == Sampler::FixedZeros ||
         spec.sampler == Sampler::FixedZerosBatched) &&
        spec.zeros > spec.params.indicatorBits())
        fatal("runMc: zeros > indicator bits");
    if (spec.mode == Mode::ImportanceSampled &&
        !isBatched(spec.sampler))
        fatal("runMc: importance sampling requires a batched "
              "sampler");
    if (spec.tiltUp < 0.0 || spec.tiltUp > 1.0 ||
        spec.tiltDown < 0.0 || spec.tiltDown > 1.0)
        fatal("runMc: tilt probabilities outside [0, 1]");
}

std::uint64_t
chunkCount(const McSpec &spec)
{
    return (spec.trials + spec.chunkSize - 1) / spec.chunkSize;
}

/** Index-ordered fold of per-chunk moments into the estimate. */
McEstimate
summarize(const std::vector<MomentAccumulator> &chunks)
{
    MomentAccumulator total;
    for (const MomentAccumulator &chunk : chunks)
        total.merge(chunk);
    McEstimate estimate{total.mean(), total.stderrOfMean(),
                        total.count()};
    // For 0/1 samples the hit count is mean * n, recovered exactly
    // enough for an effective-sample-size report.
    estimate.ess =
        total.mean() * static_cast<double>(total.count());
    return estimate;
}

/** Batched kernel, serial or on @p pool (chunks are independent). */
McEstimate
runBatched(const McSpec &spec, runtime::ThreadPool *pool)
{
    const BatchSetup setup(spec);
    const std::uint64_t chunks = chunkCount(spec);
    std::vector<BatchTally> partial(chunks);
    auto one = [&](std::uint64_t i) {
        partial[i] =
            runBatchedChunk(spec, setup, i,
                            chunkTrials(spec, i, chunks));
    };
    if (pool) {
        // Each chunk writes only its own slot; the fold walks slots
        // in index order, so thread count cannot affect the result.
        pool->parallelFor(0, chunks, one, /*grain=*/1);
    } else {
        for (std::uint64_t i = 0; i < chunks; ++i)
            one(i);
    }
    return summarizeBatched(partial);
}

} // namespace

McEstimate
runMc(const McSpec &spec)
{
    validate(spec);
    if (isBatched(spec.sampler))
        return runBatched(spec, nullptr);
    const std::uint64_t chunks = chunkCount(spec);
    std::vector<MomentAccumulator> partial(chunks);
    for (std::uint64_t i = 0; i < chunks; ++i)
        partial[i] = runChunk(spec, i, chunkTrials(spec, i, chunks));
    return summarize(partial);
}

McEstimate
runMc(const McSpec &spec, runtime::ThreadPool &pool)
{
    validate(spec);
    if (isBatched(spec.sampler))
        return runBatched(spec, &pool);
    const std::uint64_t chunks = chunkCount(spec);
    std::vector<MomentAccumulator> partial(chunks);
    // Each chunk writes only its own slot; the fold below walks the
    // slots in index order, so thread count cannot affect the result.
    pool.parallelFor(0, chunks, [&](std::uint64_t i) {
        partial[i] = runChunk(spec, i, chunkTrials(spec, i, chunks));
    }, /*grain=*/1);
    return summarize(partial);
}

McEstimate
mcExploitableFixedZeros(const SystemParams &params, unsigned zeros,
                        std::uint64_t trials, std::uint64_t seed)
{
    McSpec spec;
    spec.params = params;
    spec.sampler = Sampler::FixedZeros;
    spec.zeros = zeros;
    spec.trials = trials;
    spec.seed = seed;
    return runMc(spec);
}

McEstimate
mcExploitableUniform(const SystemParams &params, std::uint64_t trials,
                     std::uint64_t seed)
{
    McSpec spec;
    spec.params = params;
    spec.sampler = Sampler::Uniform;
    spec.trials = trials;
    spec.seed = seed;
    return runMc(spec);
}

} // namespace ctamem::model
