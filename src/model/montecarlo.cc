#include "model/montecarlo.hh"

#include <cmath>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "runtime/thread_pool.hh"

namespace ctamem::model {

namespace {

/** Flip probabilities shared by every trial of one spec. */
struct TrialSetup
{
    explicit TrialSetup(const SystemParams &params)
        : n(params.indicatorBits()),
          pUp(params.errors.upFlipProb(params.zoneCells)),
          pDown(params.errors.downFlipProb(params.zoneCells)),
          allOnes((1ULL << n) - 1)
    {}

    unsigned n;
    double pUp;
    double pDown;
    std::uint64_t allOnes;
};

bool
fixedZerosTrial(Rng &rng, const TrialSetup &setup, unsigned zeros,
                std::vector<unsigned> &positions)
{
    // Choose which indicator bits are zero (Fisher-Yates prefix).
    for (unsigned i = 0; i < setup.n; ++i)
        positions[i] = i;
    for (unsigned i = 0; i < zeros; ++i) {
        const unsigned j =
            i + static_cast<unsigned>(rng.below(setup.n - i));
        std::swap(positions[i], positions[j]);
    }
    bool exploitable = true;
    for (unsigned i = 0; i < setup.n && exploitable; ++i) {
        if (i < zeros)
            exploitable = rng.chance(setup.pUp);    // must flip up
        else
            exploitable = !rng.chance(setup.pDown); // must hold
    }
    return exploitable;
}

bool
uniformTrial(Rng &rng, const TrialSetup &setup)
{
    // Uniform pointer below the low water mark: its indicator is
    // uniform over [0, 2^n - 1) (the all-ones value IS the zone).
    const std::uint64_t indicator = rng.below(setup.allOnes);
    std::uint64_t value = indicator;
    for (unsigned bit = 0; bit < setup.n; ++bit) {
        const bool set = (value >> bit) & 1;
        if (!set && rng.chance(setup.pUp))
            value |= 1ULL << bit;
        else if (set && rng.chance(setup.pDown))
            value &= ~(1ULL << bit);
    }
    return value == setup.allOnes;
}

/** Trials covered by chunk @p index of the spec. */
std::uint64_t
chunkTrials(const McSpec &spec, std::uint64_t index,
            std::uint64_t chunks)
{
    if (index + 1 < chunks)
        return spec.chunkSize;
    return spec.trials - spec.chunkSize * (chunks - 1);
}

/**
 * Run one seeding chunk.  The chunk's Rng is derived from
 * (seed, chunkIndex) alone, so chunks are independent of execution
 * order and of each other.
 */
MomentAccumulator
runChunk(const McSpec &spec, std::uint64_t chunkIndex,
         std::uint64_t trials)
{
    const TrialSetup setup(spec.params);
    Rng rng(deriveSeed(spec.seed, chunkIndex));
    MomentAccumulator moments;
    std::vector<unsigned> positions(setup.n);
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        bool hit = false;
        switch (spec.sampler) {
          case Sampler::FixedZeros:
            hit = fixedZerosTrial(rng, setup, spec.zeros, positions);
            break;
          case Sampler::Uniform:
            hit = uniformTrial(rng, setup);
            break;
        }
        moments.record(hit ? 1.0 : 0.0);
    }
    return moments;
}

void
validate(const McSpec &spec)
{
    if (spec.trials == 0)
        fatal("runMc: zero trials");
    if (spec.chunkSize == 0)
        fatal("runMc: zero chunkSize");
    if (spec.sampler == Sampler::FixedZeros &&
        spec.zeros > spec.params.indicatorBits())
        fatal("runMc: zeros > indicator bits");
}

std::uint64_t
chunkCount(const McSpec &spec)
{
    return (spec.trials + spec.chunkSize - 1) / spec.chunkSize;
}

/** Index-ordered fold of per-chunk moments into the estimate. */
McEstimate
summarize(const std::vector<MomentAccumulator> &chunks)
{
    MomentAccumulator total;
    for (const MomentAccumulator &chunk : chunks)
        total.merge(chunk);
    return McEstimate{total.mean(), total.stderrOfMean(),
                      total.count()};
}

} // namespace

McEstimate
runMc(const McSpec &spec)
{
    validate(spec);
    const std::uint64_t chunks = chunkCount(spec);
    std::vector<MomentAccumulator> partial(chunks);
    for (std::uint64_t i = 0; i < chunks; ++i)
        partial[i] = runChunk(spec, i, chunkTrials(spec, i, chunks));
    return summarize(partial);
}

McEstimate
runMc(const McSpec &spec, runtime::ThreadPool &pool)
{
    validate(spec);
    const std::uint64_t chunks = chunkCount(spec);
    std::vector<MomentAccumulator> partial(chunks);
    // Each chunk writes only its own slot; the fold below walks the
    // slots in index order, so thread count cannot affect the result.
    pool.parallelFor(0, chunks, [&](std::uint64_t i) {
        partial[i] = runChunk(spec, i, chunkTrials(spec, i, chunks));
    });
    return summarize(partial);
}

McEstimate
mcExploitableFixedZeros(const SystemParams &params, unsigned zeros,
                        std::uint64_t trials, std::uint64_t seed)
{
    McSpec spec;
    spec.params = params;
    spec.sampler = Sampler::FixedZeros;
    spec.zeros = zeros;
    spec.trials = trials;
    spec.seed = seed;
    return runMc(spec);
}

McEstimate
mcExploitableUniform(const SystemParams &params, std::uint64_t trials,
                     std::uint64_t seed)
{
    McSpec spec;
    spec.params = params;
    spec.sampler = Sampler::Uniform;
    spec.trials = trials;
    spec.seed = seed;
    return runMc(spec);
}

} // namespace ctamem::model
