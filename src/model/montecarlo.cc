#include "model/montecarlo.hh"

#include <cmath>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"

namespace ctamem::model {

namespace {

McEstimate
summarize(std::uint64_t hits, std::uint64_t trials)
{
    const double mean =
        static_cast<double>(hits) / static_cast<double>(trials);
    const double variance = mean * (1.0 - mean);
    return McEstimate{
        mean, std::sqrt(variance / static_cast<double>(trials)),
        trials};
}

} // namespace

McEstimate
mcExploitableFixedZeros(const SystemParams &params, unsigned zeros,
                        std::uint64_t trials, std::uint64_t seed)
{
    const unsigned n = params.indicatorBits();
    if (zeros > n)
        fatal("mcExploitableFixedZeros: zeros > indicator bits");
    const double p_up = params.errors.upFlipProb(params.zoneCells);
    const double p_down =
        params.errors.downFlipProb(params.zoneCells);

    Rng rng(seed);
    std::uint64_t hits = 0;
    std::vector<unsigned> positions(n);
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        // Choose which indicator bits are zero (Fisher-Yates prefix).
        for (unsigned i = 0; i < n; ++i)
            positions[i] = i;
        for (unsigned i = 0; i < zeros; ++i) {
            const unsigned j =
                i + static_cast<unsigned>(rng.below(n - i));
            std::swap(positions[i], positions[j]);
        }
        bool exploitable = true;
        for (unsigned i = 0; i < n && exploitable; ++i) {
            if (i < zeros)
                exploitable = rng.chance(p_up);   // must flip up
            else
                exploitable = !rng.chance(p_down); // must hold
        }
        if (exploitable)
            ++hits;
    }
    return summarize(hits, trials);
}

McEstimate
mcExploitableUniform(const SystemParams &params, std::uint64_t trials,
                     std::uint64_t seed)
{
    const unsigned n = params.indicatorBits();
    const double p_up = params.errors.upFlipProb(params.zoneCells);
    const double p_down =
        params.errors.downFlipProb(params.zoneCells);
    const std::uint64_t all_ones = (1ULL << n) - 1;

    Rng rng(seed);
    std::uint64_t hits = 0;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        // Uniform pointer below the low water mark: its indicator is
        // uniform over [0, 2^n - 1) (the all-ones value IS the zone).
        const std::uint64_t indicator = rng.below(all_ones);
        std::uint64_t value = indicator;
        for (unsigned bit = 0; bit < n; ++bit) {
            const bool set = (value >> bit) & 1;
            if (!set && rng.chance(p_up))
                value |= 1ULL << bit;
            else if (set && rng.chance(p_down))
                value &= ~(1ULL << bit);
        }
        if (value == all_ones)
            ++hits;
    }
    return summarize(hits, trials);
}

} // namespace ctamem::model
