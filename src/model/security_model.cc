#include "model/security_model.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/combinatorics.hh"
#include "common/log.hh"

namespace ctamem::model {

unsigned
SystemParams::indicatorBits() const
{
    if (!isPowerOfTwo(memBytes) || !isPowerOfTwo(ptpBytes) ||
        ptpBytes >= memBytes) {
        fatal("SystemParams: memory and ZONE_PTP sizes must be "
              "powers of two with ptp < mem");
    }
    return log2Floor(memBytes / ptpBytes);
}

unsigned
SystemParams::pointerBits() const
{
    if (!isPowerOfTwo(granuleBytes) || granuleBytes >= ptpBytes) {
        fatal("SystemParams: granule must be a power of two smaller "
              "than ZONE_PTP");
    }
    return log2Floor(memBytes / granuleBytes);
}

double
pExploitable(const SystemParams &params)
{
    const unsigned n = params.indicatorBits();
    const unsigned min_flips =
        params.minIndicatorZeros == 0 ? 1 : params.minIndicatorZeros;
    const double p_up = params.errors.upFlipProb(params.zoneCells);
    const double p_down = params.errors.downFlipProb(params.zoneCells);
    return binomialTail(n, min_flips, p_up, p_down);
}

double
pExploitableExactZeros(const SystemParams &params, unsigned zeros)
{
    const unsigned n = params.indicatorBits();
    if (zeros > n)
        fatal("pExploitableExactZeros: zeros > indicator bits");
    const double p_up = params.errors.upFlipProb(params.zoneCells);
    const double p_down = params.errors.downFlipProb(params.zoneCells);
    // binomialTerm folds in the C(n, i) content choices the
    // FixedZeros samplers average over symmetrically; divide it back
    // out to get the per-content probability, all in log space.
    return binomialTerm(n, zeros, p_up, p_down) / choose(n, zeros);
}

double
pExploitableUniform(const SystemParams &params)
{
    const unsigned n = params.indicatorBits();
    const double p_up = params.errors.upFlipProb(params.zoneCells);
    const double p_down = params.errors.downFlipProb(params.zoneCells);
    // Average of pUp^z (1-pDown)^(n-z) over the 2^n - 1 indicator
    // values below all-ones; the z = 0 term is the excluded zone row.
    const double contents =
        static_cast<double>((1ULL << n) - 1);
    return binomialTail(n, 1, p_up, p_down) / contents;
}

double
expectedExploitablePtes(const SystemParams &params)
{
    return pExploitable(params) *
           static_cast<double>(params.pteCount());
}

double
vulnerableSystemFraction(const SystemParams &params)
{
    // With E << 1, P(at least one exploitable PTE) ~= E.
    return atLeastOne(pExploitable(params),
                      static_cast<double>(params.pteCount()));
}

AttackTime
expectedAttackTime(const SystemParams &params, const AttackCosts &costs)
{
    AttackTime result;
    result.perPageSeconds =
        costs.fillSeconds +
        static_cast<double>(params.ptpRows()) *
            (costs.hammerSeconds +
             static_cast<double>(params.ptesPerRow()) *
                 costs.checkSeconds);

    constexpr double seconds_per_day = 86400.0;
    const double worst_seconds =
        static_cast<double>(params.pagesBelowLwm()) *
        result.perPageSeconds;
    result.worstDays = worst_seconds / seconds_per_day;

    if (params.minIndicatorZeros >= 2) {
        // Conditioned on the rare vulnerable system: assume exactly
        // one exploitable PTE, found halfway on average.
        result.avgDays = result.worstDays / 2.0;
    } else {
        const double expected = expectedExploitablePtes(params);
        result.avgDays =
            result.worstDays / (std::ceil(expected) + 1.0);
    }
    return result;
}

} // namespace ctamem::model
