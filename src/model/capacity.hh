/**
 * @file
 * The Section 6.2 effective-memory-capacity model: anti-cell rows
 * skipped while carving ZONE_PTP from the top of memory are lost
 * capacity.  Worst case for the alternating-512 layout: one full
 * 64 MiB anti stripe per 64 MiB of ZONE_PTP (0.78% of an 8 GiB
 * machine).
 */

#ifndef CTAMEM_MODEL_CAPACITY_HH
#define CTAMEM_MODEL_CAPACITY_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/cell_types.hh"

namespace ctamem::model {

/** Outcome of the capacity analysis for one layout. */
struct CapacityLoss
{
    std::uint64_t ptpBytes;        //!< true-cell bytes collected
    std::uint64_t skippedAntiBytes;//!< anti-cell bytes wasted
    Addr lowWaterMark;

    double
    lossFraction(std::uint64_t mem_bytes) const
    {
        return static_cast<double>(skippedAntiBytes) /
               static_cast<double>(mem_bytes);
    }
};

/**
 * Walk rows downward from the top of a @p mem_bytes module laid out
 * by @p map, collecting @p ptp_bytes of true cells — the exact
 * algorithm the CTA zone builder runs, in pure form.
 */
CapacityLoss analyzeCapacityLoss(const dram::CellTypeMap &map,
                                 std::uint64_t mem_bytes,
                                 std::uint64_t ptp_bytes,
                                 std::uint64_t row_bytes = 128 * KiB);

/**
 * Worst-case loss for an alternating layout: the top of memory is an
 * entire anti stripe (period * row_bytes skipped per stripe needed).
 */
double worstCaseLossFraction(std::uint64_t period,
                             std::uint64_t row_bytes,
                             std::uint64_t mem_bytes,
                             std::uint64_t ptp_bytes);

} // namespace ctamem::model

#endif // CTAMEM_MODEL_CAPACITY_HH
