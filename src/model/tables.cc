#include "model/tables.hh"

#include <iomanip>

namespace ctamem::model {

std::vector<TableRow>
sweepTable(const dram::ErrorStats &errors,
           std::uint64_t granule_bytes)
{
    std::vector<TableRow> rows;
    for (const std::uint64_t mem :
         {8 * GiB, 16 * GiB, 32 * GiB}) {
        for (const bool restricted : {false, true}) {
            for (const std::uint64_t ptp : {32 * MiB, 64 * MiB}) {
                SystemParams params;
                params.memBytes = mem;
                params.ptpBytes = ptp;
                params.minIndicatorZeros = restricted ? 2 : 0;
                params.errors = errors;
                params.granuleBytes = granule_bytes;
                rows.push_back(TableRow{
                    mem, ptp, restricted,
                    expectedExploitablePtes(params),
                    expectedAttackTime(params).avgDays});
            }
        }
    }
    return rows;
}

std::vector<TableRow>
makeTable2(std::uint64_t granule_bytes)
{
    return sweepTable(dram::ErrorStats{}, granule_bytes);
}

std::vector<TableRow>
makeTable3(std::uint64_t granule_bytes)
{
    return sweepTable(dram::ErrorStats::pessimistic(),
                      granule_bytes);
}

std::vector<PaperReference>
paperTable2()
{
    // Order: per memory size, {unrestricted, restricted} x
    // {32 MiB, 64 MiB}.
    return {
        {6.7, 57.6},        {11.73, 70.3},
        {4.69e-6, 230.7},   {7.04e-6, 457.3},
        {7.54, 102.7},      {13.41, 122.4},
        {6.03e-6, 462.3},   {9.38e-6, 918.3},
        {8.32, 185.1},      {15.08, 216.5},
        {7.54e-6, 925.5},   {1.20e-5, 1840.3},
    };
}

std::vector<PaperReference>
paperTable3()
{
    return {
        {83.59, 5.42},      {146.36, 6.18},
        {7.3e-4, 230.7},    {1.09e-3, 457.3},
        {93.99, 9.73},      {167.18, 10.86},
        {9.40e-4, 462.3},   {1.46e-3, 918.3},
        {104.38, 17.46},    {187.99, 19.47},
        {1.17e-3, 925.5},   {1.88e-3, 1840.3},
    };
}

std::vector<McSpec>
mcSweepSpecs(const std::vector<TableRow> &rows, double pf,
             Sampler sampler, std::uint64_t trials)
{
    std::vector<McSpec> specs;
    specs.reserve(rows.size());
    for (const TableRow &row : rows) {
        McSpec spec;
        spec.params.memBytes = row.memBytes;
        spec.params.ptpBytes = row.ptpBytes;
        spec.params.errors.pf = pf;
        spec.params.errors.p01True = 0.3;
        spec.params.errors.p10True = 0.7;
        spec.sampler = sampler;
        spec.zeros = row.restricted ? 2 : 1;
        spec.trials = trials;
        specs.push_back(spec);
    }
    return specs;
}

void
printTable(std::ostream &os, const std::string &title,
           const std::vector<TableRow> &rows,
           const std::vector<PaperReference> &reference)
{
    os << title << '\n';
    os << std::left << std::setw(8) << "Memory" << std::setw(8)
       << "PTP" << std::setw(12) << "Restricted" << std::setw(14)
       << "E[PTEs]" << std::setw(14) << "paper" << std::setw(14)
       << "days" << std::setw(14) << "paper" << '\n';
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const TableRow &row = rows[i];
        os << std::setw(8)
           << (std::to_string(row.memBytes / GiB) + "GB")
           << std::setw(8)
           << (std::to_string(row.ptpBytes / MiB) + "MB")
           << std::setw(12) << (row.restricted ? ">=2 zeros" : "no")
           << std::setprecision(4) << std::setw(14)
           << row.expectedPtes;
        if (i < reference.size()) {
            os << std::setw(14) << reference[i].expectedPtes;
        } else {
            os << std::setw(14) << "-";
        }
        os << std::setprecision(4) << std::setw(14) << row.attackDays;
        if (i < reference.size()) {
            os << std::setw(14) << reference[i].attackDays;
        } else {
            os << std::setw(14) << "-";
        }
        os << '\n';
    }
}

} // namespace ctamem::model
