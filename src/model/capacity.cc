#include "model/capacity.hh"

#include "common/log.hh"

namespace ctamem::model {

CapacityLoss
analyzeCapacityLoss(const dram::CellTypeMap &map,
                    std::uint64_t mem_bytes, std::uint64_t ptp_bytes,
                    std::uint64_t row_bytes)
{
    if (ptp_bytes % row_bytes != 0)
        fatal("analyzeCapacityLoss: ptp size not row-aligned");

    CapacityLoss loss{0, 0, 0};
    const std::uint64_t total_rows = mem_bytes / row_bytes;
    std::uint64_t row = total_rows;
    while (loss.ptpBytes < ptp_bytes) {
        if (row == 0) {
            fatal("analyzeCapacityLoss: module cannot supply ",
                  ptp_bytes, " true-cell bytes");
        }
        --row;
        if (map.rowType(row) == dram::CellType::True)
            loss.ptpBytes += row_bytes;
        else
            loss.skippedAntiBytes += row_bytes;
    }
    loss.lowWaterMark = row * row_bytes;
    return loss;
}

double
worstCaseLossFraction(std::uint64_t period, std::uint64_t row_bytes,
                      std::uint64_t mem_bytes, std::uint64_t ptp_bytes)
{
    const std::uint64_t stripe_bytes = period * row_bytes;
    // Each (started) stripe of ZONE_PTP may sit under one full anti
    // stripe in the worst case.
    const std::uint64_t stripes_needed =
        (ptp_bytes + stripe_bytes - 1) / stripe_bytes;
    return static_cast<double>(stripes_needed * stripe_bytes) /
           static_cast<double>(mem_bytes);
}

} // namespace ctamem::model
