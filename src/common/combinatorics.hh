/**
 * @file
 * Numerically careful combinatorics used by the closed-form security
 * model (Section 5 of the paper): binomial coefficients and binomial
 * probability terms evaluated in log space so that quantities like
 * (Pf * P01)^i with Pf*P01 ~ 2e-7 survive without underflow for the
 * ranges the model sweeps.
 */

#ifndef CTAMEM_COMMON_COMBINATORICS_HH
#define CTAMEM_COMMON_COMBINATORICS_HH

#include <cstdint>

namespace ctamem {

/** log(n!) via lgamma. */
double logFactorial(unsigned n);

/** log(C(n, k)). @pre k <= n. */
double logChoose(unsigned n, unsigned k);

/** C(n, k) as a double (exact for the small n used here). */
double choose(unsigned n, unsigned k);

/**
 * One binomial-style term of the paper's exploitability sum:
 * C(n, i) * pUp^i * (1 - pDown)^(n - i), evaluated in log space.
 *
 * @param n     bits in the PTP indicator
 * @param i     number of 0->1 flips required
 * @param pUp   probability a bit flips 0->1 (Pf * P01)
 * @param pDown probability a bit flips 1->0 (Pf * P10)
 */
double binomialTerm(unsigned n, unsigned i, double pUp, double pDown);

/**
 * Tail sum of binomialTerm for i = minFlips .. n.  This is exactly the
 * paper's P_exploitable with minFlips = 1 (no restriction) or
 * minFlips = 2 (at least two 0s enforced in the PTP indicator).
 */
double binomialTail(unsigned n, unsigned minFlips, double pUp,
                    double pDown);

/**
 * Probability that at least one of @p trials independent events of
 * probability @p p occurs, computed stably as -expm1(trials*log1p(-p)).
 */
double atLeastOne(double p, double trials);

} // namespace ctamem

#endif // CTAMEM_COMMON_COMBINATORICS_HH
