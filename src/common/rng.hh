/**
 * @file
 * Deterministic random-number utilities.
 *
 * Two distinct needs in ctamem:
 *  - a sequential PRNG (Rng) for sampling attack outcomes, workload
 *    generation, Monte-Carlo estimation; and
 *  - a *stateless stable hash* (stableHash / cellHash01) that maps a
 *    (seed, key...) tuple to a reproducible pseudo-random value.  The
 *    DRAM fault model uses it so that a given cell's RowHammer
 *    vulnerability is an immutable property of the simulated module —
 *    the precondition for Drammer-style memory templating.
 */

#ifndef CTAMEM_COMMON_RNG_HH
#define CTAMEM_COMMON_RNG_HH

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace ctamem {

/**
 * The repository's named default seeds.  Every component that used to
 * hardcode a magic number (MachineConfig's 1234, the Monte-Carlo 42,
 * the observer streams) pulls it from here, and derived per-component
 * streams go through deriveSeed() below instead of ad-hoc XOR.
 */
namespace seeds {

/** Default DRAM/machine seed (the benches' "seed 1234"). */
inline constexpr std::uint64_t kMachine = 1234;

/** Default seed of the model's Monte-Carlo estimators. */
inline constexpr std::uint64_t kMonteCarlo = 42;

/** Stream tag for the PARA observer's refresh lottery. */
inline constexpr std::uint64_t kParaStream = 0x9a4a;

/** Stream tag for the refresh-boost observer's pass gate. */
inline constexpr std::uint64_t kRefreshBoostStream = 0xb005;

/** Stream tag for the in-DRAM TRR sampler's reservoir. */
inline constexpr std::uint64_t kTrrSamplerStream = 0x7225;

/** Stream tag for the pattern fuzzer's evolutionary loop. */
inline constexpr std::uint64_t kFuzzStream = 0xf022;

} // namespace seeds

/** splitmix64 step: the core mixing function used everywhere below. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Key-mixing constant of stableHash().  Exposed so callers that fold
 * one stableHash level into a precomputed base (the fault model's
 * per-salt bases) stay bit-identical to the generic chain.
 */
inline constexpr std::uint64_t kStableHashMix = 0x517cc1b727220a95ULL;

/** Combine any number of 64-bit keys into one stable hash value. */
constexpr std::uint64_t
stableHash(std::uint64_t seed)
{
    return splitmix64(seed);
}

template <typename... Rest>
constexpr std::uint64_t
stableHash(std::uint64_t seed, std::uint64_t key, Rest... rest)
{
    return stableHash(splitmix64(seed ^ (key + kStableHashMix)),
                      rest...);
}

/**
 * FNV-1a over a byte range: the stable content hash used for
 * content-addressed cache keys and snapshot-blob checksums, where the
 * input is a serialized byte string rather than a u64 tuple.
 */
inline std::uint64_t
hashBytes(const void *data, std::size_t size,
          std::uint64_t hash = 0xcbf29ce484222325ULL)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/**
 * Derive an independent child seed from a base seed and a stream
 * index (a counter, an observer tag, a Monte-Carlo chunk number).
 * Counter-based: deriveSeed(s, i) for i = 0, 1, 2, ... yields
 * decorrelated streams without any sequential hand-off, which is what
 * makes chunked parallel sampling order-independent.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t stream)
{
    return stableHash(seed, stream);
}

/** Map a stable hash of the keys to a double uniform in [0, 1). */
template <typename... Keys>
constexpr double
hash01(std::uint64_t seed, Keys... keys)
{
    // 53 high bits -> exactly representable double in [0,1).
    return static_cast<double>(stableHash(seed, keys...) >> 11) *
           (1.0 / 9007199254740992.0);
}

/**
 * Sequential PRNG (xoshiro256** core seeded from splitmix64).
 * Not thread-safe; create one per worker.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x++);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection sampling removes modulo bias.
        const std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Independent Bernoulli(p) draws packed into one word: each bit
     * of the result inside @p lanes is set with probability p (bits
     * outside @p lanes are 0 and consume no randomness).
     *
     * Threshold composition over the binary expansion of p: every
     * lane conceptually compares a uniform binary fraction against p,
     * and one raw word supplies the next fraction bit of all lanes at
     * once, most significant first.  A lane is decided at the first
     * fraction bit that differs from the matching bit of p (random 0
     * under a p-bit 1 means fraction < p), so the expected cost is
     * ~log2(popcount(lanes)) + 2 words per mask — about 1/8 word per
     * Bernoulli draw for a full mask instead of the full word
     * chance() burns, and ~2 words when a caller narrows @p lanes to
     * a few survivors of a previous mask.  The loop also stops at the
     * threshold's lowest set bit: once every remaining threshold bit
     * is 0, an undecided lane (prefix equal to p's) can only end at
     * fraction >= p, i.e. 0 — so e.g. p = 1/2 costs exactly one word.
     * The number of words consumed depends only on p, @p lanes, and
     * the stream itself, so the draw sequence stays a pure function
     * of the seed (the batched samplers' determinism contract).
     *
     * Exact for p quantized to a 64-bit fraction: P(bit set) is
     * round-to-nearest of p * 2^64, an error of at most 2^-65 — far
     * below the sampling noise of any feasible trial count.
     */
    std::uint64_t
    bernoulliMask(double p, std::uint64_t lanes = ~0ULL)
    {
        if (p <= 0.0 || lanes == 0)
            return 0;
        if (p >= 1.0)
            return lanes;
        const std::uint64_t threshold = fractionBits(p);
        if (threshold == 0)
            return 0;
        const int lowest = std::countr_zero(threshold);
        std::uint64_t result = 0;
        std::uint64_t undecided = lanes;
        for (int k = 63; k >= lowest && undecided; --k) {
            const std::uint64_t u = next();
            if ((threshold >> k) & 1) {
                result |= undecided & ~u;
                undecided &= u;
            } else {
                undecided &= ~u;
            }
        }
        return result;
    }

    /**
     * Uniform integer in [0, bound) via multiply-shift (Lemire),
     * rejecting only inside the narrow boundary window — branch-free
     * on the overwhelmingly common path.  Consumes a different word
     * count than below() for the same stream, so it is reserved for
     * the *batched* samplers; below() keeps the exact draw sequence
     * the scalar samplers' golden outputs depend on.
     * @pre bound > 0.
     */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (-bound) % bound;
            while (low < threshold) {
                m = static_cast<unsigned __int128>(next()) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @name State capture (machine snapshot/restore)
     *
     * The four xoshiro256** words, exactly as they stand: setState
     * of a captured state resumes the stream at the very next draw,
     * which is what lets a machine snapshot freeze its observer
     * streams mid-flight.
     */
    /** @{ */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    void
    setState(const std::array<std::uint64_t, 4> &state)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = state[i];
    }
    /** @} */

  private:
    /** p in (0, 1) as a 64-bit binary fraction. */
    static std::uint64_t
    fractionBits(double p)
    {
        // Multiplying by 2^64 (a power of two) rescales p exactly —
        // same significand, shifted exponent — and stays inline,
        // unlike a libm ldexp call.
        const double scaled = p * 18446744073709551616.0;
        // p within 2^-64 of 1 scales to 2^64 itself: saturate.
        if (scaled >= 18446744073709551616.0)
            return ~0ULL;
        return static_cast<std::uint64_t>(scaled);
    }

    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace ctamem

#endif // CTAMEM_COMMON_RNG_HH
