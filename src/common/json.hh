/**
 * @file
 * A small dependency-free JSON value module: the data layer of the
 * declarative scenario stack.
 *
 * One `Json` value holds null / bool / number / string / array /
 * object.  Objects are *insertion-ordered*, numbers remember whether
 * they were written as unsigned, signed or floating point, and the
 * printer is deterministic (shortest-round-trip doubles, stable
 * member order) — so a config serialized twice is byte-identical,
 * which the golden-file tests and the manifest round-trip guarantees
 * rely on.
 *
 * Used by the scenario manifests (`sim/scenario.*`), the campaign
 * reports, and `BenchReport`.
 */

#ifndef CTAMEM_COMMON_JSON_HH
#define CTAMEM_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ctamem::json {

/** Error thrown by `parse`, `parseFile` and the checked accessors. */
class JsonError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One JSON value. */
class Json
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Storage kind of a Number (drives integer-exact printing). */
    enum class NumKind : std::uint8_t
    {
        Double,
        U64,
        I64,
    };

    struct Member; //!< one object member: {key, value}
    using Array = std::vector<Json>;
    /** Insertion-ordered member list — deterministic output. */
    using Object = std::vector<Member>;

    /** @name Construction (implicit from the scalar C++ types) */
    /** @{ */
    Json() = default; //!< null
    Json(std::nullptr_t) {}
    Json(bool value) : type_(Type::Bool), bool_(value) {}
    Json(double value) : type_(Type::Number), dbl_(value) {}
    Json(std::uint64_t value)
        : type_(Type::Number), num_(NumKind::U64), u64_(value)
    {}
    Json(std::int64_t value)
        : type_(Type::Number), num_(NumKind::I64), i64_(value)
    {}
    Json(int value) : Json(static_cast<std::int64_t>(value)) {}
    Json(unsigned value) : Json(static_cast<std::uint64_t>(value)) {}
    Json(std::string value)
        : type_(Type::String), str_(std::move(value))
    {}
    Json(std::string_view value) : Json(std::string(value)) {}
    Json(const char *value) : Json(std::string(value)) {}

    /** An empty array / object (distinct from null). */
    static Json array();
    static Json object();
    /** @} */

    /** @name Type inspection */
    /** @{ */
    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }
    /** True for null/bool/number/string (prints on one line). */
    bool isScalar() const { return !isArray() && !isObject(); }
    /** @} */

    /** @name Checked accessors — throw JsonError on type mismatch */
    /** @{ */
    NumKind numKind() const; //!< for numbers only
    bool asBool() const;
    double asDouble() const; //!< any number kind
    /** Number as uint64; throws when negative or fractional. */
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    const std::string &asString() const;
    /** @} */

    /** @name Arrays */
    /** @{ */
    /** Append one element (value must be an array); chains. */
    Json &push(Json value);
    const Array &items() const;
    /** @} */

    /** @name Objects */
    /** @{ */
    /**
     * Set @p key to @p value, overwriting in place or appending (the
     * value must be an object).  Returns *this for chaining.
     */
    Json &set(std::string key, Json value);
    bool contains(std::string_view key) const;
    /** Member lookup; nullptr when absent. */
    const Json *find(std::string_view key) const;
    /** Member lookup; throws JsonError naming the key when absent. */
    const Json &at(std::string_view key) const;
    const Object &members() const;
    /** @} */

    /** Elements of an array / members of an object; 0 for scalars. */
    std::size_t size() const;

    /**
     * Pretty-print with two-space indentation.  Composites whose
     * children are all scalars (and small) print on one line, so
     * e.g. a BenchReport entry stays `{"value": 1.5, "unit": "s"}`.
     * Output is deterministic: golden files can compare bytes.
     */
    std::string dump() const;
    void write(std::ostream &os) const;

    /**
     * Structural equality; numbers compare by value, so a round
     * trip through dump/parse compares equal.
     */
    bool operator==(const Json &other) const;

    /** Parse @p text; throws JsonError with line/column context. */
    static Json parse(std::string_view text);

    /** Read and parse @p path; errors are prefixed with the path. */
    static Json parseFile(const std::string &path);

  private:
    Type type_ = Type::Null;
    NumKind num_ = NumKind::Double;
    bool bool_ = false;
    double dbl_ = 0.0;
    std::uint64_t u64_ = 0;
    std::int64_t i64_ = 0;
    std::string str_;
    Array arr_;
    Object obj_;
};

struct Json::Member
{
    std::string key;
    Json value;
};

} // namespace ctamem::json

#endif // CTAMEM_COMMON_JSON_HH
