/**
 * @file
 * Lightweight statistics collection: named counters, scalar samples
 * with mean/min/max/stddev, and simple fixed-bucket histograms.  Every
 * subsystem exposes its observable behaviour through these so tests
 * and benches can assert on it.
 */

#ifndef CTAMEM_COMMON_STATS_HH
#define CTAMEM_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ctamem {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates scalar samples and reports summary statistics. */
class SampleStat
{
  public:
    void
    record(double x)
    {
        ++count_;
        sum_ += x;
        sumSq_ += x * x;
        if (count_ == 1 || x < min_)
            min_ = x;
        if (count_ == 1 || x > max_)
            max_ = x;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = min_ = max_ = 0.0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

    double
    stddev() const
    {
        if (count_ < 2)
            return 0.0;
        const double m = mean();
        const double var =
            (sumSq_ - count_ * m * m) / static_cast<double>(count_ - 1);
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Streaming mean/variance accumulator (Welford), mergeable with
 * Chan's parallel-combine rule.  Unlike SampleStat it never forms
 * sum-of-squares, so merging partial chunks is numerically stable;
 * the parallel Monte-Carlo runner folds per-chunk accumulators in
 * chunk-index order to get bit-identical results at any thread count.
 */
class MomentAccumulator
{
  public:
    void
    record(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
    }

    /** Fold another accumulator into this one (Chan et al.). */
    void
    merge(const MomentAccumulator &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        const double na = static_cast<double>(count_);
        const double nb = static_cast<double>(other.count_);
        const double delta = other.mean_ - mean_;
        count_ += other.count_;
        const double total = static_cast<double>(count_);
        mean_ += delta * (nb / total);
        m2_ += other.m2_ + delta * delta * (na * nb / total);
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return mean_; }

    /** Population variance (M2 / n). */
    double
    variance() const
    {
        return count_ ? m2_ / static_cast<double>(count_) : 0.0;
    }

    /** Standard error of the mean. */
    double
    stderrOfMean() const
    {
        return count_ ? std::sqrt(variance() /
                                  static_cast<double>(count_))
                      : 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Fixed-width-bucket histogram over [lo, hi). */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {}

    void
    record(double x)
    {
        ++total_;
        if (x < lo_) {
            ++underflow_;
        } else if (x >= hi_) {
            ++overflow_;
        } else {
            const auto idx = static_cast<std::size_t>(
                (x - lo_) / (hi_ - lo_) * counts_.size());
            ++counts_[idx];
        }
    }

    std::uint64_t total() const { return total_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/** A named bag of counters, for subsystems with many event types. */
class StatGroup
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }

    std::uint64_t
    value(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    void
    dump(std::ostream &os) const
    {
        for (const auto &[name, counter] : counters_)
            os << name << " = " << counter.value() << '\n';
    }

    void
    reset()
    {
        for (auto &[name, counter] : counters_)
            counter.reset();
    }

  private:
    std::map<std::string, Counter> counters_;
};

} // namespace ctamem

#endif // CTAMEM_COMMON_STATS_HH
