/**
 * @file
 * Lightweight statistics collection: named counters, scalar samples
 * with mean/min/max/stddev, and simple fixed-bucket histograms.  Every
 * subsystem exposes its observable behaviour through these so tests
 * and benches can assert on it.
 */

#ifndef CTAMEM_COMMON_STATS_HH
#define CTAMEM_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ctamem {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Streaming mean/variance accumulator (Welford), mergeable with
 * Chan's parallel-combine rule.  Unlike SampleStat it never forms
 * sum-of-squares, so merging partial chunks is numerically stable;
 * the parallel Monte-Carlo runner folds per-chunk accumulators in
 * chunk-index order to get bit-identical results at any thread count.
 */
class MomentAccumulator
{
  public:
    void
    record(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
    }

    /** Fold another accumulator into this one (Chan et al.). */
    void
    merge(const MomentAccumulator &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        const double na = static_cast<double>(count_);
        const double nb = static_cast<double>(other.count_);
        const double delta = other.mean_ - mean_;
        count_ += other.count_;
        const double total = static_cast<double>(count_);
        mean_ += delta * (nb / total);
        m2_ += other.m2_ + delta * delta * (na * nb / total);
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return mean_; }

    /** Population variance (M2 / n). */
    double
    variance() const
    {
        return count_ ? m2_ / static_cast<double>(count_) : 0.0;
    }

    /** Standard error of the mean. */
    double
    stderrOfMean() const
    {
        return count_ ? std::sqrt(variance() /
                                  static_cast<double>(count_))
                      : 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Accumulates scalar samples and reports summary statistics.  The
 * spread is tracked with a MomentAccumulator, so stddev() never forms
 * the cancellation-prone sum-of-squares difference.
 */
class SampleStat
{
  public:
    void
    record(double x)
    {
        moments_.record(x);
        sum_ += x;
        if (moments_.count() == 1 || x < min_)
            min_ = x;
        if (moments_.count() == 1 || x > max_)
            max_ = x;
    }

    void
    reset()
    {
        moments_ = MomentAccumulator{};
        sum_ = min_ = max_ = 0.0;
    }

    std::uint64_t count() const { return moments_.count(); }
    double sum() const { return sum_; }
    double mean() const { return count() ? sum_ / count() : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Sample standard deviation (n-1 divisor). */
    double
    stddev() const
    {
        const std::uint64_t n = count();
        if (n < 2)
            return 0.0;
        const double var = moments_.variance() *
                           (static_cast<double>(n) /
                            static_cast<double>(n - 1));
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

  private:
    MomentAccumulator moments_;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width-bucket histogram over [lo, hi). */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {}

    void
    record(double x)
    {
        ++total_;
        if (x < lo_) {
            ++underflow_;
        } else if (x >= hi_) {
            ++overflow_;
        } else {
            // Clamp: for x just below hi_ the scaling can round up
            // to counts_.size().
            const auto idx = std::min(
                static_cast<std::size_t>(
                    (x - lo_) / (hi_ - lo_) * counts_.size()),
                counts_.size() - 1);
            ++counts_[idx];
        }
    }

    std::uint64_t total() const { return total_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/** Handle to one interned counter of a StatGroup. */
using StatId = std::uint32_t;

/**
 * A named bag of counters, for subsystems with many event types.
 *
 * Counters are interned: hot paths register a name once (usually at
 * construction) and bump the returned StatId through at(), a plain
 * vector index — no string hashing or map walk per event.  The
 * string-keyed counter()/value()/dump() views stay available for
 * tests and reports.  References returned by counter()/at() are
 * invalidated by the next registration of a *new* name.
 */
class StatGroup
{
  public:
    /** Intern @p name, creating its counter on first use. */
    StatId
    registerCounter(const std::string &name)
    {
        auto it = index_.find(name);
        if (it != index_.end())
            return it->second;
        const StatId id = static_cast<StatId>(slots_.size());
        slots_.emplace_back();
        index_.emplace(name, id);
        return id;
    }

    /** The counter behind a registered handle (unchecked, hot). */
    Counter &at(StatId id) { return slots_[id]; }
    const Counter &at(StatId id) const { return slots_[id]; }

    std::size_t size() const { return slots_.size(); }

    Counter &
    counter(const std::string &name)
    {
        return slots_[registerCounter(name)];
    }

    std::uint64_t
    value(const std::string &name) const
    {
        auto it = index_.find(name);
        return it == index_.end() ? 0 : slots_[it->second].value();
    }

    void
    dump(std::ostream &os) const
    {
        for (const auto &[name, id] : index_)
            os << name << " = " << slots_[id].value() << '\n';
    }

    void
    reset()
    {
        for (Counter &counter : slots_)
            counter.reset();
    }

  private:
    /** name -> slot; ordered so dump() stays alphabetical. */
    std::map<std::string, StatId> index_;
    std::vector<Counter> slots_;
};

} // namespace ctamem

#endif // CTAMEM_COMMON_STATS_HH
