#include "common/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ctamem::json {

namespace {

[[noreturn]] void
typeError(const char *want, Json::Type got)
{
    static const char *const names[] = {"null",   "bool",  "number",
                                        "string", "array", "object"};
    throw JsonError(std::string("expected ") + want + ", got " +
                    names[static_cast<int>(got)]);
}

} // namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

Json::NumKind
Json::numKind() const
{
    if (type_ != Type::Number)
        typeError("number", type_);
    return num_;
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        typeError("bool", type_);
    return bool_;
}

double
Json::asDouble() const
{
    if (type_ != Type::Number)
        typeError("number", type_);
    switch (num_) {
      case NumKind::Double: return dbl_;
      case NumKind::U64: return static_cast<double>(u64_);
      case NumKind::I64: return static_cast<double>(i64_);
    }
    return 0.0;
}

std::uint64_t
Json::asU64() const
{
    if (type_ != Type::Number)
        typeError("number", type_);
    switch (num_) {
      case NumKind::U64:
        return u64_;
      case NumKind::I64:
        if (i64_ < 0)
            throw JsonError("expected unsigned integer, got " +
                            std::to_string(i64_));
        return static_cast<std::uint64_t>(i64_);
      case NumKind::Double:
        if (dbl_ < 0 || dbl_ != std::floor(dbl_) || dbl_ >= 1.8e19)
            throw JsonError("expected unsigned integer, got " +
                            std::to_string(dbl_));
        return static_cast<std::uint64_t>(dbl_);
    }
    return 0;
}

std::int64_t
Json::asI64() const
{
    if (type_ != Type::Number)
        typeError("number", type_);
    switch (num_) {
      case NumKind::I64:
        return i64_;
      case NumKind::U64:
        if (u64_ > static_cast<std::uint64_t>(INT64_MAX))
            throw JsonError("integer out of int64 range");
        return static_cast<std::int64_t>(u64_);
      case NumKind::Double:
        if (dbl_ != std::floor(dbl_) || std::abs(dbl_) >= 9.2e18)
            throw JsonError("expected integer, got " +
                            std::to_string(dbl_));
        return static_cast<std::int64_t>(dbl_);
    }
    return 0;
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        typeError("string", type_);
    return str_;
}

Json &
Json::push(Json value)
{
    if (type_ != Type::Array)
        typeError("array", type_);
    arr_.push_back(std::move(value));
    return *this;
}

const Json::Array &
Json::items() const
{
    if (type_ != Type::Array)
        typeError("array", type_);
    return arr_;
}

Json &
Json::set(std::string key, Json value)
{
    if (type_ != Type::Object)
        typeError("object", type_);
    for (Member &member : obj_) {
        if (member.key == key) {
            member.value = std::move(value);
            return *this;
        }
    }
    obj_.push_back(Member{std::move(key), std::move(value)});
    return *this;
}

bool
Json::contains(std::string_view key) const
{
    return find(key) != nullptr;
}

const Json *
Json::find(std::string_view key) const
{
    if (type_ != Type::Object)
        typeError("object", type_);
    for (const Member &member : obj_)
        if (member.key == key)
            return &member.value;
    return nullptr;
}

const Json &
Json::at(std::string_view key) const
{
    const Json *value = find(key);
    if (!value)
        throw JsonError("missing key \"" + std::string(key) + "\"");
    return *value;
}

const Json::Object &
Json::members() const
{
    if (type_ != Type::Object)
        typeError("object", type_);
    return obj_;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

bool
Json::operator==(const Json &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return bool_ == other.bool_;
      case Type::Number:
        if (num_ == NumKind::U64 && other.num_ == NumKind::U64)
            return u64_ == other.u64_;
        if (num_ == NumKind::I64 && other.num_ == NumKind::I64)
            return i64_ == other.i64_;
        return asDouble() == other.asDouble();
      case Type::String:
        return str_ == other.str_;
      case Type::Array:
        return arr_ == other.arr_;
      case Type::Object:
        if (obj_.size() != other.obj_.size())
            return false;
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (obj_[i].key != other.obj_[i].key ||
                !(obj_[i].value == other.obj_[i].value)) {
                return false;
            }
        }
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Writer

namespace {

void
writeEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
writeDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += '0'; // JSON has no inf/nan; degrade like BenchReport
        return;
    }
    // Integral doubles keep a ".0" marker so the reader sees the
    // floating type; everything else is shortest-round-trip.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        out += std::to_string(static_cast<long long>(v));
        out += ".0";
        return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

} // namespace

namespace detail {

/** True when @p j prints compactly on one line. */
bool
inlineable(const Json &j)
{
    if (j.isArray()) {
        if (j.size() > 8)
            return false;
        for (const Json &e : j.items())
            if (!e.isScalar())
                return false;
        return true;
    }
    if (j.isObject()) {
        if (j.size() > 4)
            return false;
        for (const Json::Member &m : j.members())
            if (!m.value.isScalar())
                return false;
        return true;
    }
    return true;
}

void
writeValue(std::string &out, const Json &j, int depth)
{
    const auto indent = [&out](int d) {
        out.append(static_cast<std::size_t>(d) * 2, ' ');
    };
    switch (j.type()) {
      case Json::Type::Null:
        out += "null";
        return;
      case Json::Type::Bool:
        out += j.asBool() ? "true" : "false";
        return;
      case Json::Type::Number:
        switch (j.numKind()) {
          case Json::NumKind::U64:
            out += std::to_string(j.asU64());
            return;
          case Json::NumKind::I64:
            out += std::to_string(j.asI64());
            return;
          case Json::NumKind::Double:
            writeDouble(out, j.asDouble());
            return;
        }
        return;
      case Json::Type::String:
        writeEscaped(out, j.asString());
        return;
      case Json::Type::Array: {
        if (j.size() == 0) {
            out += "[]";
            return;
        }
        if (inlineable(j)) {
            out += '[';
            bool first = true;
            for (const Json &e : j.items()) {
                if (!first)
                    out += ", ";
                first = false;
                writeValue(out, e, depth);
            }
            out += ']';
            return;
        }
        out += "[\n";
        bool first = true;
        for (const Json &e : j.items()) {
            if (!first)
                out += ",\n";
            first = false;
            indent(depth + 1);
            writeValue(out, e, depth + 1);
        }
        out += '\n';
        indent(depth);
        out += ']';
        return;
      }
      case Json::Type::Object: {
        if (j.size() == 0) {
            out += "{}";
            return;
        }
        if (inlineable(j)) {
            out += '{';
            bool first = true;
            for (const Json::Member &m : j.members()) {
                if (!first)
                    out += ", ";
                first = false;
                writeEscaped(out, m.key);
                out += ": ";
                writeValue(out, m.value, depth);
            }
            out += '}';
            return;
        }
        out += "{\n";
        bool first = true;
        for (const Json::Member &m : j.members()) {
            if (!first)
                out += ",\n";
            first = false;
            indent(depth + 1);
            writeEscaped(out, m.key);
            out += ": ";
            writeValue(out, m.value, depth + 1);
        }
        out += '\n';
        indent(depth);
        out += '}';
        return;
      }
    }
}

} // namespace detail

std::string
Json::dump() const
{
    std::string out;
    detail::writeValue(out, *this, 0);
    return out;
}

void
Json::write(std::ostream &os) const
{
    os << dump();
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json
    parseDocument()
    {
        Json value = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after the JSON value");
        return value;
    }

  private:
    static constexpr int maxDepth = 64;

    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw JsonError("line " + std::to_string(line_) + " col " +
                        std::to_string(col()) + ": " + message);
    }

    std::size_t
    col() const
    {
        return pos_ - lineStart_ + 1;
    }

    bool
    eof() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        return eof() ? '\0' : text_[pos_];
    }

    char
    next()
    {
        if (eof())
            fail("unexpected end of input");
        const char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            lineStart_ = pos_;
        }
        return c;
    }

    void
    skipWs()
    {
        while (!eof()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\r' && c != '\n')
                return;
            next();
        }
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        next();
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        for (std::size_t i = 0; i < word.size(); ++i)
            next();
        return true;
    }

    Json
    parseValue(int depth)
    {
        if (depth > maxDepth)
            fail("nesting too deep");
        skipWs();
        if (eof())
            fail("unexpected end of input");
        const char c = peek();
        switch (c) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return Json(parseString());
          case 't':
            if (consumeWord("true"))
                return Json(true);
            fail("invalid literal");
          case 'f':
            if (consumeWord("false"))
                return Json(false);
            fail("invalid literal");
          case 'n':
            if (consumeWord("null"))
                return Json(nullptr);
            fail("invalid literal");
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    Json
    parseObject(int depth)
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            next();
            return obj;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected a string object key");
            std::string key = parseString();
            if (obj.contains(key))
                fail("duplicate object key \"" + key + "\"");
            skipWs();
            expect(':');
            obj.set(std::move(key), parseValue(depth + 1));
            skipWs();
            const char c = next();
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json
    parseArray(int depth)
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            next();
            return arr;
        }
        while (true) {
            arr.push(parseValue(depth + 1));
            skipWs();
            const char c = next();
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::uint32_t
    parseHex4()
    {
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = next();
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return value;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            const char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = next();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                std::uint32_t cp = parseHex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // Surrogate pair.
                    if (next() != '\\' || next() != 'u')
                        fail("unpaired surrogate");
                    const std::uint32_t low = parseHex4();
                    if (low < 0xdc00 || low > 0xdfff)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (low - 0xdc00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape sequence");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        bool isDouble = false;
        if (peek() == '-')
            next();
        if (peek() == '0') {
            next();
        } else if (peek() >= '1' && peek() <= '9') {
            while (peek() >= '0' && peek() <= '9')
                next();
        } else {
            fail("invalid number");
        }
        if (peek() == '.') {
            isDouble = true;
            next();
            if (!(peek() >= '0' && peek() <= '9'))
                fail("invalid number: digits must follow '.'");
            while (peek() >= '0' && peek() <= '9')
                next();
        }
        if (peek() == 'e' || peek() == 'E') {
            isDouble = true;
            next();
            if (peek() == '+' || peek() == '-')
                next();
            if (!(peek() >= '0' && peek() <= '9'))
                fail("invalid number: empty exponent");
            while (peek() >= '0' && peek() <= '9')
                next();
        }
        const std::string_view token =
            text_.substr(start, pos_ - start);
        const char *first = token.data();
        const char *last = token.data() + token.size();
        if (!isDouble) {
            if (token[0] == '-') {
                std::int64_t value = 0;
                const auto res = std::from_chars(first, last, value);
                if (res.ec == std::errc() && res.ptr == last)
                    return Json(value);
            } else {
                std::uint64_t value = 0;
                const auto res = std::from_chars(first, last, value);
                if (res.ec == std::errc() && res.ptr == last)
                    return Json(value);
            }
            // Out of 64-bit range: fall back to double.
        }
        double value = 0.0;
        const auto res = std::from_chars(first, last, value);
        if (res.ec != std::errc() || res.ptr != last)
            fail("invalid number");
        return Json(value);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t lineStart_ = 0;
};

} // namespace

Json
Json::parse(std::string_view text)
{
    return Parser(text).parseDocument();
}

Json
Json::parseFile(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        throw JsonError("cannot open " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
        return parse(buffer.str());
    } catch (const JsonError &err) {
        throw JsonError(path + ": " + err.what());
    }
}

} // namespace ctamem::json
