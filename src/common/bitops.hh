/**
 * @file
 * Bit-manipulation helpers: field extraction/insertion, popcount,
 * hamming distance, power-of-two arithmetic.
 */

#ifndef CTAMEM_COMMON_BITOPS_HH
#define CTAMEM_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace ctamem {

/** Extract bits [lo, hi] (inclusive) of @p value, shifted to bit 0. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const std::uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (value >> lo) & mask;
}

/** Return @p value with bits [lo, hi] replaced by @p field. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned hi, unsigned lo,
           std::uint64_t field)
{
    const unsigned width = hi - lo + 1;
    const std::uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Test a single bit. */
constexpr bool
bit(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1ULL;
}

/** Number of set bits. */
constexpr unsigned
popcount(std::uint64_t value)
{
    return static_cast<unsigned>(std::popcount(value));
}

/** Hamming distance between two words. */
constexpr unsigned
hammingDistance(std::uint64_t a, std::uint64_t b)
{
    return popcount(a ^ b);
}

/** True iff @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)). @pre value > 0. */
constexpr unsigned
log2Floor(std::uint64_t value)
{
    return 63 - static_cast<unsigned>(std::countl_zero(value));
}

/** ceil(log2(value)). @pre value > 0. */
constexpr unsigned
log2Ceil(std::uint64_t value)
{
    return value <= 1 ? 0 : log2Floor(value - 1) + 1;
}

} // namespace ctamem

#endif // CTAMEM_COMMON_BITOPS_HH
