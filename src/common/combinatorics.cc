#include "common/combinatorics.hh"

#include <cmath>

#include "common/log.hh"

namespace ctamem {

double
logFactorial(unsigned n)
{
    return std::lgamma(static_cast<double>(n) + 1.0);
}

double
logChoose(unsigned n, unsigned k)
{
    if (k > n)
        ctamem_panic("logChoose: k=", k, " > n=", n);
    return logFactorial(n) - logFactorial(k) - logFactorial(n - k);
}

double
choose(unsigned n, unsigned k)
{
    if (k > n)
        return 0.0;
    return std::exp(logChoose(n, k));
}

double
binomialTerm(unsigned n, unsigned i, double pUp, double pDown)
{
    if (i > n)
        return 0.0;
    if (pUp <= 0.0)
        return i == 0 ? std::pow(1.0 - pDown, n) : 0.0;
    const double logTerm = logChoose(n, i) +
        static_cast<double>(i) * std::log(pUp) +
        static_cast<double>(n - i) * std::log1p(-pDown);
    return std::exp(logTerm);
}

double
binomialTail(unsigned n, unsigned minFlips, double pUp, double pDown)
{
    double sum = 0.0;
    for (unsigned i = minFlips; i <= n; ++i)
        sum += binomialTerm(n, i, pUp, pDown);
    return sum;
}

double
atLeastOne(double p, double trials)
{
    if (p <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return 1.0;
    return -std::expm1(trials * std::log1p(-p));
}

} // namespace ctamem
