/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * panic()  - an internal invariant was violated (a ctamem bug); aborts.
 * fatal()  - the user asked for something impossible (bad config);
 *            throws FatalError so library embedders can recover.
 * warn()   - something is off but simulation can continue.
 * inform() - plain status output, gated by the global verbosity level.
 */

#ifndef CTAMEM_COMMON_LOG_HH
#define CTAMEM_COMMON_LOG_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ctamem {

/** Severity of a log message. */
enum class LogLevel { Debug, Info, Warn, Error, Silent };

/** Error thrown by fatal(): an unusable user-supplied configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Set the minimum severity that is printed (default: Warn). */
void setLogLevel(LogLevel level);

/** Current minimum printed severity. */
LogLevel logLevel();

namespace detail {

void emit(LogLevel level, const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Print an informational message (visible at LogLevel::Info). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Info, detail::format(args...));
}

/** Print a debug message (visible at LogLevel::Debug). */
template <typename... Args>
void
debug(Args &&...args)
{
    detail::emit(LogLevel::Debug, detail::format(args...));
}

/** Print a warning: questionable but survivable behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, detail::format(args...));
}

/** Abort on a violated internal invariant (a ctamem bug). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Throw FatalError: the simulation cannot continue (user error). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::format(args...));
}

} // namespace ctamem

#define ctamem_panic(...)                                               \
    ::ctamem::panicImpl(__FILE__, __LINE__,                             \
                        ::ctamem::detail::format(__VA_ARGS__))

#endif // CTAMEM_COMMON_LOG_HH
