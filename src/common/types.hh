/**
 * @file
 * Fundamental integer types and memory/time units shared by every
 * ctamem subsystem.
 */

#ifndef CTAMEM_COMMON_TYPES_HH
#define CTAMEM_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace ctamem {

/** A physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** A physical page frame number (Addr >> pageShift). */
using Pfn = std::uint64_t;

/** A virtual address in a simulated process. */
using VAddr = std::uint64_t;

/** Simulated time in nanoseconds. */
using SimTime = std::uint64_t;

/** Byte-size units. */
constexpr std::uint64_t KiB = 1024ULL;
constexpr std::uint64_t MiB = 1024ULL * KiB;
constexpr std::uint64_t GiB = 1024ULL * MiB;

/** Time units expressed in SimTime (nanoseconds). */
constexpr SimTime nanoseconds = 1ULL;
constexpr SimTime microseconds = 1000ULL * nanoseconds;
constexpr SimTime milliseconds = 1000ULL * microseconds;
constexpr SimTime seconds = 1000ULL * milliseconds;

/** The simulated architecture uses 4 KiB base pages throughout. */
constexpr unsigned pageShift = 12;
constexpr std::uint64_t pageSize = 1ULL << pageShift;
constexpr std::uint64_t pageMask = pageSize - 1;

/** Convert a byte address to its page frame number. */
constexpr Pfn
addrToPfn(Addr addr)
{
    return addr >> pageShift;
}

/** Convert a page frame number to the base byte address of the frame. */
constexpr Addr
pfnToAddr(Pfn pfn)
{
    return pfn << pageShift;
}

/** Round @p addr down to its containing page boundary. */
constexpr Addr
pageAlignDown(Addr addr)
{
    return addr & ~pageMask;
}

/** Round @p addr up to the next page boundary. */
constexpr Addr
pageAlignUp(Addr addr)
{
    return (addr + pageMask) & ~pageMask;
}

/** An invalid PFN sentinel (no real frame sits at the top of 2^64). */
constexpr Pfn invalidPfn = ~0ULL;

} // namespace ctamem

#endif // CTAMEM_COMMON_TYPES_HH
