/**
 * @file
 * Machine-readable benchmark reports.
 *
 * The perf benches append named results here and dump one JSON file
 * (`BENCH_<name>.json`) per run, so successive PRs can diff the perf
 * trajectory instead of eyeballing stdout.  Schema: an object mapping
 * benchmark name -> {value, unit, iterations}.
 */

#ifndef CTAMEM_COMMON_BENCH_REPORT_HH
#define CTAMEM_COMMON_BENCH_REPORT_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "common/json.hh"

namespace ctamem {

/** One benchmark result. */
struct BenchEntry
{
    double value = 0.0;
    std::string unit;
    std::uint64_t iterations = 0;
};

/** A named collection of benchmark results, serializable to JSON. */
class BenchReport
{
  public:
    /**
     * Record one result.  Re-adding a name overwrites the previous
     * entry, so a bench can refine a result in place.
     */
    void add(const std::string &name, double value,
             const std::string &unit, std::uint64_t iterations);

    const std::map<std::string, BenchEntry> &entries() const
    {
        return entries_;
    }

    /** The whole report as one JSON object. */
    json::Json toJson() const;

    /** Emit the whole report as a JSON object. */
    void writeJson(std::ostream &os) const;

    /**
     * Write the JSON report to @p path.
     * @return false when the file cannot be opened.
     */
    bool writeFile(const std::string &path) const;

  private:
    std::map<std::string, BenchEntry> entries_;
};

} // namespace ctamem

#endif // CTAMEM_COMMON_BENCH_REPORT_HH
