#include "common/bench_report.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace ctamem {

namespace {

/** JSON-escape the characters that can appear in bench names. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** Format a double as a valid JSON number (no inf/nan, no 1e+x). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os << std::setprecision(12) << std::fixed << v;
    std::string s = os.str();
    // Trim trailing zeros but keep one digit after the point.
    const auto dot = s.find('.');
    auto last = s.find_last_not_of('0');
    if (last == dot)
        ++last;
    s.erase(last + 1);
    return s;
}

} // namespace

void
BenchReport::add(const std::string &name, double value,
                 const std::string &unit, std::uint64_t iterations)
{
    entries_[name] = BenchEntry{value, unit, iterations};
}

void
BenchReport::writeJson(std::ostream &os) const
{
    os << "{\n";
    bool first = true;
    for (const auto &[name, entry] : entries_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  \"" << escape(name) << "\": {\"value\": "
           << jsonNumber(entry.value) << ", \"unit\": \""
           << escape(entry.unit) << "\", \"iterations\": "
           << entry.iterations << "}";
    }
    os << "\n}\n";
}

bool
BenchReport::writeFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    writeJson(file);
    return static_cast<bool>(file);
}

} // namespace ctamem
