#include "common/bench_report.hh"

#include <fstream>

#include "common/json.hh"

namespace ctamem {

void
BenchReport::add(const std::string &name, double value,
                 const std::string &unit, std::uint64_t iterations)
{
    entries_[name] = BenchEntry{value, unit, iterations};
}

json::Json
BenchReport::toJson() const
{
    json::Json report = json::Json::object();
    for (const auto &[name, entry] : entries_) {
        json::Json row = json::Json::object();
        row.set("value", entry.value)
            .set("unit", entry.unit)
            .set("iterations", entry.iterations);
        report.set(name, std::move(row));
    }
    return report;
}

void
BenchReport::writeJson(std::ostream &os) const
{
    toJson().write(os);
    os << '\n';
}

bool
BenchReport::writeFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    writeJson(file);
    return static_cast<bool>(file);
}

} // namespace ctamem
