#include "common/log.hh"

#include <cstdlib>
#include <iostream>

namespace ctamem {

namespace {

LogLevel globalLevel = LogLevel::Warn;

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug: ";
      case LogLevel::Info: return "info: ";
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Error: return "error: ";
      case LogLevel::Silent: return "";
    }
    return "";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
emit(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(globalLevel))
        return;
    std::ostream &os =
        level >= LogLevel::Warn ? std::cerr : std::cout;
    os << prefix(level) << msg << '\n';
}

} // namespace detail

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ':' << line << ")\n";
    std::abort();
}

} // namespace ctamem
