#include "mm/phys_mem.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/log.hh"

namespace ctamem::mm {

std::vector<ZoneSpec>
standardZoneSpecs(std::uint64_t capacity, std::uint64_t top_limit)
{
    if (top_limit > capacity)
        fatal("zone top limit ", top_limit, " exceeds capacity ",
              capacity);
    if (top_limit < 16 * MiB)
        fatal("machine too small: need at least 16 MiB below the "
              "low water mark");

    std::vector<ZoneSpec> specs;
    const std::uint64_t dma_end = 16 * MiB;
    const std::uint64_t dma32_end = std::min<std::uint64_t>(
        4 * GiB, top_limit);

    specs.push_back(ZoneSpec{
        ZoneId::Dma,
        {FrameSpan{0, dma_end / pageSize}}});
    if (dma32_end > dma_end) {
        specs.push_back(ZoneSpec{
            ZoneId::Dma32,
            {FrameSpan{dma_end / pageSize,
                       (dma32_end - dma_end) / pageSize}}});
    }
    if (top_limit > dma32_end) {
        specs.push_back(ZoneSpec{
            ZoneId::Normal,
            {FrameSpan{dma32_end / pageSize,
                       (top_limit - dma32_end) / pageSize}}});
    }
    return specs;
}

namespace {

/**
 * Zonelist fallback order per preferred zone (Section 6.1: the x86-64
 * zonelist is NORMAL, DMA32, DMA; ZONE_PTP never serves or borrows
 * from other zones).
 */
std::vector<ZoneId>
fallbackChain(ZoneId preferred)
{
    switch (preferred) {
      case ZoneId::Dma:
        return {ZoneId::Dma};
      case ZoneId::Dma32:
        return {ZoneId::Dma32, ZoneId::Dma};
      case ZoneId::Normal:
        return {ZoneId::Normal, ZoneId::Dma32, ZoneId::Dma};
      case ZoneId::KernelRsv:
        return {ZoneId::KernelRsv, ZoneId::Normal, ZoneId::Dma32,
                ZoneId::Dma};
      case ZoneId::Ptp:
        return {ZoneId::Ptp};
      case ZoneId::NumZones:
        break;
    }
    ctamem_panic("bad preferred zone");
}

} // namespace

PhysicalMemory::PhysicalMemory(dram::DramModule &module,
                               std::vector<ZoneSpec> specs)
    : module_(module)
{
    allocsId_ = stats_.registerCounter("allocs");
    fallbacksId_ = stats_.registerCounter("fallbacks");
    failuresId_ = stats_.registerCounter("failures");
    freesId_ = stats_.registerCounter("frees");
    const std::uint64_t total_frames =
        module.geometry().capacity() / pageSize;
    // Same rationale as the DRAM store: avoid page-database rehashes
    // during allocation storms without paying for giant machines.
    pages_.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(total_frames, 32768)));
    for (const ZoneSpec &spec : specs) {
        for (const FrameSpan &span : spec.spans) {
            if (span.endPfn() > total_frames) {
                fatal("zone ", zoneName(spec.id),
                      " extends past physical memory");
            }
        }
        zones_.emplace_back(spec);
    }
    // Reject overlapping zones: every frame has at most one owner.
    for (std::size_t i = 0; i < zones_.size(); ++i) {
        for (std::size_t j = i + 1; j < zones_.size(); ++j) {
            for (const FrameSpan &a : zones_[i].spans()) {
                for (const FrameSpan &b : zones_[j].spans()) {
                    if (a.basePfn < b.endPfn() &&
                        b.basePfn < a.endPfn()) {
                        fatal("zones ", zones_[i].name(), " and ",
                              zones_[j].name(), " overlap");
                    }
                }
            }
        }
    }
}

std::optional<Pfn>
PhysicalMemory::allocate(const GfpFlags &flags, unsigned order,
                         std::int32_t owner)
{
    stats_.at(allocsId_).increment();
    const std::vector<ZoneId> chain = fallbackChain(flags.zone);
    bool first = true;
    for (ZoneId id : chain) {
        Zone *candidate = zone(id);
        if (candidate) {
            if (auto pfn = candidate->allocate(order)) {
                if (!first)
                    stats_.at(fallbacksId_).increment();
                pages_[*pfn] = PageInfo{flags.kind, owner, order};
                // Fresh pages are handed out zeroed.
                static const std::array<std::uint8_t, pageSize> zeros{};
                for (std::uint64_t i = 0; i < (1ULL << order); ++i) {
                    module_.write(pfnToAddr(*pfn + i), zeros.data(),
                                  pageSize);
                }
                return pfn;
            }
        }
        if (flags.noFallback)
            break;
        first = false;
    }
    stats_.at(failuresId_).increment();
    return std::nullopt;
}

void
PhysicalMemory::free(Pfn pfn)
{
    auto it = pages_.find(pfn);
    if (it == pages_.end())
        ctamem_panic("free of unallocated pfn ", pfn);
    Zone *owner_zone = zoneOf(pfn);
    if (!owner_zone)
        ctamem_panic("free of pfn ", pfn, " outside every zone");
    owner_zone->free(pfn, it->second.order);
    pages_.erase(it);
    stats_.at(freesId_).increment();
}

Zone *
PhysicalMemory::zoneOf(Pfn pfn)
{
    for (Zone &candidate : zones_)
        if (candidate.contains(pfn))
            return &candidate;
    return nullptr;
}

const Zone *
PhysicalMemory::zoneOf(Pfn pfn) const
{
    return const_cast<PhysicalMemory *>(this)->zoneOf(pfn);
}

Zone *
PhysicalMemory::zone(ZoneId id)
{
    for (Zone &candidate : zones_)
        if (candidate.id() == id)
            return &candidate;
    return nullptr;
}

const Zone *
PhysicalMemory::zone(ZoneId id) const
{
    return const_cast<PhysicalMemory *>(this)->zone(id);
}

PageInfo
PhysicalMemory::pageInfo(Pfn pfn) const
{
    auto it = pages_.find(pfn);
    return it == pages_.end() ? PageInfo{} : it->second;
}

PageKind
PhysicalMemory::kindOf(Pfn pfn) const
{
    // Find the allocation block head covering this frame.
    for (unsigned order = 0; order <= BuddyAllocator::maxOrder;
         ++order) {
        const Pfn head = pfn & ~((1ULL << order) - 1);
        auto it = pages_.find(head);
        if (it != pages_.end() && it->second.order == order &&
            head + (1ULL << order) > pfn) {
            return it->second.kind;
        }
    }
    return PageKind::Free;
}

std::uint64_t
PhysicalMemory::totalFrames() const
{
    std::uint64_t total = 0;
    for (const Zone &candidate : zones_)
        total += candidate.totalFrames();
    return total;
}

std::uint64_t
PhysicalMemory::freeFrames() const
{
    std::uint64_t total = 0;
    for (const Zone &candidate : zones_)
        total += candidate.freeFrames();
    return total;
}

} // namespace ctamem::mm
