#include "mm/buddy.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace ctamem::mm {

BuddyAllocator::BuddyAllocator(Pfn base_pfn, std::uint64_t frames)
    : basePfn_(base_pfn), frames_(frames)
{
    allocCallsId_ = stats_.registerCounter("allocCalls");
    freeCallsId_ = stats_.registerCounter("freeCalls");
    splitsId_ = stats_.registerCounter("splits");
    mergesId_ = stats_.registerCounter("merges");
    failuresId_ = stats_.registerCounter("failures");
    // Tile the range greedily with the largest naturally aligned
    // blocks that fit, exactly as memblock hands pages to the buddy
    // system at boot.
    Pfn pfn = base_pfn;
    std::uint64_t remaining = frames;
    while (remaining > 0) {
        unsigned order = maxOrder;
        while (order > 0 &&
               (((pfn - 0) & ((1ULL << order) - 1)) != 0 ||
                (1ULL << order) > remaining)) {
            --order;
        }
        insertFree(pfn, order);
        freeFrames_ += 1ULL << order;
        pfn += 1ULL << order;
        remaining -= 1ULL << order;
    }
}

void
BuddyAllocator::insertFree(Pfn pfn, unsigned order)
{
    const bool inserted = freeLists_[order].insert(pfn).second;
    if (!inserted)
        ctamem_panic("double free of pfn ", pfn, " order ", order);
}

std::optional<Pfn>
BuddyAllocator::allocate(unsigned order)
{
    stats_.at(allocCallsId_).increment();
    if (order > maxOrder) {
        stats_.at(failuresId_).increment();
        return std::nullopt;
    }

    // Find the smallest order with a free block.
    unsigned found = order;
    while (found <= maxOrder && freeLists_[found].empty())
        ++found;
    if (found > maxOrder) {
        stats_.at(failuresId_).increment();
        return std::nullopt;
    }

    // Take the lowest-addressed block and split down to the target.
    Pfn pfn = *freeLists_[found].begin();
    freeLists_[found].erase(freeLists_[found].begin());
    while (found > order) {
        --found;
        // Keep the lower half, free the upper half.
        insertFree(pfn + (1ULL << found), found);
        stats_.at(splitsId_).increment();
    }
    freeFrames_ -= 1ULL << order;
    return pfn;
}

void
BuddyAllocator::free(Pfn pfn, unsigned order)
{
    stats_.at(freeCallsId_).increment();
    if (!contains(pfn) || order > maxOrder)
        ctamem_panic("free of pfn ", pfn, " outside allocator range");
    if (isFree(pfn, 0))
        ctamem_panic("double free of pfn ", pfn, " order ", order);

    freeFrames_ += 1ULL << order;

    // Coalesce with the buddy while possible.
    while (order < maxOrder) {
        const Pfn buddy = pfn ^ (1ULL << order);
        auto it = freeLists_[order].find(buddy);
        if (it == freeLists_[order].end() || !contains(buddy))
            break;
        freeLists_[order].erase(it);
        pfn = std::min(pfn, buddy);
        ++order;
        stats_.at(mergesId_).increment();
    }
    insertFree(pfn, order);
}

bool
BuddyAllocator::isFree(Pfn pfn, unsigned order) const
{
    // A block is free if some free block of order >= `order` covers it.
    for (unsigned o = order; o <= maxOrder; ++o) {
        const Pfn block_base = pfn & ~((1ULL << o) - 1);
        if (freeLists_[o].contains(block_base)) {
            // The covering block must contain the whole query block.
            return block_base + (1ULL << o) >= pfn + (1ULL << order);
        }
    }
    return false;
}

} // namespace ctamem::mm
