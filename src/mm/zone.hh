/**
 * @file
 * A physical memory zone: a named set of page-frame spans, each
 * managed by its own buddy allocator.
 *
 * Most zones are a single contiguous span.  ZONE_PTP is the
 * exception: the CTA zone builder decomposes it into multiple
 * sub-zones, one per contiguous *true-cell* region, skipping
 * anti-cell stripes (Figure 8 of the paper).  Allocation searches
 * sub-zones sequentially.
 */

#ifndef CTAMEM_MM_ZONE_HH
#define CTAMEM_MM_ZONE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mm/buddy.hh"
#include "mm/gfp.hh"

namespace ctamem::mm {

/** A contiguous run of page frames. */
struct FrameSpan
{
    Pfn basePfn;
    std::uint64_t frames;

    Pfn endPfn() const { return basePfn + frames; }
    std::uint64_t bytes() const { return frames * pageSize; }

    bool
    contains(Pfn pfn) const
    {
        return pfn >= basePfn && pfn < endPfn();
    }

    bool operator==(const FrameSpan &other) const = default;
};

/** Static description of a zone, produced by a zone builder. */
struct ZoneSpec
{
    ZoneId id;
    std::vector<FrameSpan> spans;
};

/** A runtime zone: spec + buddy allocators + accounting. */
class Zone
{
  public:
    explicit Zone(const ZoneSpec &spec);

    ZoneId id() const { return id_; }
    const char *name() const { return zoneName(id_); }

    /** Allocate 2^order frames from the first sub-zone that can. */
    std::optional<Pfn> allocate(unsigned order);

    /** Free a block previously allocated from this zone. */
    void free(Pfn pfn, unsigned order);

    /** True iff @p pfn belongs to this zone. */
    bool contains(Pfn pfn) const;

    std::uint64_t freeFrames() const;
    std::uint64_t totalFrames() const;

    const std::vector<FrameSpan> &spans() const { return spans_; }
    std::vector<BuddyAllocator> &subZones() { return buddies_; }

    /** Counters: allocs, frees, failures. */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    ZoneId id_;
    std::vector<FrameSpan> spans_;
    std::vector<BuddyAllocator> buddies_;
    StatGroup stats_;
    StatId allocsId_;
    StatId freesId_;
    StatId failuresId_;
};

} // namespace ctamem::mm

#endif // CTAMEM_MM_ZONE_HH
