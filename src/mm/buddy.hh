/**
 * @file
 * A classic binary buddy allocator over one contiguous page-frame
 * range, in the Linux style: per-order free lists, split on
 * allocation, coalesce with the buddy on free.
 *
 * Determinism note: free blocks are kept in ordered sets and the
 * allocator always hands out the lowest-addressed block of the
 * smallest sufficient order.  Deterministic placement is what lets
 * the Drammer-style attack (and its defeat by CTA) be reproduced
 * exactly.
 */

#ifndef CTAMEM_MM_BUDDY_HH
#define CTAMEM_MM_BUDDY_HH

#include <array>
#include <cstdint>
#include <optional>
#include <set>

#include "common/stats.hh"
#include "common/types.hh"

namespace ctamem::mm {

/** Binary buddy allocator over frames [basePfn, basePfn + frames). */
class BuddyAllocator
{
  public:
    /** Largest block: 2^maxOrder pages (Linux default: order 10). */
    static constexpr unsigned maxOrder = 10;

    /**
     * @param base_pfn first frame managed
     * @param frames   number of frames managed (any value; the range
     *                 is tiled greedily with naturally aligned blocks)
     */
    BuddyAllocator(Pfn base_pfn, std::uint64_t frames);

    /** Allocate a naturally aligned block of 2^order frames. */
    std::optional<Pfn> allocate(unsigned order);

    /** Return a block obtained from allocate(). */
    void free(Pfn pfn, unsigned order);

    /** Frames currently free. */
    std::uint64_t freeFrames() const { return freeFrames_; }

    /** Frames managed in total. */
    std::uint64_t totalFrames() const { return frames_; }

    Pfn basePfn() const { return basePfn_; }

    /** True iff @p pfn lies in the managed range. */
    bool
    contains(Pfn pfn) const
    {
        return pfn >= basePfn_ && pfn < basePfn_ + frames_;
    }

    /**
     * True iff a block of 2^order frames starting at @p pfn is
     * currently free (either directly on a free list or contained in
     * a larger free block).
     */
    bool isFree(Pfn pfn, unsigned order) const;

    /** Counters: allocCalls, freeCalls, splits, merges, failures. */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    void insertFree(Pfn pfn, unsigned order);

    Pfn basePfn_;
    std::uint64_t frames_;
    std::uint64_t freeFrames_ = 0;
    std::array<std::set<Pfn>, maxOrder + 1> freeLists_;
    StatGroup stats_;
    StatId allocCallsId_;
    StatId freeCallsId_;
    StatId splitsId_;
    StatId mergesId_;
    StatId failuresId_;
};

} // namespace ctamem::mm

#endif // CTAMEM_MM_BUDDY_HH
