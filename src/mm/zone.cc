#include "mm/zone.hh"

#include "common/log.hh"

namespace ctamem::mm {

const char *
zoneName(ZoneId id)
{
    switch (id) {
      case ZoneId::Dma: return "ZONE_DMA";
      case ZoneId::Dma32: return "ZONE_DMA32";
      case ZoneId::Normal: return "ZONE_NORMAL";
      case ZoneId::KernelRsv: return "ZONE_KERNEL_RSV";
      case ZoneId::Ptp: return "ZONE_PTP";
      case ZoneId::NumZones: break;
    }
    return "ZONE_INVALID";
}

Zone::Zone(const ZoneSpec &spec) : id_(spec.id), spans_(spec.spans)
{
    allocsId_ = stats_.registerCounter("allocs");
    freesId_ = stats_.registerCounter("frees");
    failuresId_ = stats_.registerCounter("failures");
    for (const FrameSpan &span : spans_) {
        if (span.frames == 0)
            fatal("zone ", name(), " has an empty span");
        buddies_.emplace_back(span.basePfn, span.frames);
    }
}

std::optional<Pfn>
Zone::allocate(unsigned order)
{
    stats_.at(allocsId_).increment();
    for (BuddyAllocator &buddy : buddies_) {
        if (auto pfn = buddy.allocate(order))
            return pfn;
    }
    stats_.at(failuresId_).increment();
    return std::nullopt;
}

void
Zone::free(Pfn pfn, unsigned order)
{
    stats_.at(freesId_).increment();
    for (BuddyAllocator &buddy : buddies_) {
        if (buddy.contains(pfn)) {
            buddy.free(pfn, order);
            return;
        }
    }
    ctamem_panic("free of pfn ", pfn, " not owned by zone ", name());
}

bool
Zone::contains(Pfn pfn) const
{
    for (const FrameSpan &span : spans_)
        if (span.contains(pfn))
            return true;
    return false;
}

std::uint64_t
Zone::freeFrames() const
{
    std::uint64_t total = 0;
    for (const BuddyAllocator &buddy : buddies_)
        total += buddy.freeFrames();
    return total;
}

std::uint64_t
Zone::totalFrames() const
{
    std::uint64_t total = 0;
    for (const BuddyAllocator &buddy : buddies_)
        total += buddy.totalFrames();
    return total;
}

} // namespace ctamem::mm
