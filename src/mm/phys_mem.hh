/**
 * @file
 * The machine's physical memory: zones + zonelist fallback + the page
 * database, layered over one simulated DRAM module.
 */

#ifndef CTAMEM_MM_PHYS_MEM_HH
#define CTAMEM_MM_PHYS_MEM_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/module.hh"
#include "mm/gfp.hh"
#include "mm/zone.hh"

namespace ctamem::mm {

/** Per-frame bookkeeping (sparse: only allocated frames have one). */
struct PageInfo
{
    PageKind kind = PageKind::Free;
    std::int32_t owner = -1; //!< owning pid, or -1 for the kernel
    unsigned order = 0;      //!< allocation order of the block head
};

/**
 * Standard x86-64 zone layout over [0, top_limit):
 * ZONE_DMA [0, 16 MiB), ZONE_DMA32 [16 MiB, 4 GiB),
 * ZONE_NORMAL [4 GiB, top_limit).  A CTA zone builder passes a
 * top_limit below capacity (the low water mark) and appends its own
 * zones above it.
 */
std::vector<ZoneSpec> standardZoneSpecs(std::uint64_t capacity,
                                        std::uint64_t top_limit);

/** Physical memory manager. */
class PhysicalMemory
{
  public:
    /**
     * @param module DRAM backing the frames
     * @param specs  zone descriptions (must not overlap)
     */
    PhysicalMemory(dram::DramModule &module,
                   std::vector<ZoneSpec> specs);

    dram::DramModule &dram() { return module_; }
    const dram::DramModule &dram() const { return module_; }

    /**
     * Allocate 2^order frames per @p flags: try the preferred zone,
     * then (unless noFallback) walk the fallback zonelist.  Newly
     * allocated frames are zero-filled, as Linux does for user and
     * page-table pages.
     */
    std::optional<Pfn> allocate(const GfpFlags &flags,
                                unsigned order = 0,
                                std::int32_t owner = -1);

    /** Free a block returned by allocate(). */
    void free(Pfn pfn);

    /** Zone containing @p pfn, or nullptr. */
    Zone *zoneOf(Pfn pfn);
    const Zone *zoneOf(Pfn pfn) const;

    /** Zone by id, or nullptr when the machine has none. */
    Zone *zone(ZoneId id);
    const Zone *zone(ZoneId id) const;

    /** Page info of the block head @p pfn (Free default if unknown). */
    PageInfo pageInfo(Pfn pfn) const;

    /** Kind recorded for the *block containing* @p pfn. */
    PageKind kindOf(Pfn pfn) const;

    /** Total frames across all zones. */
    std::uint64_t totalFrames() const;

    /** Free frames across all zones. */
    std::uint64_t freeFrames() const;

    /** Counters: allocs, fallbacks, failures, frees. */
    StatGroup &stats() { return stats_; }

  private:
    dram::DramModule &module_;
    std::vector<Zone> zones_;
    /** Head-frame -> info for live allocations. */
    std::unordered_map<Pfn, PageInfo> pages_;
    StatGroup stats_;
    StatId allocsId_;
    StatId fallbacksId_;
    StatId failuresId_;
    StatId freesId_;
};

} // namespace ctamem::mm

#endif // CTAMEM_MM_PHYS_MEM_HH
