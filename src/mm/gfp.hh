/**
 * @file
 * GFP (Get Free Pages) request flags, mirroring the Linux allocator
 * interface the paper modifies: a request names a preferred zone and
 * whether the allocator may fall back down the zonelist.
 *
 * The paper's 18-line kernel change adds __GFP_PTP: "the request must
 * be fulfilled by allocating free memory in ZONE_PTP only" — i.e.
 * preferred zone Ptp with fallback disabled.
 */

#ifndef CTAMEM_MM_GFP_HH
#define CTAMEM_MM_GFP_HH

#include <cstdint>

namespace ctamem::mm {

/** Physical memory zones (x86-64 set plus the paper's additions). */
enum class ZoneId : std::uint8_t
{
    Dma,       //!< first 16 MiB
    Dma32,     //!< 16 MiB .. 4 GiB
    Normal,    //!< 4 GiB .. top (minus carved special zones)
    KernelRsv, //!< CTA restriction: <2 zeros in the PTP indicator
    Ptp,       //!< ZONE_PTP: true-cell rows above the low water mark
    NumZones,
};

constexpr std::uint8_t numZoneIds =
    static_cast<std::uint8_t>(ZoneId::NumZones);

/** Human-readable zone name. */
const char *zoneName(ZoneId id);

/** Kind of page being requested, recorded in the page database. */
enum class PageKind : std::uint8_t
{
    Free,
    UserData,
    KernelData,
    PageTable,
    FileCache,
};

/** An allocation request. */
struct GfpFlags
{
    ZoneId zone = ZoneId::Normal;
    bool noFallback = false;
    PageKind kind = PageKind::KernelData;
};

/** Regular kernel allocation: ZONE_NORMAL with fallback. */
constexpr GfpFlags GFP_KERNEL{ZoneId::Normal, false,
                              PageKind::KernelData};

/** User-page allocation: ZONE_NORMAL with fallback. */
constexpr GfpFlags GFP_USER{ZoneId::Normal, false, PageKind::UserData};

/** File/page-cache allocation. */
constexpr GfpFlags GFP_FILE{ZoneId::Normal, false, PageKind::FileCache};

/** DMA allocation: ZONE_DMA only. */
constexpr GfpFlags GFP_DMA{ZoneId::Dma, true, PageKind::KernelData};

/**
 * The paper's new flag: page-table pages from ZONE_PTP only, never
 * falling back to lower zones (Rule 1 of Section 6.1).
 */
constexpr GfpFlags GFP_PTP{ZoneId::Ptp, true, PageKind::PageTable};

} // namespace ctamem::mm

#endif // CTAMEM_MM_GFP_HH
