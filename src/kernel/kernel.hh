/**
 * @file
 * The simulated OS kernel: boots the zone layout, owns processes,
 * serves page faults, and — crucially — implements `pte_alloc_one`,
 * the single function the paper's 18-line patch redirects to
 * ZONE_PTP (Section 6.1, Rules 1 and 2).
 */

#ifndef CTAMEM_KERNEL_KERNEL_HH
#define CTAMEM_KERNEL_KERNEL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/stats.hh"
#include "common/types.hh"
#include "cta/config.hh"
#include "cta/plan.hh"
#include "cta/theorem.hh"
#include "dram/module.hh"
#include "kernel/process.hh"
#include "mm/phys_mem.hh"
#include "paging/mmu.hh"

namespace ctamem::kernel {

/** Allocation-policy families the kernel can boot with. */
enum class AllocPolicy : std::uint8_t
{
    Standard, //!< vanilla zoned buddy allocator (the vulnerable base)
    Cta,      //!< the paper's defense: true-cell ZONE_PTP + LWM
    Catt,     //!< CATT baseline: physical kernel/user partition
    Zebram,   //!< ZebRAM-lite baseline: zebra-striped data rows
};

/** Kernel boot configuration. */
struct KernelConfig
{
    dram::DramConfig dram;
    AllocPolicy policy = AllocPolicy::Standard;
    cta::CtaConfig cta;      //!< used when policy == Cta
    std::size_t tlbEntries = 64;

    /**
     * Paging architecture the kernel boots with.  Points at one of
     * the static `paging` descriptors (never owned); the kernel
     * propagates it into the CTA config, the MMU and every address
     * space it creates.
     */
    const paging::Arch *arch = &paging::kX86_64;
};

/**
 * The boot-derived state of a freshly booted kernel, in plain data
 * form: what a warm start needs to skip the zone scans.  Only valid
 * for a kernel with no processes and no page-table frames — i.e.
 * immediately after boot — which is the only point machine snapshots
 * are taken.  Restore replays the (deterministic) kernel-secret
 * allocation and verifies it lands on the recorded frame, so a
 * restored kernel's allocator state is bit-identical to a cold boot's.
 */
struct BootImage
{
    /** ZONE_PTP layout; present iff the policy is Cta. */
    std::optional<cta::PtpLayout> ptpLayout;
    /** Zone specs the allocator booted with (excludes ZONE_PTP). */
    std::vector<mm::ZoneSpec> physSpecs;
    Pfn secretPfn = invalidPfn;
    Addr secretAddr = 0;
    SimTime simTime = 0;
};

/** Outcome of a user-mode memory access. */
struct UserAccess
{
    bool ok = false;
    paging::Fault fault = paging::Fault::None;
    std::uint64_t value = 0; //!< loaded value (reads)
    Addr phys = 0;           //!< translated physical address

    explicit operator bool() const { return ok; }
};

/** The simulated kernel. */
class Kernel
{
  public:
    /** Magic value planted in kernel memory at boot; reading it from
     *  user mode is the attack-success proof. */
    static constexpr std::uint64_t kernelSecret = 0xdeadbeeffeedfaceULL;

    explicit Kernel(const KernelConfig &config);

    /**
     * Warm start: boot from a previously captured bootImage(),
     * skipping the CTA row walk / PS-bit screening.  Fatal when the
     * image is inconsistent with @p config (wrong policy, or the
     * replayed secret allocation diverges).
     */
    Kernel(const KernelConfig &config, const BootImage &image);

    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** @name Subsystem access */
    /** @{ */
    dram::DramModule &dram() { return *dram_; }
    mm::PhysicalMemory &phys() { return *phys_; }
    paging::Mmu &mmu() { return *mmu_; }

    /** The paging architecture this kernel booted with. */
    const paging::Arch &arch() const { return *config_.arch; }

    /**
     * Bytes of one translation granule — the OS page size (4 KiB on
     * x86-64; the configured granule on AArch64).  Data frames and
     * table pages are runs of granuleFrames() 4 KiB frames.
     */
    std::uint64_t pageBytes() const { return arch().granuleBytes(); }
    cta::PtpZone *ptpZone() { return ptp_.get(); }
    const cta::PtpZone *ptpZone() const { return ptp_.get(); }
    const KernelConfig &config() const { return config_; }
    AllocPolicy policy() const { return config_.policy; }
    /** @} */

    /** @name Processes */
    /** @{ */
    int createProcess(const std::string &name, bool trusted = false);
    void exitProcess(int pid);
    Process &process(int pid);
    const Process &process(int pid) const;
    std::size_t processCount() const { return processes_.size(); }
    /** @} */

    /** @name Files and mappings */
    /** @{ */
    int createFile(std::uint64_t length);

    /**
     * Create a kernel-owned device buffer (e.g. a video buffer):
     * frames are allocated eagerly from the kernel's own zone yet the
     * buffer may be mapped user-RW.  These are the "double-owned"
     * pages that let an attacker hammer inside the kernel's physical
     * partition and defeat CATT (Section 2.5).
     */
    int createDeviceBuffer(std::uint64_t length);

    /**
     * Map @p length bytes of file @p fd at @p fixed (or at a bump-
     * allocated address when @p fixed == 0).  Lazy: frames appear on
     * first touch.  Returns the chosen base address.
     */
    VAddr mmapFile(int pid, int fd, std::uint64_t length,
                   const paging::PageFlags &prot, VAddr fixed = 0,
                   std::uint64_t file_offset = 0);

    /** Anonymous mapping. */
    VAddr mmapAnon(int pid, std::uint64_t length,
                   const paging::PageFlags &prot, VAddr fixed = 0);

    /**
     * Eagerly map one naturally aligned anonymous *large page*
     * (level 2 = 2 MiB): the PD entry carries the PS bit — the
     * Section 7 multi-page-size surface.  Returns the base address.
     */
    VAddr mmapAnonLarge(int pid, const paging::PageFlags &prot,
                        unsigned level = 2, VAddr fixed = 0);

    /** Unmap a whole previously created VMA starting at @p start. */
    bool munmap(int pid, VAddr start);
    /** @} */

    /** @name User-mode access (through the MMU) */
    /** @{ */
    UserAccess readUser(int pid, VAddr vaddr);
    UserAccess writeUser(int pid, VAddr vaddr, std::uint64_t value);

    /** Fault in the page at @p vaddr without a data access. */
    bool touchUser(int pid, VAddr vaddr);

    /** Flush the simulated TLB (the attacker's reload step). */
    void flushTlb();
    /** @} */

    /** @name Page-table page management (the 18-line site) */
    /** @{ */
    /**
     * Allocate one zeroed page-table page for a level-@p level table
     * of process @p pid.
     *
     * This is the simulated pte_alloc_one: under the CTA policy the
     * request goes to ZONE_PTP with __GFP_PTP semantics (no
     * fallback); under every other policy it goes to the policy's
     * kernel zone.
     */
    std::optional<Pfn> pteAllocOne(unsigned level, int pid);

    /** Release a page-table page. */
    void pteFree(Pfn pfn);

    /** True iff @p pfn lies inside a live page-table granule. */
    bool isPageTableFrame(Pfn pfn) const
    {
        return ptFrameLevels_.contains(tableBase(pfn));
    }

    /** Level of the table in @p pfn (0 when not a table). */
    unsigned tableLevel(Pfn pfn) const;

    /** All live page-table frames with their levels. */
    const std::unordered_map<Pfn, unsigned> &pageTableFrames() const
    {
        return ptFrameLevels_;
    }

    /** Bytes currently consumed by page tables, machine-wide. */
    std::uint64_t pageTableBytes() const
    {
        return ptFrameLevels_.size() * pageBytes();
    }
    /** @} */

    /** @name Security auditing */
    /** @{ */
    /**
     * Audit the running system against the premises of the
     * No Self-Reference Theorem.  Only meaningful when booted with
     * the CTA policy, but callable anywhere (it reports which
     * premises the current layout violates).
     */
    cta::TheoremAudit auditTheorem() const;

    /** Physical address of the planted kernel secret. */
    Addr kernelSecretAddr() const { return secretAddr_; }
    /** @} */

    /**
     * Capture the boot-derived state for snapshots.  Fatal unless the
     * kernel is still in its post-boot state (no processes, no
     * page-table frames) — snapshot blobs do not carry process or
     * paging state.
     */
    BootImage bootImage() const;

    /** @name Simulated time */
    /** @{ */
    SimTime now() const { return now_; }
    void advance(SimTime dt) { now_ += dt; }
    /** @} */

    /** Counters: pageFaults, pteAllocs, pteAllocFailures, ... */
    StatGroup &stats() { return stats_; }

  private:
    /** Shared tail of both constructors: allocator, MMU, secret. */
    void finishBoot(std::vector<mm::ZoneSpec> specs,
                    const BootImage *image);

    /** Base frame of the table granule containing @p pfn (identity
     *  on x86-64, whose granule is one frame). */
    Pfn tableBase(Pfn pfn) const
    {
        return pfn & ~(config_.arch->granuleFrames() - 1);
    }

    paging::PageFlags vmaLeafFlags(const Vma &vma) const;
    bool handlePageFault(Process &proc, VAddr vaddr);

    /**
     * ZONE_PTP pressure relief (Section 6.3): evict the oldest leaf
     * page table of some process; its region demand-faults back.
     * @return true when a frame was released.
     */
    bool reclaimLeafTable();
    VAddr placeVma(Process &proc, std::uint64_t length, VAddr fixed);
    mm::GfpFlags dataFlags(const Process &proc,
                           mm::PageKind kind) const;

    KernelConfig config_;
    std::unique_ptr<dram::DramModule> dram_;
    std::unique_ptr<cta::PtpZone> ptp_; //!< null unless policy == Cta
    std::unique_ptr<mm::PhysicalMemory> phys_;
    std::unique_ptr<paging::Mmu> mmu_;

    std::map<int, Process> processes_;
    std::map<int, SimFile> files_;
    int nextPid_ = 1;
    int nextFd_ = 3;

    /** Live page-table frames -> paging level they serve. */
    std::unordered_map<Pfn, unsigned> ptFrameLevels_;

    /** GFP flags for non-CTA page-table allocation. */
    mm::GfpFlags pteFlags_;

    /** Zone specs the allocator booted with, for bootImage(). */
    std::vector<mm::ZoneSpec> bootSpecs_;

    Addr secretAddr_ = 0;
    Pfn secretPfn_ = invalidPfn;

    SimTime now_ = 0;
    StatGroup stats_;

    /** Interned handles for the per-fault / per-syscall counters. */
    StatId processesCreatedId_;
    StatId deviceBuffersId_;
    StatId mmapsId_;
    StatId largeMmapsId_;
    StatId munmapsId_;
    StatId pageFaultsId_;
    StatId segfaultsId_;
    StatId oomFaultsId_;
    StatId pteAllocFaultsId_;
    StatId pteAllocsId_;
    StatId pteAllocFailuresId_;
    StatId ptReclaimsId_;
};

} // namespace ctamem::kernel

#endif // CTAMEM_KERNEL_KERNEL_HH
