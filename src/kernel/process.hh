/**
 * @file
 * Simulated processes, their virtual memory areas, and simulated
 * files (the shared mappings RowHammer PTE-spray attacks rely on).
 */

#ifndef CTAMEM_KERNEL_PROCESS_HH
#define CTAMEM_KERNEL_PROCESS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "paging/address_space.hh"
#include "paging/pte.hh"

namespace ctamem::kernel {

/** One virtual memory area. */
struct Vma
{
    VAddr start = 0;
    std::uint64_t length = 0;
    paging::PageFlags prot;
    int fd = -1;                 //!< backing file, or -1 for anonymous
    std::uint64_t fileOffset = 0;
    unsigned largeLevel = 0;     //!< 0 = 4 KiB pages, 2 = 2 MiB page

    VAddr end() const { return start + length; }
    bool isAnon() const { return fd < 0; }

    bool
    contains(VAddr vaddr) const
    {
        return vaddr >= start && vaddr < end();
    }
};

/** A simulated file whose pages are shared across mappings. */
struct SimFile
{
    int fd = -1;
    std::uint64_t length = 0;
    /** page index within the file -> physical frame (lazily filled) */
    std::map<std::uint64_t, Pfn> frames;
};

/** One simulated process. */
struct Process
{
    int pid = -1;
    std::string name;
    /** Trusted processes may draw from ZONE_KERNEL_RSV (Section 5). */
    bool trusted = false;

    Pfn rootPfn = invalidPfn; //!< PML4 frame
    std::unique_ptr<paging::AddressSpace> space;
    std::vector<Vma> vmas;

    /** Bump pointer for non-fixed mmap placement. */
    VAddr mmapCursor = 0x0000'0010'0000'0000ULL;

    /** Frames this process faulted in: vaddr page -> frame. */
    std::map<VAddr, Pfn> anonFrames;

    Counter pageFaults;

    /** VMA containing @p vaddr, or nullptr. */
    Vma *
    findVma(VAddr vaddr)
    {
        for (Vma &vma : vmas)
            if (vma.contains(vaddr))
                return &vma;
        return nullptr;
    }
};

} // namespace ctamem::kernel

#endif // CTAMEM_KERNEL_PROCESS_HH
