/**
 * @file
 * Simulated processes, their virtual memory areas, and simulated
 * files (the shared mappings RowHammer PTE-spray attacks rely on).
 */

#ifndef CTAMEM_KERNEL_PROCESS_HH
#define CTAMEM_KERNEL_PROCESS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "paging/address_space.hh"
#include "paging/pte.hh"

namespace ctamem::kernel {

/** One virtual memory area. */
struct Vma
{
    VAddr start = 0;
    std::uint64_t length = 0;
    paging::PageFlags prot;
    int fd = -1;                 //!< backing file, or -1 for anonymous
    std::uint64_t fileOffset = 0;
    unsigned largeLevel = 0;     //!< 0 = base pages, else block level

    VAddr end() const { return start + length; }
    bool isAnon() const { return fd < 0; }

    bool
    contains(VAddr vaddr) const
    {
        return vaddr >= start && vaddr < end();
    }
};

/** A simulated file whose pages are shared across mappings. */
struct SimFile
{
    int fd = -1;
    std::uint64_t length = 0;
    /** page index within the file -> physical frame (lazily filled) */
    std::map<std::uint64_t, Pfn> frames;
};

/** One simulated process. */
struct Process
{
    int pid = -1;
    std::string name;
    /** Trusted processes may draw from ZONE_KERNEL_RSV (Section 5). */
    bool trusted = false;

    Pfn rootPfn = invalidPfn; //!< root table frame (x86 PML4 / ARM TTBR)
    std::unique_ptr<paging::AddressSpace> space;
    std::vector<Vma> vmas;

    /** Bump pointer for non-fixed mmap placement. */
    VAddr mmapCursor = 0x0000'0010'0000'0000ULL;

    /** Frames this process faulted in: vaddr page -> frame. */
    std::map<VAddr, Pfn> anonFrames;

    /**
     * start -> end of every VMA, kept in lockstep with @ref vmas.
     * mmap's overlap test is a two-sided bound lookup here instead of
     * a scan — page-granular arenas (Drammer maps thousands of
     * single-page VMAs at fixed addresses) made the scan O(n^2).
     */
    std::map<VAddr, VAddr> vmaIntervals;

    /** Last findVma() hit position — purely an accelerator. */
    std::size_t lastVmaHint = 0;

    Counter pageFaults;

    /** Append a VMA, keeping the interval index in sync. */
    void
    addVma(const Vma &vma)
    {
        vmaIntervals.emplace(vma.start, vma.end());
        vmas.push_back(vma);
    }

    /**
     * True iff any VMA overlaps [@p start, @p start + @p length).
     * VMAs are disjoint (mmap refuses overlapping fixed placements
     * and the bump cursor never revisits address space), so only the
     * interval with the greatest start below the range's end can
     * reach back into it.
     */
    bool
    overlapsVma(VAddr start, std::uint64_t length) const
    {
        auto it = vmaIntervals.lower_bound(start + length);
        if (it == vmaIntervals.begin())
            return false;
        --it;
        return it->second > start;
    }

    /** VMA containing @p vaddr, or nullptr. */
    Vma *
    findVma(VAddr vaddr)
    {
        // Containment test via the interval index: misses (probe
        // scans over unmapped holes) resolve in O(log n) instead of
        // walking every VMA.
        const auto it = vmaIntervals.upper_bound(vaddr);
        if (it == vmaIntervals.begin())
            return nullptr;
        const auto &[start, end] = *std::prev(it);
        if (vaddr >= end)
            return nullptr;
        // Hit: locate the matching Vma.  Starts are unique, so the
        // hint is only ever an accelerator — fault sweeps over
        // page-granular arenas revisit creation-adjacent VMAs.
        const auto matches = [&](std::size_t i) {
            return i < vmas.size() && vmas[i].start == start;
        };
        if (matches(lastVmaHint))
            return &vmas[lastVmaHint];
        if (matches(lastVmaHint + 1)) {
            ++lastVmaHint;
            return &vmas[lastVmaHint];
        }
        // Newest-first fallback: the dominant remaining pattern is
        // the touch right after an mmap appended its mapping.
        for (std::size_t i = vmas.size(); i-- > 0;) {
            if (vmas[i].start == start) {
                lastVmaHint = i;
                return &vmas[i];
            }
        }
        return nullptr;
    }
};

} // namespace ctamem::kernel

#endif // CTAMEM_KERNEL_PROCESS_HH
