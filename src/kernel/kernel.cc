#include "kernel/kernel.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "mm/buddy.hh"

namespace ctamem::kernel {

using mm::FrameSpan;
using mm::GfpFlags;
using mm::PageKind;
using mm::ZoneId;
using mm::ZoneSpec;
using paging::PageFlags;

namespace {

/**
 * CATT-style kernel/user physical partition with one guard row.
 * As in the CATT design, the kernel partition occupies the low half
 * (where the kernel lives anyway) and user memory the high half.
 */
std::vector<ZoneSpec>
cattZoneSpecs(const dram::Geometry &geom)
{
    const std::uint64_t capacity = geom.capacity();
    const std::uint64_t dma_end = 16 * MiB;
    const std::uint64_t split = capacity / 2;
    const std::uint64_t user_base = split + geom.rowBytes();

    std::vector<ZoneSpec> specs;
    specs.push_back(ZoneSpec{
        ZoneId::Dma, {FrameSpan{0, dma_end / pageSize}}});
    specs.push_back(ZoneSpec{
        ZoneId::KernelRsv,
        {FrameSpan{dma_end / pageSize, (split - dma_end) / pageSize}}});
    // One guard row between the halves is left unowned.
    specs.push_back(ZoneSpec{
        ZoneId::Normal,
        {FrameSpan{user_base / pageSize,
                   (capacity - user_base) / pageSize}}});
    return specs;
}

/** ZebRAM-lite: only even rows hold data; odd rows are guards. */
std::vector<ZoneSpec>
zebramZoneSpecs(const dram::Geometry &geom)
{
    const std::uint64_t capacity = geom.capacity();
    const std::uint64_t dma_end = 16 * MiB;
    const std::uint64_t row_bytes = geom.rowBytes();
    const std::uint64_t frames_per_row = row_bytes / pageSize;

    std::vector<ZoneSpec> specs;
    specs.push_back(ZoneSpec{
        ZoneId::Dma, {FrameSpan{0, dma_end / pageSize}}});

    ZoneSpec normal{ZoneId::Normal, {}};
    for (Addr base = dma_end; base + row_bytes <= capacity;
         base += row_bytes) {
        const std::uint64_t global_row = base / row_bytes;
        if (global_row % 2 == 0) {
            normal.spans.push_back(
                FrameSpan{addrToPfn(base), frames_per_row});
        }
    }
    specs.push_back(std::move(normal));
    return specs;
}

} // namespace

Kernel::Kernel(const KernelConfig &config) : config_(config)
{
    // ZONE_PTP sizes table granules and screens block bits per the
    // kernel's architecture; keep the nested config in lockstep.
    config_.cta.arch = config_.arch;
    dram_ = std::make_unique<dram::DramModule>(config.dram);

    std::vector<ZoneSpec> specs;
    switch (config.policy) {
      case AllocPolicy::Standard:
        specs = mm::standardZoneSpecs(dram_->geometry().capacity(),
                                      dram_->geometry().capacity());
        pteFlags_ = GfpFlags{ZoneId::Normal, false,
                             PageKind::PageTable};
        break;
      case AllocPolicy::Cta: {
        cta::CtaPlan plan = cta::buildCtaPlan(*dram_, config_.cta);
        ptp_ = std::move(plan.ptp);
        specs = std::move(plan.physSpecs);
        pteFlags_ = mm::GFP_PTP; // unused: ptp_ serves requests
        break;
      }
      case AllocPolicy::Catt:
        specs = cattZoneSpecs(dram_->geometry());
        pteFlags_ = GfpFlags{ZoneId::KernelRsv, true,
                             PageKind::PageTable};
        break;
      case AllocPolicy::Zebram:
        specs = zebramZoneSpecs(dram_->geometry());
        pteFlags_ = GfpFlags{ZoneId::Normal, false,
                             PageKind::PageTable};
        break;
    }

    finishBoot(std::move(specs), nullptr);
}

Kernel::Kernel(const KernelConfig &config, const BootImage &image)
    : config_(config)
{
    config_.cta.arch = config_.arch;
    dram_ = std::make_unique<dram::DramModule>(config.dram);

    // The zone specs come from the image rather than from a fresh
    // scan — that skip is the whole point of a warm start.  Only the
    // per-policy allocation flags are re-derived here.
    switch (config.policy) {
      case AllocPolicy::Standard:
        pteFlags_ = GfpFlags{ZoneId::Normal, false,
                             PageKind::PageTable};
        break;
      case AllocPolicy::Cta:
        if (!image.ptpLayout)
            fatal("warm start: CTA policy needs a ZONE_PTP layout");
        ptp_ = std::make_unique<cta::PtpZone>(*dram_, config_.cta,
                                              *image.ptpLayout);
        pteFlags_ = mm::GFP_PTP;
        break;
      case AllocPolicy::Catt:
        pteFlags_ = GfpFlags{ZoneId::KernelRsv, true,
                             PageKind::PageTable};
        break;
      case AllocPolicy::Zebram:
        pteFlags_ = GfpFlags{ZoneId::Normal, false,
                             PageKind::PageTable};
        break;
    }

    finishBoot(image.physSpecs, &image);
}

void
Kernel::finishBoot(std::vector<ZoneSpec> specs, const BootImage *image)
{
    processesCreatedId_ = stats_.registerCounter("processesCreated");
    deviceBuffersId_ = stats_.registerCounter("deviceBuffers");
    mmapsId_ = stats_.registerCounter("mmaps");
    largeMmapsId_ = stats_.registerCounter("largeMmaps");
    munmapsId_ = stats_.registerCounter("munmaps");
    pageFaultsId_ = stats_.registerCounter("pageFaults");
    segfaultsId_ = stats_.registerCounter("segfaults");
    oomFaultsId_ = stats_.registerCounter("oomFaults");
    pteAllocFaultsId_ = stats_.registerCounter("pteAllocFaults");
    pteAllocsId_ = stats_.registerCounter("pteAllocs");
    pteAllocFailuresId_ = stats_.registerCounter("pteAllocFailures");
    ptReclaimsId_ = stats_.registerCounter("ptReclaims");

    bootSpecs_ = std::move(specs);
    phys_ = std::make_unique<mm::PhysicalMemory>(*dram_, bootSpecs_);
    mmu_ = std::make_unique<paging::Mmu>(*dram_, config_.tlbEntries,
                                         *config_.arch);

    // Plant the kernel secret the attacks try to reach.  Allocation
    // is deterministic, so a warm start replays it and must land on
    // the frame the snapshot recorded.
    auto secret = phys_->allocate(
        dataFlags(Process{.trusted = true}, PageKind::KernelData));
    if (!secret)
        fatal("boot: cannot allocate the kernel secret page");
    if (image && *secret != image->secretPfn) {
        fatal("warm start: replayed kernel-secret allocation landed "
              "on frame ", *secret, " but the snapshot recorded ",
              image->secretPfn);
    }
    secretPfn_ = *secret;
    secretAddr_ = pfnToAddr(*secret) + 0x40;
    dram_->writeU64(secretAddr_, kernelSecret);
    if (image)
        now_ = image->simTime;
}

BootImage
Kernel::bootImage() const
{
    if (!processes_.empty() || !ptFrameLevels_.empty()) {
        fatal("bootImage: only a freshly booted kernel can be "
              "snapshotted (", processes_.size(), " processes, ",
              ptFrameLevels_.size(), " page-table frames live)");
    }
    BootImage image;
    if (ptp_)
        image.ptpLayout = ptp_->layout();
    image.physSpecs = bootSpecs_;
    image.secretPfn = secretPfn_;
    image.secretAddr = secretAddr_;
    image.simTime = now_;
    return image;
}

Kernel::~Kernel() = default;

GfpFlags
Kernel::dataFlags(const Process &proc, PageKind kind) const
{
    // Kernel data and trusted-process data prefer the reserved
    // low-zero-indicator regions when the CTA restriction carved
    // them out; everyone else gets ZONE_NORMAL.
    const bool privileged =
        kind == PageKind::KernelData || proc.trusted;
    if (privileged && phys_ && phys_->zone(ZoneId::KernelRsv))
        return GfpFlags{ZoneId::KernelRsv, false, kind};
    if (config_.policy == AllocPolicy::Catt && privileged)
        return GfpFlags{ZoneId::KernelRsv, true, kind};
    return GfpFlags{ZoneId::Normal, false, kind};
}

int
Kernel::createProcess(const std::string &name, bool trusted)
{
    const int pid = nextPid_++;
    Process proc;
    proc.pid = pid;
    proc.name = name;
    proc.trusted = trusted;

    auto root = pteAllocOne(arch().levels, pid);
    if (!root)
        fatal("createProcess: cannot allocate a root table frame");
    proc.rootPfn = *root;
    proc.space = std::make_unique<paging::AddressSpace>(
        *dram_,
        [this, pid](unsigned level) { return pteAllocOne(level, pid); },
        [this](Pfn pfn) { pteFree(pfn); }, *root, arch());

    processes_.emplace(pid, std::move(proc));
    stats_.at(processesCreatedId_).increment();
    return pid;
}

void
Kernel::exitProcess(int pid)
{
    Process &proc = process(pid);
    for (const auto &[vaddr, pfn] : proc.anonFrames)
        phys_->free(pfn);
    proc.space->releaseTables();
    pteFree(proc.rootPfn);
    processes_.erase(pid);
    mmu_->tlb().flushAll();
}

Process &
Kernel::process(int pid)
{
    auto it = processes_.find(pid);
    if (it == processes_.end())
        fatal("no such process: ", pid);
    return it->second;
}

const Process &
Kernel::process(int pid) const
{
    auto it = processes_.find(pid);
    if (it == processes_.end())
        fatal("no such process: ", pid);
    return it->second;
}

int
Kernel::createFile(std::uint64_t length)
{
    const int fd = nextFd_++;
    const std::uint64_t mask = pageBytes() - 1;
    files_[fd] = SimFile{fd, (length + mask) & ~mask, {}};
    return fd;
}

int
Kernel::createDeviceBuffer(std::uint64_t length)
{
    const int fd = nextFd_++;
    const std::uint64_t mask = pageBytes() - 1;
    SimFile buffer{fd, (length + mask) & ~mask, {}};
    // Device buffers live in kernel memory: allocate every page-sized
    // frame run now from the kernel's preferred zone.
    const GfpFlags flags =
        dataFlags(Process{.trusted = true}, PageKind::KernelData);
    for (std::uint64_t idx = 0; idx * pageBytes() < buffer.length;
         ++idx) {
        auto pfn = phys_->allocate(flags, arch().tableOrder());
        if (!pfn)
            fatal("createDeviceBuffer: out of kernel memory");
        dram_->writeU64(pfnToAddr(*pfn),
                        stableHash(0xdeb0f, fd, idx));
        buffer.frames.emplace(idx, *pfn);
    }
    files_[fd] = std::move(buffer);
    stats_.at(deviceBuffersId_).increment();
    return fd;
}

VAddr
Kernel::placeVma(Process &proc, std::uint64_t length, VAddr fixed)
{
    if (fixed != 0) {
        if (fixed & (pageBytes() - 1))
            fatal("mmap: fixed address not page aligned");
        if (proc.overlapsVma(fixed, length))
            return 0;
        return fixed;
    }
    // Bump allocation at level-2 coverage alignment (2 MiB on
    // x86-64): every mapping starts in its own level-2 slot, so each
    // gets its own leaf page table — the layout the PTE-spray attack
    // wants and the one that keeps table accounting predictable.
    const VAddr align = arch().levelCoverage(2);
    VAddr base = (proc.mmapCursor + align - 1) & ~(align - 1);
    proc.mmapCursor = base + std::max<std::uint64_t>(length, align);
    return base;
}

VAddr
Kernel::mmapFile(int pid, int fd, std::uint64_t length,
                 const PageFlags &prot, VAddr fixed,
                 std::uint64_t file_offset)
{
    if (!files_.contains(fd))
        fatal("mmapFile: no such file ", fd);
    if (length == 0)
        fatal("mmapFile: zero length");
    Process &proc = process(pid);
    const std::uint64_t mask = pageBytes() - 1;
    length = (length + mask) & ~mask;
    const VAddr base = placeVma(proc, length, fixed);
    if (base == 0)
        return 0;
    proc.addVma(Vma{base, length, prot, fd, file_offset});
    stats_.at(mmapsId_).increment();
    return base;
}

VAddr
Kernel::mmapAnonLarge(int pid, const PageFlags &prot, unsigned level,
                      VAddr fixed)
{
    if (level != 2)
        fatal("mmapAnonLarge: only level-2 block pages supported");
    if (fixed % arch().levelCoverage(level) != 0)
        fatal("mmapAnonLarge: fixed address must be large-page "
              "aligned");
    Process &proc = process(pid);
    const std::uint64_t length = arch().levelCoverage(level);
    const unsigned order = log2Floor(length / pageSize);
    // Blocks bigger than the buddy allocator's largest order (16 KiB
    // and 64 KiB AArch64 granules put level-2 blocks at 32/512 MiB)
    // are simply not available — same graceful no-large-pages answer
    // an out-of-memory system gives.
    if (order > mm::BuddyAllocator::maxOrder)
        return 0;
    const VAddr base = placeVma(proc, length, fixed);
    if (base == 0)
        return 0;
    auto frame = phys_->allocate(dataFlags(proc, PageKind::UserData),
                                 order, pid);
    if (!frame)
        return 0;
    PageFlags flags = prot;
    flags.user = true;
    if (!proc.space->mapLarge(base, *frame, flags, level)) {
        phys_->free(*frame);
        return 0;
    }
    proc.addVma(Vma{base, length, prot, -1, 0, level});
    proc.anonFrames[base] = *frame;
    stats_.at(mmapsId_).increment();
    stats_.at(largeMmapsId_).increment();
    return base;
}

VAddr
Kernel::mmapAnon(int pid, std::uint64_t length, const PageFlags &prot,
                 VAddr fixed)
{
    if (length == 0)
        fatal("mmapAnon: zero length");
    Process &proc = process(pid);
    const std::uint64_t mask = pageBytes() - 1;
    length = (length + mask) & ~mask;
    const VAddr base = placeVma(proc, length, fixed);
    if (base == 0)
        return 0;
    proc.addVma(Vma{base, length, prot, -1, 0});
    stats_.at(mmapsId_).increment();
    return base;
}

bool
Kernel::munmap(int pid, VAddr start)
{
    Process &proc = process(pid);
    auto it = std::find_if(proc.vmas.begin(), proc.vmas.end(),
                           [start](const Vma &vma) {
                               return vma.start == start;
                           });
    if (it == proc.vmas.end())
        return false;

    for (VAddr vaddr = it->start; vaddr < it->end();
         vaddr += pageBytes()) {
        proc.space->unmap(vaddr);
        mmu_->tlb().flushPage(vaddr);
        auto frame = proc.anonFrames.find(vaddr);
        if (frame != proc.anonFrames.end()) {
            phys_->free(frame->second);
            proc.anonFrames.erase(frame);
        }
    }
    proc.vmaIntervals.erase(it->start);
    proc.vmas.erase(it);
    stats_.at(munmapsId_).increment();
    return true;
}

PageFlags
Kernel::vmaLeafFlags(const Vma &vma) const
{
    PageFlags flags = vma.prot;
    flags.user = true;
    return flags;
}

bool
Kernel::handlePageFault(Process &proc, VAddr vaddr)
{
    stats_.at(pageFaultsId_).increment();
    proc.pageFaults.increment();

    Vma *vma = proc.findVma(vaddr);
    if (!vma) {
        stats_.at(segfaultsId_).increment();
        return false;
    }

    const VAddr page = vaddr & ~(pageBytes() - 1);
    Pfn pfn = invalidPfn;
    if (vma->largeLevel != 0) {
        // A severed large-page walk path: re-map the resident block
        // with its PS entry (the block itself never went away).
        auto resident = proc.anonFrames.find(vma->start);
        if (resident == proc.anonFrames.end()) {
            stats_.at(segfaultsId_).increment();
            return false;
        }
        PageFlags flags = vma->prot;
        flags.user = true;
        if (!proc.space->mapLarge(vma->start, resident->second,
                                  flags, vma->largeLevel)) {
            stats_.at(pteAllocFaultsId_).increment();
            return false;
        }
        return true;
    }
    if (vma->isAnon()) {
        // Re-faults after page-table reclaim must find the resident
        // frame again, not leak a fresh one.
        auto resident = proc.anonFrames.find(page);
        if (resident != proc.anonFrames.end()) {
            pfn = resident->second;
        } else {
            auto frame = phys_->allocate(
                dataFlags(proc, PageKind::UserData),
                arch().tableOrder(), proc.pid);
            if (!frame) {
                stats_.at(oomFaultsId_).increment();
                return false;
            }
            pfn = *frame;
            proc.anonFrames[page] = pfn;
        }
    } else {
        SimFile &file = files_.at(vma->fd);
        const std::uint64_t page_idx =
            (page - vma->start + vma->fileOffset) / pageBytes();
        if (page_idx * pageBytes() >= file.length) {
            stats_.at(segfaultsId_).increment();
            return false;
        }
        auto cached = file.frames.find(page_idx);
        if (cached == file.frames.end()) {
            auto frame =
                phys_->allocate(mm::GFP_FILE, arch().tableOrder());
            if (!frame) {
                stats_.at(oomFaultsId_).increment();
                return false;
            }
            // Deterministic, recognizable file contents.
            dram_->writeU64(pfnToAddr(*frame),
                            stableHash(0xf11e, vma->fd, page_idx));
            cached = file.frames.emplace(page_idx, *frame).first;
        }
        pfn = cached->second;
    }

    if (!proc.space->map(page, pfn, vmaLeafFlags(*vma))) {
        // pte_alloc_one failed even after reclaim — the PTP zone is
        // exhausted beyond relief.
        stats_.at(pteAllocFaultsId_).increment();
        return false;
    }
    return true;
}

UserAccess
Kernel::readUser(int pid, VAddr vaddr)
{
    Process &proc = process(pid);
    for (int attempt = 0; attempt < 2; ++attempt) {
        const paging::WalkResult walk = mmu_->translate(
            proc.rootPfn, vaddr, paging::AccessType::Read,
            paging::Privilege::User);
        if (walk.ok()) {
            return UserAccess{true, paging::Fault::None,
                              dram_->readU64(walk.phys), walk.phys};
        }
        if (walk.fault != paging::Fault::NotPresent ||
            !handlePageFault(proc, vaddr)) {
            return UserAccess{false, walk.fault, 0, 0};
        }
    }
    return UserAccess{false, paging::Fault::NotPresent, 0, 0};
}

UserAccess
Kernel::writeUser(int pid, VAddr vaddr, std::uint64_t value)
{
    Process &proc = process(pid);
    for (int attempt = 0; attempt < 2; ++attempt) {
        const paging::WalkResult walk = mmu_->translate(
            proc.rootPfn, vaddr, paging::AccessType::Write,
            paging::Privilege::User);
        if (walk.ok()) {
            dram_->writeU64(walk.phys, value);
            return UserAccess{true, paging::Fault::None, value,
                              walk.phys};
        }
        if (walk.fault != paging::Fault::NotPresent ||
            !handlePageFault(proc, vaddr)) {
            return UserAccess{false, walk.fault, 0, 0};
        }
    }
    return UserAccess{false, paging::Fault::NotPresent, 0, 0};
}

bool
Kernel::touchUser(int pid, VAddr vaddr)
{
    return static_cast<bool>(readUser(pid, vaddr));
}

void
Kernel::flushTlb()
{
    mmu_->tlb().flushAll();
}

std::optional<Pfn>
Kernel::pteAllocOne(unsigned level, int pid)
{
    stats_.at(pteAllocsId_).increment();
    std::optional<Pfn> pfn;
    if (ptp_) {
        pfn = ptp_->allocate(level);
        if (!pfn && reclaimLeafTable())
            pfn = ptp_->allocate(level);
    } else {
        pfn = phys_->allocate(pteFlags_, arch().tableOrder(), pid);
    }
    if (!pfn) {
        stats_.at(pteAllocFailuresId_).increment();
        return std::nullopt;
    }
    ptFrameLevels_[*pfn] = level;
    return pfn;
}

bool
Kernel::reclaimLeafTable()
{
    for (auto &[pid, proc] : processes_) {
        if (!proc.space)
            continue;
        if (auto victim = proc.space->evictLeafTable()) {
            pteFree(victim->pfn);
            // Cached translations through the evicted table stay
            // functional on real hardware too, but the freed frame
            // is about to be re-used: flush, as an IPI shootdown
            // would.
            mmu_->tlb().flushAll();
            stats_.at(ptReclaimsId_).increment();
            return true;
        }
    }
    return false;
}

void
Kernel::pteFree(Pfn pfn)
{
    auto it = ptFrameLevels_.find(pfn);
    if (it == ptFrameLevels_.end())
        ctamem_panic("pteFree: pfn ", pfn, " is not a table page");
    ptFrameLevels_.erase(it);
    if (ptp_ && ptp_->contains(pfn))
        ptp_->free(pfn);
    else
        phys_->free(pfn);
}

unsigned
Kernel::tableLevel(Pfn pfn) const
{
    auto it = ptFrameLevels_.find(pfn);
    return it == ptFrameLevels_.end() ? 0 : it->second;
}

cta::TheoremAudit
Kernel::auditTheorem() const
{
    cta::TheoremAudit audit;
    if (!ptp_) {
        audit.tablesAboveLwm = false;
        audit.tablesInTrueCells = false;
        audit.violations.push_back(
            "no ZONE_PTP: kernel booted without the CTA policy");
        return audit;
    }
    const Addr lwm = ptp_->lowWaterMark();
    for (const auto &[pfn, level] : ptFrameLevels_) {
        const Addr base = pfnToAddr(pfn);
        if (base < lwm) {
            audit.tablesAboveLwm = false;
            audit.violations.push_back(
                "table frame below the low water mark");
        }
        if (dram_->cellTypeAt(base) != dram::CellType::True) {
            audit.tablesInTrueCells = false;
            audit.violations.push_back(
                "table frame resides in anti-cells");
        }
        for (std::uint64_t slot = 0; slot < arch().entriesPerTable();
             ++slot) {
            const std::uint64_t raw =
                dram_->readU64(base + slot * 8);
            if (!arch().present(raw))
                continue;
            const bool leaf = level == 1 || arch().blockMarked(raw);
            if (leaf) {
                if (pfnToAddr(arch().pfn(raw)) >= lwm) {
                    audit.pointersBelowLwm = false;
                    audit.violations.push_back(
                        "leaf PTE points at or above the low water "
                        "mark");
                }
            } else if (!isPageTableFrame(arch().pfn(raw))) {
                audit.violations.push_back(
                    "intermediate entry points at a non-table frame");
            }
        }
    }
    return audit;
}

} // namespace ctamem::kernel
