/**
 * @file
 * Common result type for all simulated RowHammer attacks.
 */

#ifndef CTAMEM_ATTACK_RESULT_HH
#define CTAMEM_ATTACK_RESULT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace ctamem::attack {

/** Why an attack run ended. */
enum class Outcome : std::uint8_t
{
    Escalated,       //!< attacker read the kernel secret (root)
    SelfReference,   //!< PTE self-reference achieved but not exploited
    KernelCorrupted, //!< kernel-owned memory corrupted (isolation
                     //!< broken) without a usable self-reference
    NoCorruption,    //!< hammering produced no usable corruption
    Detected,        //!< a mitigation detected and stopped the attack
    Blocked,         //!< structurally impossible (e.g. CTA zones)
};

/** Human-readable outcome name. */
const char *outcomeName(Outcome outcome);

/**
 * Inverse of outcomeName ("ESCALATED" -> Outcome::Escalated); nullopt
 * for unknown names.  The result cache round-trips CellResults
 * through JSON, so outcomes need a parse direction too.
 */
std::optional<Outcome> parseOutcome(std::string_view name);

/** What a simulated attack achieved. */
struct AttackResult
{
    Outcome outcome = Outcome::NoCorruption;
    SimTime attackTime = 0;     //!< modeled wall-clock cost
    std::uint64_t hammerPasses = 0;
    std::uint64_t flipsInduced = 0;
    std::uint64_t ptesCorrupted = 0; //!< PTEs whose pointer changed
    std::uint64_t selfReferences = 0;
    std::string detail;

    bool succeeded() const { return outcome == Outcome::Escalated; }
};

} // namespace ctamem::attack

#endif // CTAMEM_ATTACK_RESULT_HH
