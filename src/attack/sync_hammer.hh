/**
 * @file
 * The timing-aware hammer family: uniform, REF-synchronized, and
 * fuzzer-found patterns against one sprayed machine.
 *
 * All three share the ProjectZero-style spray (file mappings
 * interleaved with anon pages, so aggressor frames pack next to
 * page-table frames) and the self-reference exploitation chain; they
 * differ only in *how* the sandwiched victims are hammered:
 *
 *  - runUniformHammer: untimed whole-window double-sided passes —
 *    the baseline in-DRAM TRR reliably suppresses (the sampler
 *    always holds a monotonously repeated aggressor at REF time);
 *  - runSyncHammer: replays the fixed "sync" pattern family through
 *    the engine's timed path — REF-synchronized, but with no decoy
 *    structure, so a sampler that catches either aggressor still
 *    refreshes the victim;
 *  - runFuzzHammer: runs fuzz::PatternFuzzer against a private
 *    replica of this machine's module + defense, then replays the
 *    best pattern found on the real machine (Blacksmith's
 *    template-then-exploit flow).
 *
 * Replayed patterns anchor at (first sandwich victim - 1), so entry
 * row offsets 0 and 2 are exactly the attacker's sandwich aggressor
 * pair; decoy entries land on nearby sprayed rows.
 */

#ifndef CTAMEM_ATTACK_SYNC_HAMMER_HH
#define CTAMEM_ATTACK_SYNC_HAMMER_HH

#include "attack/primitives.hh"
#include "attack/registry.hh"
#include "attack/result.hh"

namespace ctamem::attack {

/** Spray + hammer shape shared by the timing-aware attacks. */
struct TimedHammerConfig
{
    unsigned mappings = 32;
    std::uint64_t bytesPerMapping = 64 * KiB;
    unsigned anonPagesPerMapping = 2;
    unsigned maxPasses = 4; //!< untimed passes (uniform only)
    CostModel cost;
};

AttackResult runUniformHammer(kernel::Kernel &kernel,
                              dram::RowHammerEngine &engine,
                              const AttackParams &params,
                              const TimedHammerConfig &config = {});

AttackResult runSyncHammer(kernel::Kernel &kernel,
                           dram::RowHammerEngine &engine,
                           const AttackParams &params,
                           const TimedHammerConfig &config = {});

AttackResult runFuzzHammer(kernel::Kernel &kernel,
                           dram::RowHammerEngine &engine,
                           const AttackParams &params,
                           const TimedHammerConfig &config = {});

} // namespace ctamem::attack

#endif // CTAMEM_ATTACK_SYNC_HAMMER_HH
