#include "attack/primitives.hh"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/log.hh"

namespace ctamem::attack {

using kernel::Process;

std::vector<VAddr>
AttackerContext::sprayFileMappings(int fd, unsigned mappings,
                                   std::uint64_t bytes_each,
                                   const CostModel &cost)
{
    std::vector<VAddr> bases;
    bases.reserve(mappings);
    const paging::PageFlags rw{true, false, false};
    for (unsigned i = 0; i < mappings; ++i) {
        const VAddr base =
            kernel_.mmapFile(pid_, fd, bytes_each, rw);
        if (base == 0)
            fatal("spray: mmap failed after ", i, " mappings");
        // Touching one page per mapping materializes the leaf table.
        if (!kernel_.touchUser(pid_, base))
            break; // ZONE_PTP exhausted under CTA: spray saturated
        bases.push_back(base);
    }
    charge(cost.sprayFill);
    return bases;
}

std::vector<OwnedRow>
AttackerContext::ownedRows()
{
    // Group the process's resident pages by (bank, logical row).
    // Hash-grouped (a red-black tree insert per page dominated the
    // campaign profile), then sorted so callers keep seeing rows in
    // ascending (bank, row) order — hammer sequences, and with them
    // the defenses' RNG streams, must not depend on hashing.
    std::unordered_map<std::uint64_t, std::vector<VAddr>> groups;
    Process &proc = kernel_.process(pid_);
    const std::uint64_t page_bytes = kernel_.pageBytes();
    for (const kernel::Vma &vma : proc.vmas) {
        for (VAddr va = vma.start; va < vma.end();
             va += page_bytes) {
            const paging::WalkResult walk =
                kernel_.mmu().walker().walk(
                    proc.rootPfn, va, paging::AccessType::Read,
                    paging::Privilege::User);
            if (!walk.ok())
                continue; // not yet faulted in
            const dram::Location loc =
                kernel_.dram().locate(walk.phys);
            groups[(loc.bank << 40) | loc.row].push_back(va);
        }
    }
    std::vector<OwnedRow> rows;
    rows.reserve(groups.size());
    for (auto &[key, vaddrs] : groups)
        rows.push_back(OwnedRow{key >> 40, key & ((1ULL << 40) - 1),
                                std::move(vaddrs)});
    std::sort(rows.begin(), rows.end(),
              [](const OwnedRow &a, const OwnedRow &b) {
                  return a.bank != b.bank ? a.bank < b.bank
                                          : a.row < b.row;
              });
    return rows;
}

dram::HammerResult
AttackerContext::hammerOwnRow(VAddr vaddr, const CostModel &cost)
{
    const kernel::UserAccess access = kernel_.readUser(pid_, vaddr);
    if (!access)
        fatal("hammerOwnRow: attacker cannot access its own page");
    const dram::Location loc = kernel_.dram().locate(access.phys);
    charge(cost.hammerPerRow);
    return engine_.hammerRow(loc.bank, loc.row);
}

dram::HammerResult
AttackerContext::hammerSandwich(std::uint64_t bank,
                                std::uint64_t victim_row,
                                const CostModel &cost)
{
    charge(cost.hammerPerRow);
    return engine_.hammerDoubleSided(bank, victim_row);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
AttackerContext::findSandwiches()
{
    std::set<std::pair<std::uint64_t, std::uint64_t>> owned;
    for (const OwnedRow &row : ownedRows())
        owned.insert({row.bank, row.row});

    std::vector<std::pair<std::uint64_t, std::uint64_t>> sandwiches;
    for (const auto &[bank, row] : owned) {
        if (owned.contains({bank, row + 2}))
            sandwiches.emplace_back(bank, row + 1);
    }
    return sandwiches;
}

} // namespace ctamem::attack
