#include "attack/sync_hammer.hh"

#include <string>
#include <utility>
#include <vector>

#include "attack/exploit.hh"
#include "defense/registry.hh"
#include "fuzz/fuzzer.hh"

namespace ctamem::attack {

using kernel::Kernel;

namespace {

/** ProjectZero-style spray: tables interleaved with aggressor pages. */
std::vector<VAddr>
sprayArena(AttackerContext &ctx, const TimedHammerConfig &config)
{
    Kernel &kernel = ctx.kernel();
    const int fd = kernel.createFile(config.bytesPerMapping);
    const paging::PageFlags rw{true, false, false};
    std::vector<VAddr> mappings;
    mappings.reserve(config.mappings);
    for (unsigned i = 0; i < config.mappings; ++i) {
        const VAddr base = kernel.mmapFile(
            ctx.pid(), fd, config.bytesPerMapping, rw);
        if (base == 0 || !kernel.touchUser(ctx.pid(), base))
            break;
        mappings.push_back(base);
        if (config.anonPagesPerMapping > 0) {
            const VAddr anon = kernel.mmapAnon(
                ctx.pid(),
                config.anonPagesPerMapping * kernel.pageBytes(), rw);
            for (unsigned page = 0;
                 page < config.anonPagesPerMapping; ++page) {
                kernel.touchUser(ctx.pid(),
                                 anon + page * kernel.pageBytes());
            }
        }
    }
    ctx.charge(config.cost.sprayFill);
    return mappings;
}

/**
 * Where to anchor a pattern replay: the first sandwich's (bank,
 * victim - 1), so entry offsets 0/2 are the attacker's aggressor
 * pair.  Falls back to the first owned row when the spray produced
 * no sandwich.  nullopt = the attacker owns no rows at all.
 */
std::optional<std::pair<std::uint64_t, std::uint64_t>>
replayAnchor(AttackerContext &ctx)
{
    const auto sandwiches = ctx.findSandwiches();
    if (!sandwiches.empty()) {
        const auto &[bank, victim] = sandwiches.front();
        return std::make_pair(bank,
                              victim > 0 ? victim - 1 : victim);
    }
    const std::vector<OwnedRow> owned = ctx.ownedRows();
    if (owned.empty())
        return std::nullopt;
    return std::make_pair(owned.front().bank, owned.front().row);
}

/** Shared post-hammer exploitation + outcome classification. */
void
conclude(Kernel &kernel, int pid,
         const std::vector<VAddr> &mappings,
         const TimedHammerConfig &config, bool all_suppressed,
         AttackResult &result)
{
    if (result.flipsInduced > 0) {
        const auto self_ref = detectSelfReference(
            kernel, pid, mappings, config.bytesPerMapping);
        if (self_ref) {
            ++result.selfReferences;
            result.outcome = Outcome::SelfReference;
            result.detail = "self-reference at attacker vaddr";
            if (escalate(kernel, pid, *self_ref, mappings,
                         config.bytesPerMapping)) {
                result.outcome = Outcome::Escalated;
                result.detail = "kernel secret read from user mode";
            }
        }
        return;
    }
    if (result.hammerPasses > 0 && all_suppressed) {
        result.outcome = Outcome::Detected;
        result.detail = "every hammer pass was mitigated";
    }
}

/**
 * Replay @p pattern on the live machine and classify the outcome —
 * the back half shared by the sync and fuzz attacks.
 */
AttackResult
replayPattern(Kernel &kernel, dram::RowHammerEngine &engine,
              const AttackParams &params,
              const TimedHammerConfig &config,
              const fuzz::HammeringPattern &pattern,
              std::string detail)
{
    AttackResult result;
    const int pid = kernel.createProcess("timed-attacker");
    AttackerContext ctx(kernel, engine, pid);

    const std::vector<VAddr> mappings = sprayArena(ctx, config);
    if (mappings.empty()) {
        result.outcome = Outcome::Blocked;
        result.detail = "spray produced no mappings";
        return result;
    }

    const auto anchor = replayAnchor(ctx);
    if (!anchor) {
        result.outcome = Outcome::Blocked;
        result.detail = "attacker owns no rows";
        return result;
    }

    engine.setRefTiming(params.fuzz.timing);
    fuzz::PatternRun run;
    run.bank = anchor->first;
    run.baseRow = anchor->second;
    run.windows = params.fuzz.windows;
    const dram::HammerResult replay =
        fuzz::runPattern(engine, pattern, run);

    result.hammerPasses = run.windows;
    result.flipsInduced = replay.total();
    ctx.charge(config.cost.hammerPerRow * run.windows);
    ctx.charge(config.cost.checkPerPte * mappings.size() *
               (config.bytesPerMapping / kernel.pageBytes()));
    result.detail = std::move(detail);

    conclude(kernel, pid, mappings, config, replay.suppressed,
             result);
    result.attackTime = ctx.elapsed();
    return result;
}

} // namespace

AttackResult
runUniformHammer(Kernel &kernel, dram::RowHammerEngine &engine,
                 const AttackParams &params,
                 const TimedHammerConfig &config)
{
    (void)params;
    AttackResult result;
    const int pid = kernel.createProcess("uniform-attacker");
    AttackerContext ctx(kernel, engine, pid);

    const std::vector<VAddr> mappings = sprayArena(ctx, config);
    if (mappings.empty()) {
        result.outcome = Outcome::Blocked;
        result.detail = "spray produced no mappings";
        return result;
    }

    const auto sandwiches = ctx.findSandwiches();
    bool all_suppressed = true;
    for (unsigned pass = 0; pass < config.maxPasses; ++pass) {
        if (sandwiches.empty()) {
            for (const OwnedRow &row : ctx.ownedRows()) {
                const dram::HammerResult hammer = ctx.hammerOwnRow(
                    row.vaddrs.front(), config.cost);
                ++result.hammerPasses;
                result.flipsInduced += hammer.total();
                all_suppressed &= hammer.suppressed;
            }
        } else {
            for (const auto &[bank, victim] : sandwiches) {
                const dram::HammerResult hammer =
                    ctx.hammerSandwich(bank, victim, config.cost);
                ++result.hammerPasses;
                result.flipsInduced += hammer.total();
                all_suppressed &= hammer.suppressed;
            }
        }
        if (result.flipsInduced == 0 && pass >= 1)
            break; // deterministic: more identical passes won't help
    }

    conclude(kernel, pid, mappings, config, all_suppressed, result);
    result.attackTime = ctx.elapsed();
    return result;
}

AttackResult
runSyncHammer(Kernel &kernel, dram::RowHammerEngine &engine,
              const AttackParams &params,
              const TimedHammerConfig &config)
{
    const fuzz::PatternBuilder builder(params.fuzz.builder,
                                       params.fuzz.timing);
    return replayPattern(kernel, engine, params, config,
                         builder.family("sync"),
                         "replayed the fixed sync family");
}

AttackResult
runFuzzHammer(Kernel &kernel, dram::RowHammerEngine &engine,
              const AttackParams &params,
              const TimedHammerConfig &config)
{
    // Template phase: search against a private replica of this
    // machine's module and defense.  Serial on purpose — campaign
    // cells are already running in parallel, and serial evaluation
    // is trivially deterministic.
    fuzz::FuzzTarget target;
    target.dram = kernel.dram().config();
    const defense::DefenseSpec *spec =
        defense::Registry::instance().find(params.defense);
    if (spec && spec->makeObserver) {
        target.makeObserver =
            [factory = spec->makeObserver,
             defense_params = params.defenseParams] {
                return factory(defense_params);
            };
    }

    fuzz::PatternFuzzer fuzzer(std::move(target), params.fuzz);
    const fuzz::FuzzOutcome found = fuzzer.run();

    std::string detail =
        "fuzzer: patterns=" +
        std::to_string(found.patternsEvaluated) +
        " bestFlips=" + std::to_string(found.bestFlips) +
        " firstBypassGen=" +
        (found.firstBypassGeneration == ~0ULL
             ? std::string("none")
             : std::to_string(found.firstBypassGeneration)) +
        " hash=" + std::to_string(found.best.hash());

    return replayPattern(kernel, engine, params, config, found.best,
                         std::move(detail));
}

} // namespace ctamem::attack
