/**
 * @file
 * Attacker-side primitives.
 *
 * An AttackerContext wraps one unprivileged process and exposes only
 * operations a real user-mode attacker has: mapping memory, touching
 * it, timing/hammering rows *it owns pages in* (repeatedly accessing
 * its own virtual addresses opens those DRAM rows), and flushing the
 * TLB.  Physical-layout knowledge flows in only through the documented
 * real-world channels (deterministic allocator behaviour, templating).
 */

#ifndef CTAMEM_ATTACK_PRIMITIVES_HH
#define CTAMEM_ATTACK_PRIMITIVES_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "dram/hammer.hh"
#include "kernel/kernel.hh"

namespace ctamem::attack {

/** Cost model for attack-time accounting (Section 5 measurements). */
struct CostModel
{
    SimTime sprayFill = 184 * milliseconds;  //!< step (1) per page
    SimTime hammerPerRow = 64 * milliseconds;//!< step (2), one refresh
    SimTime checkPerPte = 600;               //!< step (3), memcmp (ns)
};

/** A DRAM row the attacker can aggress, with its owned pages. */
struct OwnedRow
{
    std::uint64_t bank;
    std::uint64_t row;                //!< logical in-bank row
    std::vector<VAddr> vaddrs;        //!< attacker pages in this row
};

/** The attacker's toolkit around one unprivileged process. */
class AttackerContext
{
  public:
    AttackerContext(kernel::Kernel &kernel, dram::RowHammerEngine &engine,
                    int pid)
        : kernel_(kernel), engine_(engine), pid_(pid)
    {}

    kernel::Kernel &kernel() { return kernel_; }
    dram::RowHammerEngine &engine() { return engine_; }
    int pid() const { return pid_; }

    SimTime elapsed() const { return elapsed_; }
    void charge(SimTime dt) { elapsed_ += dt; }

    /**
     * Map a shared file repeatedly: @p mappings mappings of
     * @p bytes_each bytes, touching the first page of each so the
     * kernel sprays page-table pages (the ProjectZero step 1).
     * @return the mapping base addresses.
     */
    std::vector<VAddr> sprayFileMappings(int fd, unsigned mappings,
                                         std::uint64_t bytes_each,
                                         const CostModel &cost);

    /**
     * DRAM rows in which this process currently owns at least one
     * mapped page, discovered by the access-pattern side channel.
     */
    std::vector<OwnedRow> ownedRows();

    /**
     * Hammer the row containing the attacker page @p vaddr for one
     * refresh window (single-sided: tight read loop on one row).
     */
    dram::HammerResult hammerOwnRow(VAddr vaddr, const CostModel &cost);

    /**
     * Double-sided hammer: requires attacker pages in rows v-1 and
     * v+1 of victim row @p victim_row.  The caller found such a
     * sandwich via findSandwiches().
     */
    dram::HammerResult hammerSandwich(std::uint64_t bank,
                                      std::uint64_t victim_row,
                                      const CostModel &cost);

    /**
     * Victim rows sandwiched between two attacker-owned rows: the
     * double-sided targets.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    findSandwiches();

    /** Flush the TLB so corrupted PTEs become visible (clflush). */
    void
    flushTlb()
    {
        kernel_.flushTlb();
    }

  private:
    kernel::Kernel &kernel_;
    dram::RowHammerEngine &engine_;
    int pid_;
    SimTime elapsed_ = 0;
};

} // namespace ctamem::attack

#endif // CTAMEM_ATTACK_PRIMITIVES_HH
