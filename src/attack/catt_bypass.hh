/**
 * @file
 * The two published bypasses of CATT-style kernel/user physical
 * isolation (Section 2.5 of the paper), as executable attacks:
 *
 *  1. Row re-mapping: a manufacturer-remapped user row is *device*-
 *     adjacent to kernel rows even though it is address-space-distant,
 *     so hammering it disturbs kernel page tables.
 *  2. Double-owned pages: device buffers (video memory and friends)
 *     are allocated in the kernel partition yet mapped user-writable,
 *     giving the attacker aggressor rows inside the kernel half.
 *
 * Both defeat CATT; neither defeats CTA (re-mapping preserves cell
 * type, and nothing user-accessible exists above the low water mark).
 */

#ifndef CTAMEM_ATTACK_CATT_BYPASS_HH
#define CTAMEM_ATTACK_CATT_BYPASS_HH

#include "attack/primitives.hh"
#include "attack/result.hh"
#include "kernel/kernel.hh"

namespace ctamem::attack {

/** Tunables shared by both bypasses. */
struct CattBypassConfig
{
    unsigned mappings = 256;  //!< PTE spray width
    std::uint64_t bytesPerMapping = 64 * KiB;
    unsigned maxRows = 64;    //!< aggressor rows to try
    CostModel cost;
};

/**
 * Re-mapping bypass.  @p remap_rows device rows adjacent to the
 * kernel's page-table rows are (pre-attack, by the "manufacturer")
 * swapped with rows the attacker can own.
 */
AttackResult runRemapBypass(kernel::Kernel &kernel,
                            dram::RowHammerEngine &engine,
                            unsigned remap_rows = 4,
                            const CattBypassConfig &config = {});

/** Double-owned (device-buffer) bypass. */
AttackResult runDoubleOwnedBypass(kernel::Kernel &kernel,
                                  dram::RowHammerEngine &engine,
                                  const CattBypassConfig &config = {});

} // namespace ctamem::attack

#endif // CTAMEM_ATTACK_CATT_BYPASS_HH
