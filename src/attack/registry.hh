/**
 * @file
 * Name-keyed attack runner registry.
 *
 * Every implemented attack registers one `AttackSpec` (canonical
 * manifest token, display name, and a runner closure over
 * kernel+engine).  `Machine::runAttack`, the Campaign engine, the
 * scenario manifests and `attack_lab` all dispatch through this table
 * instead of a hard-coded enum switch, so adding attack N+1 is one
 * registration, not an edit to the sim layer.
 *
 * `AttackKind` lives here (the attack layer) so the registry, the
 * parser and the sim layer share one definition; `sim::AttackKind`
 * remains a valid spelling via a using-declaration in machine.hh.
 */

#ifndef CTAMEM_ATTACK_REGISTRY_HH
#define CTAMEM_ATTACK_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "attack/result.hh"
#include "common/rng.hh"
#include "defense/registry.hh"
#include "fuzz/fuzzer.hh"

namespace ctamem::dram {
class RowHammerEngine;
} // namespace ctamem::dram

namespace ctamem::kernel {
class Kernel;
} // namespace ctamem::kernel

namespace ctamem::attack {

/** The attacks the matrix benches run. */
enum class AttackKind : std::uint8_t
{
    ProjectZero,       //!< probabilistic PTE spray [32]
    Drammer,           //!< deterministic templating [37]
    Algorithm1,        //!< the paper's CTA-tailored brute force
    RemapBypass,       //!< row re-mapping vs address-space isolation
    DoubleOwnedBypass, //!< device buffers inside the kernel zone
    UniformHammer,     //!< untimed whole-window double-sided passes
    SyncHammer,        //!< REF-synchronized pair (fixed "sync" family)
    FuzzHammer,        //!< replay the PatternFuzzer's best pattern
};

/** Human-readable attack name (the Table-1 row heading). */
const char *attackName(AttackKind kind);

/** Canonical manifest token (e.g. "projectzero"). */
const char *attackToken(AttackKind kind);

/**
 * Inverse of attackName/attackToken: accepts either spelling.
 * Returns nullopt for unknown names.
 */
std::optional<AttackKind> parseAttackKind(std::string_view name);

/**
 * Machine-level context handed to every attack runner.  Most attacks
 * only need kernel + engine; the timing-aware ones additionally read
 * the machine seed, which defense they are up against (the fuzzer
 * builds private observer replicas from the registry factory), and
 * the fuzz search configuration.
 */
struct AttackParams
{
    std::uint64_t seed = seeds::kMachine;
    defense::DefenseKind defense = defense::DefenseKind::None;
    defense::DefenseParams defenseParams;
    fuzz::FuzzParams fuzz;
};

/** One registered attack. */
struct AttackSpec
{
    AttackKind kind = AttackKind::ProjectZero;
    std::string name;    //!< canonical manifest token ("drammer")
    std::string display; //!< table heading ("Drammer templating")
    /** Run the attack against one built machine. */
    std::function<AttackResult(kernel::Kernel &,
                               dram::RowHammerEngine &,
                               const AttackParams &)>
        run;
};

/** The process-wide attack table (built-ins self-register). */
class Registry
{
  public:
    static Registry &instance();

    /** Register a spec; fatals on a duplicate kind or name. */
    void add(AttackSpec spec);

    const AttackSpec *find(AttackKind kind) const;
    /** Lookup by canonical token or display name. */
    const AttackSpec *find(std::string_view name) const;

    /** All specs, in registration order (stable addresses). */
    const std::vector<std::unique_ptr<AttackSpec>> &all() const
    {
        return specs_;
    }

  private:
    Registry() = default;

    std::vector<std::unique_ptr<AttackSpec>> specs_;
};

} // namespace ctamem::attack

#endif // CTAMEM_ATTACK_REGISTRY_HH
