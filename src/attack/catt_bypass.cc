#include "attack/catt_bypass.hh"

#include <map>
#include <set>

#include "attack/exploit.hh"
#include "common/log.hh"
#include "paging/arch.hh"

namespace ctamem::attack {

using kernel::Kernel;

namespace {

constexpr paging::PageFlags rwFlags{true, false, false};

/** Snapshot all present PTE words held in page-table frames. */
std::map<Addr, std::uint64_t>
snapshotTables(Kernel &kernel)
{
    const paging::Arch &arch = kernel.arch();
    std::map<Addr, std::uint64_t> snapshot;
    for (const auto &[pfn, level] : kernel.pageTableFrames()) {
        for (std::uint64_t slot = 0; slot < arch.entriesPerTable();
             ++slot) {
            const Addr addr = pfnToAddr(pfn) + slot * 8;
            const std::uint64_t raw = kernel.dram().readU64(addr);
            if (arch.present(raw))
                snapshot.emplace(addr, raw);
        }
    }
    return snapshot;
}

/** Count table words whose content changed since @p snapshot. */
std::uint64_t
countTableCorruption(Kernel &kernel,
                     const std::map<Addr, std::uint64_t> &snapshot)
{
    std::uint64_t corrupted = 0;
    for (const auto &[addr, old_raw] : snapshot) {
        if (kernel.dram().readU64(addr) != old_raw)
            ++corrupted;
    }
    return corrupted;
}

} // namespace

AttackResult
runRemapBypass(Kernel &kernel, dram::RowHammerEngine &engine,
               unsigned remap_rows, const CattBypassConfig &config)
{
    AttackResult result;
    const int pid = kernel.createProcess("remap-attacker");
    AttackerContext ctx(kernel, engine, pid);

    // The victim system has page tables: spray some so the kernel
    // partition holds a realistic population.
    const int fd = kernel.createFile(config.bytesPerMapping);
    std::vector<VAddr> mappings;
    for (unsigned i = 0; i < config.mappings; ++i) {
        const VAddr base = kernel.mmapFile(
            pid, fd, config.bytesPerMapping, rwFlags);
        if (base == 0 || !kernel.touchUser(pid, base))
            break;
        mappings.push_back(base);
    }

    // Attacker-owned aggressor arena (user partition).
    const VAddr arena = kernel.mmapAnon(pid, 4 * MiB, rwFlags);
    for (VAddr va = arena; va < arena + 4 * MiB;
         va += kernel.pageBytes())
        kernel.touchUser(pid, va);

    // "Manufacturer" re-mapping: swap attacker rows device-adjacent
    // to page-table rows (like-for-like cell types only).
    dram::DramModule &module = kernel.dram();
    std::set<std::pair<std::uint64_t, std::uint64_t>> pt_rows;
    for (const auto &[pfn, level] : kernel.pageTableFrames()) {
        const dram::Location loc = module.locate(pfnToAddr(pfn));
        pt_rows.insert({loc.bank,
                        module.deviceRow(loc.bank, loc.row)});
    }
    std::vector<OwnedRow> owned = ctx.ownedRows();
    std::size_t next_owned = 0;
    std::set<std::pair<std::uint64_t, std::uint64_t>> swapped;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> victims;
    unsigned remapped = 0;
    for (const auto &[bank, pt_device] : pt_rows) {
        if (remapped >= remap_rows)
            break;
        if (pt_device == 0 ||
            pt_device + 1 >= module.geometry().rowsPerBank()) {
            continue;
        }
        bool flanked = false;
        for (const std::uint64_t side : {pt_device - 1,
                                         pt_device + 1}) {
            if (pt_rows.contains({bank, side}))
                continue; // don't displace other tables
            if (swapped.contains({bank, side}))
                continue; // one swap per device row
            const dram::CellType side_type =
                module.cellMap().rowType(side);
            while (next_owned < owned.size()) {
                const OwnedRow &candidate = owned[next_owned];
                ++next_owned;
                if (candidate.bank != bank)
                    continue;
                const std::uint64_t cand_device =
                    module.deviceRow(candidate.bank, candidate.row);
                if (cand_device == side ||
                    swapped.contains({bank, cand_device})) {
                    continue;
                }
                if (module.cellMap().rowType(cand_device) != side_type)
                    continue;
                if (pt_rows.contains({bank, cand_device}))
                    continue;
                module.remapRow(bank, candidate.row, side);
                swapped.insert({bank, side});
                swapped.insert({bank, cand_device});
                flanked = true;
                break;
            }
        }
        if (flanked) {
            ++remapped;
            victims.emplace_back(bank,
                                 module.logicalRow(bank, pt_device));
        }
    }
    if (remapped == 0) {
        result.outcome = Outcome::Blocked;
        result.detail = "no like-for-like spare rows available";
        return result;
    }

    const auto snapshot = snapshotTables(kernel);

    // Hammer the page-table rows now flanked by re-mapped rows.
    for (const auto &[bank, victim] : victims) {
        const dram::HammerResult hammer =
            ctx.hammerSandwich(bank, victim, config.cost);
        ++result.hammerPasses;
        result.flipsInduced += hammer.total();
    }

    result.ptesCorrupted = countTableCorruption(kernel, snapshot);
    auto self_ref =
        detectSelfReference(kernel, pid, mappings,
                            config.bytesPerMapping);
    if (self_ref) {
        ++result.selfReferences;
        result.outcome = Outcome::SelfReference;
        if (escalate(kernel, pid, *self_ref, mappings,
                     config.bytesPerMapping)) {
            result.outcome = Outcome::Escalated;
            result.detail = "kernel secret read from user mode";
        }
    } else if (result.ptesCorrupted > 0) {
        // The isolation CATT promises is broken: user-driven hammering
        // corrupted kernel page tables through the re-mapping.
        result.outcome = Outcome::KernelCorrupted;
        result.detail = "kernel page tables corrupted through "
                        "re-mapped rows";
    } else {
        result.outcome = Outcome::NoCorruption;
        result.detail = "no kernel corruption induced";
    }
    result.attackTime = ctx.elapsed();
    return result;
}

AttackResult
runDoubleOwnedBypass(Kernel &kernel, dram::RowHammerEngine &engine,
                     const CattBypassConfig &config)
{
    AttackResult result;
    const int pid = kernel.createProcess("vbuf-attacker");
    AttackerContext ctx(kernel, engine, pid);

    // Interleave page-table sprays 1:1 with single-page device
    // buffers: in the kernel partition, table frames and double-owned
    // frames alternate, so a single downward flip in a double-owned
    // PTE's low pointer bit lands on a table frame.
    const int fd = kernel.createFile(config.bytesPerMapping);
    std::vector<VAddr> mappings;      //!< sprayed table mappings
    std::vector<VAddr> vbuf_windows;  //!< user windows onto vbuf pages
    for (unsigned i = 0; i < config.mappings; ++i) {
        const VAddr base = kernel.mmapFile(
            pid, fd, config.bytesPerMapping, rwFlags);
        if (base == 0 || !kernel.touchUser(pid, base))
            break;
        mappings.push_back(base);

        const int vbuf = kernel.createDeviceBuffer(kernel.pageBytes());
        const VAddr window =
            kernel.mmapFile(pid, vbuf, kernel.pageBytes(), rwFlags);
        if (window == 0 || !kernel.touchUser(pid, window))
            break;
        vbuf_windows.push_back(window);
    }
    ctx.charge(config.cost.sprayFill);

    const auto snapshot = snapshotTables(kernel);

    // The attacker's double-owned rows flank the table rows: hammer
    // every sandwich it owns (these include rows inside the kernel
    // partition — exactly what CATT assumed impossible).
    unsigned rows_hammered = 0;
    for (const auto &[bank, victim] : ctx.findSandwiches()) {
        if (rows_hammered >= config.maxRows)
            break;
        const dram::HammerResult hammer =
            ctx.hammerSandwich(bank, victim, config.cost);
        ++result.hammerPasses;
        result.flipsInduced += hammer.total();
        ++rows_hammered;
    }

    result.ptesCorrupted = countTableCorruption(kernel, snapshot);

    // The PTEs that matter are the double-owned windows': their frame
    // pointers live amid the page tables.
    std::vector<VAddr> scan = vbuf_windows;
    scan.insert(scan.end(), mappings.begin(), mappings.end());
    auto self_ref =
        detectSelfReference(kernel, pid, scan, kernel.pageBytes());
    if (self_ref) {
        ++result.selfReferences;
        result.outcome = Outcome::SelfReference;
        if (escalate(kernel, pid, *self_ref, scan,
                     config.bytesPerMapping)) {
            result.outcome = Outcome::Escalated;
            result.detail = "kernel secret read via double-owned "
                            "window";
        }
    } else if (result.ptesCorrupted > 0) {
        result.outcome = Outcome::KernelCorrupted;
        result.detail = "page tables corrupted from double-owned rows";
    } else {
        result.outcome = kernel.ptpZone() ? Outcome::Blocked :
                                            Outcome::NoCorruption;
        result.detail = kernel.ptpZone() ?
            "CTA: monotonic PTP pointers unreachable" :
            "no corruption induced";
    }
    result.attackTime = ctx.elapsed();
    return result;
}

} // namespace ctamem::attack
