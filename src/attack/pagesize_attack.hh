/**
 * @file
 * The Section 7 multi-page-size attack.
 *
 * With 2 MiB pages enabled, a PD entry with PS=1 maps *user data*.
 * In true-cells the PS bit's dominant flip direction is '1'->'0' —
 * which turns the entry into a pointer to a "page table" whose
 * contents are the attacker's own data, written in advance as crafted
 * PTEs aimed at ZONE_PTP (whose location at the top of memory is
 * architectural knowledge).  One flip hands the attacker a
 * user-writable window onto real page tables: single-level CTA does
 * not stop this, which is exactly why the paper prescribes
 * multi-level PTP zones plus PS-bit screening of candidate high-level
 * table frames.
 */

#ifndef CTAMEM_ATTACK_PAGESIZE_ATTACK_HH
#define CTAMEM_ATTACK_PAGESIZE_ATTACK_HH

#include "attack/primitives.hh"
#include "attack/result.hh"
#include "kernel/kernel.hh"

namespace ctamem::attack {

/** Tunables of the page-size attack. */
struct PageSizeAttackConfig
{
    unsigned sprayMappings = 64; //!< leaf-PT spray (targets in PTP)
    unsigned largeMappings = 64; //!< 2 MiB pages with crafted payloads
    /**
     * Row-sweep direction.  The attacker knows the kernel's
     * allocation order (an open-source OS, as the paper's threat
     * model grants Drammer), so it sweeps the zone in the order that
     * postpones the rows holding its own root tables: top-down for
     * single-level CTA (roots allocate bottom-up), bottom-up for
     * multi-level zones (roots live in the topmost partitions).
     */
    bool sweepFromTop = true;
    CostModel cost;
};

/**
 * Run the PS-bit attack against a CTA kernel.
 * @throws FatalError when @p kernel has no ZONE_PTP.
 */
AttackResult runPageSizeAttack(kernel::Kernel &kernel,
                               dram::RowHammerEngine &engine,
                               const PageSizeAttackConfig &config = {});

} // namespace ctamem::attack

#endif // CTAMEM_ATTACK_PAGESIZE_ATTACK_HH
