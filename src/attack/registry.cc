#include "attack/registry.hh"

#include "attack/algorithm1.hh"
#include "attack/catt_bypass.hh"
#include "attack/drammer.hh"
#include "attack/projectzero.hh"
#include "attack/sync_hammer.hh"
#include "common/log.hh"

namespace ctamem::attack {

namespace {

void
registerBuiltinAttacks(Registry &registry)
{
    registry.add(AttackSpec{
        AttackKind::ProjectZero, "projectzero",
        "PTE spray (ProjectZero)",
        [](kernel::Kernel &kernel, dram::RowHammerEngine &engine,
           const AttackParams &) {
            return runProjectZero(kernel, engine);
        }});
    registry.add(AttackSpec{
        AttackKind::Drammer, "drammer", "Drammer templating",
        [](kernel::Kernel &kernel, dram::RowHammerEngine &engine,
           const AttackParams &) {
            DrammerConfig config;
            config.arenaPages = 1024;
            return runDrammer(kernel, engine, config);
        }});
    registry.add(AttackSpec{
        AttackKind::Algorithm1, "algorithm1", "Algorithm 1 (anti-CTA)",
        [](kernel::Kernel &kernel, dram::RowHammerEngine &engine,
           const AttackParams &) {
            if (!kernel.ptpZone()) {
                // Algorithm 1 is defined against CTA machines only;
                // on others report the strictly stronger ProjectZero
                // result.
                return runProjectZero(kernel, engine);
            }
            return runAlgorithm1(kernel, engine);
        }});
    registry.add(AttackSpec{
        AttackKind::RemapBypass, "remap", "row-remap bypass",
        [](kernel::Kernel &kernel, dram::RowHammerEngine &engine,
           const AttackParams &) {
            return runRemapBypass(kernel, engine);
        }});
    registry.add(AttackSpec{
        AttackKind::DoubleOwnedBypass, "doubleowned",
        "double-owned bypass",
        [](kernel::Kernel &kernel, dram::RowHammerEngine &engine,
           const AttackParams &) {
            return runDoubleOwnedBypass(kernel, engine);
        }});
    registry.add(AttackSpec{
        AttackKind::UniformHammer, "uniform", "uniform hammer",
        [](kernel::Kernel &kernel, dram::RowHammerEngine &engine,
           const AttackParams &params) {
            return runUniformHammer(kernel, engine, params);
        }});
    registry.add(AttackSpec{
        AttackKind::SyncHammer, "sync_hammer", "REF-sync hammer",
        [](kernel::Kernel &kernel, dram::RowHammerEngine &engine,
           const AttackParams &params) {
            return runSyncHammer(kernel, engine, params);
        }});
    registry.add(AttackSpec{
        AttackKind::FuzzHammer, "fuzz_hammer",
        "fuzzed hammer (Blacksmith-style)",
        [](kernel::Kernel &kernel, dram::RowHammerEngine &engine,
           const AttackParams &params) {
            return runFuzzHammer(kernel, engine, params);
        }});
}

} // namespace

Registry &
Registry::instance()
{
    static Registry *registry = [] {
        auto *r = new Registry;
        registerBuiltinAttacks(*r);
        return r;
    }();
    return *registry;
}

void
Registry::add(AttackSpec spec)
{
    for (const auto &existing : specs_) {
        if (existing->kind == spec.kind ||
            existing->name == spec.name) {
            fatal("attack registry: duplicate registration of \"",
                  spec.name, "\"");
        }
    }
    specs_.push_back(std::make_unique<AttackSpec>(std::move(spec)));
}

const AttackSpec *
Registry::find(AttackKind kind) const
{
    for (const auto &spec : specs_)
        if (spec->kind == kind)
            return spec.get();
    return nullptr;
}

const AttackSpec *
Registry::find(std::string_view name) const
{
    for (const auto &spec : specs_)
        if (spec->name == name || spec->display == name)
            return spec.get();
    return nullptr;
}

const char *
attackName(AttackKind kind)
{
    const AttackSpec *spec = Registry::instance().find(kind);
    return spec ? spec->display.c_str() : "?";
}

const char *
attackToken(AttackKind kind)
{
    const AttackSpec *spec = Registry::instance().find(kind);
    return spec ? spec->name.c_str() : "?";
}

std::optional<AttackKind>
parseAttackKind(std::string_view name)
{
    const AttackSpec *spec = Registry::instance().find(name);
    if (!spec)
        return std::nullopt;
    return spec->kind;
}

} // namespace ctamem::attack
