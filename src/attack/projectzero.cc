#include "attack/projectzero.hh"

#include "attack/exploit.hh"
#include "common/log.hh"

namespace ctamem::attack {

using kernel::Kernel;

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Escalated: return "ESCALATED";
      case Outcome::SelfReference: return "SELF-REFERENCE";
      case Outcome::KernelCorrupted: return "KERNEL-CORRUPTED";
      case Outcome::NoCorruption: return "NO-CORRUPTION";
      case Outcome::Detected: return "DETECTED";
      case Outcome::Blocked: return "BLOCKED";
    }
    return "?";
}

std::optional<Outcome>
parseOutcome(std::string_view name)
{
    for (const Outcome outcome :
         {Outcome::Escalated, Outcome::SelfReference,
          Outcome::KernelCorrupted, Outcome::NoCorruption,
          Outcome::Detected, Outcome::Blocked}) {
        if (name == outcomeName(outcome))
            return outcome;
    }
    return std::nullopt;
}

AttackResult
runProjectZero(Kernel &kernel, dram::RowHammerEngine &engine,
               const ProjectZeroConfig &config)
{
    AttackResult result;
    const int pid = kernel.createProcess("pz-attacker");
    AttackerContext ctx(kernel, engine, pid);

    // Step 1: spray page tables with interleaved aggressor pages.
    const int fd = kernel.createFile(config.bytesPerMapping);
    const paging::PageFlags rw{true, false, false};
    std::vector<VAddr> mappings;
    mappings.reserve(config.mappings);
    for (unsigned i = 0; i < config.mappings; ++i) {
        const VAddr base =
            kernel.mmapFile(pid, fd, config.bytesPerMapping, rw);
        if (base == 0 || !kernel.touchUser(pid, base))
            break;
        mappings.push_back(base);
        // Interleave attacker-owned pages between table allocations
        // so the buddy allocator packs aggressor frames next to
        // page-table frames.
        if (config.anonPagesPerMapping > 0) {
            const VAddr anon = kernel.mmapAnon(
                pid, config.anonPagesPerMapping * kernel.pageBytes(),
                rw);
            for (unsigned page = 0; page < config.anonPagesPerMapping;
                 ++page) {
                kernel.touchUser(pid,
                                 anon + page * kernel.pageBytes());
            }
        }
    }
    ctx.charge(config.cost.sprayFill);
    if (mappings.empty()) {
        result.outcome = Outcome::Blocked;
        result.detail = "spray produced no mappings";
        return result;
    }

    // Steps 2+3: hammer sandwiched rows, then look for corruption.
    const auto sandwiches = ctx.findSandwiches();
    const std::uint64_t check_cost =
        config.cost.checkPerPte * mappings.size() *
        (config.bytesPerMapping / kernel.pageBytes());
    bool suppressed_everything = true;

    for (unsigned pass = 0; pass < config.maxPasses; ++pass) {
        if (sandwiches.empty()) {
            // No double-sided targets: single-sided on every row.
            for (const OwnedRow &row : ctx.ownedRows()) {
                const dram::HammerResult hammer =
                    ctx.hammerOwnRow(row.vaddrs.front(), config.cost);
                ++result.hammerPasses;
                result.flipsInduced += hammer.total();
                suppressed_everything &= hammer.suppressed;
            }
        } else {
            for (const auto &[bank, victim] : sandwiches) {
                const dram::HammerResult hammer =
                    ctx.hammerSandwich(bank, victim, config.cost);
                ++result.hammerPasses;
                result.flipsInduced += hammer.total();
                suppressed_everything &= hammer.suppressed;
            }
        }

        ctx.charge(check_cost);
        auto self_ref = detectSelfReference(
            kernel, pid, mappings, config.bytesPerMapping);
        if (self_ref) {
            ++result.selfReferences;
            result.outcome = Outcome::SelfReference;
            result.detail = "self-reference at attacker vaddr";
            if (escalate(kernel, pid, *self_ref, mappings,
                         config.bytesPerMapping)) {
                result.outcome = Outcome::Escalated;
                result.detail =
                    "kernel secret read from user mode";
            }
            break;
        }
        if (result.flipsInduced == 0 && pass >= 2)
            break; // nothing is flipping; deterministic -> give up
    }

    if (result.outcome == Outcome::NoCorruption &&
        result.hammerPasses > 0 && suppressed_everything) {
        result.outcome = Outcome::Detected;
        result.detail = "every hammer pass was mitigated";
    }
    result.attackTime = ctx.elapsed();
    return result;
}

} // namespace ctamem::attack
