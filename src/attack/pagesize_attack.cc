#include "attack/pagesize_attack.hh"

#include <algorithm>

#include "attack/exploit.hh"
#include "common/log.hh"
#include "paging/arch.hh"

namespace ctamem::attack {

using kernel::Kernel;

AttackResult
runPageSizeAttack(Kernel &kernel, dram::RowHammerEngine &engine,
                  const PageSizeAttackConfig &config)
{
    const cta::PtpZone *ptp = kernel.ptpZone();
    if (!ptp)
        fatal("the page-size attack targets CTA systems; boot with "
              "AllocPolicy::Cta");

    AttackResult result;
    const int pid = kernel.createProcess("ps-attacker");
    AttackerContext ctx(kernel, engine, pid);
    const paging::PageFlags rw{true, false, false};

    // Populate ZONE_PTP with leaf tables worth hijacking.
    const int fd = kernel.createFile(64 * KiB);
    for (unsigned i = 0; i < config.sprayMappings; ++i) {
        const VAddr base = kernel.mmapFile(pid, fd, 64 * KiB, rw);
        if (base == 0 || !kernel.touchUser(pid, base))
            break;
    }

    // Large pages whose first table-granule holds crafted PTEs
    // sweeping the top-of-memory region where ZONE_PTP
    // architecturally lives.
    const paging::Arch &arch = kernel.arch();
    const std::uint64_t block_bytes = arch.levelCoverage(2);
    const std::uint64_t capacity = kernel.dram().geometry().capacity();
    const Pfn sweep_base =
        addrToPfn(capacity - 2 * ptp->trueBytes() -
                  ptp->skippedAntiBytes());
    const Pfn sweep_frames = addrToPfn(capacity) - sweep_base;
    // Place the large pages in a distant VA region: their page
    // directory is then allocated *after* the spray, several DRAM
    // rows away from the attacker's own upper tables — hammering the
    // PD row does not saw off the branch the attacker sits on.
    constexpr VAddr largeRegion = 0x0000'0020'0000'0000ULL;
    std::vector<VAddr> large_bases;
    for (unsigned m = 0; m < config.largeMappings; ++m) {
        const VAddr base = kernel.mmapAnonLarge(
            pid, rw, 2, largeRegion + m * block_bytes);
        if (base == 0)
            break;
        large_bases.push_back(base);
        // Stride the sweep so every mapping's slots span the whole
        // top region: whichever PD entry flips, its window contains
        // page-table frames.
        const Pfn stride = std::max<Pfn>(
            1, sweep_frames / arch.entriesPerTable());
        for (std::uint64_t slot = 0; slot < arch.entriesPerTable();
             ++slot) {
            const Pfn target =
                sweep_base + (slot * stride + m) % sweep_frames;
            const std::uint64_t crafted = arch.makeLeaf(
                target, paging::PageFlags{true, true}, 1);
            kernel.writeUser(pid, base + slot * 8, crafted);
        }
    }
    ctx.charge(config.cost.sprayFill);
    if (large_bases.empty()) {
        result.outcome = Outcome::Blocked;
        result.detail = "no large pages available";
        return result;
    }

    // Hammer ZONE_PTP one row at a time, checking after every pass
    // (exactly Algorithm 1's loop structure): at simulation-scale
    // flip rates, blanket hammering would also corrupt the
    // attacker's own PML4/PDPT and sever the very mappings used for
    // detection.  A real attacker faces the same self-destruction
    // hazard and likewise checks per row; sweeping from the bottom
    // of the zone upward postpones the rows holding the oldest
    // (root) tables to the end.
    const std::uint64_t row_bytes = kernel.dram().geometry().rowBytes();
    std::vector<Addr> rows;
    for (const mm::FrameSpan &span : ptp->subZones()) {
        for (Addr row = pfnToAddr(span.basePfn);
             row < pfnToAddr(span.endPfn()); row += row_bytes) {
            rows.push_back(row);
        }
    }
    if (config.sweepFromTop)
        std::reverse(rows.begin(), rows.end());
    std::optional<SelfReference> self_ref;
    for (auto it = rows.begin(); it != rows.end() && !self_ref;
         ++it) {
        const dram::Location loc = kernel.dram().locate(*it);
        const dram::HammerResult hammer =
            engine.hammerDoubleSided(loc.bank, loc.row);
        result.flipsInduced += hammer.total();
        ++result.hammerPasses;
        ctx.charge(config.cost.hammerPerRow);

        // A flipped PS bit exposes the crafted window: the large
        // region now reads page-table (or other ZONE_PTP) content.
        ctx.flushTlb();
        self_ref = detectSelfReference(kernel, pid, large_bases,
                                       block_bytes);
        ctx.charge(config.cost.checkPerPte * large_bases.size() *
                   arch.entriesPerTable());
    }
    if (self_ref) {
        ++result.selfReferences;
        result.outcome = Outcome::SelfReference;
        result.detail = "PS-bit flip exposed ZONE_PTP through a "
                        "crafted large page";
        if (escalate(kernel, pid, *self_ref, large_bases,
                     block_bytes)) {
            result.outcome = Outcome::Escalated;
            result.detail = "kernel secret read via hijacked PS bit";
        }
    } else {
        result.outcome = Outcome::Blocked;
        result.detail =
            ptp->screenedFrames() > 0 ?
                "PS-bit screening left no exploitable PD frames" :
                "no PS bit flipped on this module";
    }
    result.attackTime = ctx.elapsed();
    return result;
}

} // namespace ctamem::attack
