/**
 * @file
 * The paper's Algorithm 1: the strongest probabilistic attack against
 * a CTA-protected system.
 *
 * The attacker fills ZONE_PTP with page tables whose PTEs all point
 * at one physical page, hammers every ZONE_PTP row (activating a row
 * means translating through PTEs stored in it, TLB flushed between
 * accesses), and checks all PTEs for the self-reference property.
 * With monotonic pointers in true-cells this fails; the run reports
 * the empirical evidence (corrupted PTEs all moved downward) and the
 * modeled attack time for the full brute-force loop.
 */

#ifndef CTAMEM_ATTACK_ALGORITHM1_HH
#define CTAMEM_ATTACK_ALGORITHM1_HH

#include "attack/primitives.hh"
#include "attack/result.hh"
#include "kernel/kernel.hh"

namespace ctamem::attack {

/** Tunables of the Algorithm 1 run. */
struct Algorithm1Config
{
    unsigned maxMappings = 8192; //!< spray cap (ZONE_PTP usually fills)
    CostModel cost;
};

/** Extra evidence collected by the run. */
struct Algorithm1Evidence
{
    std::uint64_t ptesBefore = 0;     //!< present leaf PTEs snapshot
    std::uint64_t ptesCorrupted = 0;  //!< pointer changed by hammering
    std::uint64_t pointersMovedDown = 0;
    std::uint64_t pointersMovedUp = 0; //!< would-be violations
    std::uint64_t selfReferences = 0;
};

/**
 * Run Algorithm 1 against a CTA-booted kernel.
 * @throws FatalError when @p kernel has no ZONE_PTP.
 */
AttackResult runAlgorithm1(kernel::Kernel &kernel,
                           dram::RowHammerEngine &engine,
                           const Algorithm1Config &config = {},
                           Algorithm1Evidence *evidence = nullptr);

} // namespace ctamem::attack

#endif // CTAMEM_ATTACK_ALGORITHM1_HH
