#include "attack/drammer.hh"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "attack/exploit.hh"
#include "common/log.hh"
#include "paging/arch.hh"

namespace ctamem::attack {

using kernel::Kernel;

namespace {

constexpr VAddr arenaBase = 0x0000'0040'0000'0000ULL;
constexpr paging::PageFlags rwFlags{true, false, false};
constexpr Addr noFrame = ~0ULL;

} // namespace

TemplateReport
templateMemory(Kernel &kernel, dram::RowHammerEngine &engine,
               const DrammerConfig &config, int *out_pid)
{
    const int pid = kernel.createProcess("drammer");
    if (out_pid)
        *out_pid = pid;
    AttackerContext ctx(kernel, engine, pid);

    // Page-granular arena: each page is its own VMA so single frames
    // can be released during the massaging phase.  Large granules can
    // run the machine out of memory mid-arena; whatever was mapped by
    // then is arena enough.
    const std::uint64_t page_bytes = kernel.pageBytes();
    for (std::uint64_t i = 0; i < config.arenaPages; ++i) {
        const VAddr va = arenaBase + i * page_bytes;
        if (kernel.mmapAnon(pid, page_bytes, rwFlags, va) == 0)
            break;
        if (!kernel.touchUser(pid, va))
            break;
    }

    TemplateReport report;
    std::vector<dram::FlipEvent> phase_events;
    std::vector<dram::FlipEvent> *const outer_sink = engine.eventSink();
    for (const std::uint64_t pattern : {~0ULL, 0ULL}) {
        // Fill.  One write per page goes through the MMU so the PTE
        // keeps the accessed/dirty side effects of a full-page fill
        // (those bits are per page, so one walk sets what 512 walks
        // would); the remaining slots are patterned through the
        // module directly.
        std::vector<Addr> filled(config.arenaPages, noFrame);
        for (std::uint64_t i = 0; i < config.arenaPages; ++i) {
            const kernel::UserAccess access = kernel.writeUser(
                pid, arenaBase + i * page_bytes, pattern);
            if (!access)
                continue;
            for (std::uint64_t slot = 1; slot < page_bytes / 8;
                 ++slot)
                kernel.dram().writeU64(access.phys + slot * 8,
                                       pattern);
            filled[i] = access.phys;
        }

        // Hammer with the engine's flip stream routed into this
        // phase's buffer (chained to any sink the caller installed).
        phase_events.clear();
        engine.setEventSink(&phase_events);
        for (const auto &[bank, victim] : ctx.findSandwiches()) {
            ctx.hammerSandwich(bank, victim, config.cost);
            ++report.hammeredRows;
        }
        engine.setEventSink(outer_sink);
        if (outer_sink)
            outer_sink->insert(outer_sink->end(),
                               phase_events.begin(),
                               phase_events.end());
        kernel.flushTlb();

        // Scan.  A cell flips at most once per phase (its direction
        // is fixed and a flipped cell no longer stores the value the
        // flip consumes), so over a frame that still holds the fill
        // pattern the engine's flip events ARE the memcmp diff — no
        // per-slot re-read needed.  Group them by frame in the
        // (slot, bit) order the scalar scan reported.
        std::unordered_map<
            Addr, std::vector<std::pair<std::uint64_t, unsigned>>>
            flips_in;
        for (const dram::FlipEvent &event : phase_events) {
            const Addr frame = event.addr & ~(page_bytes - 1);
            flips_in[frame].emplace_back(
                (event.addr & (page_bytes - 1)) / 8,
                static_cast<unsigned>(event.addr % 8) * 8 +
                    event.bit);
        }
        for (auto &[frame, flips] : flips_in)
            std::sort(flips.begin(), flips.end());

        for (std::uint64_t i = 0; i < config.arenaPages; ++i) {
            const VAddr page = arenaBase + i * page_bytes;
            const kernel::UserAccess head = kernel.readUser(pid, page);
            if (!head)
                continue;
            if (head.phys == filled[i]) {
                const auto it = flips_in.find(head.phys);
                if (it == flips_in.end())
                    continue;
                for (const auto &[slot, bit] : it->second) {
                    report.templates.push_back(FlipTemplate{
                        page, addrToPfn(head.phys), slot, bit,
                        /*downward=*/pattern == ~0ULL});
                }
                continue;
            }
            // The page no longer resolves to the frame this phase
            // patterned (fill faulted, or a flipped PTE re-pointed
            // the translation): fall back to the full content diff
            // of the scalar scan.
            for (std::uint64_t slot = 0; slot < page_bytes / 8;
                 ++slot) {
                const kernel::UserAccess access =
                    kernel.readUser(pid, page + slot * 8);
                if (!access || access.value == pattern)
                    continue;
                const std::uint64_t diff = access.value ^ pattern;
                for (unsigned bit = 0; bit < 64; ++bit) {
                    if (!((diff >> bit) & 1))
                        continue;
                    report.templates.push_back(FlipTemplate{
                        page, addrToPfn(access.phys), slot, bit,
                        /*downward=*/pattern == ~0ULL});
                }
            }
        }
    }
    return report;
}

AttackResult
runDrammer(Kernel &kernel, dram::RowHammerEngine &engine,
           const DrammerConfig &config)
{
    AttackResult result;
    int pid = -1;
    TemplateReport report = templateMemory(kernel, engine, config,
                                           &pid);
    AttackerContext ctx(kernel, engine, pid);
    result.flipsInduced = report.templates.size();
    result.hammerPasses = report.hammeredRows;

    // Current frame -> arena vaddr for pages still mapped.
    const paging::Arch &arch = kernel.arch();
    const std::uint64_t page_bytes = kernel.pageBytes();
    std::map<Pfn, VAddr> frame_of;
    for (std::uint64_t i = 0; i < config.arenaPages; ++i) {
        const VAddr va = arenaBase + i * page_bytes;
        const kernel::UserAccess access = kernel.readUser(pid, va);
        if (access)
            frame_of[addrToPfn(access.phys)] = va;
    }

    unsigned tried = 0;
    for (const FlipTemplate &tmpl : report.templates) {
        if (tried >= config.maxTemplates)
            break;
        // Only flips inside the PTE frame-pointer field with a small
        // frame delta are usable for the self-map construction.
        if (tmpl.bit < arch.pointerLo || tmpl.bit > 30)
            continue;
        // Pointer-field bit j selects granule number bit j; in the
        // global 4 KiB frame unit that is a run of granuleFrames().
        const unsigned j = tmpl.bit - arch.pointerLo;
        const Pfn delta = arch.granuleFrames() << j;
        const Pfn table_frame = tmpl.frame;
        // Data frame the templated PTE must point at so that the
        // flip redirects it onto the table itself.
        const bool table_bit_set =
            (table_frame >> (j + arch.tableOrder())) & 1;
        if (tmpl.downward == table_bit_set)
            continue; // carry would break the single-bit arithmetic
        const Pfn data_frame = tmpl.downward ? table_frame + delta :
                                               table_frame - delta;

        auto table_page = frame_of.find(table_frame);
        auto data_page = frame_of.find(data_frame);
        if (table_page == frame_of.end() ||
            data_page == frame_of.end()) {
            continue; // attacker does not own both frames
        }
        ++tried;

        // --- Phys Feng Shui ---
        // One leaf table's worth of file span, so the templated slot
        // falls inside the mapping whatever the granule.
        const std::uint64_t span = arch.levelCoverage(2);
        const int fd = kernel.createFile(span);
        const std::uint64_t warm_slot = tmpl.slot == 0 ? 1 : 0;
        const VAddr scratch =
            kernel.mmapFile(pid, fd, span, rwFlags);
        // Pre-warm one file page so the next fault allocates only a
        // page-table frame.
        kernel.touchUser(pid, scratch + warm_slot * page_bytes);

        // Free the templated frame; the kernel's next table
        // allocation grabs it (lowest-address-first buddy)...
        kernel.munmap(pid, table_page->second);
        frame_of.erase(table_page);
        const VAddr target =
            kernel.mmapFile(pid, fd, span, rwFlags);
        kernel.touchUser(pid, target + warm_slot * page_bytes);

        // ...then free the partner frame for the data page of the
        // templated slot.
        kernel.munmap(pid, data_page->second);
        frame_of.erase(data_page);
        kernel.touchUser(pid, target + tmpl.slot * page_bytes);

        // --- Re-hammer the templated row: the flip is reproducible.
        const dram::Location loc =
            kernel.dram().locate(pfnToAddr(table_frame));
        const dram::HammerResult hammer =
            ctx.hammerSandwich(loc.bank, loc.row, config.cost);
        ++result.hammerPasses;
        result.flipsInduced += hammer.total();

        const std::vector<VAddr> window{target};
        auto self_ref =
            detectSelfReference(kernel, pid, window, span);
        if (self_ref) {
            ++result.selfReferences;
            result.outcome = Outcome::SelfReference;
            result.detail = "deterministic self-reference";
            if (escalate(kernel, pid, *self_ref, window, span)) {
                result.outcome = Outcome::Escalated;
                result.detail = "deterministic escalation via "
                                "templated flip";
            }
            result.attackTime = ctx.elapsed();
            return result;
        }
        kernel.munmap(pid, target);
        kernel.munmap(pid, scratch);
    }

    result.outcome = tried == 0 && report.templates.empty() ?
                         Outcome::NoCorruption :
                         Outcome::Blocked;
    result.detail = kernel.ptpZone() ?
        "CTA: page tables unreachable by templated placement" :
        "no exploitable template fired";
    result.attackTime = ctx.elapsed();
    return result;
}

} // namespace ctamem::attack
