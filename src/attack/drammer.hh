/**
 * @file
 * Deterministic RowHammer attack in the style of Drammer (van der
 * Veen et al., CCS'16 — reference [37] of the paper).
 *
 * Phase 1, *memory templating*: the attacker fills a page-granular
 * arena with known patterns, double-side-hammers its own rows, and
 * records every reproducible flip (location + direction).  Flips are
 * a fixed physical property of the module, so a template found once
 * fires every time.
 *
 * Phase 2, *placement massaging* (Phys Feng Shui): using the buddy
 * allocator's deterministic lowest-address-first behaviour, the
 * attacker frees exactly the right frames and triggers kernel
 * allocations so that (a) a leaf page table lands on a templated
 * frame B and (b) the PTE in the templated slot points to a data
 * frame P where the templated flip turns P into B — a *deterministic*
 * PTE self-reference.
 *
 * Phase 3: re-hammer, detect, escalate.
 *
 * Against CTA the placement step is structurally impossible: page
 * tables only ever come from ZONE_PTP, which the attacker can neither
 * template (Property 1 of the low water mark) nor steer allocations
 * into.
 */

#ifndef CTAMEM_ATTACK_DRAMMER_HH
#define CTAMEM_ATTACK_DRAMMER_HH

#include <cstdint>
#include <vector>

#include "attack/primitives.hh"
#include "attack/result.hh"
#include "kernel/kernel.hh"

namespace ctamem::attack {

/** One reproducible flip found by templating. */
struct FlipTemplate
{
    VAddr vaddr;          //!< arena page the flip was observed in
    Pfn frame;            //!< physical frame at templating time
    std::uint64_t slot;   //!< 8-byte slot within the page (PTE slot)
    unsigned bit;         //!< bit within the 64-bit slot
    bool downward;        //!< true: '1'->'0'; false: '0'->'1'
};

/** Tunables of the deterministic attack. */
struct DrammerConfig
{
    std::uint64_t arenaPages = 2048; //!< templating arena size
    unsigned maxTemplates = 32;      //!< exploitable templates to try
    CostModel cost;
};

/** Phase-1 result, exposed for tests and benches. */
struct TemplateReport
{
    std::vector<FlipTemplate> templates;
    std::uint64_t hammeredRows = 0;
};

/**
 * Run only the templating phase from a fresh process.
 * The arena stays mapped in @p out_pid's address space.
 */
TemplateReport templateMemory(kernel::Kernel &kernel,
                              dram::RowHammerEngine &engine,
                              const DrammerConfig &config,
                              int *out_pid = nullptr);

/** Run the full deterministic attack. */
AttackResult runDrammer(kernel::Kernel &kernel,
                        dram::RowHammerEngine &engine,
                        const DrammerConfig &config = {});

} // namespace ctamem::attack

#endif // CTAMEM_ATTACK_DRAMMER_HH
