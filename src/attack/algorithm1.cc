#include "attack/algorithm1.hh"

#include <map>

#include "attack/exploit.hh"
#include "common/bitops.hh"
#include "common/log.hh"
#include "cta/theorem.hh"
#include "paging/arch.hh"

namespace ctamem::attack {

using kernel::Kernel;

AttackResult
runAlgorithm1(Kernel &kernel, dram::RowHammerEngine &engine,
              const Algorithm1Config &config,
              Algorithm1Evidence *evidence)
{
    const cta::PtpZone *ptp = kernel.ptpZone();
    if (!ptp)
        fatal("Algorithm 1 targets a CTA system; boot with "
              "AllocPolicy::Cta");

    AttackResult result;
    const int pid = kernel.createProcess("alg1-attacker");
    AttackerContext ctx(kernel, engine, pid);

    // Step (1): fill ZONE_PTP with PTEs pointing at one shared page.
    const int fd = kernel.createFile(64 * KiB);
    const std::vector<VAddr> mappings = ctx.sprayFileMappings(
        fd, config.maxMappings, 64 * KiB, config.cost);
    if (mappings.empty()) {
        result.outcome = Outcome::Blocked;
        result.detail = "spray failed";
        return result;
    }

    // Snapshot every present leaf PTE in ZONE_PTP.
    const paging::Arch &arch = kernel.arch();
    std::map<Addr, std::uint64_t> before;
    for (const auto &[pfn, level] : kernel.pageTableFrames()) {
        if (level != 1 || !ptp->contains(pfn))
            continue;
        for (std::uint64_t slot = 0; slot < arch.entriesPerTable();
             ++slot) {
            const Addr addr = pfnToAddr(pfn) + slot * 8;
            const std::uint64_t raw = kernel.dram().readU64(addr);
            if (arch.present(raw))
                before.emplace(addr, raw);
        }
    }

    // Step (2): hammer every row of ZONE_PTP (repeatedly translating
    // through PTEs in a row, TLB flushed, activates that row).
    for (const mm::FrameSpan &span : ptp->subZones()) {
        const Addr base = pfnToAddr(span.basePfn);
        const Addr end = pfnToAddr(span.endPfn());
        const std::uint64_t row_bytes =
            kernel.dram().geometry().rowBytes();
        for (Addr row = base; row < end; row += row_bytes) {
            const dram::Location loc = kernel.dram().locate(row);
            engine.hammerRow(loc.bank, loc.row);
            ctx.charge(config.cost.hammerPerRow);
            ++result.hammerPasses;
        }
    }
    ctx.flushTlb();

    // Step (3): check all PTEs for self-reference; also collect the
    // monotonicity evidence the theorem predicts.  The engine's mask
    // profiles tell us which 64-bit words contain any vulnerable cell
    // at all: a word with an empty mask cannot have changed, so its
    // re-read is skipped outright — the attacker's memcmp cost is
    // still charged in full below.
    Algorithm1Evidence local;
    local.ptesBefore = before.size();
    const Addr lwm = ptp->lowWaterMark();
    const std::uint64_t row_bytes =
        kernel.dram().geometry().rowBytes();
    const dram::RowVulnProfile *profile = nullptr;
    std::size_t word_ptr = 0;
    for (const auto &[addr, old_raw] : before) {
        if (!profile || addr < profile->base ||
            addr >= profile->base + row_bytes) {
            const dram::Location loc = kernel.dram().locate(addr);
            const std::uint64_t device =
                kernel.dram().deviceRow(loc.bank, loc.row);
            profile = &engine.rowProfile(loc.bank, device);
            word_ptr = 0;
        }
        const auto word =
            static_cast<std::uint32_t>((addr - profile->base) / 8);
        while (word_ptr < profile->words.size() &&
               profile->words[word_ptr].word < word) {
            ++word_ptr; // `before` ascends, so this never rewinds
        }
        if (word_ptr >= profile->words.size() ||
            profile->words[word_ptr].word != word) {
            continue; // no vulnerable cell in this word: unchanged
        }
        const std::uint64_t new_raw = kernel.dram().readU64(addr);
        if (new_raw == old_raw)
            continue;
        ++local.ptesCorrupted;
        result.flipsInduced +=
            hammingDistance(new_raw, old_raw);
        if (arch.pfn(new_raw) < arch.pfn(old_raw))
            ++local.pointersMovedDown;
        else if (arch.pfn(new_raw) > arch.pfn(old_raw))
            ++local.pointersMovedUp;
        if (arch.present(new_raw) &&
            pfnToAddr(arch.pfn(new_raw)) >= lwm)
            ++local.selfReferences;
    }
    result.ptesCorrupted = local.ptesCorrupted;
    result.selfReferences = local.selfReferences;
    ctx.charge(config.cost.checkPerPte * before.size());

    if (local.selfReferences > 0) {
        auto self_ref =
            detectSelfReference(kernel, pid, mappings, 64 * KiB);
        if (self_ref &&
            escalate(kernel, pid, *self_ref, mappings, 64 * KiB)) {
            result.outcome = Outcome::Escalated;
            result.detail = "CTA breached (statistically expected in "
                            "~1 of 2e5 systems)";
        } else {
            result.outcome = Outcome::SelfReference;
            result.detail = "self-reference present but not "
                            "exploitable";
        }
    } else {
        result.outcome = Outcome::Blocked;
        result.detail = "all corrupted pointers moved downward; no "
                        "self-reference possible";
    }

    if (evidence)
        *evidence = local;
    result.attackTime = ctx.elapsed();
    return result;
}

} // namespace ctamem::attack
