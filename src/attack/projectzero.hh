/**
 * @file
 * The probabilistic PTE-spray privilege-escalation attack (Seaborn &
 * Dullien, ProjectZero 2015 — reference [32] of the paper).
 *
 * The attacker maps one file a great many times (each mapping forces
 * the kernel to allocate a fresh leaf page table), interleaving its
 * own anonymous pages so the buddy allocator lays attacker rows and
 * page-table rows side by side.  It then double-side-hammers the
 * sandwiched rows, flushes the TLB, and scans its mappings for a PTE
 * whose frame pointer was flipped into a page-table page — the PTE
 * self-reference that hands it the machine.
 */

#ifndef CTAMEM_ATTACK_PROJECTZERO_HH
#define CTAMEM_ATTACK_PROJECTZERO_HH

#include "attack/primitives.hh"
#include "attack/result.hh"
#include "kernel/kernel.hh"

namespace ctamem::attack {

/** Tunables of the spray attack. */
struct ProjectZeroConfig
{
    unsigned mappings = 512;          //!< spray width
    std::uint64_t bytesPerMapping = 64 * KiB;
    unsigned anonPagesPerMapping = 2; //!< interleaved aggressor pages
    unsigned maxPasses = 8;           //!< hammer/check iterations
    CostModel cost;
};

/**
 * Run the attack against @p kernel from a fresh unprivileged process.
 * Deterministic given the kernel's DRAM seed.
 */
AttackResult runProjectZero(kernel::Kernel &kernel,
                            dram::RowHammerEngine &engine,
                            const ProjectZeroConfig &config = {});

} // namespace ctamem::attack

#endif // CTAMEM_ATTACK_PROJECTZERO_HH
