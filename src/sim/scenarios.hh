/**
 * @file
 * Shared scenario presets: the canonical defense lists, attack lists
 * and campaign grids the benches, examples and checked-in manifests
 * all draw from.
 *
 * Each preset campaign here has a matching manifest under
 * `scenarios/` at the repo root; the scenario tests assert the two
 * stay cell-for-cell identical, so editing a preset means editing its
 * manifest too (and vice versa).  Benches render from these presets
 * instead of hand-rolling their own defense/attack vectors, keeping
 * the printed tables and the manifests in lockstep.
 */

#ifndef CTAMEM_SIM_SCENARIOS_HH
#define CTAMEM_SIM_SCENARIOS_HH

#include <vector>

#include "kernel/kernel.hh"
#include "sim/campaign.hh"

namespace ctamem::sim::scenarios {

/** @name Table-1 attack matrix (bench_table1_attack_matrix) */
/** @{ */

/** The eight defense columns, in Table-1 print order. */
std::vector<defense::DefenseKind> table1Defenses();

/** The five attack rows, in Table-1 print order. */
std::vector<AttackKind> table1Attacks();

/** One default-parameter machine per Table-1 defense column. */
std::vector<MachineConfig> table1Configs();

/**
 * The whole Table-1 grid as a campaign — the programmatic twin of
 * `scenarios/paper-default.json`.
 */
Campaign paperDefault();
/** @} */

/**
 * The Section-5 attack-time sweep (bench_attack_time): unprotected
 * and CTA machines against the three escalation attacks.
 */
Campaign attackTime();

/**
 * Hardened stack: the CTA variants plus the SoftTRR software
 * mitigation against every attack — the programmatic twin of
 * `scenarios/hardened.json`, and the registration-only proof that
 * SoftTRR rides in Table-1 style sweeps by name.
 */
Campaign hardened();

/**
 * Error-rate ablation: CTA machines across three Pf decades against
 * the PTE-based attacks — the programmatic twin of
 * `scenarios/ablation.json`.
 */
Campaign pfAblation();

/** @name Full-scale Algorithm-1 pricing grid (bench_attack_time) */
/** @{ */
struct PricingPoint
{
    std::uint64_t memBytes;
    std::uint64_t ptpBytes;
};

/** 8/16/32 GiB x 32/64 MiB ZONE_PTP, in print order. */
std::vector<PricingPoint> pricingGrid();
/** @} */

/** @name Design-ablation parameter sets (bench_ablation_*) */
/** @{ */

/** Indicator-restriction depths to sweep (paper picks 2). */
std::vector<unsigned> restrictionDepths();

/** Cell-interleave periods N, in rows (paper picks 512). */
std::vector<std::uint64_t> interleavePeriods();

/** One Section-7 screening-ablation case. */
struct ScreeningCase
{
    double pf;
    bool multiLevelZones;
    bool screenPageSizeBit;
};

/** The three screening cases, weakest mitigation first. */
std::vector<ScreeningCase> screeningCases();

/**
 * The 512 MiB CTA kernel the screening ablation boots, with the
 * case's zone/screening switches applied.
 */
kernel::KernelConfig screeningKernelConfig(const ScreeningCase &c);

/** One LWM-only ablation case (bench_ablation_lwm_only). */
struct LwmZoneCase
{
    const char *label;
    dram::CellType cells;
};

/** ZONE_PTP on true-cells (CTA) vs anti-cells (LWM only). */
std::vector<LwmZoneCase> lwmZoneCases();
/** @} */

} // namespace ctamem::sim::scenarios

#endif // CTAMEM_SIM_SCENARIOS_HH
