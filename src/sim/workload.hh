/**
 * @file
 * Synthetic workload suite for the Table 4 reproduction.
 *
 * The paper runs SPEC CPU2006 and Phoronix on two physical machines
 * and reports per-benchmark runtime deltas with CTA on/off.  We have
 * no x86 silicon, so each benchmark becomes a synthetic memory
 * workload parameterized by its published memory footprint and a
 * coarse access pattern, executed on the simulated kernel: real
 * mmaps, real demand faults, real page-table allocations, real TLB
 * behaviour.  The score model charges time for the events the
 * allocator change could possibly affect, so any CTA overhead would
 * surface as a score delta.
 */

#ifndef CTAMEM_SIM_WORKLOAD_HH
#define CTAMEM_SIM_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kernel.hh"

namespace ctamem::sim {

/** Coarse access pattern of a workload. */
enum class AccessPattern : std::uint8_t
{
    Sequential, //!< streaming (stream, ramspeed, bzip2)
    Strided,    //!< regular strides (h264ref, cachebench)
    Random,     //!< pointer chasing (mcf, omnetpp, xalancbmk)
};

/** One synthetic benchmark. */
struct WorkloadSpec
{
    std::string suite;   //!< "SPEC2006" or "Phoronix"
    std::string name;
    std::uint64_t footprintBytes;
    AccessPattern pattern;
    double writeFraction;   //!< fraction of touches that store
    unsigned iterations;    //!< full passes over the footprint
    double churn;           //!< fraction of chunks remapped per pass
    bool fileBacked;        //!< mmap of files vs anonymous memory
};

/** The SPEC CPU2006 dozen used in Table 4 (footprints scaled 16x
 *  down so suites run on the simulated 256 MiB machines). */
std::vector<WorkloadSpec> spec2006Suite();

/** The Phoronix selection used in Table 4. */
std::vector<WorkloadSpec> phoronixSuite();

/** What one workload run observed. */
struct WorkloadMetrics
{
    std::uint64_t touches = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t pteAllocs = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t walks = 0;
    std::uint64_t mmapCalls = 0;
    std::uint64_t oomEvents = 0;
    std::uint64_t peakTableBytes = 0;
    double modeledSeconds = 0.0;

    /** Synthetic benchmark score (work per modeled second). */
    double
    score() const
    {
        return modeledSeconds > 0.0 ?
                   static_cast<double>(touches) / modeledSeconds :
                   0.0;
    }
};

/** Run one workload in a fresh process of @p kernel. */
WorkloadMetrics runWorkload(kernel::Kernel &kernel,
                            const WorkloadSpec &spec,
                            std::uint64_t seed = 7);

} // namespace ctamem::sim

#endif // CTAMEM_SIM_WORKLOAD_HH
