/**
 * @file
 * JSON serialization of the experiment types: the bridge between the
 * in-memory Campaign API and checked-in scenario manifests.
 *
 * Guarantees:
 *  - `fromJson(toJson(x)) == x` for MachineConfig, CtaConfig and
 *    CampaignCell (property-tested over the Table-1 grid);
 *  - `toJson` output is deterministic byte-for-byte (golden-file
 *    tested), so manifests and reports diff cleanly across runs;
 *  - unknown manifest keys are a hard error (typo protection), while
 *    keys starting with "comment" are ignored everywhere, giving the
 *    checked-in manifests a place for prose.
 *
 * Manifest schema (Campaign::fromManifest / campaignFromJson):
 *
 *   {
 *     "name": "paper-default",          // optional
 *     "comment": "... free text ...",   // ignored, anywhere
 *     "base": { MachineConfig fields }, // optional shared defaults
 *     "defenses": ["none", "cta"],      // grid mode: base x defense
 *     "configs": [ {fields}, ... ],     // or explicit config list
 *     "attacks": ["projectzero"],       // grid columns
 *     "cells": [                        // and/or explicit cells
 *       {"config": {fields}, "attack": "drammer", "label": "..."}
 *     ]
 *   }
 *
 * Grid cells are attack-major (for each attack, one cell per config)
 * — the exact layout Campaign::addGrid produces, so a manifest and
 * its programmatic equivalent yield cell-for-cell identical reports.
 */

#ifndef CTAMEM_SIM_SCENARIO_HH
#define CTAMEM_SIM_SCENARIO_HH

#include "common/json.hh"
#include "cta/config.hh"
#include "sim/campaign.hh"

namespace ctamem::sim {

/**
 * Version of the manifest/config JSON schema.  Checked-in manifests
 * carry it explicitly ("schema_version"); campaignFromJson hard-errors
 * on a mismatch, and the campaign service folds it into every result
 * cache key, so cached rows never outlive the schema that produced
 * them.
 *
 * History: v1 = the PR-4 schema (implicit); v2 adds schema_version
 * itself plus the ctaMultiLevelZones / ctaScreenPageSize machine
 * fields (Section 7 zoning, previously unreachable from manifests);
 * v3 adds the TRR-sampler knobs (trrSamplers / trrWindow) and the
 * nested "fuzz" block (REF timing + pattern-search configuration
 * consumed by the uniform / sync_hammer / fuzz_hammer attacks);
 * v4 adds the "arch" / "granule" machine keys (paging backend
 * selection).  v4 is a strict superset of v3 — both keys default to
 * the historical x86-64 machine and are omitted from output when at
 * their defaults — so v3 manifests are still accepted and keep their
 * exact meaning.
 */
inline constexpr std::uint64_t kScenarioSchemaVersion = 4;

/**
 * Epoch folded into campaign-service result cache keys.  Distinct
 * from the schema version: bumping the schema for a purely additive
 * change (like v3 -> v4) must NOT invalidate cached results for
 * manifests whose meaning is unchanged, so the epoch only moves when
 * result semantics move.  Last moved with schema v3.
 */
inline constexpr std::uint64_t kResultCacheEpoch = 3;

/** @name MachineConfig <-> JSON */
/** @{ */
json::Json toJson(const MachineConfig &config);

/**
 * Parse a MachineConfig object.  Missing keys keep the values of
 * @p base (defaults to a default-constructed config), unknown keys
 * throw json::JsonError.
 */
MachineConfig machineConfigFromJson(const json::Json &j,
                                    const MachineConfig &base = {});
/** @} */

/** @name cta::CtaConfig <-> JSON (kernel-level scenarios) */
/** @{ */
json::Json toJson(const cta::CtaConfig &config);
cta::CtaConfig ctaConfigFromJson(const json::Json &j,
                                 const cta::CtaConfig &base = {});
/** @} */

/** @name CampaignCell / results <-> JSON */
/** @{ */
json::Json toJson(const CampaignCell &cell);
CampaignCell campaignCellFromJson(const json::Json &j,
                                  const MachineConfig &base = {});
json::Json toJson(const CellResult &result);

/**
 * Parse a CellResult back out of toJson's output — the read side of
 * the content-addressed result cache.  Strict: unknown keys and
 * unknown outcome names throw json::JsonError.
 */
CellResult cellResultFromJson(const json::Json &j);
/** @} */

/**
 * Build a campaign from a parsed manifest object (see the schema in
 * the file comment).  Throws json::JsonError on schema violations.
 */
Campaign campaignFromJson(const json::Json &manifest);

} // namespace ctamem::sim

#endif // CTAMEM_SIM_SCENARIO_HH
