/**
 * @file
 * Campaign: the parallel experiment engine over whole machines.
 *
 * A campaign is an ordered list of cells, each "build one machine
 * from a MachineConfig, run one attack".  Machines are self-contained
 * (their DRAM, kernel, observer and RNG streams hang off their own
 * config/seed), so cells are independent tasks: run() farms them out
 * to a ThreadPool and the result table is identical — cell for cell —
 * to the serial run, at any worker count.  The Table-1 matrix bench,
 * the attack-time bench and attack_lab's --matrix mode all render
 * from this table instead of hand-rolling nested machine loops.
 */

#ifndef CTAMEM_SIM_CAMPAIGN_HH
#define CTAMEM_SIM_CAMPAIGN_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/machine.hh"

namespace ctamem::runtime {
class ThreadPool;
} // namespace ctamem::runtime

namespace ctamem::sim {

/** One experiment: a machine to build and an attack to run on it. */
struct CampaignCell
{
    MachineConfig config;
    AttackKind attack = AttackKind::ProjectZero;
    std::string label; //!< defaults to "<attack> vs <defense>"

    bool operator==(const CampaignCell &) const = default;
};

/** Outcome of one cell. */
struct CellResult
{
    CampaignCell cell;
    attack::AttackResult result;
    bool anvilTriggered = false;
    double wallSeconds = 0.0; //!< real build+attack time of the cell
};

/** Table of results plus the wall-clock the sweep itself took. */
struct CampaignReport
{
    std::vector<CellResult> cells; //!< in the order they were added
    double wallSeconds = 0.0;
    /** Sum of per-cell times: the serial-equivalent wall-clock. */
    double cellSecondsTotal() const;

    /**
     * The whole result table as one JSON object (`attack_lab
     * --report`, the machine-readable side of every sweep).
     */
    json::Json toJson() const;
};

class Campaign
{
  public:
    /** Append one cell; returns *this for chaining. */
    Campaign &add(const MachineConfig &config, AttackKind attack,
                  std::string label = {});

    /**
     * Append the full grid, attack-major: for each attack, one cell
     * per config — the layout the matrix benches print.
     */
    Campaign &addGrid(const std::vector<MachineConfig> &configs,
                      const std::vector<AttackKind> &attacks);

    /** Append one pre-built cell verbatim (manifest loader path). */
    Campaign &add(CampaignCell cell);

    /** Drop every cell past the first @p keep (smoke runs). */
    Campaign &truncate(std::size_t keep);

    std::size_t size() const { return cells_.size(); }
    const std::vector<CampaignCell> &cells() const { return cells_; }

    /**
     * Load a whole defense x attack grid from a checked-in `.json`
     * manifest (see sim/scenario.hh for the schema).  Throws
     * json::JsonError on unreadable files or schema violations.
     */
    static Campaign fromManifest(const std::string &path);

    /** Run every cell serially, in order. */
    CampaignReport run() const;

    /**
     * Run the cells as independent tasks on @p pool.  The report's
     * cell table matches the serial run's exactly.
     */
    CampaignReport run(runtime::ThreadPool &pool) const;

  private:
    std::vector<CampaignCell> cells_;
};

/** Build one machine from the cell's config and run its attack. */
CellResult runCell(const CampaignCell &cell);

} // namespace ctamem::sim

#endif // CTAMEM_SIM_CAMPAIGN_HH
