/**
 * @file
 * Machine assembly: one simulated computer = DRAM module + kernel
 * (allocation policy) + optional memory-controller mitigation +
 * hammer engine, plus the single attack dispatch the benches,
 * examples and the Campaign engine program against.
 *
 * Defense and attack construction both go through the name-keyed
 * registries (defense::Registry, attack::Registry): the machine holds
 * no per-kind switch, so new defenses/attacks plug in by registration
 * and by name in scenario manifests.
 */

#ifndef CTAMEM_SIM_MACHINE_HH
#define CTAMEM_SIM_MACHINE_HH

#include <cstdint>
#include <memory>

#include "attack/registry.hh"
#include "attack/result.hh"
#include "common/rng.hh"
#include "cta/config.hh"
#include "defense/observers.hh"
#include "dram/hammer.hh"
#include "fuzz/fuzzer.hh"
#include "kernel/kernel.hh"
#include "paging/arch.hh"

namespace ctamem::sim {

/** The attack table lives in the attack layer; same spelling here. */
using attack::AttackKind;
using attack::attackName;
using attack::attackToken;
using attack::parseAttackKind;

/** Everything needed to build one machine. */
struct MachineConfig
{
    std::uint64_t memBytes = 256 * MiB;
    std::uint64_t rowBytes = 128 * KiB;
    std::uint64_t banks = 1;
    std::uint64_t cellPeriod = 512; //!< alternating stripe, in rows
    double pf = 1e-3;               //!< boosted for simulation scale
    std::uint64_t seed = seeds::kMachine;

    defense::DefenseKind defense = defense::DefenseKind::None;
    std::uint64_t ptpBytes = 4 * MiB;     //!< for the CTA defenses
    /** Per-paging-level PTP zoning (Section 7), CTA defenses only. */
    bool ctaMultiLevelZones = false;
    /** With multi-level zones: screen PS-bit-vulnerable frames. */
    bool ctaScreenPageSize = false;
    unsigned refreshBoostFactor = 4;      //!< for RefreshBoost
    double paraProbability = 0.001;       //!< for PARA
    std::uint64_t anvilThreshold = 1'000'000; //!< for ANVIL
    std::uint64_t softTrrThreshold = 500'000; //!< for SoftTRR
    std::uint64_t softTrrTracked = 32;        //!< for SoftTRR
    unsigned trrSamplers = 4;                 //!< for TrrSampler
    unsigned trrWindow = 8;                   //!< for TrrSampler

    /**
     * REF-clock + pattern-search configuration consumed by the
     * timing-aware attacks (uniform / sync_hammer / fuzz_hammer).
     */
    fuzz::FuzzParams fuzz;

    /**
     * Record individual FlipEvents in every HammerResult (see
     * RowHammerEngine::setRecordEvents).  Off by default: campaign
     * loops only consume flip counts.
     */
    bool recordFlipEvents = false;

    /**
     * Paging architecture the machine boots with.  The (arch,
     * granule) pair resolves to one of the built-in descriptors via
     * paging::resolveArch; the defaults are the historical x86-64
     * machine and serialize to nothing, so schema-v3 manifests keep
     * their exact meaning and cache keys.
     */
    paging::Isa arch = paging::Isa::X86_64;
    std::uint64_t granule = 4 * KiB;

    bool operator==(const MachineConfig &) const = default;
};

/** One simulated computer. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /**
     * Warm start from a boot image captured on an identically
     * configured machine (see svc/snapshot.*): skips the CTA zone
     * scans.  The caller is responsible for restoring DRAM contents
     * and observer RNG state afterwards.
     */
    Machine(const MachineConfig &config,
            const kernel::BootImage &image);

    kernel::Kernel &kernel() { return *kernel_; }
    dram::DramModule &dram() { return kernel_->dram(); }
    dram::RowHammerEngine &engine() { return *engine_; }
    const MachineConfig &config() const { return config_; }
    defense::DefenseKind defense() const { return config_.defense; }

    /** The mitigation observer, when the defense has one. */
    defense::ObserverDefense *observer() { return observer_.get(); }

    /** The ANVIL detector, when that defense is active. */
    defense::AnvilObserver *anvil();

    /**
     * Run one attack against this machine — the single dispatch the
     * Campaign engine and every bench program against.
     */
    attack::AttackResult runAttack(AttackKind kind);

  private:
    /** Shared body of both constructors. */
    void assemble(const kernel::BootImage *image);

    MachineConfig config_;
    std::unique_ptr<kernel::Kernel> kernel_;
    std::unique_ptr<defense::ObserverDefense> observer_;
    std::unique_ptr<dram::RowHammerEngine> engine_;
};

} // namespace ctamem::sim

#endif // CTAMEM_SIM_MACHINE_HH
