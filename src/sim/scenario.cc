#include "sim/scenario.hh"

#include "attack/registry.hh"
#include "defense/registry.hh"

namespace ctamem::sim {

using json::Json;
using json::JsonError;

namespace {

/** "comment", "comment-1", "commentary"... all ignored. */
bool
isComment(const std::string &key)
{
    return key.rfind("comment", 0) == 0;
}

[[noreturn]] void
unknownKey(const char *what, const std::string &key)
{
    throw JsonError(std::string("unknown ") + what + " key \"" + key +
                    "\"");
}

defense::DefenseKind
parseDefense(const Json &j)
{
    const std::string &name = j.asString();
    const auto kind = defense::parseDefenseKind(name);
    if (!kind) {
        std::string known;
        for (const auto &spec : defense::Registry::instance().all())
            known += " " + spec->name;
        throw JsonError("unknown defense \"" + name +
                        "\" (known:" + known + ")");
    }
    return *kind;
}

AttackKind
parseAttack(const Json &j)
{
    const std::string &name = j.asString();
    const auto kind = parseAttackKind(name);
    if (!kind) {
        std::string known;
        for (const auto &spec : attack::Registry::instance().all())
            known += " " + spec->name;
        throw JsonError("unknown attack \"" + name +
                        "\" (known:" + known + ")");
    }
    return *kind;
}

unsigned
asUnsigned(const Json &j)
{
    const std::uint64_t value = j.asU64();
    if (value > 0xffffffffULL)
        throw JsonError("value out of unsigned range");
    return static_cast<unsigned>(value);
}

Json
fuzzToJson(const fuzz::FuzzParams &params)
{
    Json j = Json::object();
    j.set("population", params.population)
        .set("generations", params.generations)
        .set("windows", params.windows)
        .set("seed", params.seed)
        .set("refsPerWindow", params.timing.refsPerWindow)
        .set("actsPerInterval", params.timing.actsPerInterval)
        .set("arenaRows", params.builder.arenaRows)
        .set("maxEntries", params.builder.maxEntries)
        .set("maxPeriod", params.builder.maxPeriod)
        .set("maxSlots", params.builder.maxSlots);
    return j;
}

fuzz::FuzzParams
fuzzFromJson(const Json &j, const fuzz::FuzzParams &base)
{
    fuzz::FuzzParams params = base;
    for (const Json::Member &member : j.members()) {
        const std::string &key = member.key;
        const Json &value = member.value;
        if (isComment(key))
            continue;
        else if (key == "population")
            params.population = value.asU64();
        else if (key == "generations")
            params.generations = value.asU64();
        else if (key == "windows")
            params.windows = value.asU64();
        else if (key == "seed")
            params.seed = value.asU64();
        else if (key == "refsPerWindow")
            params.timing.refsPerWindow = value.asU64();
        else if (key == "actsPerInterval")
            params.timing.actsPerInterval = value.asU64();
        else if (key == "arenaRows")
            params.builder.arenaRows = value.asU64();
        else if (key == "maxEntries")
            params.builder.maxEntries = value.asU64();
        else if (key == "maxPeriod")
            params.builder.maxPeriod = value.asU64();
        else if (key == "maxSlots")
            params.builder.maxSlots = value.asU64();
        else
            unknownKey("fuzz", key);
    }
    return params;
}

} // namespace

Json
toJson(const MachineConfig &config)
{
    Json j = Json::object();
    j.set("memBytes", config.memBytes)
        .set("rowBytes", config.rowBytes)
        .set("banks", config.banks)
        .set("cellPeriod", config.cellPeriod)
        .set("pf", config.pf)
        .set("seed", config.seed)
        .set("defense",
             std::string(defense::defenseToken(config.defense)))
        .set("ptpBytes", config.ptpBytes)
        .set("ctaMultiLevelZones", config.ctaMultiLevelZones)
        .set("ctaScreenPageSize", config.ctaScreenPageSize)
        .set("refreshBoostFactor", config.refreshBoostFactor)
        .set("paraProbability", config.paraProbability)
        .set("anvilThreshold", config.anvilThreshold)
        .set("softTrrThreshold", config.softTrrThreshold)
        .set("softTrrTracked", config.softTrrTracked)
        .set("trrSamplers", config.trrSamplers)
        .set("trrWindow", config.trrWindow)
        .set("fuzz", fuzzToJson(config.fuzz));
    // The historical x86-64 machine serializes exactly as it did in
    // schema v3: the arch keys appear only off the default, keeping
    // golden manifests and cache keys byte-identical.
    if (config.arch != paging::Isa::X86_64 ||
        config.granule != 4 * KiB) {
        j.set("arch", std::string(paging::isaName(config.arch)))
            .set("granule", config.granule);
    }
    return j;
}

MachineConfig
machineConfigFromJson(const Json &j, const MachineConfig &base)
{
    MachineConfig config = base;
    for (const Json::Member &member : j.members()) {
        const std::string &key = member.key;
        const Json &value = member.value;
        if (isComment(key))
            continue;
        else if (key == "memBytes")
            config.memBytes = value.asU64();
        else if (key == "rowBytes")
            config.rowBytes = value.asU64();
        else if (key == "banks")
            config.banks = value.asU64();
        else if (key == "cellPeriod")
            config.cellPeriod = value.asU64();
        else if (key == "pf")
            config.pf = value.asDouble();
        else if (key == "seed")
            config.seed = value.asU64();
        else if (key == "defense")
            config.defense = parseDefense(value);
        else if (key == "ptpBytes")
            config.ptpBytes = value.asU64();
        else if (key == "ctaMultiLevelZones")
            config.ctaMultiLevelZones = value.asBool();
        else if (key == "ctaScreenPageSize")
            config.ctaScreenPageSize = value.asBool();
        else if (key == "refreshBoostFactor")
            config.refreshBoostFactor = asUnsigned(value);
        else if (key == "paraProbability")
            config.paraProbability = value.asDouble();
        else if (key == "anvilThreshold")
            config.anvilThreshold = value.asU64();
        else if (key == "softTrrThreshold")
            config.softTrrThreshold = value.asU64();
        else if (key == "softTrrTracked")
            config.softTrrTracked = value.asU64();
        else if (key == "trrSamplers")
            config.trrSamplers = asUnsigned(value);
        else if (key == "trrWindow")
            config.trrWindow = asUnsigned(value);
        else if (key == "fuzz")
            config.fuzz = fuzzFromJson(value, base.fuzz);
        else if (key == "arch") {
            if (!paging::parseIsa(value.asString(), config.arch)) {
                throw JsonError("unknown arch \"" + value.asString() +
                                "\" (known: x86_64 aarch64)");
            }
        } else if (key == "granule")
            config.granule = value.asU64();
        else
            unknownKey("MachineConfig", key);
    }
    // Reject unbuildable (arch, granule) pairs at parse time, where
    // the error can name the manifest instead of aborting the run.
    if (config.arch == paging::Isa::X86_64) {
        if (config.granule != 4 * KiB)
            throw JsonError("x86_64 supports only the 4 KiB granule");
    } else if (config.granule != 4 * KiB &&
               config.granule != 16 * KiB &&
               config.granule != 64 * KiB) {
        throw JsonError("aarch64 granule must be 4, 16 or 64 KiB");
    }
    return config;
}

Json
toJson(const cta::CtaConfig &config)
{
    Json j = Json::object();
    j.set("ptpBytes", config.ptpBytes)
        .set("minIndicatorZeros", config.minIndicatorZeros)
        .set("multiLevelZones", config.multiLevelZones)
        .set("screenPageSizeBit", config.screenPageSizeBit);
    return j;
}

cta::CtaConfig
ctaConfigFromJson(const Json &j, const cta::CtaConfig &base)
{
    cta::CtaConfig config = base;
    for (const Json::Member &member : j.members()) {
        const std::string &key = member.key;
        const Json &value = member.value;
        if (isComment(key))
            continue;
        else if (key == "ptpBytes")
            config.ptpBytes = value.asU64();
        else if (key == "minIndicatorZeros")
            config.minIndicatorZeros = asUnsigned(value);
        else if (key == "multiLevelZones")
            config.multiLevelZones = value.asBool();
        else if (key == "screenPageSizeBit")
            config.screenPageSizeBit = value.asBool();
        else
            unknownKey("CtaConfig", key);
    }
    return config;
}

Json
toJson(const CampaignCell &cell)
{
    Json j = Json::object();
    j.set("label", cell.label)
        .set("attack", std::string(attackToken(cell.attack)))
        .set("config", toJson(cell.config));
    return j;
}

CampaignCell
campaignCellFromJson(const Json &j, const MachineConfig &base)
{
    CampaignCell cell;
    cell.config = base;
    for (const Json::Member &member : j.members()) {
        const std::string &key = member.key;
        const Json &value = member.value;
        if (isComment(key))
            continue;
        else if (key == "label")
            cell.label = value.asString();
        else if (key == "attack")
            cell.attack = parseAttack(value);
        else if (key == "config")
            cell.config = machineConfigFromJson(value, base);
        else
            unknownKey("CampaignCell", key);
    }
    return cell;
}

Json
toJson(const CellResult &result)
{
    Json j = Json::object();
    j.set("cell", toJson(result.cell))
        .set("outcome",
             std::string(attack::outcomeName(result.result.outcome)))
        .set("detail", result.result.detail)
        .set("attackTime",
             static_cast<std::uint64_t>(result.result.attackTime))
        .set("hammerPasses", result.result.hammerPasses)
        .set("flipsInduced", result.result.flipsInduced)
        .set("ptesCorrupted", result.result.ptesCorrupted)
        .set("selfReferences", result.result.selfReferences)
        .set("anvilTriggered", result.anvilTriggered)
        .set("wallSeconds", result.wallSeconds);
    return j;
}

CellResult
cellResultFromJson(const Json &j)
{
    CellResult result;
    for (const Json::Member &member : j.members()) {
        const std::string &key = member.key;
        const Json &value = member.value;
        if (isComment(key))
            continue;
        else if (key == "cell")
            result.cell = campaignCellFromJson(value);
        else if (key == "outcome") {
            const auto outcome =
                attack::parseOutcome(value.asString());
            if (!outcome) {
                throw JsonError("unknown outcome \"" +
                                value.asString() + "\"");
            }
            result.result.outcome = *outcome;
        } else if (key == "detail")
            result.result.detail = value.asString();
        else if (key == "attackTime")
            result.result.attackTime = value.asU64();
        else if (key == "hammerPasses")
            result.result.hammerPasses = value.asU64();
        else if (key == "flipsInduced")
            result.result.flipsInduced = value.asU64();
        else if (key == "ptesCorrupted")
            result.result.ptesCorrupted = value.asU64();
        else if (key == "selfReferences")
            result.result.selfReferences = value.asU64();
        else if (key == "anvilTriggered")
            result.anvilTriggered = value.asBool();
        else if (key == "wallSeconds")
            result.wallSeconds = value.asDouble();
        else
            unknownKey("CellResult", key);
    }
    return result;
}

Json
CampaignReport::toJson() const
{
    Json cellArray = Json::array();
    for (const CellResult &cell : cells)
        cellArray.push(sim::toJson(cell));
    Json j = Json::object();
    j.set("cells", std::move(cellArray))
        .set("wallSeconds", wallSeconds)
        .set("cellSecondsTotal", cellSecondsTotal());
    return j;
}

Campaign
campaignFromJson(const Json &manifest)
{
    MachineConfig base;
    std::vector<MachineConfig> configs;
    std::vector<AttackKind> attacks;
    const Json *configsJson = nullptr;
    const Json *cellsJson = nullptr;
    bool haveDefenses = false;

    // First pass: pull `base` so config/cell parsing can layer on it
    // regardless of key order.
    if (const Json *baseJson = manifest.find("base"))
        base = machineConfigFromJson(*baseJson);

    for (const Json::Member &member : manifest.members()) {
        const std::string &key = member.key;
        const Json &value = member.value;
        if (isComment(key) || key == "base")
            continue;
        else if (key == "schema_version") {
            // A manifest written against an incompatible schema must
            // fail loudly, not parse loosely.  v3 is accepted: v4 is
            // a strict superset whose added keys default to the v3
            // meaning.
            const std::uint64_t version = value.asU64();
            if (version != kScenarioSchemaVersion && version != 3) {
                throw JsonError(
                    "manifest schema_version " +
                    std::to_string(version) +
                    " does not match this build's schema version " +
                    std::to_string(kScenarioSchemaVersion));
            }
        } else if (key == "name" || key == "description")
            (void)value.asString();
        else if (key == "defenses") {
            haveDefenses = true;
            for (const Json &d : value.items()) {
                MachineConfig config = base;
                config.defense = parseDefense(d);
                configs.push_back(config);
            }
        } else if (key == "configs") {
            configsJson = &value;
        } else if (key == "attacks") {
            for (const Json &a : value.items())
                attacks.push_back(parseAttack(a));
        } else if (key == "cells") {
            cellsJson = &value;
        } else {
            unknownKey("manifest", key);
        }
    }

    if (haveDefenses && configsJson) {
        throw JsonError(
            "manifest: \"defenses\" and \"configs\" are exclusive "
            "ways to build the grid rows");
    }
    if (configsJson) {
        for (const Json &c : configsJson->items())
            configs.push_back(machineConfigFromJson(c, base));
    }
    if (!configs.empty() && attacks.empty()) {
        throw JsonError("manifest: a defense/config grid needs an "
                        "\"attacks\" list");
    }

    Campaign campaign;
    campaign.addGrid(configs, attacks);
    if (cellsJson) {
        for (const Json &c : cellsJson->items())
            campaign.add(campaignCellFromJson(c, base));
    }
    if (campaign.size() == 0)
        throw JsonError("manifest describes no cells");
    return campaign;
}

Campaign
Campaign::fromManifest(const std::string &path)
{
    return campaignFromJson(Json::parseFile(path));
}

} // namespace ctamem::sim
