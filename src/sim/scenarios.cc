#include "sim/scenarios.hh"

namespace ctamem::sim::scenarios {

using defense::DefenseKind;

namespace {

std::vector<MachineConfig>
configsFor(const std::vector<DefenseKind> &defenses)
{
    std::vector<MachineConfig> configs;
    configs.reserve(defenses.size());
    for (const DefenseKind defense : defenses) {
        MachineConfig config;
        config.defense = defense;
        configs.push_back(config);
    }
    return configs;
}

} // namespace

std::vector<DefenseKind>
table1Defenses()
{
    return {
        DefenseKind::None, DefenseKind::RefreshBoost,
        DefenseKind::Para, DefenseKind::Anvil,
        DefenseKind::Catt, DefenseKind::Zebram,
        DefenseKind::Cta,  DefenseKind::CtaRestricted,
    };
}

std::vector<AttackKind>
table1Attacks()
{
    return {
        AttackKind::ProjectZero,       AttackKind::Drammer,
        AttackKind::Algorithm1,        AttackKind::RemapBypass,
        AttackKind::DoubleOwnedBypass,
    };
}

std::vector<MachineConfig>
table1Configs()
{
    return configsFor(table1Defenses());
}

Campaign
paperDefault()
{
    Campaign campaign;
    campaign.addGrid(table1Configs(), table1Attacks());
    return campaign;
}

Campaign
attackTime()
{
    Campaign campaign;
    campaign.addGrid(
        configsFor({DefenseKind::None, DefenseKind::Cta}),
        {AttackKind::ProjectZero, AttackKind::Drammer,
         AttackKind::Algorithm1});
    return campaign;
}

Campaign
hardened()
{
    Campaign campaign;
    campaign.addGrid(configsFor({DefenseKind::Cta,
                                 DefenseKind::CtaRestricted,
                                 DefenseKind::SoftTrr}),
                     table1Attacks());
    return campaign;
}

Campaign
pfAblation()
{
    std::vector<MachineConfig> configs;
    for (const double pf : {1e-4, 1e-3, 1e-2}) {
        MachineConfig config;
        config.defense = DefenseKind::Cta;
        config.pf = pf;
        configs.push_back(config);
    }
    Campaign campaign;
    campaign.addGrid(configs, {AttackKind::ProjectZero,
                               AttackKind::Algorithm1});
    return campaign;
}

std::vector<PricingPoint>
pricingGrid()
{
    std::vector<PricingPoint> grid;
    for (const std::uint64_t mem : {8 * GiB, 16 * GiB, 32 * GiB})
        for (const std::uint64_t ptp : {32 * MiB, 64 * MiB})
            grid.push_back({mem, ptp});
    return grid;
}

std::vector<unsigned>
restrictionDepths()
{
    return {0, 1, 2, 3, 4};
}

std::vector<std::uint64_t>
interleavePeriods()
{
    return {64, 128, 256, 512, 1024};
}

std::vector<ScreeningCase>
screeningCases()
{
    return {
        {5e-2, false, false},
        {5e-2, true, false},
        {5e-3, true, true},
    };
}

kernel::KernelConfig
screeningKernelConfig(const ScreeningCase &c)
{
    kernel::KernelConfig config;
    config.dram.capacity = 512 * MiB;
    config.dram.rowBytes = 128 * KiB;
    config.dram.banks = 1;
    config.dram.cellMap = dram::CellTypeMap::alternating(512);
    config.dram.errors.pf = c.pf;
    config.dram.seed = 77;
    config.policy = kernel::AllocPolicy::Cta;
    config.cta.ptpBytes = 4 * MiB;
    config.cta.multiLevelZones = c.multiLevelZones;
    config.cta.screenPageSizeBit = c.screenPageSizeBit;
    return config;
}

std::vector<LwmZoneCase>
lwmZoneCases()
{
    return {
        {"true-cells (CTA)", dram::CellType::True},
        {"anti-cells (LWM only)", dram::CellType::Anti},
    };
}

} // namespace ctamem::sim::scenarios
