#include "sim/perf_harness.hh"

#include <chrono>
#include <iomanip>

namespace ctamem::sim {

namespace {

/** Wall-clock of one workload run on one machine, in seconds. */
double
timedRun(Machine &machine, const WorkloadSpec &spec,
         WorkloadMetrics &metrics)
{
    const auto start = std::chrono::steady_clock::now();
    metrics = runWorkload(machine.kernel(), spec);
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace

std::vector<PerfRow>
comparePolicies(const MachineConfig &base,
                const std::vector<WorkloadSpec> &specs,
                defense::DefenseKind baseline,
                defense::DefenseKind protected_kind,
                PtFootprint *footprint)
{
    MachineConfig base_config = base;
    base_config.defense = baseline;
    MachineConfig prot_config = base;
    prot_config.defense = protected_kind;

    Machine baseline_machine(base_config);
    Machine protected_machine(prot_config);

    std::vector<PerfRow> rows;
    std::uint64_t peak_tables = 0;
    for (const WorkloadSpec &spec : specs) {
        WorkloadMetrics base_metrics;
        WorkloadMetrics prot_metrics;
        const double base_wall =
            timedRun(baseline_machine, spec, base_metrics);
        const double prot_wall =
            timedRun(protected_machine, spec, prot_metrics);
        peak_tables =
            std::max(peak_tables, prot_metrics.peakTableBytes);
        rows.push_back(PerfRow{
            spec.suite, spec.name, base_metrics.score(),
            prot_metrics.score(),
            base_wall > 0.0 ?
                (prot_wall - base_wall) / base_wall * 100.0 :
                0.0});
    }

    if (footprint) {
        footprint->peakTableBytes = peak_tables;
        const cta::PtpZone *ptp =
            protected_machine.kernel().ptpZone();
        footprint->ptpCapacityBytes = ptp ? ptp->trueBytes() : 0;
        footprint->pteAllocFailures =
            protected_machine.kernel().stats().value(
                "pteAllocFailures");
        footprint->ptReclaims =
            protected_machine.kernel().stats().value("ptReclaims");
    }
    return rows;
}

void
printPerfTable(std::ostream &os, const std::string &title,
               const std::vector<PerfRow> &rows)
{
    os << title << '\n';
    os << std::left << std::setw(12) << "Suite" << std::setw(20)
       << "Benchmark" << std::right << std::setw(14) << "base score"
       << std::setw(14) << "CTA score" << std::setw(10) << "delta%"
       << std::setw(12) << "wall d%" << '\n';
    double sum_delta = 0.0;
    for (const PerfRow &row : rows) {
        os << std::left << std::setw(12) << row.suite << std::setw(20)
           << row.name << std::right << std::fixed
           << std::setprecision(0) << std::setw(14)
           << row.baselineScore << std::setw(14)
           << row.protectedScore << std::setprecision(2)
           << std::setw(10) << row.deltaPct() << std::setw(12)
           << row.wallDeltaPct << '\n';
        sum_delta += row.deltaPct();
    }
    const double mean_delta =
        rows.empty() ? 0.0 :
                       sum_delta / static_cast<double>(rows.size());
    os << "Mean modeled delta: " << std::setprecision(3)
       << mean_delta << "%\n";
    os.unsetf(std::ios::fixed);
}

} // namespace ctamem::sim
