#include "sim/campaign.hh"

#include <chrono>

#include "runtime/thread_pool.hh"

namespace ctamem::sim {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

} // namespace

double
CampaignReport::cellSecondsTotal() const
{
    double total = 0.0;
    for (const CellResult &cell : cells)
        total += cell.wallSeconds;
    return total;
}

Campaign &
Campaign::add(const MachineConfig &config, AttackKind attack,
              std::string label)
{
    return add(CampaignCell{config, attack, std::move(label)});
}

Campaign &
Campaign::add(CampaignCell cell)
{
    if (cell.label.empty()) {
        cell.label = std::string(attackName(cell.attack)) + " vs " +
                     defense::defenseName(cell.config.defense);
    }
    cells_.push_back(std::move(cell));
    return *this;
}

Campaign &
Campaign::truncate(std::size_t keep)
{
    if (cells_.size() > keep)
        cells_.resize(keep);
    return *this;
}

Campaign &
Campaign::addGrid(const std::vector<MachineConfig> &configs,
                  const std::vector<AttackKind> &attacks)
{
    for (const AttackKind attack : attacks)
        for (const MachineConfig &config : configs)
            add(config, attack);
    return *this;
}

CellResult
runCell(const CampaignCell &cell)
{
    const Clock::time_point start = Clock::now();
    Machine machine(cell.config);
    CellResult out;
    out.cell = cell;
    out.result = machine.runAttack(cell.attack);
    out.anvilTriggered =
        machine.anvil() && machine.anvil()->triggered();
    out.wallSeconds = secondsSince(start);
    return out;
}

CampaignReport
Campaign::run() const
{
    const Clock::time_point start = Clock::now();
    CampaignReport report;
    report.cells.reserve(cells_.size());
    for (const CampaignCell &cell : cells_)
        report.cells.push_back(runCell(cell));
    report.wallSeconds = secondsSince(start);
    return report;
}

CampaignReport
Campaign::run(runtime::ThreadPool &pool) const
{
    const Clock::time_point start = Clock::now();
    CampaignReport report;
    report.cells.resize(cells_.size());
    // Each task owns its slot; the table keeps insertion order no
    // matter which worker finishes first.
    pool.parallelFor(0, cells_.size(), [&](std::uint64_t i) {
        report.cells[i] = runCell(cells_[i]);
    });
    report.wallSeconds = secondsSince(start);
    return report;
}

} // namespace ctamem::sim
