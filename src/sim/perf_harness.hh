/**
 * @file
 * Table 4 harness: run the workload suites on identical machines
 * that differ only in defense policy and report per-benchmark score
 * deltas (the paper reports runtime deltas within measurement noise
 * of zero).
 */

#ifndef CTAMEM_SIM_PERF_HARNESS_HH
#define CTAMEM_SIM_PERF_HARNESS_HH

#include <ostream>
#include <string>
#include <vector>

#include "defense/observers.hh"
#include "sim/machine.hh"
#include "sim/workload.hh"

namespace ctamem::sim {

/** One Table 4 line. */
struct PerfRow
{
    std::string suite;
    std::string name;
    double baselineScore;
    double protectedScore;
    double wallDeltaPct;   //!< host wall-clock delta (noisy)

    /** Modeled-score delta: protected vs baseline, percent. */
    double
    deltaPct() const
    {
        return baselineScore > 0.0 ?
                   (protectedScore - baselineScore) / baselineScore *
                       100.0 :
                   0.0;
    }
};

/** Page-table accounting after a suite run (Section 6.3 argument). */
struct PtFootprint
{
    std::uint64_t peakTableBytes = 0;
    std::uint64_t ptpCapacityBytes = 0; //!< 0 when no ZONE_PTP
    std::uint64_t pteAllocFailures = 0;
    std::uint64_t ptReclaims = 0; //!< §6.3 pressure events
};

/**
 * Run @p specs on two machines built from @p base that differ only
 * in the defense, returning one row per workload.  @p footprint, if
 * non-null, receives the protected machine's page-table accounting.
 */
std::vector<PerfRow>
comparePolicies(const MachineConfig &base,
                const std::vector<WorkloadSpec> &specs,
                defense::DefenseKind baseline,
                defense::DefenseKind protected_kind,
                PtFootprint *footprint = nullptr);

/** Print rows in the paper's Table 4 shape. */
void printPerfTable(std::ostream &os, const std::string &title,
                    const std::vector<PerfRow> &rows);

} // namespace ctamem::sim

#endif // CTAMEM_SIM_PERF_HARNESS_HH
