#include "sim/machine.hh"

#include <algorithm>

#include "common/log.hh"
#include "defense/registry.hh"

namespace ctamem::sim {

using defense::DefenseKind;

namespace {

/** Copy the per-defense tunables out of a machine config. */
defense::DefenseParams
defenseParams(const MachineConfig &config)
{
    defense::DefenseParams params;
    params.seed = config.seed;
    params.ptpBytes = config.ptpBytes;
    params.ctaMultiLevelZones = config.ctaMultiLevelZones;
    params.ctaScreenPageSize = config.ctaScreenPageSize;
    params.refreshBoostFactor = config.refreshBoostFactor;
    params.paraProbability = config.paraProbability;
    params.anvilThreshold = config.anvilThreshold;
    params.softTrrThreshold = config.softTrrThreshold;
    params.softTrrTracked = config.softTrrTracked;
    params.trrSamplers = config.trrSamplers;
    params.trrWindow = config.trrWindow;
    return params;
}

} // namespace

Machine::Machine(const MachineConfig &config) : config_(config)
{
    assemble(nullptr);
}

Machine::Machine(const MachineConfig &config,
                 const kernel::BootImage &image)
    : config_(config)
{
    assemble(&image);
}

void
Machine::assemble(const kernel::BootImage *image)
{
    const MachineConfig &config = config_;
    const defense::DefenseSpec *spec =
        defense::Registry::instance().find(config.defense);
    if (!spec) {
        fatal("machine: defense kind ",
              static_cast<int>(config.defense),
              " has no registry entry");
    }

    kernel::KernelConfig kconfig;
    kconfig.dram.capacity = config.memBytes;
    kconfig.dram.rowBytes = config.rowBytes;
    kconfig.dram.banks = config.banks;
    kconfig.dram.cellMap =
        dram::CellTypeMap::alternating(config.cellPeriod);
    kconfig.dram.errors.pf = config.pf;
    kconfig.dram.seed = config.seed;

    const defense::DefenseParams params = defenseParams(config);
    if (spec->configureKernel)
        spec->configureKernel(params, kconfig);
    kconfig.arch = &paging::resolveArch(config.arch, config.granule);

    kernel_ = image
        ? std::make_unique<kernel::Kernel>(kconfig, *image)
        : std::make_unique<kernel::Kernel>(kconfig);

    // Campaign workloads (spray, Drammer arenas) touch most of the
    // module, so pre-size the frame table up front instead of paying
    // for its rehash cascade mid-sweep.  Deliberately NOT done in
    // DramModule itself: sparse consumers (the page-walk benches,
    // small kernel tests) are faster with the load-grown table, whose
    // bucket array stays cache-resident.
    kernel_->dram().store().reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(config.memBytes / pageSize, 32768)));

    if (spec->makeObserver)
        observer_ = spec->makeObserver(params);

    engine_ = std::make_unique<dram::RowHammerEngine>(
        kernel_->dram(), observer_.get());
    engine_->setRecordEvents(config.recordFlipEvents);
}

defense::AnvilObserver *
Machine::anvil()
{
    if (config_.defense != DefenseKind::Anvil)
        return nullptr;
    return static_cast<defense::AnvilObserver *>(observer_.get());
}

attack::AttackResult
Machine::runAttack(AttackKind kind)
{
    const attack::AttackSpec *spec =
        attack::Registry::instance().find(kind);
    if (!spec) {
        fatal("machine: attack kind ", static_cast<int>(kind),
              " has no registry entry");
    }
    attack::AttackParams params;
    params.seed = config_.seed;
    params.defense = config_.defense;
    params.defenseParams = defenseParams(config_);
    params.fuzz = config_.fuzz;
    return spec->run(*kernel_, *engine_, params);
}

} // namespace ctamem::sim
