#include "sim/machine.hh"

#include "attack/algorithm1.hh"
#include "attack/catt_bypass.hh"
#include "attack/drammer.hh"
#include "attack/projectzero.hh"
#include "common/log.hh"

namespace ctamem::sim {

using defense::DefenseKind;

const char *
attackName(AttackKind kind)
{
    switch (kind) {
      case AttackKind::ProjectZero: return "PTE spray (ProjectZero)";
      case AttackKind::Drammer: return "Drammer templating";
      case AttackKind::Algorithm1: return "Algorithm 1 (anti-CTA)";
      case AttackKind::RemapBypass: return "row-remap bypass";
      case AttackKind::DoubleOwnedBypass: return "double-owned bypass";
    }
    return "?";
}

Machine::Machine(const MachineConfig &config) : config_(config)
{
    kernel::KernelConfig kconfig;
    kconfig.dram.capacity = config.memBytes;
    kconfig.dram.rowBytes = config.rowBytes;
    kconfig.dram.banks = config.banks;
    kconfig.dram.cellMap =
        dram::CellTypeMap::alternating(config.cellPeriod);
    kconfig.dram.errors.pf = config.pf;
    kconfig.dram.seed = config.seed;

    switch (config.defense) {
      case DefenseKind::None:
      case DefenseKind::RefreshBoost:
      case DefenseKind::Para:
      case DefenseKind::Anvil:
        kconfig.policy = kernel::AllocPolicy::Standard;
        break;
      case DefenseKind::Cta:
        kconfig.policy = kernel::AllocPolicy::Cta;
        kconfig.cta.ptpBytes = config.ptpBytes;
        break;
      case DefenseKind::CtaRestricted:
        kconfig.policy = kernel::AllocPolicy::Cta;
        kconfig.cta.ptpBytes = config.ptpBytes;
        kconfig.cta.minIndicatorZeros = 2;
        break;
      case DefenseKind::Catt:
        kconfig.policy = kernel::AllocPolicy::Catt;
        break;
      case DefenseKind::Zebram:
        kconfig.policy = kernel::AllocPolicy::Zebram;
        break;
    }

    kernel_ = std::make_unique<kernel::Kernel>(kconfig);

    switch (config.defense) {
      case DefenseKind::RefreshBoost:
        observer_ = std::make_unique<defense::RefreshBoostObserver>(
            config.refreshBoostFactor,
            deriveSeed(config.seed, seeds::kRefreshBoostStream));
        break;
      case DefenseKind::Para:
        observer_ = std::make_unique<defense::ParaObserver>(
            config.paraProbability,
            deriveSeed(config.seed, seeds::kParaStream));
        break;
      case DefenseKind::Anvil:
        observer_ = std::make_unique<defense::AnvilObserver>(
            config.anvilThreshold);
        break;
      default:
        break;
    }

    engine_ = std::make_unique<dram::RowHammerEngine>(
        kernel_->dram(), observer_.get());
}

defense::AnvilObserver *
Machine::anvil()
{
    if (config_.defense != DefenseKind::Anvil)
        return nullptr;
    return static_cast<defense::AnvilObserver *>(observer_.get());
}

attack::AttackResult
Machine::runAttack(AttackKind kind)
{
    switch (kind) {
      case AttackKind::ProjectZero:
        return attack::runProjectZero(*kernel_, *engine_);
      case AttackKind::Drammer: {
        attack::DrammerConfig config;
        config.arenaPages = 1024;
        return attack::runDrammer(*kernel_, *engine_, config);
      }
      case AttackKind::Algorithm1: {
        if (!kernel_->ptpZone()) {
            // Algorithm 1 is defined against CTA machines only; on
            // others report the strictly stronger ProjectZero result.
            return attack::runProjectZero(*kernel_, *engine_);
        }
        return attack::runAlgorithm1(*kernel_, *engine_);
      }
      case AttackKind::RemapBypass:
        return attack::runRemapBypass(*kernel_, *engine_);
      case AttackKind::DoubleOwnedBypass:
        return attack::runDoubleOwnedBypass(*kernel_, *engine_);
    }
    ctamem_panic("unknown attack kind");
}

} // namespace ctamem::sim
