#include "sim/workload.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace ctamem::sim {

using kernel::Kernel;

std::vector<WorkloadSpec>
spec2006Suite()
{
    // Published SPEC CPU2006 memory footprints (Henning, CAN 2007),
    // scaled down 16x to exercise the simulated machines in seconds.
    // {suite, name, footprint, pattern, writes, iters, churn, file}
    return {
        {"SPEC2006", "perlbench", 36 * MiB, AccessPattern::Random,
         0.40, 2, 0.10, false},
        {"SPEC2006", "bzip2", 54 * MiB, AccessPattern::Sequential,
         0.50, 2, 0.00, true},
        {"SPEC2006", "gcc", 56 * MiB, AccessPattern::Random, 0.45, 2,
         0.20, false},
        {"SPEC2006", "mcf", 64 * MiB, AccessPattern::Random, 0.30, 2,
         0.00, false},
        {"SPEC2006", "gobmk", 2 * MiB, AccessPattern::Random, 0.35,
         8, 0.00, false},
        {"SPEC2006", "hmmer", 4 * MiB, AccessPattern::Strided, 0.25,
         8, 0.00, false},
        {"SPEC2006", "sjeng", 11 * MiB, AccessPattern::Random, 0.30,
         4, 0.00, false},
        {"SPEC2006", "libquantum", 6 * MiB,
         AccessPattern::Sequential, 0.50, 6, 0.00, false},
        {"SPEC2006", "h264ref", 4 * MiB, AccessPattern::Strided,
         0.40, 8, 0.00, true},
        {"SPEC2006", "omnetpp", 11 * MiB, AccessPattern::Random,
         0.45, 4, 0.10, false},
        {"SPEC2006", "astar", 20 * MiB, AccessPattern::Random, 0.35,
         3, 0.00, false},
        {"SPEC2006", "xalancbmk", 27 * MiB, AccessPattern::Random,
         0.40, 2, 0.15, false},
    };
}

std::vector<WorkloadSpec>
phoronixSuite()
{
    return {
        {"Phoronix", "unpack-linux", 24 * MiB,
         AccessPattern::Sequential, 0.70, 1, 0.50, true},
        {"Phoronix", "postmark", 16 * MiB, AccessPattern::Random,
         0.60, 2, 0.40, true},
        {"Phoronix", "ramspeed:INT", 32 * MiB,
         AccessPattern::Sequential, 0.50, 4, 0.00, false},
        {"Phoronix", "ramspeed:FP", 32 * MiB,
         AccessPattern::Sequential, 0.50, 4, 0.00, false},
        {"Phoronix", "stream:Copy", 24 * MiB,
         AccessPattern::Sequential, 0.50, 4, 0.00, false},
        {"Phoronix", "stream:Scale", 24 * MiB,
         AccessPattern::Sequential, 0.50, 4, 0.00, false},
        {"Phoronix", "stream:Triad", 24 * MiB,
         AccessPattern::Sequential, 0.34, 4, 0.00, false},
        {"Phoronix", "stream:Add", 24 * MiB,
         AccessPattern::Sequential, 0.34, 4, 0.00, false},
        {"Phoronix", "cachebench:Read", 8 * MiB,
         AccessPattern::Strided, 0.00, 8, 0.00, false},
        {"Phoronix", "cachebench:Write", 8 * MiB,
         AccessPattern::Strided, 1.00, 8, 0.00, false},
        {"Phoronix", "cachebench:Modify", 8 * MiB,
         AccessPattern::Strided, 0.50, 8, 0.00, false},
        {"Phoronix", "compress-7zip", 20 * MiB,
         AccessPattern::Random, 0.45, 3, 0.05, true},
        {"Phoronix", "openssl", 1 * MiB, AccessPattern::Strided,
         0.30, 32, 0.00, false},
        {"Phoronix", "pybench", 6 * MiB, AccessPattern::Random, 0.40,
         6, 0.25, false},
        {"Phoronix", "phpbench", 8 * MiB, AccessPattern::Random,
         0.40, 5, 0.25, false},
    };
}

namespace {

/** Event costs (ns) for the modeled score — identical across
 *  policies, so only event-count differences can move a score. */
constexpr double touchCostNs = 6.0;
constexpr double faultCostNs = 1800.0;
constexpr double tlbMissCostNs = 90.0;
constexpr double mmapCostNs = 900.0;
constexpr double oomCostNs = 50'000.0;

} // namespace

WorkloadMetrics
runWorkload(Kernel &kernel, const WorkloadSpec &spec,
            std::uint64_t seed)
{
    const int pid = kernel.createProcess(spec.name);
    Rng rng(stableHash(seed, 0x3017));
    const paging::PageFlags rw{true, false, false};

    // Footprint is mapped as 2 MiB chunks (one leaf table each).
    constexpr std::uint64_t chunk = 2 * MiB;
    const std::uint64_t chunks =
        std::max<std::uint64_t>(1, spec.footprintBytes / chunk);

    const std::uint64_t faults0 = kernel.stats().value("pageFaults");
    const std::uint64_t pte0 = kernel.stats().value("pteAllocs");
    const std::uint64_t oom0 = kernel.stats().value("oomFaults") +
                               kernel.stats().value("pteAllocFaults");
    const std::uint64_t mmaps0 = kernel.stats().value("mmaps");
    const std::uint64_t miss0 =
        kernel.mmu().tlb().stats().value("misses");
    const std::uint64_t walks0 =
        kernel.mmu().walker().stats().value("walks");

    std::vector<VAddr> bases;
    std::vector<int> fds;
    bases.reserve(chunks);
    for (std::uint64_t i = 0; i < chunks; ++i) {
        VAddr base = 0;
        if (spec.fileBacked) {
            const int fd = kernel.createFile(chunk);
            fds.push_back(fd);
            base = kernel.mmapFile(pid, fd, chunk, rw);
        } else {
            base = kernel.mmapAnon(pid, chunk, rw);
        }
        if (base == 0)
            fatal("workload ", spec.name, ": mmap failed");
        bases.push_back(base);
    }

    WorkloadMetrics metrics;
    metrics.peakTableBytes = kernel.pageTableBytes();
    const std::uint64_t pages_per_chunk = chunk / pageSize;
    for (unsigned pass = 0; pass < spec.iterations; ++pass) {
        for (std::uint64_t c = 0; c < chunks; ++c) {
            // Touch one word per page of the chunk per the pattern.
            for (std::uint64_t p = 0; p < pages_per_chunk; ++p) {
                std::uint64_t page = p;
                if (spec.pattern == AccessPattern::Random)
                    page = rng.below(pages_per_chunk);
                else if (spec.pattern == AccessPattern::Strided)
                    page = (p * 7) % pages_per_chunk;
                const VAddr va =
                    bases[c] + page * pageSize + (p % 512) * 8;
                const bool write =
                    rng.uniform() < spec.writeFraction;
                const bool ok = write ?
                    static_cast<bool>(
                        kernel.writeUser(pid, va, p ^ pass)) :
                    static_cast<bool>(kernel.readUser(pid, va));
                if (ok)
                    ++metrics.touches;
            }
            // Allocation churn: unmap and remap some chunks.
            if (spec.churn > 0.0 && rng.uniform() < spec.churn) {
                kernel.munmap(pid, bases[c]);
                bases[c] = spec.fileBacked ?
                    kernel.mmapFile(pid, fds[c % fds.size()], chunk,
                                    rw) :
                    kernel.mmapAnon(pid, chunk, rw);
                if (bases[c] == 0)
                    fatal("workload ", spec.name, ": remap failed");
            }
        }
    }

    metrics.peakTableBytes =
        std::max(metrics.peakTableBytes, kernel.pageTableBytes());
    metrics.pageFaults = kernel.stats().value("pageFaults") - faults0;
    metrics.pteAllocs = kernel.stats().value("pteAllocs") - pte0;
    metrics.oomEvents = kernel.stats().value("oomFaults") +
                        kernel.stats().value("pteAllocFaults") - oom0;
    metrics.mmapCalls = kernel.stats().value("mmaps") - mmaps0;
    metrics.tlbMisses =
        kernel.mmu().tlb().stats().value("misses") - miss0;
    metrics.walks =
        kernel.mmu().walker().stats().value("walks") - walks0;

    metrics.modeledSeconds =
        (static_cast<double>(metrics.touches) * touchCostNs +
         static_cast<double>(metrics.pageFaults) * faultCostNs +
         static_cast<double>(metrics.tlbMisses) * tlbMissCostNs +
         static_cast<double>(metrics.mmapCalls) * mmapCostNs +
         static_cast<double>(metrics.oomEvents) * oomCostNs) *
        1e-9;

    kernel.exitProcess(pid);
    return metrics;
}

} // namespace ctamem::sim
