#include "fuzz/fuzzer.hh"

#include <algorithm>
#include <atomic>
#include <utility>

#include "runtime/thread_pool.hh"

namespace ctamem::fuzz {

namespace {

/**
 * Seed-stream stride between generations: child i of generation g
 * draws from stream g * kGenStride + i, so population sizes up to
 * the stride never collide across generations.
 */
constexpr std::uint64_t kGenStride = 1ULL << 20;

struct FuzzCounters
{
    std::atomic<std::uint64_t> runs{0};
    std::atomic<std::uint64_t> patternsEvaluated{0};
    std::atomic<std::uint64_t> generations{0};
    std::atomic<std::uint64_t> bypassesFound{0};
    std::atomic<std::uint64_t> bestFlips{0};
};

FuzzCounters &
counters()
{
    static FuzzCounters instance;
    return instance;
}

void
atomicMax(std::atomic<std::uint64_t> &slot, std::uint64_t value)
{
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while (seen < value &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

FuzzStats
fuzzStats()
{
    const FuzzCounters &c = counters();
    FuzzStats stats;
    stats.runs = c.runs.load(std::memory_order_relaxed);
    stats.patternsEvaluated =
        c.patternsEvaluated.load(std::memory_order_relaxed);
    stats.generations = c.generations.load(std::memory_order_relaxed);
    stats.bypassesFound =
        c.bypassesFound.load(std::memory_order_relaxed);
    stats.bestFlips = c.bestFlips.load(std::memory_order_relaxed);
    return stats;
}

PatternFuzzer::PatternFuzzer(FuzzTarget target,
                             const FuzzParams &params)
    : target_(std::move(target)), params_(params),
      builder_(params.builder, params.timing),
      seed_(params.seed ? params.seed
                        : deriveSeed(target_.dram.seed,
                                     seeds::kFuzzStream))
{}

std::uint64_t
PatternFuzzer::evaluate(const HammeringPattern &pattern) const
{
    // A private replica per evaluation: candidates never share
    // mutable state, which is what makes pool scheduling irrelevant
    // to the outcome.  The replica boots the target's seed, so row
    // profiles come straight from the process-wide cache.
    dram::DramModule module(target_.dram);
    std::unique_ptr<dram::DisturbanceObserver> observer;
    if (target_.makeObserver)
        observer = target_.makeObserver();
    dram::RowHammerEngine engine(module, observer.get());
    engine.setRefTiming(params_.timing);

    // Prime the arena flip-ready: every vulnerable cell stores the
    // value its flip direction consumes, so the score counts every
    // cell the pattern's disturbance actually trips.
    const std::uint64_t rows = module.geometry().rowsPerBank();
    const std::uint64_t first =
        target_.baseRow > 0 ? target_.baseRow - 1 : 0;
    const std::uint64_t last = std::min(
        rows, target_.baseRow + params_.builder.arenaRows + 2);
    for (std::uint64_t row = first; row < last; ++row) {
        const std::uint64_t device =
            module.deviceRow(target_.bank, row);
        const dram::RowVulnProfile &profile =
            engine.rowProfile(target_.bank, device);
        if (!profile.mapped)
            continue;
        for (const dram::MaskWord &mw : profile.words)
            module.writeU64(profile.base + mw.word * 8ULL, mw.dir10);
    }

    PatternRun run;
    run.bank = target_.bank;
    run.baseRow = target_.baseRow;
    run.windows = params_.windows;
    return runPattern(engine, pattern, run).total();
}

FuzzOutcome
PatternFuzzer::run(runtime::ThreadPool *pool)
{
    const std::uint64_t population =
        std::max<std::uint64_t>(2, params_.population);
    const std::uint64_t elite =
        std::max<std::uint64_t>(1, population / 4);
    const std::uint64_t parents =
        std::max<std::uint64_t>(2, population / 2);

    // Generation 0: the published families, then random fill.
    const std::vector<std::string> &families = patternFamilies();
    std::vector<HammeringPattern> current;
    current.reserve(population);
    for (std::uint64_t i = 0; i < population; ++i) {
        if (i < families.size()) {
            current.push_back(builder_.family(families[i]));
        } else {
            Rng rng(deriveSeed(seed_, i));
            current.push_back(builder_.random(rng));
        }
    }

    FuzzOutcome outcome;
    std::vector<std::uint64_t> flips(population);
    std::vector<std::uint64_t> ranked(population);

    for (std::uint64_t g = 0; g < params_.generations; ++g) {
        const auto score = [&](std::uint64_t i) {
            flips[i] = evaluate(current[i]);
        };
        if (pool) {
            pool->parallelFor(0, population, score, /*grain=*/1);
        } else {
            for (std::uint64_t i = 0; i < population; ++i)
                score(i);
        }
        outcome.patternsEvaluated += population;
        ++outcome.generations;

        // Rank by flips; hash then index tie-breaks keep the order —
        // and therefore the whole search — thread-count independent.
        for (std::uint64_t i = 0; i < population; ++i)
            ranked[i] = i;
        std::sort(ranked.begin(), ranked.end(),
                  [&](std::uint64_t lhs, std::uint64_t rhs) {
                      if (flips[lhs] != flips[rhs])
                          return flips[lhs] > flips[rhs];
                      const std::uint64_t hl = current[lhs].hash();
                      const std::uint64_t hr = current[rhs].hash();
                      return hl != hr ? hl < hr : lhs < rhs;
                  });

        const std::uint64_t top = ranked[0];
        if (flips[top] > outcome.bestFlips ||
            (flips[top] == outcome.bestFlips &&
             flips[top] > 0 &&
             current[top].hash() < outcome.best.hash())) {
            outcome.best = current[top];
            outcome.bestFlips = flips[top];
        }
        if (flips[top] > 0 &&
            outcome.firstBypassGeneration == ~0ULL) {
            outcome.firstBypassGeneration = g;
        }

        if (g + 1 == params_.generations)
            break;

        // Next generation: elites survive verbatim, the rest are
        // crossover + mutation children of the top half.
        std::vector<HammeringPattern> next;
        next.reserve(population);
        for (std::uint64_t i = 0; i < elite; ++i)
            next.push_back(current[ranked[i]]);
        for (std::uint64_t i = elite; i < population; ++i) {
            Rng rng(deriveSeed(seed_, (g + 1) * kGenStride + i));
            const HammeringPattern &pa =
                current[ranked[rng.below(parents)]];
            const HammeringPattern &pb =
                current[ranked[rng.below(parents)]];
            next.push_back(
                builder_.mutate(builder_.crossover(pa, pb, rng), rng));
        }
        current = std::move(next);
    }

    FuzzCounters &c = counters();
    c.runs.fetch_add(1, std::memory_order_relaxed);
    c.patternsEvaluated.fetch_add(outcome.patternsEvaluated,
                                  std::memory_order_relaxed);
    c.generations.fetch_add(outcome.generations,
                            std::memory_order_relaxed);
    if (outcome.bestFlips > 0)
        c.bypassesFound.fetch_add(1, std::memory_order_relaxed);
    atomicMax(c.bestFlips, outcome.bestFlips);
    return outcome;
}

} // namespace ctamem::fuzz
