#include "fuzz/pattern.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"

namespace ctamem::fuzz {

std::uint64_t
HammeringPattern::hash() const
{
    std::uint64_t h = stableHash(
        periodIntervals, static_cast<std::uint64_t>(entries.size()));
    for (const PatternEntry &entry : entries) {
        h = stableHash(h, entry.rowOffset, entry.pairGap,
                       entry.frequency, entry.phase, entry.slot,
                       entry.activations);
    }
    return h;
}

PatternEntry
PatternBuilder::randomEntry(Rng &rng) const
{
    PatternEntry entry;
    entry.rowOffset = rng.below(
        params_.arenaRows > 2 ? params_.arenaRows - 2 : 1);
    entry.pairGap = 2 * rng.below(2); // 0 (single) or 2 (pair)
    entry.frequency = 1 + rng.below(params_.maxPeriod);
    entry.phase = rng.below(entry.frequency);
    entry.slot = rng.below(params_.maxSlots);
    entry.activations = 1 + rng.below(timing_.actsPerInterval);
    return entry;
}

HammeringPattern
PatternBuilder::random(Rng &rng) const
{
    HammeringPattern pattern;
    pattern.periodIntervals = 1 + rng.below(params_.maxPeriod);
    const std::uint64_t count = 1 + rng.below(params_.maxEntries);
    pattern.entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        pattern.entries.push_back(randomEntry(rng));
    return pattern;
}

HammeringPattern
PatternBuilder::mutate(const HammeringPattern &pattern,
                       Rng &rng) const
{
    HammeringPattern mutant = pattern;
    if (mutant.entries.empty()) {
        mutant.entries.push_back(randomEntry(rng));
        return mutant;
    }

    const std::uint64_t op = rng.below(6);
    const std::uint64_t which = rng.below(mutant.entries.size());
    PatternEntry &entry = mutant.entries[which];
    switch (op) {
      case 0: // amplitude
        entry.activations = 1 + rng.below(timing_.actsPerInterval);
        break;
      case 1: // issue order
        entry.slot = rng.below(params_.maxSlots);
        break;
      case 2: // placement
        entry.rowOffset = rng.below(
            params_.arenaRows > 2 ? params_.arenaRows - 2 : 1);
        entry.pairGap = 2 * rng.below(2);
        break;
      case 3: // frequency domain
        entry.frequency = 1 + rng.below(params_.maxPeriod);
        entry.phase = rng.below(entry.frequency);
        break;
      case 4: // grow
        if (mutant.entries.size() < params_.maxEntries)
            mutant.entries.push_back(randomEntry(rng));
        else
            entry.activations =
                1 + rng.below(timing_.actsPerInterval);
        break;
      default: // shrink
        if (mutant.entries.size() > 1)
            mutant.entries.erase(mutant.entries.begin() +
                                 static_cast<std::ptrdiff_t>(which));
        else
            entry.slot = rng.below(params_.maxSlots);
        break;
    }
    return mutant;
}

HammeringPattern
PatternBuilder::crossover(const HammeringPattern &a,
                          const HammeringPattern &b, Rng &rng) const
{
    HammeringPattern child;
    child.periodIntervals =
        rng.below(2) ? b.periodIntervals : a.periodIntervals;
    const std::uint64_t cutA = rng.below(a.entries.size() + 1);
    const std::uint64_t cutB = rng.below(b.entries.size() + 1);
    child.entries.assign(a.entries.begin(),
                         a.entries.begin() +
                             static_cast<std::ptrdiff_t>(cutA));
    child.entries.insert(child.entries.end(),
                         b.entries.begin() +
                             static_cast<std::ptrdiff_t>(cutB),
                         b.entries.end());
    if (child.entries.size() > params_.maxEntries)
        child.entries.resize(params_.maxEntries);
    if (child.entries.empty()) {
        child.entries.push_back(a.entries.empty()
                                    ? randomEntry(rng)
                                    : a.entries.front());
    }
    return child;
}

const std::vector<std::string> &
patternFamilies()
{
    static const std::vector<std::string> families{
        "sync", "single", "decoy-lead", "freq-split"};
    return families;
}

HammeringPattern
PatternBuilder::family(std::string_view name) const
{
    const std::uint64_t budget = timing_.actsPerInterval;
    HammeringPattern pattern;
    pattern.periodIntervals = 1;

    if (name == "sync") {
        pattern.entries.push_back(
            PatternEntry{0, 2, 1, 0, 0, budget / 2});
    } else if (name == "single") {
        pattern.entries.push_back(PatternEntry{0, 0, 1, 0, 0, budget});
    } else if (name == "decoy-lead") {
        // Decoys monopolize the sampler's early-slot latch window;
        // the real pair hammers from later slots, unobserved.
        const std::uint64_t decoy = 2;
        const std::uint64_t main_acts =
            budget > 4 * decoy ? (budget - 2 * decoy) / 2 : 1;
        pattern.entries.push_back(PatternEntry{6, 2, 1, 0, 0, decoy});
        pattern.entries.push_back(
            PatternEntry{0, 2, 1, 0, 8, main_acts});
    } else if (name == "freq-split") {
        pattern.periodIntervals = 2;
        pattern.entries.push_back(
            PatternEntry{0, 2, 2, 0, 0, budget / 2});
        pattern.entries.push_back(
            PatternEntry{4, 2, 2, 1, 0, budget / 2});
    } else {
        fatal("pattern family \"", std::string(name),
              "\" is not one of the known seeds");
    }
    return pattern;
}

dram::HammerResult
runPattern(dram::RowHammerEngine &engine,
           const HammeringPattern &pattern, const PatternRun &run)
{
    dram::HammerResult result;
    const dram::RefTiming &timing = engine.refTiming();
    const std::uint64_t rows =
        engine.module().geometry().rowsPerBank();
    const std::uint64_t intervals =
        run.windows * timing.refsPerWindow;

    // Issue order within an interval: ascending slot, entry index as
    // the tie-break (std::sort on the pair keeps it deterministic).
    std::vector<std::uint64_t> order(pattern.entries.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint64_t lhs, std::uint64_t rhs) {
                  const std::uint64_t sl = pattern.entries[lhs].slot;
                  const std::uint64_t sr = pattern.entries[rhs].slot;
                  return sl != sr ? sl < sr : lhs < rhs;
              });

    for (std::uint64_t t = 0; t < intervals; ++t) {
        std::uint64_t budget = timing.actsPerInterval;
        std::uint64_t position = 0;
        for (const std::uint64_t index : order) {
            const PatternEntry &entry = pattern.entries[index];
            if (t % entry.frequency !=
                entry.phase % entry.frequency) {
                continue; // not this entry's interval
            }
            const std::uint64_t bursts = entry.pairGap ? 2 : 1;
            for (std::uint64_t burst = 0; burst < bursts; ++burst) {
                if (budget == 0)
                    break;
                const std::uint64_t row = run.baseRow +
                                          entry.rowOffset +
                                          burst * entry.pairGap;
                const std::uint64_t acts =
                    std::min(entry.activations, budget);
                if (row < rows) {
                    engine.activate(run.bank, row, acts, position,
                                    result);
                }
                budget -= acts;
                ++position;
            }
        }
        engine.refTick(run.bank, result);
    }
    engine.drainPressure(run.bank, result);
    return result;
}

} // namespace ctamem::fuzz
