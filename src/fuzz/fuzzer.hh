/**
 * @file
 * Evolutionary search for TRR-bypassing hammering patterns.
 *
 * PatternFuzzer runs a (mu + lambda)-style loop over
 * HammeringPatterns: generation 0 seeds from the published pattern
 * families plus random fill, each candidate is scored by replaying
 * it on a *private* simulated module (same seed as the target, so
 * the shared row-profile cache serves every evaluation) against a
 * freshly built defense observer, and survivors are selected on
 * flips induced.  All randomness is counter-seeded — child i of
 * generation g draws from Rng(deriveSeed(seed, g * stride + i)) —
 * and results merge by population index, so the best pattern is
 * bit-identical whether evaluations run serially or on any
 * runtime::ThreadPool width (the campaign determinism contract).
 *
 * The layer sits above dram and runtime only: defenses reach the
 * fuzzer as an opaque observer factory, so defense/ (and attack/,
 * which replays fuzzer output) can depend on fuzz/ without a cycle.
 */

#ifndef CTAMEM_FUZZ_FUZZER_HH
#define CTAMEM_FUZZ_FUZZER_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "dram/module.hh"
#include "fuzz/pattern.hh"

namespace ctamem::runtime {
class ThreadPool;
}

namespace ctamem::fuzz {

/** Search configuration (serialized in scenario manifests). */
struct FuzzParams
{
    std::uint64_t population = 16;
    std::uint64_t generations = 6;
    std::uint64_t windows = 1; //!< refresh windows per evaluation
    /** 0 derives the search seed from the target module's seed. */
    std::uint64_t seed = 0;
    BuilderParams builder;
    dram::RefTiming timing;

    bool operator==(const FuzzParams &) const = default;
};

/** What the fuzzer attacks: a module config + a defense factory. */
struct FuzzTarget
{
    dram::DramConfig dram;
    std::uint64_t bank = 0;
    std::uint64_t baseRow = 8; //!< arena start (entry offsets add)
    /**
     * Builds one defense observer per evaluation (each candidate
     * faces a fresh mitigation state).  Null = undefended module.
     */
    std::function<std::unique_ptr<dram::DisturbanceObserver>()>
        makeObserver;
};

/** Result of one fuzzing run. */
struct FuzzOutcome
{
    HammeringPattern best;
    std::uint64_t bestFlips = 0;
    std::uint64_t patternsEvaluated = 0;
    std::uint64_t generations = 0;
    /** First generation with any flips; ~0 when never bypassed. */
    std::uint64_t firstBypassGeneration = ~0ULL;
};

/** Evolutionary pattern search against one target. */
class PatternFuzzer
{
  public:
    PatternFuzzer(FuzzTarget target, const FuzzParams &params);

    /**
     * Run the search; @p pool parallelizes candidate evaluations
     * (null = serial).  Same target + params give the same outcome
     * at any pool width.
     */
    FuzzOutcome run(runtime::ThreadPool *pool = nullptr);

    /** Score one pattern: flips induced on a fresh target replica. */
    std::uint64_t evaluate(const HammeringPattern &pattern) const;

    /** The resolved search seed (after the 0 = derive default). */
    std::uint64_t seed() const { return seed_; }

  private:
    FuzzTarget target_;
    FuzzParams params_;
    PatternBuilder builder_;
    std::uint64_t seed_;
};

/** @name Process-wide fuzzer progress counters
 *
 * Aggregated across every PatternFuzzer in the process, exported
 * through the ctamemd `stats` response beside the profile-cache
 * counters — long fuzz campaigns are monitored the same way cell
 * sweeps are.
 */
/** @{ */

struct FuzzStats
{
    std::uint64_t runs = 0;              //!< completed run() calls
    std::uint64_t patternsEvaluated = 0;
    std::uint64_t generations = 0;
    std::uint64_t bypassesFound = 0;     //!< runs with bestFlips > 0
    std::uint64_t bestFlips = 0;         //!< max over all runs
};

FuzzStats fuzzStats();

/** @} */

} // namespace ctamem::fuzz

#endif // CTAMEM_FUZZ_FUZZER_HH
