/**
 * @file
 * Blacksmith-style non-uniform hammering patterns.
 *
 * A HammeringPattern describes *when* aggressor rows are activated
 * within the refresh clock, not just how often: each entry is an
 * aggressor (or aggressor pair) with a frequency and phase in tREFI
 * intervals, an issue slot ordering its bursts within the interval,
 * and an activation amplitude.  Replayed through the engine's timed
 * path (RowHammerEngine::activate / refTick), patterns occupy the
 * frequency/phase/amplitude search space Blacksmith showed slips
 * past in-DRAM TRR samplers — e.g. decoy activations leading each
 * interval so the sampler's latch window never sees the real pair.
 *
 * PatternBuilder supplies the evolutionary operators (random,
 * mutate, crossover) plus named seed families replicating published
 * pattern shapes; everything draws from a caller-provided Rng so the
 * fuzzer's counter-seeding keeps the search bit-reproducible.
 */

#ifndef CTAMEM_FUZZ_PATTERN_HH
#define CTAMEM_FUZZ_PATTERN_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hh"
#include "dram/hammer.hh"

namespace ctamem::fuzz {

/**
 * One scheduled aggressor within a pattern.  Rows are offsets from
 * the replay's base row, so a pattern is position-independent and
 * can be templated anywhere in a bank.
 */
struct PatternEntry
{
    std::uint64_t rowOffset = 2;  //!< first aggressor, from base row
    /** Second aggressor at rowOffset + pairGap; 0 = single-sided. */
    std::uint64_t pairGap = 2;
    std::uint64_t frequency = 1;  //!< fires every this many intervals
    std::uint64_t phase = 0;      //!< interval residue it fires on
    std::uint64_t slot = 0;       //!< issue order within the interval
    std::uint64_t activations = 32; //!< per burst, per aggressor

    bool operator==(const PatternEntry &) const = default;
};

/** A frequency/phase-structured aggressor schedule. */
struct HammeringPattern
{
    /** Nominal period in tREFI intervals (bounds mutation ranges). */
    std::uint64_t periodIntervals = 4;
    std::vector<PatternEntry> entries;

    /** Order-sensitive content hash (the determinism fingerprint). */
    std::uint64_t hash() const;

    bool operator==(const HammeringPattern &) const = default;
};

/** Search-space bounds of the builder's operators. */
struct BuilderParams
{
    std::uint64_t arenaRows = 48; //!< rows the replay may touch
    std::uint64_t maxEntries = 8;
    std::uint64_t maxPeriod = 4;
    std::uint64_t maxSlots = 16;

    bool operator==(const BuilderParams &) const = default;
};

/** Evolutionary operators + published seed families. */
class PatternBuilder
{
  public:
    PatternBuilder(const BuilderParams &params,
                   const dram::RefTiming &timing)
        : params_(params), timing_(timing)
    {}

    /** A uniformly random pattern within the bounds. */
    HammeringPattern random(Rng &rng) const;

    /** One mutation step (amplitude/slot/row/frequency/add/drop). */
    HammeringPattern mutate(const HammeringPattern &pattern,
                            Rng &rng) const;

    /** Single-point entry crossover of two parents. */
    HammeringPattern crossover(const HammeringPattern &a,
                               const HammeringPattern &b,
                               Rng &rng) const;

    /**
     * Named seed pattern (see patternFamilies()); fatals on an
     * unknown name.
     */
    HammeringPattern family(std::string_view name) const;

  private:
    PatternEntry randomEntry(Rng &rng) const;

    BuilderParams params_;
    dram::RefTiming timing_;
};

/**
 * The seed families the fuzzer's generation 0 starts from:
 *  - "sync":       one double-sided pair saturating every interval
 *                  from slot 0 (the classic REF-synchronized hammer);
 *  - "single":     one single-sided aggressor, full budget;
 *  - "decoy-lead": a small decoy pair leading each interval, the
 *                  real pair in later slots (the TRR-sampler bypass);
 *  - "freq-split": two pairs alternating intervals at frequency 2.
 */
const std::vector<std::string> &patternFamilies();

/** Placement of one pattern replay. */
struct PatternRun
{
    std::uint64_t bank = 0;
    std::uint64_t baseRow = 0; //!< logical row entry offsets add to
    std::uint64_t windows = 1; //!< refresh windows to replay for
};

/**
 * Replay @p pattern through @p engine's timed path: for each tREFI
 * interval, issue the entries whose (frequency, phase) select it in
 * ascending (slot, entry index) order — clamped to the interval's
 * activation budget — then retire one REF.  Outstanding pressure is
 * drained (evaluated) at the end, so a one-window run still counts
 * the flips of rows whose refresh slot already passed.
 */
dram::HammerResult runPattern(dram::RowHammerEngine &engine,
                              const HammeringPattern &pattern,
                              const PatternRun &run);

} // namespace ctamem::fuzz

#endif // CTAMEM_FUZZ_PATTERN_HH
