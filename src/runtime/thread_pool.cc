#include "runtime/thread_pool.hh"

#include <algorithm>

#include "common/log.hh"

namespace ctamem::runtime {

unsigned
defaultWorkerCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = threads ? threads : defaultWorkerCount();
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    available_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            ctamem_panic("ThreadPool::enqueue after shutdown");
        queue_.push_back(std::move(job));
    }
    available_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // A packaged_task catches its own exceptions into the future;
        // raw parallelFor blocks catch theirs below.
        job();
    }
}

void
ThreadPool::parallelFor(std::uint64_t begin, std::uint64_t end,
                        const std::function<void(std::uint64_t)> &body)
{
    if (begin >= end)
        return;
    const std::uint64_t total = end - begin;
    // Over-split a little so uneven iteration costs still balance.
    const std::uint64_t blocks =
        std::min<std::uint64_t>(total, std::uint64_t{size()} * 4);
    const std::uint64_t per = total / blocks;
    const std::uint64_t extra = total % blocks;

    std::vector<std::future<void>> pending;
    pending.reserve(blocks);
    std::uint64_t cursor = begin;
    for (std::uint64_t block = 0; block < blocks; ++block) {
        const std::uint64_t len = per + (block < extra ? 1 : 0);
        const std::uint64_t lo = cursor;
        const std::uint64_t hi = cursor + len;
        cursor = hi;
        pending.push_back(submit([&body, lo, hi]() {
            for (std::uint64_t i = lo; i < hi; ++i)
                body(i);
        }));
    }

    std::exception_ptr first;
    for (std::future<void> &f : pending) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace ctamem::runtime
