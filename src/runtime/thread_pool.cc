#include "runtime/thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "common/log.hh"

namespace ctamem::runtime {

unsigned
defaultWorkerCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = threads ? threads : defaultWorkerCount();
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    available_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            ctamem_panic("ThreadPool::enqueue after shutdown");
        queue_.push_back(std::move(job));
    }
    available_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // A packaged_task catches its own exceptions into the future;
        // raw parallelFor blocks catch theirs below.
        job();
    }
}

void
ThreadPool::parallelFor(std::uint64_t begin, std::uint64_t end,
                        const std::function<void(std::uint64_t)> &body,
                        std::uint64_t grain)
{
    if (begin >= end)
        return;
    const std::uint64_t total = end - begin;
    if (grain == 0) {
        // Over-split a little so uneven iteration costs balance.
        grain = std::max<std::uint64_t>(
            1, total / (std::uint64_t{size()} * 8));
    }
    const std::uint64_t slices = (total + grain - 1) / grain;
    const auto jobs = static_cast<unsigned>(
        std::min<std::uint64_t>(slices, size()));

    // All jobs share one cursor and claim the next grain-sized slice
    // until the range drains; the latch replaces a futures vector,
    // so the only heap traffic is the `jobs` queue entries.  Lives
    // on this frame: done.wait() below outlasts every job.
    struct Control
    {
        std::atomic<std::uint64_t> cursor;
        std::latch done;
        std::mutex failMutex;
        std::exception_ptr first;

        Control(std::uint64_t start, unsigned count)
            : cursor(start), done(count)
        {}
    } control{begin, jobs};

    auto drain = [&body, &control, end, grain]() {
        for (;;) {
            const std::uint64_t lo = control.cursor.fetch_add(
                grain, std::memory_order_relaxed);
            if (lo >= end)
                break;
            const std::uint64_t hi = std::min(end, lo + grain);
            try {
                for (std::uint64_t i = lo; i < hi; ++i)
                    body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(control.failMutex);
                if (!control.first)
                    control.first = std::current_exception();
                break; // this job stops; the others keep draining
            }
        }
        control.done.count_down();
    };

    for (unsigned job = 0; job < jobs; ++job)
        enqueue(drain);
    control.done.wait();
    if (control.first)
        std::rethrow_exception(control.first);
}

} // namespace ctamem::runtime
