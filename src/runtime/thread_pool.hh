/**
 * @file
 * Fixed-size worker thread pool for the parallel experiment engine.
 *
 * Design goals, in order:
 *  1. determinism of the *consumers* — the pool only supplies raw
 *     concurrency; anything whose output must not depend on the
 *     worker count (Monte-Carlo chunking, campaign cells) carries its
 *     own counter-derived seeds and merges results in task-index
 *     order, never in completion order;
 *  2. exception transparency — a task that throws surfaces the
 *     exception at the matching future's get(), and parallelFor
 *     rethrows the first block failure after all blocks finish;
 *  3. reusability — one pool outlives many submit/parallelFor rounds
 *     (machine construction is far cheaper than thread creation at
 *     campaign scale).
 */

#ifndef CTAMEM_RUNTIME_THREAD_POOL_HH
#define CTAMEM_RUNTIME_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <latch>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ctamem::runtime {

/** Worker count to use when the caller does not care (>= 1). */
unsigned defaultWorkerCount();

/** Fixed-size thread pool with task futures and a parallel loop. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = defaultWorkerCount(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Queue a callable; its result (or exception) is delivered
     * through the returned future.
     */
    template <typename F,
              typename R = std::invoke_result_t<std::decay_t<F>>>
    std::future<R>
    submit(F &&callable)
    {
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(callable));
        std::future<R> result = task->get_future();
        enqueue([task]() { (*task)(); });
        return result;
    }

    /**
     * Run body(i) for every i in [begin, end), blocking until all
     * iterations finish.
     *
     * One job per worker pulls grain-sized slices off a shared
     * atomic cursor until the range drains, and a single latch
     * signals completion — no per-slice heap traffic, so fine grains
     * are cheap.  @p grain is the slice length a worker claims at a
     * time (0 picks ~8 slices per worker); pass 1 when each
     * iteration is already a coarse unit of work, e.g. a Monte-Carlo
     * chunk.  The first exception thrown by any iteration is
     * rethrown here once every job has finished; the throwing job
     * abandons the rest of its current slice, other jobs keep
     * draining the range.
     */
    void parallelFor(std::uint64_t begin, std::uint64_t end,
                     const std::function<void(std::uint64_t)> &body,
                     std::uint64_t grain = 0);

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

} // namespace ctamem::runtime

#endif // CTAMEM_RUNTIME_THREAD_POOL_HH
