/**
 * @file
 * Fixed-size worker thread pool for the parallel experiment engine.
 *
 * Design goals, in order:
 *  1. determinism of the *consumers* — the pool only supplies raw
 *     concurrency; anything whose output must not depend on the
 *     worker count (Monte-Carlo chunking, campaign cells) carries its
 *     own counter-derived seeds and merges results in task-index
 *     order, never in completion order;
 *  2. exception transparency — a task that throws surfaces the
 *     exception at the matching future's get(), and parallelFor
 *     rethrows the first block failure after all blocks finish;
 *  3. reusability — one pool outlives many submit/parallelFor rounds
 *     (machine construction is far cheaper than thread creation at
 *     campaign scale).
 */

#ifndef CTAMEM_RUNTIME_THREAD_POOL_HH
#define CTAMEM_RUNTIME_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ctamem::runtime {

/** Worker count to use when the caller does not care (>= 1). */
unsigned defaultWorkerCount();

/** Fixed-size thread pool with task futures and a parallel loop. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = defaultWorkerCount(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Queue a callable; its result (or exception) is delivered
     * through the returned future.
     */
    template <typename F,
              typename R = std::invoke_result_t<std::decay_t<F>>>
    std::future<R>
    submit(F &&callable)
    {
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(callable));
        std::future<R> result = task->get_future();
        enqueue([task]() { (*task)(); });
        return result;
    }

    /**
     * Run body(i) for every i in [begin, end), blocking until all
     * iterations finish.  Iterations are grouped into contiguous
     * blocks; the first exception thrown by any iteration is
     * rethrown here once every block has completed.
     */
    void parallelFor(std::uint64_t begin, std::uint64_t end,
                     const std::function<void(std::uint64_t)> &body);

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

} // namespace ctamem::runtime

#endif // CTAMEM_RUNTIME_THREAD_POOL_HH
