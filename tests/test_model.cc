/**
 * @file
 * Tests of the closed-form security model against the values the
 * paper publishes (abstract, Section 5, Tables 2 and 3), plus
 * Monte-Carlo cross-checks and the capacity model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "common/combinatorics.hh"
#include "dram/cell_types.hh"
#include "model/capacity.hh"
#include "model/montecarlo.hh"
#include "model/security_model.hh"
#include "model/tables.hh"

namespace ctamem::model {
namespace {

SystemParams
paperBaseline()
{
    SystemParams params;
    params.memBytes = 8 * GiB;
    params.ptpBytes = 32 * MiB;
    return params;
}

TEST(SecurityModel, HeadlinePExploitable)
{
    // Section 5: P_exploitable = 1.6e-6 for the 8 GiB / 32 MiB case.
    EXPECT_NEAR(pExploitable(paperBaseline()), 1.6e-6, 0.05e-6);
}

TEST(SecurityModel, HeadlineExpectedPtes)
{
    // Section 5: 4,194,304 PTEs, expected 6.7 exploitable.
    const SystemParams params = paperBaseline();
    EXPECT_EQ(params.pteCount(), 4'194'304u);
    EXPECT_NEAR(expectedExploitablePtes(params), 6.7, 0.05);
}

TEST(SecurityModel, RestrictedExpectedPtes)
{
    SystemParams params = paperBaseline();
    params.minIndicatorZeros = 2;
    EXPECT_NEAR(expectedExploitablePtes(params), 4.69e-6, 0.05e-6);
}

TEST(SecurityModel, OneInTwoHundredThousandSystems)
{
    // Abstract: "only one out of 2.04e5 systems is vulnerable".
    SystemParams params = paperBaseline();
    params.minIndicatorZeros = 2;
    const double fraction = vulnerableSystemFraction(params);
    // The paper rounds to 2.04e5; its own E = 4.69e-6 implies
    // 1/4.69e-6 = 2.13e5, which is what the exact model yields.
    EXPECT_NEAR(1.0 / fraction, 2.13e5, 0.05e5);
}

TEST(SecurityModel, AttackTimeUnrestricted)
{
    // Section 5's walk-through: per-page 19.08 s, 57.6 days average.
    const AttackTime time = expectedAttackTime(paperBaseline());
    EXPECT_NEAR(time.perPageSeconds, 19.08, 0.05);
    EXPECT_NEAR(time.avgDays, 57.6, 0.3);
}

TEST(SecurityModel, AttackTimeRestricted)
{
    SystemParams params = paperBaseline();
    params.minIndicatorZeros = 2;
    const AttackTime time = expectedAttackTime(params);
    EXPECT_NEAR(time.avgDays, 230.7, 0.5);
    // Six orders of magnitude slower than the fastest published
    // attack (20 seconds).
    const double seconds = time.avgDays * 86400.0;
    EXPECT_GT(seconds / 20.0, 9.9e5);
}

TEST(SecurityModel, AntiCellZoneAblation)
{
    // Section 5: a ZONE_PTP made of anti-cells has ~3354.7 expected
    // exploitable PTEs and an expected attack time of ~3.2 hours —
    // the low water mark alone is not a defense.
    SystemParams params = paperBaseline();
    params.zoneCells = dram::CellType::Anti;
    EXPECT_NEAR(expectedExploitablePtes(params), 3354.7, 15.0);
    const AttackTime time = expectedAttackTime(params);
    EXPECT_NEAR(time.avgDays * 24.0, 3.2, 0.2);
}

TEST(Table2, MatchesPaper)
{
    const std::vector<TableRow> rows = makeTable2();
    const std::vector<PaperReference> paper = paperTable2();
    ASSERT_EQ(rows.size(), paper.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_NEAR(rows[i].expectedPtes, paper[i].expectedPtes,
                    paper[i].expectedPtes * 0.01)
            << "row " << i;
        EXPECT_NEAR(rows[i].attackDays, paper[i].attackDays,
                    paper[i].attackDays * 0.01)
            << "row " << i;
    }
}

TEST(Table3, MatchesPaper)
{
    const std::vector<TableRow> rows = makeTable3();
    const std::vector<PaperReference> paper = paperTable3();
    ASSERT_EQ(rows.size(), paper.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_NEAR(rows[i].expectedPtes, paper[i].expectedPtes,
                    paper[i].expectedPtes * 0.02)
            << "row " << i;
        EXPECT_NEAR(rows[i].attackDays, paper[i].attackDays,
                    paper[i].attackDays * 0.01)
            << "row " << i;
    }
}

TEST(Table3, RestrictedTimesMatchTable2)
{
    // The paper notes the restricted attack times do not change under
    // pessimistic scaling (exactly-one-exploitable conditioning).
    const auto t2 = makeTable2();
    const auto t3 = makeTable3();
    for (std::size_t i = 0; i < t2.size(); ++i) {
        if (t2[i].restricted) {
            EXPECT_DOUBLE_EQ(t2[i].attackDays, t3[i].attackDays);
        }
    }
}

TEST(MonteCarlo, FixedZerosMatchesClosedFormTerm)
{
    // Boosted probabilities so 200k trials see plenty of events.
    SystemParams params = paperBaseline();
    params.errors.pf = 0.05;
    params.errors.p01True = 0.3;
    params.errors.p10True = 0.7;

    const unsigned n = params.indicatorBits();
    for (unsigned zeros : {1u, 2u}) {
        const double p_up = params.errors.upFlipProbTrue();
        const double p_down = params.errors.downFlipProbTrue();
        const double analytic =
            std::pow(p_up, zeros) *
            std::pow(1.0 - p_down, n - zeros);
        const McEstimate mc =
            mcExploitableFixedZeros(params, zeros, 400'000);
        EXPECT_NEAR(mc.mean, analytic, 5 * mc.stderr + 1e-9)
            << "zeros=" << zeros;
    }
}

TEST(MonteCarlo, UniformPointerIsBelowPaperFormula)
{
    SystemParams params = paperBaseline();
    params.errors.pf = 0.05;
    params.errors.p01True = 0.3;
    params.errors.p10True = 0.7;
    const McEstimate mc = mcExploitableUniform(params, 200'000);
    // The paper's formula assumes attacker-optimal spray content, so
    // it must upper-bound the uniform-content estimate.
    EXPECT_LT(mc.mean, pExploitable(params));
}

TEST(MonteCarlo, TrueCellsBeatAntiCells)
{
    SystemParams true_zone = paperBaseline();
    true_zone.errors.pf = 0.02;
    SystemParams anti_zone = true_zone;
    anti_zone.zoneCells = dram::CellType::Anti;
    const McEstimate mc_true =
        mcExploitableFixedZeros(true_zone, 1, 200'000);
    const McEstimate mc_anti =
        mcExploitableFixedZeros(anti_zone, 1, 200'000);
    EXPECT_LT(mc_true.mean * 10, mc_anti.mean + 1e-12);
}

SystemParams
boostedParams()
{
    SystemParams params = paperBaseline();
    params.errors.pf = 0.05;
    params.errors.p01True = 0.3;
    params.errors.p10True = 0.7;
    return params;
}

TEST(MonteCarloBatched, AgreesWithScalarWithin4Sigma)
{
    // Scalar and batched draw different streams from the same seed,
    // so they agree statistically, not bit-wise: the two independent
    // estimates of the same probability differ by at most 4 combined
    // sigma.
    McSpec scalar;
    scalar.params = boostedParams();
    scalar.zeros = 1;
    scalar.trials = 400'000;
    for (const auto [ref, batched] :
         {std::pair{Sampler::FixedZeros, Sampler::FixedZerosBatched},
          std::pair{Sampler::Uniform, Sampler::UniformBatched}}) {
        scalar.sampler = ref;
        McSpec fast = scalar;
        fast.sampler = batched;
        const McEstimate a = runMc(scalar);
        const McEstimate b = runMc(fast);
        const double sigma =
            std::sqrt(a.stderr * a.stderr + b.stderr * b.stderr);
        EXPECT_NEAR(a.mean, b.mean, 4 * sigma + 1e-12)
            << "sampler pair " << static_cast<int>(ref);
    }
}

TEST(MonteCarloBatched, FixedZerosMatchesClosedForm)
{
    McSpec spec;
    spec.params = boostedParams();
    spec.sampler = Sampler::FixedZerosBatched;
    spec.trials = 400'000;
    for (unsigned zeros : {1u, 2u}) {
        spec.zeros = zeros;
        const double exact =
            pExploitableExactZeros(spec.params, zeros);
        const McEstimate mc = runMc(spec);
        EXPECT_EQ(mc.trials, spec.trials);
        EXPECT_NEAR(mc.mean, exact, 5 * mc.stderr + 1e-9)
            << "zeros=" << zeros;
    }
}

TEST(MonteCarloBatched, UniformMatchesClosedForm)
{
    McSpec spec;
    spec.params = boostedParams();
    spec.sampler = Sampler::UniformBatched;
    spec.trials = 400'000;
    const double exact = pExploitableUniform(spec.params);
    const McEstimate mc = runMc(spec);
    EXPECT_NEAR(mc.mean, exact, 5 * mc.stderr + 1e-9);
}

TEST(MonteCarloBatched, ImportanceSamplingUnbiasedAtBoostedParams)
{
    // Where the direct estimator also works, the likelihood-ratio
    // estimator must land on the same closed form.
    McSpec spec;
    spec.params = boostedParams();
    spec.sampler = Sampler::FixedZerosBatched;
    spec.mode = Mode::ImportanceSampled;
    spec.zeros = 1;
    spec.trials = 400'000;
    const double exact = pExploitableExactZeros(spec.params, 1);
    const McEstimate mc = runMc(spec);
    EXPECT_NEAR(mc.mean, exact, 5 * mc.stderr + 1e-9);
    EXPECT_GT(mc.ess, 0.0);
}

TEST(MonteCarloBatched, UniformImportanceSamplingUnbiased)
{
    McSpec spec;
    spec.params = boostedParams();
    spec.sampler = Sampler::UniformBatched;
    spec.mode = Mode::ImportanceSampled;
    spec.trials = 400'000;
    const double exact = pExploitableUniform(spec.params);
    const McEstimate mc = runMc(spec);
    EXPECT_NEAR(mc.mean, exact, 5 * mc.stderr + 1e-9);
}

TEST(MonteCarloBatched, ImportanceSamplingReachesRareTail)
{
    // Production parameters, restricted pointers: the per-trial hit
    // probability is ~4e-14.  The direct estimator at 400k trials is
    // blind to it; the importance-sampled one resolves it to a few
    // percent in the same budget.
    SystemParams params = paperBaseline();
    params.minIndicatorZeros = 2;
    const double exact = pExploitableExactZeros(params, 2);
    ASSERT_GT(exact, 0.0);
    ASSERT_LT(exact, 1e-9);

    McSpec direct;
    direct.params = params;
    direct.sampler = Sampler::FixedZerosBatched;
    direct.zeros = 2;
    direct.trials = 400'000;
    EXPECT_EQ(runMc(direct).mean, 0.0); // blind to the tail

    McSpec tilted = direct;
    tilted.mode = Mode::ImportanceSampled;
    const McEstimate mc = runMc(tilted);
    EXPECT_GT(mc.mean, 0.0);
    EXPECT_NEAR(mc.mean, exact, 5 * mc.stderr);
    EXPECT_LT(mc.stderr, exact); // genuinely resolved, not one fluke
    EXPECT_GT(mc.ess, 100.0);
}

TEST(SecurityModel, ClosedFormHelpersMatchDefinitions)
{
    const SystemParams params = boostedParams();
    const unsigned n = params.indicatorBits();
    const double p_up = params.errors.upFlipProbTrue();
    const double p_down = params.errors.downFlipProbTrue();
    for (unsigned zeros : {1u, 2u, n}) {
        const double expect =
            std::pow(p_up, zeros) *
            std::pow(1.0 - p_down, n - zeros);
        EXPECT_NEAR(pExploitableExactZeros(params, zeros), expect,
                    expect * 1e-12)
            << "zeros=" << zeros;
    }
    // The uniform closed form averages the exactly-z terms over the
    // nonzero pointer values below the mark.
    double total = 0.0;
    for (unsigned z = 1; z <= n; ++z)
        total += choose(n, z) * pExploitableExactZeros(params, z);
    const double expect =
        total / (static_cast<double>(1ULL << n) - 1.0);
    EXPECT_NEAR(pExploitableUniform(params), expect, expect * 1e-12);
}

TEST(Capacity, WorstCase078Percent)
{
    // Section 6.2: worst case 0.78% for 8 GiB with a 64 MiB anti
    // stripe wasted (alternating 512 x 128 KiB rows).
    const double fraction =
        worstCaseLossFraction(512, 128 * KiB, 8 * GiB, 32 * MiB);
    EXPECT_NEAR(fraction, 0.0078, 0.0001);
}

TEST(Capacity, AnalyticMatchesLayoutWalk)
{
    // True-first alternating 512 over 8 GiB: top stripe is anti
    // (65536 rows -> 128 stripes, stripe 127 odd -> anti).
    const dram::CellTypeMap map = dram::CellTypeMap::alternating(512);
    const CapacityLoss loss =
        analyzeCapacityLoss(map, 8 * GiB, 32 * MiB);
    EXPECT_EQ(loss.skippedAntiBytes, 64 * MiB);
    EXPECT_NEAR(loss.lossFraction(8 * GiB), 0.0078, 0.0001);
    EXPECT_EQ(loss.ptpBytes, 32 * MiB);

    // Best case: true cells on top -> zero loss.
    const dram::CellTypeMap lucky =
        dram::CellTypeMap::alternating(512, /*true_first=*/false);
    const CapacityLoss no_loss =
        analyzeCapacityLoss(lucky, 8 * GiB, 32 * MiB);
    EXPECT_EQ(no_loss.skippedAntiBytes, 0u);
}

TEST(Capacity, MostlyTrueModulesLoseLess)
{
    const dram::CellTypeMap ratio = dram::CellTypeMap::mostlyTrue(1000);
    const CapacityLoss loss =
        analyzeCapacityLoss(ratio, 8 * GiB, 32 * MiB);
    EXPECT_LE(loss.skippedAntiBytes, 128 * KiB);
}

} // namespace
} // namespace ctamem::model
