/**
 * @file
 * Unit tests for the DRAM substrate: geometry/address mapping,
 * cell-type maps, sparse storage, fault model, decay, re-mapping.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/log.hh"
#include "dram/cell_types.hh"
#include "dram/fault_model.hh"
#include "dram/geometry.hh"
#include "dram/module.hh"
#include "dram/sparse_store.hh"

namespace ctamem::dram {
namespace {

DramConfig
smallConfig()
{
    DramConfig config;
    config.capacity = 256 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 8;
    config.cellMap = CellTypeMap::alternating(64);
    config.seed = 7;
    return config;
}

TEST(Geometry, RoundTripBankBlocked)
{
    Geometry geom(256 * MiB, 128 * KiB, 8, AddressScheme::BankBlocked);
    EXPECT_EQ(geom.totalRows(), 2048u);
    EXPECT_EQ(geom.rowsPerBank(), 256u);
    EXPECT_EQ(geom.pagesPerRow(), 32u);
    for (Addr addr : {Addr{0}, Addr{131071}, Addr{131072},
                      Addr{200 * MiB + 12345}, 256 * MiB - 1}) {
        const Location loc = geom.locate(addr);
        EXPECT_EQ(geom.address(loc), addr);
    }
}

TEST(Geometry, RoundTripRowInterleaved)
{
    Geometry geom(256 * MiB, 128 * KiB, 8,
                  AddressScheme::RowInterleaved);
    for (Addr addr : {Addr{0}, Addr{131072}, Addr{77 * MiB + 999}}) {
        const Location loc = geom.locate(addr);
        EXPECT_EQ(geom.address(loc), addr);
    }
    // Consecutive rows land in consecutive banks.
    EXPECT_EQ(geom.locate(0).bank, 0u);
    EXPECT_EQ(geom.locate(128 * KiB).bank, 1u);
}

TEST(Geometry, ContiguityWithinBankBlock)
{
    Geometry geom(256 * MiB, 128 * KiB, 8, AddressScheme::BankBlocked);
    // Adjacent addresses in one bank block are adjacent rows.
    const Location a = geom.locate(0);
    const Location b = geom.locate(128 * KiB);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row + 1, b.row);
}

TEST(Geometry, RejectsBadParameters)
{
    EXPECT_THROW(Geometry(100, 128 * KiB), FatalError);
    EXPECT_THROW(Geometry(256 * MiB, 100), FatalError);
    EXPECT_THROW(Geometry(256 * MiB, 128 * KiB, 3), FatalError);
    EXPECT_THROW(Geometry(1 * MiB, 128 * KiB, 16), FatalError);
}

TEST(CellTypes, AlternatingLayout)
{
    CellTypeMap map = CellTypeMap::alternating(512);
    EXPECT_EQ(map.rowType(0), CellType::True);
    EXPECT_EQ(map.rowType(511), CellType::True);
    EXPECT_EQ(map.rowType(512), CellType::Anti);
    EXPECT_EQ(map.rowType(1023), CellType::Anti);
    EXPECT_EQ(map.rowType(1024), CellType::True);

    CellTypeMap anti_first = CellTypeMap::alternating(512, false);
    EXPECT_EQ(anti_first.rowType(0), CellType::Anti);
    EXPECT_EQ(anti_first.rowType(512), CellType::True);
}

TEST(CellTypes, RatioLayouts)
{
    CellTypeMap mostly_true = CellTypeMap::mostlyTrue(1000);
    unsigned anti = 0;
    for (std::uint64_t row = 0; row < 1001; ++row)
        if (mostly_true.rowType(row) == CellType::Anti)
            ++anti;
    EXPECT_EQ(anti, 1u);

    CellTypeMap uniform = CellTypeMap::uniform(CellType::Anti);
    EXPECT_EQ(uniform.rowType(12345), CellType::Anti);
}

TEST(CellTypes, ChargedAndDischargedValues)
{
    EXPECT_EQ(chargedBit(CellType::True), 1);
    EXPECT_EQ(dischargedBit(CellType::True), 0);
    EXPECT_EQ(chargedBit(CellType::Anti), 0);
    EXPECT_EQ(dischargedBit(CellType::Anti), 1);
}

TEST(SparseStore, ReadWriteRoundTrip)
{
    SparseStore store;
    EXPECT_EQ(store.readByte(12345), 0);
    store.writeByte(12345, 0xab);
    EXPECT_EQ(store.readByte(12345), 0xab);

    store.writeU64(8 * MiB, 0x1122334455667788ULL);
    EXPECT_EQ(store.readU64(8 * MiB), 0x1122334455667788ULL);
}

TEST(SparseStore, CrossPageSpan)
{
    SparseStore store;
    std::uint8_t buffer[pageSize * 2];
    for (std::size_t i = 0; i < sizeof(buffer); ++i)
        buffer[i] = static_cast<std::uint8_t>(i * 37);
    const Addr base = 3 * pageSize - 100; // straddles three frames
    store.write(base, buffer, sizeof(buffer));
    std::uint8_t back[sizeof(buffer)];
    store.read(base, back, sizeof(back));
    EXPECT_EQ(std::memcmp(buffer, back, sizeof(buffer)), 0);
    EXPECT_EQ(store.frameCount(), 3u);
}

TEST(SparseStore, BitAccess)
{
    SparseStore store;
    store.writeBit(999, 3, true);
    EXPECT_TRUE(store.readBit(999, 3));
    EXPECT_FALSE(store.readBit(999, 2));
    store.writeBit(999, 3, false);
    EXPECT_EQ(store.readByte(999), 0);
}

TEST(SparseStore, LazyMaterialization)
{
    SparseStore store;
    EXPECT_FALSE(store.touched(0));
    EXPECT_EQ(store.frameCount(), 0u);
    (void)store.readU64(64 * MiB); // reads do not materialize
    EXPECT_EQ(store.frameCount(), 0u);
    store.writeByte(64 * MiB, 1);
    EXPECT_TRUE(store.touched(64 * MiB));
    EXPECT_EQ(store.frameCount(), 1u);
}

TEST(SparseStore, WordStraddlingFramesRoundTrips)
{
    // The U64 fast path only covers within-frame words; a straddling
    // word must still round-trip through the span-wise path.
    SparseStore store(0xcc);
    const Addr straddle = pageSize - 3;
    store.writeU64(straddle, 0x0102030405060708ULL);
    EXPECT_EQ(store.readU64(straddle), 0x0102030405060708ULL);
    EXPECT_EQ(store.frameCount(), 2u);

    // An untouched straddling word reads as the fill pattern.
    EXPECT_EQ(store.readU64(7 * pageSize - 4), 0xccccccccccccccccULL);
    EXPECT_EQ(store.frameCount(), 2u);
}

TEST(SparseStore, FrameCacheSurvivesInterleavingAndClear)
{
    SparseStore store(0x55);
    // Prime the last-frame cache, then bounce between frames; every
    // access must see its own frame's data, not the cached one.
    store.writeByte(0, 1);
    store.writeByte(pageSize, 2);
    EXPECT_EQ(store.readByte(0), 1);
    EXPECT_EQ(store.readByte(pageSize), 2);
    EXPECT_EQ(store.readByte(1), 0x55); // rest of frame keeps fill

    // Force many materializations so the frame map rehashes; the
    // cached pointer must stay valid (frames are stable heap blocks).
    store.writeByte(0, 7);
    for (Pfn pfn = 2; pfn < 200; ++pfn)
        store.writeByte(pfnToAddr(pfn), static_cast<std::uint8_t>(pfn));
    EXPECT_EQ(store.readByte(0), 7);

    // clear() drops the cache along with the frames: stale pointers
    // must not resurrect old contents.
    store.clear();
    EXPECT_EQ(store.frameCount(), 0u);
    EXPECT_EQ(store.readByte(0), 0x55);
    store.writeByte(0, 9);
    EXPECT_EQ(store.readByte(0), 9);
}

TEST(FaultModel, VulnerabilityRateMatchesPf)
{
    FaultModel faults(11, ErrorStats{});
    std::uint64_t vulnerable = 0;
    const std::uint64_t cells = 2'000'000;
    for (std::uint64_t i = 0; i < cells; ++i)
        if (faults.vulnerable(i / 8, static_cast<unsigned>(i % 8)))
            ++vulnerable;
    // Expected 200 +- statistical noise.
    EXPECT_NEAR(static_cast<double>(vulnerable), 200.0, 60.0);
}

TEST(FaultModel, DirectionDistributionInTrueCells)
{
    FaultModel faults(11, ErrorStats{});
    std::uint64_t down = 0;
    const std::uint64_t cells = 100'000;
    for (std::uint64_t i = 0; i < cells; ++i) {
        if (faults.flipDirection(i, 0, CellType::True) ==
            FlipDirection::OneToZero) {
            ++down;
        }
    }
    // 99.8% of vulnerable true-cells flip downward.
    EXPECT_NEAR(static_cast<double>(down) / cells, 0.998, 0.002);
}

TEST(FaultModel, AntiCellsMirrorDirections)
{
    FaultModel faults(11, ErrorStats{});
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const FlipDirection in_true =
            faults.flipDirection(i, 0, CellType::True);
        const FlipDirection in_anti =
            faults.flipDirection(i, 0, CellType::Anti);
        EXPECT_NE(in_true == FlipDirection::OneToZero,
                  in_anti == FlipDirection::OneToZero);
    }
}

TEST(FaultModel, StablePropertiesAcrossQueries)
{
    FaultModel faults(42, ErrorStats{});
    for (std::uint64_t i = 0; i < 1000; ++i) {
        EXPECT_EQ(faults.vulnerable(i, 1), faults.vulnerable(i, 1));
        EXPECT_EQ(faults.tripThreshold(i, 1),
                  faults.tripThreshold(i, 1));
    }
}

TEST(FaultModel, RetentionScalesWithTemperature)
{
    FaultModel faults(42, ErrorStats{});
    const SimTime warm = faults.retentionTime(1000, 0, 20.0);
    const SimTime cold = faults.retentionTime(1000, 0, -40.0);
    EXPECT_GT(warm, 100 * milliseconds);
    // -40C is 60 degrees colder: retention should be ~2^6 = 64x.
    EXPECT_NEAR(static_cast<double>(cold) / warm, 64.0, 1.0);
}

TEST(Module, CellTypeFollowsLayout)
{
    DramModule module(smallConfig());
    // Rows 0..63 of bank 0 are true, 64..127 anti (period 64).
    EXPECT_EQ(module.rowCellType(0, 0), CellType::True);
    EXPECT_EQ(module.rowCellType(0, 63), CellType::True);
    EXPECT_EQ(module.rowCellType(0, 64), CellType::Anti);
    // cellTypeAt agrees with locate + rowCellType.
    const Addr addr = 70 * 128 * KiB; // row 70 of bank 0
    EXPECT_EQ(module.cellTypeAt(addr), CellType::Anti);
}

TEST(Module, DecayDrivesTowardDischargedValue)
{
    DramModule module(smallConfig());
    // Fill one true-cell row page and one anti-cell row page.
    const Addr true_addr = 0;
    const Addr anti_addr = 64 * 128 * KiB;
    for (unsigned i = 0; i < pageSize; ++i) {
        module.writeByte(true_addr + i, 0xff);
        module.writeByte(anti_addr + i, 0x00);
    }
    module.setRefreshEnabled(false);
    module.advance(600 * seconds);
    module.setRefreshEnabled(true);

    // Essentially everything decays after 10 minutes.
    std::uint64_t true_ones = 0;
    std::uint64_t anti_zeros = 0;
    for (unsigned i = 0; i < pageSize; ++i) {
        true_ones += popcount(module.readByte(true_addr + i));
        anti_zeros += 8 - popcount(module.readByte(anti_addr + i));
    }
    EXPECT_LT(true_ones, pageSize / 100);
    EXPECT_LT(anti_zeros, pageSize / 100);
    EXPECT_GT(module.stats().value("decayedBits"), 0u);
}

TEST(Module, RefreshPreventsDecay)
{
    DramModule module(smallConfig());
    module.writeByte(0, 0xff);
    module.advance(600 * seconds); // refresh enabled: no decay
    EXPECT_EQ(module.readByte(0), 0xff);
}

TEST(Module, ReenablingRefreshResetsClock)
{
    DramModule module(smallConfig());
    module.writeByte(0, 0xff);
    module.setRefreshEnabled(false);
    module.advance(50 * milliseconds); // under the retention floor
    module.setRefreshEnabled(true);
    module.setRefreshEnabled(false);
    module.advance(50 * milliseconds);
    module.setRefreshEnabled(true);
    // Two short unrefreshed windows do not add up to one long one.
    EXPECT_EQ(module.readByte(0), 0xff);
}

TEST(Module, RemapRequiresSameCellType)
{
    DramModule module(smallConfig());
    // Row 0 (true) remapped to row 10 (true): allowed.
    module.remapRow(0, 0, 10);
    EXPECT_EQ(module.deviceRow(0, 0), 10u);
    EXPECT_EQ(module.logicalRow(0, 10), 0u);
    // Swap semantics: device row 0 now hosts logical row 10.
    EXPECT_EQ(module.logicalRow(0, 0), 10u);
    EXPECT_EQ(module.deviceRow(0, 10), 0u);
    // Row 1 (true) to row 64 (anti): rejected.
    EXPECT_THROW(module.remapRow(0, 1, 64), FatalError);
    EXPECT_EQ(module.remapCount(), 1u);
}

TEST(Module, RemapPreservesCellTypeView)
{
    DramModule module(smallConfig());
    module.remapRow(0, 0, 10);
    EXPECT_EQ(module.rowCellType(0, 0), CellType::True);
}

} // namespace
} // namespace ctamem::dram
