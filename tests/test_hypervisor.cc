/**
 * @file
 * Tests of the Section 7 hypervisor zoning: ZONE_HYPERVISOR
 * reservation, per-guest slices, cross-VM isolation, and the global
 * no-self-reference argument.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "cta/hypervisor.hh"
#include "cta/theorem.hh"
#include "dram/module.hh"

namespace ctamem::cta {
namespace {

using dram::CellTypeMap;
using dram::DramConfig;
using dram::DramModule;

DramConfig
hvConfig(CellTypeMap map = CellTypeMap::alternating(64))
{
    DramConfig config;
    config.capacity = 256 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = map;
    config.seed = 33;
    return config;
}

TEST(Hypervisor, ReservesTrueCellsOnTop)
{
    DramModule module(hvConfig());
    Hypervisor hv(module, 8 * MiB);
    EXPECT_EQ(hv.remainingBytes(), 8 * MiB);
    // Top 8 MiB stripe is anti (period 64 = 8 MiB stripes, 32
    // stripes, top index 31 odd): skipped.
    EXPECT_EQ(hv.skippedAntiBytes(), 8 * MiB);
    EXPECT_EQ(hv.zoneBase(), 240 * MiB);
}

TEST(Hypervisor, GuestSlicesAreDisjointAndOrdered)
{
    DramModule module(hvConfig());
    Hypervisor hv(module, 8 * MiB);
    const GuestZone a = hv.assignGuestZone(2 * MiB);
    const GuestZone b = hv.assignGuestZone(2 * MiB);
    const GuestZone c = hv.assignGuestZone(1 * MiB);
    EXPECT_EQ(hv.remainingBytes(), 3 * MiB);
    EXPECT_TRUE(hv.auditIsolation());
    // Earlier guests sit higher.
    EXPECT_GT(a.lowestAddr(), b.lowestAddr());
    EXPECT_GT(b.lowestAddr(), c.lowestAddr());
    // All above the shared low water mark.
    EXPECT_GE(c.lowestAddr(), hv.zoneBase());
}

TEST(Hypervisor, ExhaustionIsFatal)
{
    DramModule module(hvConfig());
    Hypervisor hv(module, 4 * MiB);
    hv.assignGuestZone(3 * MiB);
    EXPECT_THROW(hv.assignGuestZone(2 * MiB), ctamem::FatalError);
    EXPECT_THROW(hv.assignGuestZone(0), ctamem::FatalError);
}

TEST(Hypervisor, CrossVmNoSelfReference)
{
    // The global theorem: guest data pointers live below zoneBase;
    // with true-cell storage a corrupted pointer only decreases, so
    // it can never reach *any* guest's page-table slice — its own or
    // a co-tenant's.  Property-check over sampled pointers and
    // random down-flip masks.
    DramModule module(hvConfig());
    Hypervisor hv(module, 8 * MiB);
    const GuestZone a = hv.assignGuestZone(2 * MiB);
    const GuestZone b = hv.assignGuestZone(2 * MiB);
    const Addr base = hv.zoneBase();

    Rng rng(9);
    for (int trial = 0; trial < 20000; ++trial) {
        const std::uint64_t pointer = rng.below(base);
        const std::uint64_t corrupted =
            pointer & rng.next(); // an arbitrary set of 1->0 flips
        ASSERT_TRUE(reachableByDownFlips(pointer, corrupted));
        EXPECT_LT(corrupted, base);
        EXPECT_LT(corrupted, a.lowestAddr());
        EXPECT_LT(corrupted, b.lowestAddr());
    }
}

TEST(Hypervisor, RowAlignmentEnforced)
{
    DramModule module(hvConfig());
    EXPECT_THROW(Hypervisor(module, 100 * KiB), ctamem::FatalError);
}

TEST(Hypervisor, AllAntiModuleRejected)
{
    DramModule module(
        hvConfig(CellTypeMap::uniform(dram::CellType::Anti)));
    EXPECT_THROW(Hypervisor(module, 4 * MiB), ctamem::FatalError);
}

} // namespace
} // namespace ctamem::cta
