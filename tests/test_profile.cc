/**
 * @file
 * Tests for the system-level profilers: cell-type identification and
 * retention measurement.
 */

#include <gtest/gtest.h>

#include "dram/module.hh"
#include "profile/cell_profiler.hh"
#include "profile/retention_profiler.hh"

namespace ctamem::profile {
namespace {

using dram::CellType;
using dram::CellTypeMap;
using dram::DramConfig;
using dram::DramModule;

DramConfig
profConfig(CellTypeMap map = CellTypeMap::alternating(16))
{
    DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = map;
    config.seed = 21;
    return config;
}

TEST(CellProfiler, IdentifiesAlternatingLayout)
{
    DramModule module(profConfig());
    CellTypeProfiler profiler(module);
    const auto types = profiler.classifyRows(0, 0, 63);
    for (std::uint64_t row = 0; row < types.size(); ++row) {
        EXPECT_EQ(types[row], module.rowCellType(0, row))
            << "row " << row;
    }
}

TEST(CellProfiler, RegionsMatchPeriod)
{
    DramModule module(profConfig());
    CellTypeProfiler profiler(module);
    const auto regions = profiler.profileRegions(0, 0, 63);
    ASSERT_EQ(regions.size(), 4u); // 64 rows / period 16
    for (const RowRegion &region : regions)
        EXPECT_EQ(region.rows(), 16u);
    EXPECT_EQ(regions[0].type, CellType::True);
    EXPECT_EQ(regions[1].type, CellType::Anti);
}

TEST(CellProfiler, TrueCellRegionFilter)
{
    DramModule module(profConfig());
    CellTypeProfiler profiler(module);
    const auto regions = profiler.trueCellRegions(0, 0, 63);
    ASSERT_EQ(regions.size(), 2u);
    for (const RowRegion &region : regions)
        EXPECT_EQ(region.type, CellType::True);
}

TEST(CellProfiler, MostlyTrueLayout)
{
    DramModule module(
        profConfig(CellTypeMap::mostlyTrue(15)));
    CellTypeProfiler profiler(module);
    const auto types = profiler.classifyRows(0, 0, 31);
    unsigned anti = 0;
    for (CellType type : types)
        if (type == CellType::Anti)
            ++anti;
    EXPECT_EQ(anti, 2u); // one anti row per 16
}

TEST(CellProfiler, LeavesRefreshEnabled)
{
    DramModule module(profConfig());
    CellTypeProfiler profiler(module);
    profiler.classifyRow(0, 0);
    EXPECT_TRUE(module.refreshEnabled());
}

TEST(RetentionProfiler, MeasurementMatchesFaultModel)
{
    DramModule module(profConfig());
    RetentionProfiler profiler(module);
    for (Addr addr : {Addr{0}, Addr{100}, Addr{5000}}) {
        const CellRetention measured = profiler.measure(addr, 0);
        const SimTime truth =
            module.faults().retentionTime(addr, 0, 20.0);
        if (!measured.exceededCap) {
            EXPECT_NEAR(static_cast<double>(measured.retention),
                        static_cast<double>(truth),
                        static_cast<double>(60 * milliseconds));
        } else {
            EXPECT_GE(truth, profiler.measure(addr, 0).retention);
        }
    }
}

TEST(RetentionProfiler, SortsLongestFirst)
{
    DramModule module(profConfig());
    RetentionProfiler profiler(module);
    const auto cells = profiler.profileRegion(0, 4096, 64);
    ASSERT_GT(cells.size(), 2u);
    for (std::size_t i = 1; i < cells.size(); ++i)
        EXPECT_GE(cells[i - 1].retention, cells[i].retention);
}

TEST(RetentionProfiler, CanariesAreTheLongest)
{
    DramModule module(profConfig());
    RetentionProfiler profiler(module);
    const auto all = profiler.profileRegion(0, 4096, 64);
    const auto canaries = profiler.findCanaries(0, 4096, 4, 64);
    ASSERT_EQ(canaries.size(), 4u);
    EXPECT_EQ(canaries[0].retention, all[0].retention);
    EXPECT_GE(canaries.back().retention, all[4].retention);
}

} // namespace
} // namespace ctamem::profile
