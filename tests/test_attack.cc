/**
 * @file
 * End-to-end attack tests: the published attacks succeed against the
 * vulnerable baseline kernel and fail against CTA — the paper's
 * central claim, exercised through the full stack (buddy allocator,
 * real page tables in simulated DRAM, hammer-induced bit flips, MMU
 * walks through corrupted entries).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "attack/algorithm1.hh"
#include "attack/catt_bypass.hh"
#include "attack/drammer.hh"
#include "attack/exploit.hh"
#include "attack/projectzero.hh"
#include "kernel/kernel.hh"

namespace ctamem::attack {
namespace {

using kernel::AllocPolicy;
using kernel::Kernel;
using kernel::KernelConfig;

KernelConfig
machineConfig(AllocPolicy policy, double pf = 1e-3)
{
    KernelConfig config;
    config.dram.capacity = 256 * MiB;
    config.dram.rowBytes = 128 * KiB;
    config.dram.banks = 1;
    config.dram.cellMap = dram::CellTypeMap::alternating(512);
    config.dram.errors.pf = pf;
    config.dram.seed = 1234;
    config.policy = policy;
    config.cta.ptpBytes = 4 * MiB;
    return config;
}

TEST(ProjectZero, EscalatesOnUnprotectedKernel)
{
    Kernel kernel(machineConfig(AllocPolicy::Standard));
    dram::RowHammerEngine engine(kernel.dram());
    const AttackResult result = runProjectZero(kernel, engine);
    EXPECT_EQ(result.outcome, Outcome::Escalated)
        << result.detail << " (flips=" << result.flipsInduced << ")";
    EXPECT_GT(result.flipsInduced, 0u);
    EXPECT_GT(result.attackTime, 0u);
}

TEST(ProjectZero, BlockedByCta)
{
    Kernel kernel(machineConfig(AllocPolicy::Cta));
    dram::RowHammerEngine engine(kernel.dram());
    const AttackResult result = runProjectZero(kernel, engine);
    EXPECT_NE(result.outcome, Outcome::Escalated);
    EXPECT_NE(result.outcome, Outcome::SelfReference);
    // Hammering still flips bits — in the attacker's own data.
    // The kernel's theorem invariants all still hold.
    EXPECT_TRUE(kernel.auditTheorem().holds());
}

TEST(ProjectZero, DeterministicGivenSeed)
{
    auto run = [] {
        Kernel kernel(machineConfig(AllocPolicy::Standard));
        dram::RowHammerEngine engine(kernel.dram());
        return runProjectZero(kernel, engine);
    };
    const AttackResult a = run();
    const AttackResult b = run();
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.flipsInduced, b.flipsInduced);
    EXPECT_EQ(a.hammerPasses, b.hammerPasses);
}

TEST(Drammer, TemplatingFindsReproducibleFlips)
{
    Kernel kernel(machineConfig(AllocPolicy::Standard));
    dram::RowHammerEngine engine(kernel.dram());
    DrammerConfig config;
    config.arenaPages = 1024;
    const TemplateReport report =
        templateMemory(kernel, engine, config);
    EXPECT_GT(report.templates.size(), 0u);
    EXPECT_GT(report.hammeredRows, 0u);
    // Templates observed in true-cell rows under an all-ones fill
    // must be downward flips.
    for (const FlipTemplate &tmpl : report.templates) {
        if (kernel.dram().cellTypeAt(pfnToAddr(tmpl.frame)) ==
                dram::CellType::True &&
            tmpl.downward) {
            SUCCEED();
        }
    }
}

TEST(Drammer, EscalatesOnUnprotectedKernel)
{
    Kernel kernel(machineConfig(AllocPolicy::Standard));
    dram::RowHammerEngine engine(kernel.dram());
    DrammerConfig config;
    config.arenaPages = 1024;
    const AttackResult result = runDrammer(kernel, engine, config);
    EXPECT_EQ(result.outcome, Outcome::Escalated) << result.detail;
}

TEST(Drammer, BlockedByCta)
{
    Kernel kernel(machineConfig(AllocPolicy::Cta));
    dram::RowHammerEngine engine(kernel.dram());
    DrammerConfig config;
    config.arenaPages = 1024;
    const AttackResult result = runDrammer(kernel, engine, config);
    EXPECT_NE(result.outcome, Outcome::Escalated) << result.detail;
    EXPECT_NE(result.outcome, Outcome::SelfReference);
    EXPECT_TRUE(kernel.auditTheorem().holds());
}

TEST(Algorithm1, BlockedByCtaWithMonotonicEvidence)
{
    Kernel kernel(machineConfig(AllocPolicy::Cta));
    dram::RowHammerEngine engine(kernel.dram());
    Algorithm1Evidence evidence;
    const AttackResult result =
        runAlgorithm1(kernel, engine, {}, &evidence);

    EXPECT_EQ(result.outcome, Outcome::Blocked) << result.detail;
    EXPECT_GT(evidence.ptesBefore, 0u);
    // Hammering ZONE_PTP rows does corrupt PTEs...
    EXPECT_GT(evidence.ptesCorrupted, 0u);
    // ...but every corrupted pointer moved down (true-cells), so no
    // self-reference is possible.
    EXPECT_EQ(evidence.pointersMovedUp, 0u);
    EXPECT_GT(evidence.pointersMovedDown, 0u);
    EXPECT_EQ(evidence.selfReferences, 0u);
}

TEST(Algorithm1, RequiresCtaKernel)
{
    Kernel kernel(machineConfig(AllocPolicy::Standard));
    dram::RowHammerEngine engine(kernel.dram());
    EXPECT_THROW(runAlgorithm1(kernel, engine), ctamem::FatalError);
}

TEST(Algorithm1, AntiCellZoneWouldBeExploitable)
{
    // Ablation: a low-water-mark-only defense that lands ZONE_PTP in
    // *anti*-cells suffers upward pointer movement — the ingredient
    // of self-reference (Section 5's 3354.7-exploitable-PTEs case).
    KernelConfig config = machineConfig(AllocPolicy::Cta);
    // Anti-cells everywhere except a floor of true cells; ZONE_PTP
    // construction must be tricked, so flip the map: mostly anti at
    // top.  Easiest controlled layout: anti-first alternation whose
    // top stripe is anti.
    config.dram.cellMap = dram::CellTypeMap::alternating(
        1024, /*true_first=*/true);
    // 2048 rows, period 1024: rows 0-1023 true, 1024-2047 anti;
    // the PTP builder would skip 128 MiB of anti rows — more than
    // the capacity floor allows — so CTA correctly *refuses* to boot.
    EXPECT_THROW(Kernel kernel(config), ctamem::FatalError);
}

TEST(CattBypass, RemapDefeatsCatt)
{
    Kernel kernel(machineConfig(AllocPolicy::Catt));
    dram::RowHammerEngine engine(kernel.dram());
    const AttackResult result = runRemapBypass(kernel, engine);
    // CATT's isolation guarantee is gone: kernel page tables get
    // corrupted from user-triggered hammering (full escalation
    // depends on where the flips land).
    EXPECT_TRUE(result.outcome == Outcome::Escalated ||
                result.outcome == Outcome::SelfReference ||
                result.outcome == Outcome::KernelCorrupted)
        << result.detail;
    EXPECT_GT(result.ptesCorrupted, 0u);
    EXPECT_GT(kernel.dram().remapCount(), 0u);
}

TEST(CattBypass, RemapDoesNotDefeatCta)
{
    Kernel kernel(machineConfig(AllocPolicy::Cta));
    dram::RowHammerEngine engine(kernel.dram());
    const AttackResult result = runRemapBypass(kernel, engine);
    EXPECT_NE(result.outcome, Outcome::Escalated) << result.detail;
    EXPECT_TRUE(kernel.auditTheorem().holds());
}

TEST(CattBypass, DoubleOwnedPagesDefeatCatt)
{
    // Boost the flip rate so the 1:1 vbuf/table interleave yields a
    // deterministic self-reference through a low pointer bit.
    Kernel kernel(machineConfig(AllocPolicy::Catt, /*pf=*/1e-2));
    dram::RowHammerEngine engine(kernel.dram());
    CattBypassConfig config;
    config.mappings = 512;
    const AttackResult result =
        runDoubleOwnedBypass(kernel, engine, config);
    EXPECT_EQ(result.outcome, Outcome::Escalated) << result.detail;
}

TEST(CattBypass, DoubleOwnedPagesDoNotDefeatCta)
{
    Kernel kernel(machineConfig(AllocPolicy::Cta));
    dram::RowHammerEngine engine(kernel.dram());
    const AttackResult result = runDoubleOwnedBypass(kernel, engine);
    EXPECT_NE(result.outcome, Outcome::Escalated) << result.detail;
    EXPECT_TRUE(kernel.auditTheorem().holds());
}

TEST(Exploit, LooksLikePteHeuristic)
{
    const std::uint64_t mem = 256 * MiB;
    for (const paging::Arch *arch : paging::kAllArches) {
        EXPECT_TRUE(looksLikePte(
            *arch,
            arch->makeLeaf(addrToPfn(32 * MiB),
                           paging::PageFlags{true, true}, 1),
            mem))
            << arch->name;
        EXPECT_FALSE(looksLikePte(*arch, 0, mem)) << arch->name;
    }
    // Junk with a huge pointer field fails the bounds check.
    EXPECT_FALSE(
        looksLikePte(paging::kX86_64, 0xdeadbeefdeadbeee, mem));
}

} // namespace
} // namespace ctamem::attack
