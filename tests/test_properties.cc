/**
 * @file
 * Parameterized property tests (TEST_P sweeps) over the invariants
 * the whole defense rests on:
 *
 *  - buddy-allocator conservation/uniqueness/coalescing under random
 *    workloads, across range shapes and seeds;
 *  - monotonicity of true-cell words under arbitrary fault masks;
 *  - ZONE_PTP construction invariants across cell layouts and sizes;
 *  - address-mapping bijectivity across geometries;
 *  - walker/AddressSpace agreement over random mapping sets;
 *  - end-to-end: the PTE-spray attack never beats CTA across seeds.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "cta/ptp_zone.hh"
#include "cta/theorem.hh"
#include "dram/module.hh"
#include "mm/buddy.hh"
#include "paging/address_space.hh"
#include "paging/walker.hh"
#include "sim/machine.hh"

namespace ctamem {
namespace {

// ---------------------------------------------------------------
// Buddy allocator properties
// ---------------------------------------------------------------

struct BuddyCase
{
    Pfn base;
    std::uint64_t frames;
    std::uint64_t seed;
};

class BuddyProperty : public ::testing::TestWithParam<BuddyCase>
{
};

TEST_P(BuddyProperty, RandomWorkloadKeepsInvariants)
{
    const BuddyCase param = GetParam();
    mm::BuddyAllocator buddy(param.base, param.frames);
    Rng rng(param.seed);

    const std::uint64_t total = buddy.freeFrames();
    ASSERT_EQ(total, param.frames);

    // Live blocks: head pfn -> order.
    std::map<Pfn, unsigned> live;
    std::uint64_t live_frames = 0;

    for (int step = 0; step < 2000; ++step) {
        const bool do_alloc = live.empty() || rng.chance(0.6);
        if (do_alloc) {
            const unsigned order =
                static_cast<unsigned>(rng.below(4));
            auto pfn = buddy.allocate(order);
            if (!pfn)
                continue; // exhausted at this order: fine
            // Natural alignment and containment.
            ASSERT_EQ(*pfn & ((1ULL << order) - 1), 0u);
            ASSERT_GE(*pfn, param.base);
            ASSERT_LE(*pfn + (1ULL << order),
                      param.base + param.frames);
            // No overlap with any live block.
            for (const auto &[head, o] : live) {
                const bool overlap =
                    *pfn < head + (1ULL << o) &&
                    head < *pfn + (1ULL << order);
                ASSERT_FALSE(overlap)
                    << "block " << *pfn << "/" << order
                    << " overlaps " << head << "/" << o;
            }
            live[*pfn] = order;
            live_frames += 1ULL << order;
        } else {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            buddy.free(it->first, it->second);
            live_frames -= 1ULL << it->second;
            live.erase(it);
        }
        // Conservation at every step.
        ASSERT_EQ(buddy.freeFrames() + live_frames, total);
    }

    // Releasing everything restores full coalescing.
    for (const auto &[head, order] : live)
        buddy.free(head, order);
    EXPECT_EQ(buddy.freeFrames(), total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuddyProperty,
    ::testing::Values(BuddyCase{0, 1024, 1}, BuddyCase{0, 1024, 2},
                      BuddyCase{7, 999, 3}, BuddyCase{4096, 4096, 4},
                      BuddyCase{123, 2048, 5}, BuddyCase{0, 64, 6},
                      BuddyCase{1, 63, 7},
                      BuddyCase{1 << 20, 1 << 14, 8}));

// ---------------------------------------------------------------
// Monotonicity properties
// ---------------------------------------------------------------

class MonotonicityProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MonotonicityProperty, DownFlipMasksOnlyDecreaseValues)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 50000; ++trial) {
        const std::uint64_t before = rng.next();
        const std::uint64_t after = before & rng.next();
        ASSERT_TRUE(cta::reachableByDownFlips(before, after));
        ASSERT_LE(after, before);
        ASSERT_TRUE(cta::monotonicityHolds(before, after));
        // The inverse relation for anti-cells.
        const std::uint64_t up = before | rng.next();
        ASSERT_TRUE(cta::reachableByUpFlips(before, up));
        ASSERT_GE(up, before);
    }
}

TEST_P(MonotonicityProperty, ReachabilityIsConsistent)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 50000; ++trial) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        // Down- and up-reachability are mutually exclusive unless
        // the values are equal.
        if (a != b) {
            ASSERT_FALSE(cta::reachableByDownFlips(a, b) &&
                         cta::reachableByUpFlips(a, b));
        }
        // Reachability is antisymmetric through the value order.
        if (cta::reachableByDownFlips(a, b))
            ASSERT_LE(b, a);
        if (cta::reachableByUpFlips(a, b))
            ASSERT_GE(b, a);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityProperty,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------
// ZONE_PTP construction properties across layouts
// ---------------------------------------------------------------

struct ZoneCase
{
    dram::CellLayoutKind kind;
    std::uint64_t period;
    std::uint64_t ptpBytes;
};

class PtpZoneProperty : public ::testing::TestWithParam<ZoneCase>
{
};

TEST_P(PtpZoneProperty, ConstructionInvariants)
{
    const ZoneCase param = GetParam();
    dram::DramConfig config;
    config.capacity = 256 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = dram::CellTypeMap(param.kind, param.period);
    config.seed = 3;
    dram::DramModule module(config);

    cta::CtaConfig cta_config;
    cta_config.ptpBytes = param.ptpBytes;
    cta::PtpZone zone(module, cta_config);

    // Exact capacity collected.
    EXPECT_EQ(zone.trueBytes(), param.ptpBytes);
    EXPECT_EQ(zone.totalFrames() * pageSize, param.ptpBytes);

    std::uint64_t span_frames = 0;
    Pfn prev_base = 0;
    bool first = true;
    for (const mm::FrameSpan &span : zone.subZones()) {
        span_frames += span.frames;
        // Ordered top of memory first, no overlap.
        if (!first)
            EXPECT_LE(span.endPfn(), prev_base);
        first = false;
        prev_base = span.basePfn;
        // Entirely above the low water mark and in true cells.
        EXPECT_GE(pfnToAddr(span.basePfn), zone.lowWaterMark());
        for (Pfn pfn = span.basePfn; pfn < span.endPfn();
             pfn += config.rowBytes / pageSize) {
            EXPECT_EQ(module.cellTypeAt(pfnToAddr(pfn)),
                      dram::CellType::True);
        }
    }
    EXPECT_EQ(span_frames * pageSize, param.ptpBytes);

    // Accounting: collected + skipped == scanned region above LWM.
    EXPECT_EQ(zone.trueBytes() + zone.skippedAntiBytes(),
              config.capacity - zone.lowWaterMark());
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, PtpZoneProperty,
    ::testing::Values(
        ZoneCase{dram::CellLayoutKind::AlternatingTrueFirst, 64,
                 2 * MiB},
        ZoneCase{dram::CellLayoutKind::AlternatingAntiFirst, 64,
                 2 * MiB},
        ZoneCase{dram::CellLayoutKind::AlternatingTrueFirst, 16,
                 4 * MiB},
        ZoneCase{dram::CellLayoutKind::AlternatingAntiFirst, 7,
                 1 * MiB},
        ZoneCase{dram::CellLayoutKind::MostlyTrue, 64, 8 * MiB},
        ZoneCase{dram::CellLayoutKind::AllTrue, 1, 16 * MiB},
        ZoneCase{dram::CellLayoutKind::AlternatingTrueFirst, 512,
                 32 * MiB}));

// ---------------------------------------------------------------
// Address mapping bijectivity across geometries
// ---------------------------------------------------------------

struct GeometryCase
{
    std::uint64_t capacity;
    std::uint64_t rowBytes;
    std::uint64_t banks;
    dram::AddressScheme scheme;
};

class GeometryProperty
    : public ::testing::TestWithParam<GeometryCase>
{
};

TEST_P(GeometryProperty, LocateAddressRoundTrip)
{
    const GeometryCase param = GetParam();
    dram::Geometry geom(param.capacity, param.rowBytes, param.banks,
                        param.scheme);
    Rng rng(17);
    std::set<std::uint64_t> seen_rows;
    for (int trial = 0; trial < 5000; ++trial) {
        const Addr addr = rng.below(param.capacity);
        const dram::Location loc = geom.locate(addr);
        ASSERT_LT(loc.bank, param.banks);
        ASSERT_LT(loc.row, geom.rowsPerBank());
        ASSERT_LT(loc.column, param.rowBytes);
        ASSERT_EQ(geom.address(loc), addr);
        seen_rows.insert(loc.bank * geom.rowsPerBank() + loc.row);
    }
    EXPECT_GT(seen_rows.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryProperty,
    ::testing::Values(
        GeometryCase{256 * MiB, 128 * KiB, 1,
                     dram::AddressScheme::BankBlocked},
        GeometryCase{256 * MiB, 128 * KiB, 8,
                     dram::AddressScheme::BankBlocked},
        GeometryCase{256 * MiB, 128 * KiB, 8,
                     dram::AddressScheme::RowInterleaved},
        GeometryCase{1 * GiB, 64 * KiB, 16,
                     dram::AddressScheme::RowInterleaved},
        GeometryCase{64 * MiB, 8 * KiB, 4,
                     dram::AddressScheme::BankBlocked}));

// ---------------------------------------------------------------
// Walker vs AddressSpace agreement over random mappings
// ---------------------------------------------------------------

class PagingProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PagingProperty, RandomMappingsTranslateExactly)
{
    dram::DramConfig config;
    config.capacity = 256 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    dram::DramModule module(config);

    Pfn next_table = addrToPfn(1 * MiB);
    auto alloc = [&](unsigned) {
        std::vector<std::uint8_t> zeros(pageSize, 0);
        module.write(pfnToAddr(next_table), zeros.data(),
                     zeros.size());
        return std::optional<Pfn>(next_table++);
    };
    const Pfn root = *alloc(4);
    paging::AddressSpace space(module, alloc, [](Pfn) {}, root);
    paging::PageWalker walker(module);

    Rng rng(GetParam());
    std::map<VAddr, Pfn> expected;
    for (int i = 0; i < 300; ++i) {
        const VAddr va =
            pageAlignDown(rng.below(1ULL << 40));
        const Pfn frame = addrToPfn(64 * MiB) + rng.below(8192);
        if (expected.contains(va))
            continue;
        ASSERT_TRUE(space.map(va, frame,
                              paging::PageFlags{true, true}));
        expected[va] = frame;
    }
    // Unmap a random third.
    std::vector<VAddr> removed;
    for (const auto &[va, frame] : expected) {
        if (rng.chance(0.33))
            removed.push_back(va);
    }
    for (VAddr va : removed) {
        ASSERT_TRUE(space.unmap(va));
        expected.erase(va);
    }

    for (const auto &[va, frame] : expected) {
        const paging::WalkResult result = walker.walk(
            root, va + 0x123, paging::AccessType::Read,
            paging::Privilege::User);
        ASSERT_TRUE(result.ok()) << std::hex << va;
        ASSERT_EQ(result.phys, pfnToAddr(frame) + 0x123);
    }
    for (VAddr va : removed) {
        EXPECT_EQ(walker.walk(root, va, paging::AccessType::Read,
                              paging::Privilege::User)
                      .fault,
                  paging::Fault::NotPresent);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagingProperty,
                         ::testing::Values(100, 200, 300));

// ---------------------------------------------------------------
// End to end: CTA holds across module seeds
// ---------------------------------------------------------------

class CtaHoldsProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CtaHoldsProperty, SprayAttackNeverEscalates)
{
    sim::MachineConfig config;
    config.defense = defense::DefenseKind::Cta;
    config.seed = GetParam();
    sim::Machine machine(config);
    const attack::AttackResult result =
        machine.runAttack(sim::AttackKind::ProjectZero);
    EXPECT_NE(result.outcome, attack::Outcome::Escalated);
    EXPECT_NE(result.outcome, attack::Outcome::SelfReference);
    EXPECT_TRUE(machine.kernel().auditTheorem().holds());
}

TEST_P(CtaHoldsProperty, SprayAttackBeatsTheBaseline)
{
    sim::MachineConfig config;
    config.defense = defense::DefenseKind::None;
    config.seed = GetParam();
    sim::Machine machine(config);
    const attack::AttackResult result =
        machine.runAttack(sim::AttackKind::ProjectZero);
    EXPECT_EQ(result.outcome, attack::Outcome::Escalated)
        << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtaHoldsProperty,
                         ::testing::Values(1234, 99, 2025, 777777));

} // namespace
} // namespace ctamem
