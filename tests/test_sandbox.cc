/**
 * @file
 * Tests of the sandbox-escape substrate and its monotone-encoding
 * countermeasure (Table 1's opcode-flip attack class).
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "cta/theorem.hh"
#include "dram/hammer.hh"
#include "dram/module.hh"
#include "ext/sandbox.hh"

namespace ctamem::ext {
namespace {

using dram::CellType;
using dram::CellTypeMap;
using dram::DramConfig;
using dram::DramModule;

DramConfig
sbConfig(double pf = 1e-2)
{
    DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = CellTypeMap::uniform(CellType::True);
    config.errors.pf = pf;
    config.seed = 41;
    return config;
}

constexpr Addr codeBase = 1 * 128 * KiB;
constexpr std::uint64_t programBytes = 64 * KiB;

TEST(Sandbox, EncodingsRoundTrip)
{
    for (const OpcodeEncoding encoding :
         {OpcodeEncoding::Naive, OpcodeEncoding::Monotone}) {
        for (const Op op : {Op::Nop, Op::LoadImm, Op::Add, Op::Store,
                            Op::Jmp, Op::Halt, Op::HostCall}) {
            EXPECT_EQ(decodeOp(encodeOp(op, encoding), encoding), op);
        }
        EXPECT_EQ(decodeOp(0xee, encoding), Op::Invalid);
    }
}

TEST(Sandbox, NaiveHostCallIsOneFlipFromAdd)
{
    const std::uint8_t add = encodeOp(Op::Add, OpcodeEncoding::Naive);
    const std::uint8_t host =
        encodeOp(Op::HostCall, OpcodeEncoding::Naive);
    EXPECT_EQ(hammingDistance(add, host), 1u);
    EXPECT_TRUE(cta::reachableByDownFlips(add, host));
}

TEST(Sandbox, MonotoneHostCallIsNotDownReachable)
{
    // No unprivileged opcode can reach HostCall by clearing bits.
    const std::uint8_t host =
        encodeOp(Op::HostCall, OpcodeEncoding::Monotone);
    for (const Op op : {Op::Nop, Op::LoadImm, Op::Add, Op::Store,
                        Op::Jmp, Op::Halt}) {
        const std::uint8_t code =
            encodeOp(op, OpcodeEncoding::Monotone);
        EXPECT_FALSE(cta::reachableByDownFlips(code, host))
            << "opcode " << int(code);
    }
}

TEST(Sandbox, BenignProgramVerifiesAndRuns)
{
    DramModule module(sbConfig());
    Sandbox sandbox(module, codeBase, OpcodeEncoding::Monotone);
    sandbox.writeBenignProgram(programBytes);
    EXPECT_TRUE(sandbox.verify(programBytes));
    const SandboxRun run = sandbox.run(programBytes);
    EXPECT_FALSE(run.escaped);
    EXPECT_FALSE(run.crashed);
    EXPECT_GT(run.steps, 0u);
}

TEST(Sandbox, VerifierRejectsPrivilegedPrograms)
{
    DramModule module(sbConfig());
    Sandbox sandbox(module, codeBase, OpcodeEncoding::Naive);
    sandbox.writeBenignProgram(programBytes);
    module.writeByte(codeBase + 16,
                     encodeOp(Op::HostCall, OpcodeEncoding::Naive));
    EXPECT_FALSE(sandbox.verify(programBytes));
}

TEST(Sandbox, HammerEscapesNaiveEncoding)
{
    DramModule module(sbConfig());
    dram::RowHammerEngine engine(module);
    Sandbox sandbox(module, codeBase, OpcodeEncoding::Naive);
    sandbox.writeBenignProgram(programBytes);
    ASSERT_TRUE(sandbox.verify(programBytes));

    engine.hammerDoubleSided(0, 1); // the program's row
    // Post-flip: some Add (0x13) decayed to HostCall (0x03).
    EXPECT_FALSE(sandbox.verify(programBytes));
    const SandboxRun run = sandbox.run(programBytes);
    EXPECT_TRUE(run.escaped || run.crashed);
    // With 16k instructions and Pf=1e-2, an escape (not just a
    // crash) is expected on this seed.
    EXPECT_TRUE(run.escaped);
}

TEST(Sandbox, MonotoneEncodingNeverEscapes)
{
    DramModule module(sbConfig());
    dram::RowHammerEngine engine(module);
    Sandbox sandbox(module, codeBase, OpcodeEncoding::Monotone);
    sandbox.writeBenignProgram(programBytes);
    ASSERT_TRUE(sandbox.verify(programBytes));

    engine.hammerDoubleSided(0, 1);
    const SandboxRun run = sandbox.run(programBytes);
    EXPECT_FALSE(run.escaped); // crashes allowed, escapes impossible
    // Exhaustive: no post-hammer byte decodes as HostCall.
    for (Addr pc = 0; pc < programBytes; pc += 4) {
        EXPECT_NE(decodeOp(module.readByte(codeBase + pc),
                           OpcodeEncoding::Monotone),
                  Op::HostCall);
    }
}

TEST(Sandbox, MonotoneGuaranteeHoldsAcrossSeeds)
{
    // Property: under any down-flip corruption of a verified
    // program, the monotone encoding cannot produce HostCall.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        DramConfig config = sbConfig(5e-2);
        config.seed = seed;
        DramModule module(config);
        dram::RowHammerEngine engine(module);
        Sandbox sandbox(module, codeBase, OpcodeEncoding::Monotone);
        sandbox.writeBenignProgram(programBytes, seed);
        engine.hammerDoubleSided(0, 1);
        EXPECT_FALSE(sandbox.run(programBytes).escaped)
            << "seed " << seed;
    }
}

} // namespace
} // namespace ctamem::ext
