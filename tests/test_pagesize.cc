/**
 * @file
 * Tests of the Section 7 multi-page-size surface: large-page
 * mappings, the PS-bit hijack attack against single-level CTA, and
 * its defeat by multi-level zones with PS-bit screening.
 */

#include <gtest/gtest.h>

#include "attack/pagesize_attack.hh"
#include "common/log.hh"
#include "kernel/kernel.hh"

namespace ctamem::attack {
namespace {

using kernel::AllocPolicy;
using kernel::Kernel;
using kernel::KernelConfig;

KernelConfig
psConfig(double pf, bool multi_level, bool screen)
{
    KernelConfig config;
    config.dram.capacity = 512 * MiB;
    config.dram.rowBytes = 128 * KiB;
    config.dram.banks = 1;
    config.dram.cellMap = dram::CellTypeMap::alternating(512);
    config.dram.errors.pf = pf;
    config.dram.seed = 77;
    config.policy = AllocPolicy::Cta;
    config.cta.ptpBytes = 4 * MiB;
    config.cta.multiLevelZones = multi_level;
    config.cta.screenPageSizeBit = screen;
    return config;
}

constexpr paging::PageFlags rw{true, false, false};

TEST(LargePages, MapAndAccess)
{
    Kernel kernel(psConfig(1e-4, false, false));
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnonLarge(pid, rw);
    ASSERT_NE(base, 0u);
    EXPECT_EQ(base % (2 * MiB), 0u);

    // Eagerly mapped: every page of the 2 MiB region works, and the
    // translation is a level-2 leaf.
    ASSERT_TRUE(kernel.writeUser(pid, base + 1 * MiB, 0xfeed));
    auto access = kernel.readUser(pid, base + 1 * MiB);
    ASSERT_TRUE(access);
    EXPECT_EQ(access.value, 0xfeedu);

    const paging::WalkResult walk = kernel.mmu().walker().walk(
        kernel.process(pid).rootPfn, base + 1 * MiB,
        paging::AccessType::Read, paging::Privilege::User);
    ASSERT_TRUE(walk.ok());
    EXPECT_EQ(walk.leafLevel, 2u);
}

TEST(LargePages, PhysicallyContiguousAndAligned)
{
    Kernel kernel(psConfig(1e-4, false, false));
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnonLarge(pid, rw);
    ASSERT_NE(base, 0u);
    const Addr phys0 = kernel.readUser(pid, base).phys;
    EXPECT_EQ(phys0 % (2 * MiB), 0u);
    for (unsigned i = 1; i < 512; i += 37) {
        const Addr phys = kernel.readUser(pid, base + i * pageSize)
                              .phys;
        EXPECT_EQ(phys, phys0 + i * pageSize);
    }
}

TEST(LargePages, MunmapReleasesTheBlock)
{
    Kernel kernel(psConfig(1e-4, false, false));
    const int pid = kernel.createProcess("proc");
    const std::uint64_t free0 = kernel.phys().freeFrames();
    const VAddr base = kernel.mmapAnonLarge(pid, rw);
    ASSERT_NE(base, 0u);
    EXPECT_EQ(kernel.phys().freeFrames(), free0 - 512);
    ASSERT_TRUE(kernel.munmap(pid, base));
    EXPECT_EQ(kernel.phys().freeFrames(), free0);
    EXPECT_FALSE(kernel.readUser(pid, base));
}

TEST(LargePages, ExitProcessReleasesTheBlock)
{
    Kernel kernel(psConfig(1e-4, false, false));
    const std::uint64_t free0 = kernel.phys().freeFrames();
    const int pid = kernel.createProcess("proc");
    ASSERT_NE(kernel.mmapAnonLarge(pid, rw), 0u);
    kernel.exitProcess(pid);
    EXPECT_EQ(kernel.phys().freeFrames(), free0);
}

TEST(PageSizeAttack, HijacksSingleLevelCta)
{
    // A vulnerable module (Pf = 5e-2 so a PS flip is near-certain
    // among ~128 PD entries): single-level CTA places PDs in the
    // same true-cell zone, the dominant '1'->'0' direction flips
    // PS, and the attacker's crafted large page becomes a window
    // onto real page tables.
    Kernel kernel(psConfig(5e-2, false, false));
    dram::RowHammerEngine engine(kernel.dram());
    PageSizeAttackConfig config;
    config.largeMappings = 128;
    const AttackResult result =
        runPageSizeAttack(kernel, engine, config);
    EXPECT_EQ(result.outcome, Outcome::Escalated) << result.detail;
}

TEST(PageSizeAttack, ScreeningBlocksIt)
{
    // Multi-level zones + PS-bit screening: candidate PD frames with
    // a '1'->'0'-vulnerable PS cell are never used for tables, so
    // the templated flip cannot exist.  (Moderate Pf so screening
    // leaves usable frames; the attack without screening succeeds
    // with the same module whenever any of its PD entries is
    // flippable.)
    Kernel kernel(psConfig(5e-3, true, true));
    ASSERT_GT(kernel.ptpZone()->screenedFrames(), 0u);
    dram::RowHammerEngine engine(kernel.dram());
    PageSizeAttackConfig config;
    config.largeMappings = 128;
    const AttackResult result =
        runPageSizeAttack(kernel, engine, config);
    EXPECT_EQ(result.outcome, Outcome::Blocked) << result.detail;
}

TEST(PageSizeAttack, RequiresCta)
{
    KernelConfig config = psConfig(1e-3, false, false);
    config.policy = AllocPolicy::Standard;
    Kernel kernel(config);
    dram::RowHammerEngine engine(kernel.dram());
    EXPECT_THROW(runPageSizeAttack(kernel, engine),
                 ctamem::FatalError);
}

} // namespace
} // namespace ctamem::attack
