/**
 * @file
 * Tests for the campaign service stack: wire framing, the two-tier
 * content-addressed result cache, machine snapshot/restore (byte
 * round-trips, cold-boot equivalence, corruption rejection), and the
 * CampaignService protocol loop — streaming, backpressure, and the
 * bit-identical-resubmission guarantee over every checked-in
 * manifest.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <vector>

#include "attack/result.hh"
#include "common/rng.hh"
#include "defense/defense.hh"
#include "sim/scenario.hh"
#include "svc/cache.hh"
#include "svc/server.hh"
#include "svc/snapshot.hh"
#include "svc/wire.hh"

namespace ctamem::svc {
namespace {

using json::Json;
using sim::CampaignCell;
using sim::MachineConfig;

std::string
repoPath(const std::string &relative)
{
    return std::string(CTAMEM_SOURCE_DIR) + "/" + relative;
}

/** A scratch directory removed on scope exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((std::filesystem::temp_directory_path() /
                 ("ctamem-test-" + tag + "-" +
                  std::to_string(::getpid())))
                    .string())
    {
        std::filesystem::remove_all(path_);
    }

    ~TempDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

// ---------------------------------------------------------------
// Wire framing

TEST(Wire, FramesRoundTrip)
{
    Json message = Json::object();
    message.set("type", std::string("submit"))
        .set("id", std::uint64_t{7})
        .set("nested", Json::array());

    std::stringstream stream;
    writeFrame(stream, message);
    writeFrame(stream, Json::object().set("type",
                                          std::string("ping")));

    const auto first = readFrame(stream);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->dump(), message.dump());
    const auto second = readFrame(stream);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->at("type").asString(), "ping");
    EXPECT_FALSE(readFrame(stream).has_value()); // clean EOF
}

TEST(Wire, CleanEofBetweenFramesIsNotAnError)
{
    std::stringstream empty;
    EXPECT_FALSE(readFrame(empty).has_value());
}

TEST(Wire, TruncatedPrefixThrows)
{
    std::stringstream stream;
    stream.write("\x05\x00", 2);
    EXPECT_THROW(readFrame(stream), WireError);
}

TEST(Wire, TruncatedPayloadThrows)
{
    std::stringstream stream;
    writeFrame(stream, Json::object().set("k", std::string("v")));
    std::string bytes = stream.str();
    bytes.resize(bytes.size() - 3); // cut into the payload
    std::stringstream cut(bytes);
    EXPECT_THROW(readFrame(cut), WireError);
}

TEST(Wire, OversizedLengthPrefixThrows)
{
    std::stringstream stream;
    stream.write("\xff\xff\xff\xff", 4);
    EXPECT_THROW(readFrame(stream), WireError);
}

TEST(Wire, NonJsonPayloadThrows)
{
    std::stringstream stream;
    stream.write("\x03\x00\x00\x00!!!", 7);
    EXPECT_THROW(readFrame(stream), WireError);
}

// ---------------------------------------------------------------
// Content-addressed cache

TEST(Cache, KeysSeparateCellsAndTrackSchema)
{
    CampaignCell cell;
    cell.label = "a";
    const std::string base = cellCacheKey(cell);
    EXPECT_EQ(cellCacheKey(cell), base); // stable

    CampaignCell other = cell;
    other.config.seed += 1;
    EXPECT_NE(cellCacheKey(other), base);

    other = cell;
    other.attack = sim::AttackKind::Drammer;
    EXPECT_NE(cellCacheKey(other), base);

    other = cell;
    other.label = "b";
    EXPECT_NE(cellCacheKey(other), base);
}

TEST(Cache, MemoryTierHitsAndMisses)
{
    ResultCache cache(4);
    EXPECT_FALSE(cache.lookup("k1").has_value());
    cache.insert("k1", Json::object().set("x", std::uint64_t{1}));
    const auto hit = cache.lookup("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->at("x").asU64(), 1u);

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.memHits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.memEntries, 1u);
}

TEST(Cache, LruEvictsOldestAtCapacity)
{
    ResultCache cache(2);
    cache.insert("a", Json::object());
    cache.insert("b", Json::object());
    ASSERT_TRUE(cache.lookup("a").has_value()); // "a" now most recent
    cache.insert("c", Json::object());          // evicts "b"

    EXPECT_TRUE(cache.lookup("a").has_value());
    EXPECT_TRUE(cache.lookup("c").has_value());
    EXPECT_FALSE(cache.lookup("b").has_value());
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.memEntries, 2u);
}

TEST(Cache, DiskTierSurvivesTheProcessCache)
{
    TempDir dir("cache");
    {
        ResultCache cache(4, dir.path());
        cache.insert("k", Json::object().set("v", std::uint64_t{42}));
    }
    ResultCache fresh(4, dir.path());
    const auto hit = fresh.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->at("v").asU64(), 42u);

    const CacheStats stats = fresh.stats();
    EXPECT_EQ(stats.diskHits, 1u);
    EXPECT_EQ(stats.memEntries, 1u); // promoted into the LRU

    // Second lookup is served from memory.
    ASSERT_TRUE(fresh.lookup("k").has_value());
    EXPECT_EQ(fresh.stats().memHits, 1u);
}

// ---------------------------------------------------------------
// Snapshot/restore

MachineConfig
ctaScreeningConfig()
{
    MachineConfig config;
    config.defense = defense::DefenseKind::Cta;
    config.ctaMultiLevelZones = true;
    config.ctaScreenPageSize = true;
    return config;
}

TEST(Snapshot, BlobRoundTripIsByteIdentical)
{
    sim::Machine machine(ctaScreeningConfig());
    const MachineSnapshot snapshot = captureSnapshot(machine);
    const std::vector<std::uint8_t> blob = serialize(snapshot);
    const MachineSnapshot parsed = deserialize(blob);
    EXPECT_EQ(serialize(parsed), blob);

    EXPECT_EQ(parsed.config, snapshot.config);
    ASSERT_TRUE(parsed.image.ptpLayout.has_value());
    EXPECT_EQ(*parsed.image.ptpLayout, *snapshot.image.ptpLayout);
    EXPECT_EQ(parsed.image.secretPfn, snapshot.image.secretPfn);
    ASSERT_EQ(parsed.frames.size(), snapshot.frames.size());
}

TEST(Snapshot, RestoredMachineSnapshotsIdentically)
{
    // capture(restore(capture(m))) == capture(m): the restored
    // machine carries byte-identical store and boot state.
    sim::Machine machine(ctaScreeningConfig());
    const std::vector<std::uint8_t> blob =
        serialize(captureSnapshot(machine));
    auto restored = restoreMachine(deserialize(blob));
    EXPECT_EQ(serialize(captureSnapshot(*restored)), blob);
}

TEST(Snapshot, RestoredMachineAttackMatchesColdBoot)
{
    // The attack on a restored machine must be bit-identical to the
    // attack on a cold boot — across policy-only and RNG-observer
    // defenses.
    for (const defense::DefenseKind kind :
         {defense::DefenseKind::None, defense::DefenseKind::Cta,
          defense::DefenseKind::Para}) {
        MachineConfig config = ctaScreeningConfig();
        config.defense = kind;

        sim::Machine cold(config);
        const std::vector<std::uint8_t> blob =
            serialize(captureSnapshot(cold));
        const attack::AttackResult coldResult =
            cold.runAttack(sim::AttackKind::ProjectZero);

        auto warm = restoreMachine(deserialize(blob));
        const attack::AttackResult warmResult =
            warm->runAttack(sim::AttackKind::ProjectZero);

        EXPECT_EQ(warmResult.outcome, coldResult.outcome)
            << defense::defenseName(kind);
        EXPECT_EQ(warmResult.detail, coldResult.detail);
        EXPECT_EQ(warmResult.attackTime, coldResult.attackTime);
        EXPECT_EQ(warmResult.hammerPasses, coldResult.hammerPasses);
        EXPECT_EQ(warmResult.flipsInduced, coldResult.flipsInduced);
        EXPECT_EQ(warmResult.ptesCorrupted, coldResult.ptesCorrupted);
        EXPECT_EQ(warmResult.selfReferences,
                  coldResult.selfReferences);
    }
}

TEST(Snapshot, CorruptedBlobsAreRejected)
{
    sim::Machine machine(ctaScreeningConfig());
    const std::vector<std::uint8_t> blob =
        serialize(captureSnapshot(machine));

    // Flipping any byte breaks the checksum; probe a spread of
    // offsets including the magic, the header and the checksum
    // itself.
    for (const std::size_t offset :
         {std::size_t{0}, std::size_t{9}, std::size_t{40},
          blob.size() / 2, blob.size() - 1}) {
        std::vector<std::uint8_t> corrupt = blob;
        corrupt[offset] ^= 0x01;
        EXPECT_THROW(deserialize(corrupt), SnapshotError)
            << "offset " << offset;
    }
}

TEST(Snapshot, TruncatedBlobsAreRejected)
{
    sim::Machine machine(ctaScreeningConfig());
    const std::vector<std::uint8_t> blob =
        serialize(captureSnapshot(machine));

    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{4}, std::size_t{19},
          blob.size() / 2, blob.size() - 1}) {
        std::vector<std::uint8_t> cut(blob.begin(),
                                      blob.begin() + keep);
        EXPECT_THROW(deserialize(cut), SnapshotError)
            << "kept " << keep;
    }
}

TEST(Snapshot, UnknownVersionIsRejected)
{
    sim::Machine machine(ctaScreeningConfig());
    std::vector<std::uint8_t> blob =
        serialize(captureSnapshot(machine));
    blob[8] += 1; // bump the format version past this build's
    // Re-stamp the checksum so only the version check can object.
    std::uint64_t checksum = hashBytes(blob.data(), blob.size() - 8);
    for (int i = 0; i < 8; ++i)
        blob[blob.size() - 8 + i] = (checksum >> (8 * i)) & 0xff;
    EXPECT_THROW(deserialize(blob), SnapshotError);
}

// ---------------------------------------------------------------
// CampaignService protocol

std::vector<Json>
roundTrip(CampaignService &service, const std::vector<Json> &requests)
{
    std::stringstream in;
    for (const Json &request : requests)
        writeFrame(in, request);
    std::stringstream out;
    service.serve(in, out);
    std::vector<Json> responses;
    while (auto frame = readFrame(out))
        responses.push_back(std::move(*frame));
    return responses;
}

Json
submitRequest(const Json &manifest, std::uint64_t id)
{
    Json request = Json::object();
    request.set("type", std::string("submit"))
        .set("id", id)
        .set("manifest", manifest);
    return request;
}

/** The smallest checked-in manifest, truncated via base tweaks. */
Json
tinyManifest(std::uint64_t seed = 1)
{
    Json base = Json::object();
    base.set("seed", seed);
    Json manifest = Json::object();
    manifest.set("schema_version", sim::kScenarioSchemaVersion)
        .set("base", std::move(base))
        .set("defenses",
             Json::array().push(std::string("none")).push(
                 std::string("cta")))
        .set("attacks",
             Json::array().push(std::string("projectzero")));
    return manifest;
}

ServiceConfig
testServiceConfig(const std::string &cacheDir = {})
{
    ServiceConfig config;
    config.workers = 2;
    config.cacheDir = cacheDir;
    return config;
}

TEST(Service, PingStatsAndUnknownTypes)
{
    CampaignService service(testServiceConfig());
    Json ping = Json::object();
    ping.set("type", std::string("ping"));
    Json stats = Json::object();
    stats.set("type", std::string("stats"));
    Json bogus = Json::object();
    bogus.set("type", std::string("frobnicate"));

    const auto responses = roundTrip(service, {ping, stats, bogus});
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[0].at("type").asString(), "pong");
    EXPECT_EQ(responses[1].at("type").asString(), "stats");
    EXPECT_EQ(responses[1].at("schemaVersion").asU64(),
              sim::kScenarioSchemaVersion);
    EXPECT_EQ(responses[2].at("type").asString(), "error");
}

TEST(Service, SubmissionStreamsCellsThenReport)
{
    CampaignService service(testServiceConfig());
    const auto responses =
        roundTrip(service, {submitRequest(tinyManifest(), 5)});

    ASSERT_GE(responses.size(), 2u);
    EXPECT_EQ(responses.front().at("type").asString(), "accepted");
    const std::uint64_t cells =
        responses.front().at("cells").asU64();
    EXPECT_EQ(cells, 2u);
    EXPECT_EQ(responses.back().at("type").asString(), "done");
    EXPECT_EQ(responses.back().at("id").asU64(), 5u);

    // Every index streams exactly once, in some completion order.
    std::vector<bool> seen(cells, false);
    for (std::size_t i = 1; i + 1 < responses.size(); ++i) {
        ASSERT_EQ(responses[i].at("type").asString(), "cell");
        seen[responses[i].at("index").asU64()] = true;
    }
    for (std::size_t i = 0; i < cells; ++i)
        EXPECT_TRUE(seen[i]) << "cell " << i << " never streamed";

    // The report is manifest-ordered regardless of completion order.
    const Json &report = responses.back().at("report");
    ASSERT_EQ(report.at("cells").size(), cells);
    EXPECT_EQ(report.at("cells")
                  .items()[0]
                  .at("cell")
                  .at("config")
                  .at("defense")
                  .asString(),
              "none");
}

TEST(Service, ResubmissionIsFullyCachedAndBitIdentical)
{
    CampaignService service(testServiceConfig());
    const Json request = submitRequest(tinyManifest(), 1);
    const auto cold = roundTrip(service, {request});
    const auto cached = roundTrip(service, {request});

    ASSERT_EQ(cold.back().at("type").asString(), "done");
    ASSERT_EQ(cached.back().at("type").asString(), "done");
    EXPECT_EQ(cached.back().at("cachedCells").asU64(), 2u);

    // Bit-identical: the replayed report's cell table serializes to
    // the same bytes as the cold run's (wallSeconds of the *report*
    // wrapper differs; the cells and their stored timings do not).
    EXPECT_EQ(cold.back().at("report").at("cells").dump(),
              cached.back().at("report").at("cells").dump());
    EXPECT_EQ(cold.back().at("report").at("cellSecondsTotal").dump(),
              cached.back()
                  .at("report")
                  .at("cellSecondsTotal")
                  .dump());

    const ServiceCounters counters = service.counters();
    EXPECT_EQ(counters.cellsExecuted, 2u);
    EXPECT_EQ(counters.cellsCached, 2u);
}

TEST(Service, DiskCacheServesAFreshService)
{
    TempDir dir("svc-disk");
    const Json request = submitRequest(tinyManifest(2), 1);

    std::string coldCells;
    {
        CampaignService service(testServiceConfig(dir.path()));
        const auto cold = roundTrip(service, {request});
        coldCells = cold.back().at("report").at("cells").dump();
    }

    // A brand-new service (empty memory tier) replays from disk.
    CampaignService fresh(testServiceConfig(dir.path()));
    const auto cached = roundTrip(fresh, {request});
    EXPECT_EQ(cached.back().at("cachedCells").asU64(), 2u);
    EXPECT_EQ(cached.back().at("report").at("cells").dump(),
              coldCells);
    EXPECT_EQ(fresh.counters().cellsExecuted, 0u);
}

TEST(Service, OverCapacitySubmissionsAreRejected)
{
    ServiceConfig config = testServiceConfig();
    config.queueCapacity = 1; // the 2-cell manifest cannot fit
    CampaignService service(config);

    const auto responses =
        roundTrip(service, {submitRequest(tinyManifest(), 9)});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].at("type").asString(), "rejected");
    EXPECT_EQ(responses[0].at("reason").asString(), "queue-full");
    EXPECT_EQ(responses[0].at("id").asU64(), 9u);
    EXPECT_EQ(service.counters().jobsRejected, 1u);
}

TEST(Service, BadManifestsGetErrorFrames)
{
    CampaignService service(testServiceConfig());

    Json badVersion = tinyManifest();
    badVersion.set("schema_version",
                   sim::kScenarioSchemaVersion + 1);
    Json noManifest = Json::object();
    noManifest.set("type", std::string("submit"))
        .set("id", std::uint64_t{3});

    const auto responses = roundTrip(
        service, {submitRequest(badVersion, 2), noManifest});
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].at("type").asString(), "error");
    EXPECT_NE(responses[0].at("message").asString().find(
                  "schema_version"),
              std::string::npos);
    EXPECT_EQ(responses[1].at("type").asString(), "error");
}

TEST(Service, ShutdownAnswersByeAndStops)
{
    CampaignService service(testServiceConfig());
    Json shutdown = Json::object();
    shutdown.set("type", std::string("shutdown"));
    Json ping = Json::object();
    ping.set("type", std::string("ping"));

    // The ping after shutdown is never read.
    const auto responses = roundTrip(service, {shutdown, ping});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].at("type").asString(), "bye");
}

TEST(Service, CheckedInManifestsReplayBitIdentically)
{
    // The PR's golden guarantee: resubmitting any checked-in
    // manifest yields a report whose cells are byte-identical to the
    // cold run's.
    CampaignService service(testServiceConfig());
    std::size_t manifests = 0;
    for (const auto &entry : std::filesystem::directory_iterator(
             repoPath("scenarios"))) {
        if (entry.path().extension() != ".json")
            continue;
        ++manifests;
        const Json manifest =
            Json::parseFile(entry.path().string());
        const Json request = submitRequest(manifest, manifests);

        const auto cold = roundTrip(service, {request});
        const auto warm = roundTrip(service, {request});
        ASSERT_EQ(cold.back().at("type").asString(), "done")
            << entry.path();
        ASSERT_EQ(warm.back().at("type").asString(), "done")
            << entry.path();

        const std::uint64_t cells =
            cold.front().at("cells").asU64();
        EXPECT_EQ(warm.back().at("cachedCells").asU64(), cells)
            << entry.path();
        EXPECT_EQ(cold.back().at("report").at("cells").dump(),
                  warm.back().at("report").at("cells").dump())
            << entry.path();
    }
    EXPECT_GE(manifests, 4u);
}

} // namespace
} // namespace ctamem::svc
