/**
 * @file
 * Tests for the memory-management substrate: the buddy allocator,
 * zones with multiple sub-zone spans, and PhysicalMemory with GFP
 * fallback semantics.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/log.hh"
#include "dram/module.hh"
#include "mm/buddy.hh"
#include "mm/phys_mem.hh"
#include "mm/zone.hh"

namespace ctamem::mm {
namespace {

/** Helper: a page-table request against ZONE_NORMAL (pre-CTA). */
GfpFlags
GFP_PTP_like()
{
    return GfpFlags{ZoneId::Normal, false, PageKind::PageTable};
}

TEST(Buddy, AllocatesAllFramesAtOrderZero)
{
    BuddyAllocator buddy(0, 64);
    std::set<Pfn> seen;
    for (int i = 0; i < 64; ++i) {
        auto pfn = buddy.allocate(0);
        ASSERT_TRUE(pfn.has_value());
        EXPECT_TRUE(seen.insert(*pfn).second) << "duplicate frame";
    }
    EXPECT_FALSE(buddy.allocate(0).has_value());
    EXPECT_EQ(buddy.freeFrames(), 0u);
}

TEST(Buddy, SplitAndCoalesce)
{
    BuddyAllocator buddy(0, 1024);
    auto a = buddy.allocate(3); // 8 frames
    ASSERT_TRUE(a);
    EXPECT_EQ(buddy.freeFrames(), 1016u);
    buddy.free(*a, 3);
    EXPECT_EQ(buddy.freeFrames(), 1024u);
    // After full coalescing a max-order block is available again.
    auto big = buddy.allocate(BuddyAllocator::maxOrder);
    EXPECT_TRUE(big.has_value());
}

TEST(Buddy, NaturalAlignment)
{
    BuddyAllocator buddy(0, 1024);
    for (unsigned order = 0; order <= 5; ++order) {
        auto pfn = buddy.allocate(order);
        ASSERT_TRUE(pfn);
        EXPECT_EQ(*pfn & ((1ULL << order) - 1), 0u)
            << "block not aligned to order " << order;
    }
}

TEST(Buddy, LowestAddressFirst)
{
    BuddyAllocator buddy(0, 256);
    auto first = buddy.allocate(0);
    ASSERT_TRUE(first);
    EXPECT_EQ(*first, 0u);
    auto second = buddy.allocate(0);
    ASSERT_TRUE(second);
    EXPECT_EQ(*second, 1u);
}

TEST(Buddy, DeterministicReuse)
{
    // The frame freed last at the lowest address is handed out again
    // — the property Drammer-style allocator massaging relies on.
    BuddyAllocator buddy(0, 256);
    auto a = buddy.allocate(0);
    auto b = buddy.allocate(0);
    ASSERT_TRUE(a && b);
    buddy.free(*a, 0);
    auto c = buddy.allocate(0);
    ASSERT_TRUE(c);
    EXPECT_EQ(*c, *a);
}

TEST(Buddy, UnalignedBaseAndOddSize)
{
    BuddyAllocator buddy(5, 100); // frames [5, 105)
    EXPECT_EQ(buddy.freeFrames(), 100u);
    std::set<Pfn> seen;
    for (int i = 0; i < 100; ++i) {
        auto pfn = buddy.allocate(0);
        ASSERT_TRUE(pfn);
        EXPECT_GE(*pfn, 5u);
        EXPECT_LT(*pfn, 105u);
        EXPECT_TRUE(seen.insert(*pfn).second);
    }
    EXPECT_FALSE(buddy.allocate(0).has_value());
}

TEST(Buddy, IsFreeTracksState)
{
    BuddyAllocator buddy(0, 64);
    EXPECT_TRUE(buddy.isFree(10, 0));
    auto pfn = buddy.allocate(0);
    ASSERT_TRUE(pfn);
    EXPECT_FALSE(buddy.isFree(*pfn, 0));
    buddy.free(*pfn, 0);
    EXPECT_TRUE(buddy.isFree(*pfn, 0));
}

TEST(Buddy, DoubleFreePanics)
{
    BuddyAllocator buddy(0, 64);
    auto pfn = buddy.allocate(0);
    ASSERT_TRUE(pfn);
    buddy.free(*pfn, 0);
    EXPECT_DEATH(buddy.free(*pfn, 0), "double free|panic");
}

TEST(Zone, MultipleSpansSearchedInOrder)
{
    ZoneSpec spec{ZoneId::Ptp,
                  {FrameSpan{100, 4}, FrameSpan{200, 4}}};
    Zone zone(spec);
    EXPECT_EQ(zone.totalFrames(), 8u);
    // First span drains first.
    for (int i = 0; i < 4; ++i) {
        auto pfn = zone.allocate(0);
        ASSERT_TRUE(pfn);
        EXPECT_GE(*pfn, 100u);
        EXPECT_LT(*pfn, 104u);
    }
    auto next = zone.allocate(0);
    ASSERT_TRUE(next);
    EXPECT_GE(*next, 200u);
    EXPECT_TRUE(zone.contains(102));
    EXPECT_FALSE(zone.contains(104));
}

TEST(Zone, FailureWhenExhausted)
{
    Zone zone(ZoneSpec{ZoneId::Dma, {FrameSpan{0, 2}}});
    EXPECT_TRUE(zone.allocate(0));
    EXPECT_TRUE(zone.allocate(0));
    EXPECT_FALSE(zone.allocate(0));
    EXPECT_EQ(zone.stats().value("failures"), 1u);
}

class PhysMemTest : public ::testing::Test
{
  protected:
    PhysMemTest()
    {
        dram::DramConfig config;
        config.capacity = 256 * MiB;
        config.rowBytes = 128 * KiB;
        config.banks = 1;
        module_ = std::make_unique<dram::DramModule>(config);
        phys_ = std::make_unique<PhysicalMemory>(
            *module_,
            standardZoneSpecs(config.capacity, config.capacity));
    }

    std::unique_ptr<dram::DramModule> module_;
    std::unique_ptr<PhysicalMemory> phys_;
};

TEST_F(PhysMemTest, StandardLayoutBelow4G)
{
    // 256 MiB machine: DMA + DMA32 only.
    EXPECT_NE(phys_->zone(ZoneId::Dma), nullptr);
    EXPECT_NE(phys_->zone(ZoneId::Dma32), nullptr);
    EXPECT_EQ(phys_->zone(ZoneId::Normal), nullptr);
    EXPECT_EQ(phys_->totalFrames(), 256 * MiB / pageSize);
}

TEST_F(PhysMemTest, NormalRequestFallsBackToDma32)
{
    // With no ZONE_NORMAL, a GFP_KERNEL request lands in DMA32.
    auto pfn = phys_->allocate(GFP_KERNEL);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(phys_->zoneOf(*pfn)->id(), ZoneId::Dma32);
}

TEST_F(PhysMemTest, NoFallbackHonored)
{
    GfpFlags strict{ZoneId::Normal, true, PageKind::KernelData};
    EXPECT_FALSE(phys_->allocate(strict).has_value());
    EXPECT_GT(phys_->stats().value("failures"), 0u);
}

TEST_F(PhysMemTest, PagesComeOutZeroed)
{
    // Dirty a frame directly, free it, re-allocate: must be zeroed.
    auto pfn = phys_->allocate(GFP_USER);
    ASSERT_TRUE(pfn);
    module_->writeU64(pfnToAddr(*pfn), 0x1234567890abcdefULL);
    phys_->free(*pfn);
    auto again = phys_->allocate(GFP_USER);
    ASSERT_TRUE(again);
    EXPECT_EQ(*again, *pfn); // deterministic reuse
    EXPECT_EQ(module_->readU64(pfnToAddr(*again)), 0u);
}

TEST_F(PhysMemTest, PageInfoAndKind)
{
    auto pfn = phys_->allocate(GFP_PTP_like());
    ASSERT_TRUE(pfn);
    EXPECT_EQ(phys_->pageInfo(*pfn).kind, PageKind::PageTable);
    EXPECT_EQ(phys_->kindOf(*pfn), PageKind::PageTable);
    phys_->free(*pfn);
    EXPECT_EQ(phys_->kindOf(*pfn), PageKind::Free);
}

TEST_F(PhysMemTest, KindOfInteriorFrame)
{
    GfpFlags flags = GFP_USER;
    auto pfn = phys_->allocate(flags, 3); // 8 frames
    ASSERT_TRUE(pfn);
    EXPECT_EQ(phys_->kindOf(*pfn + 5), PageKind::UserData);
}

TEST_F(PhysMemTest, DmaStaysInDma)
{
    auto pfn = phys_->allocate(GFP_DMA);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(phys_->zoneOf(*pfn)->id(), ZoneId::Dma);
    EXPECT_LT(pfnToAddr(*pfn), 16 * MiB);
}

TEST(PhysMem, OverlappingZonesRejected)
{
    dram::DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    dram::DramModule module(config);
    std::vector<ZoneSpec> specs{
        ZoneSpec{ZoneId::Dma, {FrameSpan{0, 100}}},
        ZoneSpec{ZoneId::Dma32, {FrameSpan{50, 100}}}};
    EXPECT_THROW(PhysicalMemory(module, specs), FatalError);
}

} // namespace
} // namespace ctamem::mm
