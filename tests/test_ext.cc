/**
 * @file
 * Tests of the Section 8 extensions: permission vectors in
 * true-cells, the cold-boot guard, and the hamming-weight shield.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "dram/hammer.hh"
#include "dram/module.hh"
#include "ext/coldboot.hh"
#include "ext/hamming_shield.hh"
#include "ext/permission_vector.hh"

namespace ctamem::ext {
namespace {

using dram::CellType;
using dram::CellTypeMap;
using dram::DramConfig;
using dram::DramModule;

DramConfig
extConfig(double pf = 5e-3)
{
    DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = CellTypeMap::alternating(4);
    config.errors.pf = pf;
    config.seed = 99;
    return config;
}

/** Base address of row @p row. */
Addr
rowAddr(std::uint64_t row)
{
    return row * 128 * KiB;
}

TEST(PermissionVector, GrantDenyRoundTrip)
{
    DramModule module(extConfig());
    PermissionVector vec(module, rowAddr(1), 64);
    EXPECT_FALSE(vec.allowed(5));
    vec.grant(5);
    EXPECT_TRUE(vec.allowed(5));
    vec.deny(5);
    EXPECT_FALSE(vec.allowed(5));
    EXPECT_EQ(vec.cellType(), CellType::True);
}

TEST(PermissionVector, TrueCellPlacementEnforced)
{
    DramModule module(extConfig());
    // Row 5 is anti-cells (period 4).
    EXPECT_THROW(PermissionVector(module, rowAddr(5), 64),
                 ctamem::FatalError);
    // Allowed when the caller opts out (vulnerable baseline).
    PermissionVector vulnerable(module, rowAddr(5), 64, false);
    EXPECT_EQ(vulnerable.cellType(), CellType::Anti);
}

TEST(PermissionVector, HammeringNeverEscalatesInTrueCells)
{
    DramModule module(extConfig(2e-2));
    dram::RowHammerEngine engine(module);
    PermissionVector vec(module, rowAddr(1), 4096);
    std::vector<bool> reference(4096);
    for (std::uint64_t i = 0; i < 4096; ++i) {
        if (i % 3 == 0) {
            vec.grant(i);
            reference[i] = true;
        }
    }
    engine.hammerDoubleSided(0, 1);
    const auto report = vec.audit(reference);
    EXPECT_EQ(report.deniedToAllowed, 0u);
    EXPECT_GT(report.allowedToDenied, 0u); // availability only
}

TEST(PermissionVector, AntiCellsLeakPermissions)
{
    DramModule module(extConfig(2e-2));
    dram::RowHammerEngine engine(module);
    PermissionVector vec(module, rowAddr(5), 4096, false);
    std::vector<bool> reference(4096);
    for (std::uint64_t i = 0; i < 4096; ++i) {
        if (i % 3 == 0) {
            vec.grant(i);
            reference[i] = true;
        }
    }
    engine.hammerDoubleSided(0, 5);
    const auto report = vec.audit(reference);
    EXPECT_GT(report.deniedToAllowed, 0u); // confidentiality broken
}

TEST(ColdBoot, ProceedsAfterLongPowerOff)
{
    DramModule module(extConfig());
    ColdBootGuard guard = ColdBootGuard::withProfiledCanaries(
        module, rowAddr(1), 4096, 8);
    guard.arm();
    EXPECT_EQ(guard.check(), BootDecision::Halt); // just armed
    module.powerOff(30 * 60 * seconds);           // long shutdown
    EXPECT_EQ(guard.check(), BootDecision::Proceed);
}

TEST(ColdBoot, HaltsOnQuickWarmReboot)
{
    DramModule module(extConfig());
    ColdBootGuard guard = ColdBootGuard::withProfiledCanaries(
        module, rowAddr(1), 4096, 8);
    guard.arm();
    module.powerOff(50 * milliseconds); // yank-and-replug
    EXPECT_EQ(guard.check(), BootDecision::Halt);
}

TEST(ColdBoot, HaltsOnChilledModule)
{
    DramModule module(extConfig());
    ColdBootGuard guard = ColdBootGuard::withProfiledCanaries(
        module, rowAddr(1), 4096, 8);
    guard.arm();
    // An off-time that decays everything warm keeps canaries (and
    // secrets) alive at -40C: the attack scenario must be caught.
    module.powerOff(60 * seconds, -40.0);
    EXPECT_EQ(guard.check(), BootDecision::Halt);
}

TEST(ColdBoot, PaperLiteralModeIsInverted)
{
    DramModule module(extConfig());
    ColdBootGuard guard = ColdBootGuard::withProfiledCanaries(
        module, rowAddr(1), 4096, 8);
    guard.arm();
    module.powerOff(30 * 60 * seconds);
    EXPECT_EQ(guard.check(), BootDecision::Proceed);
    EXPECT_EQ(guard.paperLiteral(), BootDecision::Halt);
}

TEST(HammingShield, CleanDataChecksClean)
{
    DramModule module(extConfig());
    // Data in true row 1, weights in anti row 5.
    HammingShield shield(module, rowAddr(1), rowAddr(5), 512);
    for (std::uint64_t i = 0; i < 512; ++i)
        shield.storeWord(i, stableHash(1, i));
    const auto report = shield.check();
    EXPECT_EQ(report.clean, 512u);
    EXPECT_EQ(report.faults, 0u);
}

TEST(HammingShield, DetectsInjectedDownFlips)
{
    DramModule module(extConfig());
    HammingShield shield(module, rowAddr(1), rowAddr(5), 512);
    for (std::uint64_t i = 0; i < 512; ++i)
        shield.storeWord(i, ~0ULL);
    // Manually clear a bit (what a true-cell fault does).
    module.store().writeBit(rowAddr(1) + 10 * 8, 3, false);
    EXPECT_EQ(shield.checkWord(10),
              HammingShield::WordState::FaultDetected);
    const auto report = shield.check();
    EXPECT_EQ(report.faults, 1u);
    EXPECT_EQ(report.clean, 511u);
}

TEST(HammingShield, DetectsHammerFaults)
{
    DramModule module(extConfig(2e-2));
    dram::RowHammerEngine engine(module);
    HammingShield shield(module, rowAddr(1), rowAddr(5), 512);
    for (std::uint64_t i = 0; i < 512; ++i)
        shield.storeWord(i, stableHash(2, i));
    const auto flips = engine.hammerDoubleSided(0, 1);
    ASSERT_GT(flips.flips10, 0u);
    const auto report = shield.check();
    EXPECT_GT(report.faults, 0u);
}

TEST(HammingShield, WeightGrowthIsConservativelyAFault)
{
    // Anti-cell decay can only *grow* the stored weight byte, which
    // is indistinguishable from data decay — conservatively flagged
    // as a fault (a false positive the paper accepts).
    DramModule module(extConfig());
    HammingShield shield(module, rowAddr(1), rowAddr(5), 512);
    shield.storeWord(7, 0x0f0f);
    const Addr weight_addr = rowAddr(5) + 7;
    module.writeByte(weight_addr,
                     module.readByte(weight_addr) | 0x20);
    EXPECT_EQ(shield.checkWord(7),
              HammingShield::WordState::FaultDetected);
}

TEST(HammingShield, RareUpwardDataFlipIsSuspicious)
{
    // A wrong-direction (0->1) flip in the data raises the observed
    // weight above the stored one.
    DramModule module(extConfig());
    HammingShield shield(module, rowAddr(1), rowAddr(5), 512);
    shield.storeWord(9, 0x00ff);
    module.store().writeBit(rowAddr(1) + 9 * 8 + 4, 2, true);
    EXPECT_EQ(shield.checkWord(9),
              HammingShield::WordState::Suspicious);
}

TEST(HammingShield, CellPlacementEnforced)
{
    DramModule module(extConfig());
    // Data in anti cells: rejected.
    EXPECT_THROW(HammingShield(module, rowAddr(5), rowAddr(6), 64),
                 ctamem::FatalError);
    // Overlapping regions: rejected.
    EXPECT_THROW(
        HammingShield(module, rowAddr(1), rowAddr(1) + 256, 64),
        ctamem::FatalError);
}

} // namespace
} // namespace ctamem::ext
