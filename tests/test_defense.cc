/**
 * @file
 * Tests for the mitigation observers (PARA, refresh boosting, ANVIL)
 * and their interaction with the hammer engine and attacks.
 */

#include <gtest/gtest.h>

#include "attack/projectzero.hh"
#include "defense/observers.hh"
#include "defense/softtrr.hh"
#include "sim/machine.hh"

namespace ctamem::defense {
namespace {

TEST(Para, SuppressesEssentiallyEveryPass)
{
    ParaObserver para(0.001);
    unsigned suppressed = 0;
    for (int i = 0; i < 100; ++i) {
        if (para.onHammer({0, 10, 1'300'000, 9, 11}))
            ++suppressed;
    }
    // 1 - (1 - 0.001)^1.3e6 is indistinguishable from 1.
    EXPECT_EQ(suppressed, 100u);
    EXPECT_EQ(para.mitigations(), 100u);
    EXPECT_GT(para.overheadFactor(), 0.0);
}

TEST(Para, TinyProbabilityLeaks)
{
    // With p ~ 1e-7, a meaningful share of passes slip through — the
    // probabilistic guarantee depends on p.
    ParaObserver para(1e-7);
    unsigned leaked = 0;
    for (int i = 0; i < 200; ++i) {
        if (!para.onHammer({0, 10, 1'300'000, 9, 11}))
            ++leaked;
    }
    EXPECT_GT(leaked, 100u);
}

TEST(RefreshBoost, SuppressesAllButOneInK)
{
    RefreshBoostObserver boost(4);
    unsigned leaked = 0;
    const unsigned passes = 4000;
    for (unsigned i = 0; i < passes; ++i) {
        if (!boost.onHammer({0, 5, 1'300'000, 4, 6}))
            ++leaked;
    }
    // ~1/4 of passes still land: no guarantee, just slowdown.
    EXPECT_NEAR(leaked, passes / 4, passes / 16);
    EXPECT_EQ(boost.overheadFactor(), 4.0);
}

TEST(Anvil, DetectsSustainedHammering)
{
    AnvilObserver anvil(2'000'000, 8);
    bool detected = false;
    for (int i = 0; i < 4 && !detected; ++i)
        detected = anvil.onHammer({0, 7, 1'300'000, 6, 8});
    EXPECT_TRUE(detected);
    EXPECT_TRUE(anvil.triggered());
    EXPECT_GT(anvil.detections(), 0u);
}

TEST(Anvil, WindowDecayForgetsSlowActivity)
{
    AnvilObserver anvil(2'000'000, 2);
    // Alternate rows so each row's count resets before tripping.
    bool detected = false;
    for (int i = 0; i < 16; ++i)
        detected |= anvil.onHammer(
            {0, static_cast<std::uint64_t>(100 + (i % 2) * 50),
             900'000, 99, 101});
    EXPECT_FALSE(detected);
}

TEST(Anvil, BenignThrashingFalsePositives)
{
    AnvilObserver anvil(1'000'000, 16);
    bool fp = false;
    for (int i = 0; i < 8; ++i)
        fp |= anvil.noteBenignActivity(0, 3, 400'000);
    EXPECT_TRUE(fp);
    EXPECT_GT(anvil.falsePositives(), 0u);
    EXPECT_FALSE(anvil.triggered()); // not an attack detection
}

TEST(SoftTrr, RefreshesRowsPastTheThreshold)
{
    SoftTrrObserver trr(1'000'000, 8);
    // The first full-strength pass crosses the 1M threshold: the
    // counter trips and the pass is mitigated.
    EXPECT_TRUE(trr.onHammer({0, 10, 1'300'000, 9, 11}));
    EXPECT_EQ(trr.mitigations(), 1u);
    // A weak pass under the threshold sails through...
    EXPECT_FALSE(trr.onHammer({0, 20, 400'000, 19, 21}));
    // ...but accumulates: two more and row 20 trips too.
    EXPECT_FALSE(trr.onHammer({0, 20, 400'000, 19, 21}));
    EXPECT_TRUE(trr.onHammer({0, 20, 400'000, 19, 21}));
    EXPECT_GT(trr.overheadFactor(), 0.0);
}

TEST(SoftTrr, BoundedTableEvictsColdestRow)
{
    SoftTrrObserver trr(1'000'000, 2);
    trr.onHammer({0, 1, 500'000, 0, 2});
    trr.onHammer({0, 2, 600'000, 1, 3});
    EXPECT_EQ(trr.trackedRows(), 2u);
    // A third row recycles the coldest slot (row 1).
    trr.onHammer({0, 3, 100'000, 2, 4});
    EXPECT_EQ(trr.trackedRows(), 2u);
    EXPECT_EQ(trr.evictions(), 1u);
}

TEST(DefenseVsAttack, SoftTrrStopsProjectZero)
{
    // The registration-only defense holds on its own: every hammer
    // pass exceeds the threshold, so no flips ever land.
    sim::MachineConfig config;
    config.defense = DefenseKind::SoftTrr;
    sim::Machine machine(config);
    const attack::AttackResult result =
        machine.runAttack(sim::AttackKind::ProjectZero);
    EXPECT_NE(result.outcome, attack::Outcome::Escalated);
    EXPECT_EQ(result.flipsInduced, 0u);
    EXPECT_GT(machine.observer()->mitigations(), 0u);
}

TEST(DefenseNames, AllDistinct)
{
    EXPECT_STREQ(defenseName(DefenseKind::Cta), "CTA");
    EXPECT_STREQ(defenseName(DefenseKind::Para), "PARA");
    EXPECT_STRNE(defenseName(DefenseKind::Catt),
                 defenseName(DefenseKind::Zebram));
}

TEST(DefenseVsAttack, ParaStopsProjectZero)
{
    sim::MachineConfig config;
    config.defense = DefenseKind::Para;
    sim::Machine machine(config);
    const attack::AttackResult result =
        machine.runAttack(sim::AttackKind::ProjectZero);
    EXPECT_NE(result.outcome, attack::Outcome::Escalated);
    EXPECT_EQ(result.flipsInduced, 0u);
    EXPECT_GT(machine.observer()->mitigations(), 0u);
}

TEST(DefenseVsAttack, AnvilDetectsProjectZero)
{
    sim::MachineConfig config;
    config.defense = DefenseKind::Anvil;
    config.anvilThreshold = 1'000'000;
    sim::Machine machine(config);
    const attack::AttackResult result =
        machine.runAttack(sim::AttackKind::ProjectZero);
    EXPECT_NE(result.outcome, attack::Outcome::Escalated);
    EXPECT_TRUE(machine.anvil()->triggered());
}

TEST(DefenseVsAttack, RefreshBoostOnlySlowsTheAttack)
{
    sim::MachineConfig config;
    config.defense = DefenseKind::RefreshBoost;
    config.refreshBoostFactor = 2;
    sim::Machine machine(config);
    const attack::AttackResult result =
        machine.runAttack(sim::AttackKind::ProjectZero);
    // Half the passes land; on this vulnerable module the attack
    // still eventually succeeds — the paper's "no guarantee" point.
    EXPECT_EQ(result.outcome, attack::Outcome::Escalated)
        << result.detail;
}

} // namespace
} // namespace ctamem::defense
