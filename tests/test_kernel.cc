/**
 * @file
 * Tests for the simulated kernel: process lifecycle, demand paging,
 * file-backed shared mappings, the pte_alloc_one policies, theorem
 * auditing, and the alternative (baseline) allocation policies.
 */

#include <gtest/gtest.h>

#include "kernel/kernel.hh"

namespace ctamem::kernel {
namespace {

using paging::PageFlags;

KernelConfig
standardConfig()
{
    KernelConfig config;
    config.dram.capacity = 256 * MiB;
    config.dram.rowBytes = 128 * KiB;
    config.dram.banks = 1;
    config.dram.cellMap = dram::CellTypeMap::alternating(64);
    config.dram.seed = 23;
    config.policy = AllocPolicy::Standard;
    return config;
}

KernelConfig
ctaKernelConfig(std::uint64_t ptp = 2 * MiB, unsigned min_zeros = 0)
{
    KernelConfig config = standardConfig();
    config.policy = AllocPolicy::Cta;
    config.cta.ptpBytes = ptp;
    config.cta.minIndicatorZeros = min_zeros;
    return config;
}

constexpr PageFlags rw{true, false, false};

TEST(Kernel, BootAndSecret)
{
    Kernel kernel(standardConfig());
    EXPECT_EQ(kernel.dram().readU64(kernel.kernelSecretAddr()),
              Kernel::kernelSecret);
}

TEST(Kernel, AnonymousMappingReadsZeroThenHoldsWrites)
{
    Kernel kernel(standardConfig());
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 64 * KiB, rw);
    ASSERT_NE(base, 0u);

    auto read = kernel.readUser(pid, base);
    ASSERT_TRUE(read);
    EXPECT_EQ(read.value, 0u);

    ASSERT_TRUE(kernel.writeUser(pid, base + 8, 0xabcdef));
    EXPECT_EQ(kernel.readUser(pid, base + 8).value, 0xabcdefu);
}

TEST(Kernel, FileMappingsShareFrames)
{
    Kernel kernel(standardConfig());
    const int pid = kernel.createProcess("proc");
    const int fd = kernel.createFile(1 * MiB);
    const VAddr a = kernel.mmapFile(pid, fd, 64 * KiB, rw);
    const VAddr b = kernel.mmapFile(pid, fd, 64 * KiB, rw);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    ASSERT_NE(a, b);

    // Same file page behind both mappings: writes are visible.
    ASSERT_TRUE(kernel.writeUser(pid, a, 0x1234));
    EXPECT_EQ(kernel.readUser(pid, b).value, 0x1234u);
    EXPECT_EQ(kernel.readUser(pid, a).phys,
              kernel.readUser(pid, b).phys);
}

TEST(Kernel, SegfaultOutsideVmas)
{
    Kernel kernel(standardConfig());
    const int pid = kernel.createProcess("proc");
    EXPECT_FALSE(kernel.readUser(pid, 0xdead000));
    EXPECT_GT(kernel.stats().value("segfaults"), 0u);
}

TEST(Kernel, ReadOnlyMappingRejectsWrites)
{
    Kernel kernel(standardConfig());
    const int pid = kernel.createProcess("proc");
    const int fd = kernel.createFile(64 * KiB);
    const VAddr base = kernel.mmapFile(pid, fd, 64 * KiB,
                                       PageFlags{false, false, false});
    ASSERT_TRUE(kernel.readUser(pid, base));
    EXPECT_FALSE(kernel.writeUser(pid, base, 1));
}

TEST(Kernel, MunmapFreesAnonFrames)
{
    Kernel kernel(standardConfig());
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 128 * KiB, rw);
    for (VAddr va = base; va < base + 128 * KiB; va += pageSize)
        ASSERT_TRUE(kernel.touchUser(pid, va));
    const std::uint64_t free_before = kernel.phys().freeFrames();
    ASSERT_TRUE(kernel.munmap(pid, base));
    EXPECT_EQ(kernel.phys().freeFrames(), free_before + 32);
    EXPECT_FALSE(kernel.readUser(pid, base));
}

TEST(Kernel, ExitProcessReleasesEverything)
{
    Kernel kernel(standardConfig());
    const std::uint64_t free_boot = kernel.phys().freeFrames();
    const std::uint64_t tables_boot = kernel.pageTableBytes();
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 256 * KiB, rw);
    for (VAddr va = base; va < base + 256 * KiB; va += pageSize)
        ASSERT_TRUE(kernel.touchUser(pid, va));
    kernel.exitProcess(pid);
    EXPECT_EQ(kernel.phys().freeFrames(), free_boot);
    EXPECT_EQ(kernel.pageTableBytes(), tables_boot);
}

TEST(Kernel, PageTablesTrackedWithLevels)
{
    Kernel kernel(standardConfig());
    const int pid = kernel.createProcess("proc");
    const Pfn root = kernel.process(pid).rootPfn;
    EXPECT_TRUE(kernel.isPageTableFrame(root));
    EXPECT_EQ(kernel.tableLevel(root), 4u);

    const VAddr base = kernel.mmapAnon(pid, 64 * KiB, rw);
    ASSERT_TRUE(kernel.touchUser(pid, base));
    // Root + PDPT + PD + PT.
    EXPECT_GE(kernel.pageTableBytes(), 4 * pageSize);
}

TEST(KernelStandard, PageTablesLandAnywhere)
{
    // The vulnerable baseline: PT pages interleave with user data in
    // ZONE_NORMAL/DMA32 — physically adjacent to attacker memory.
    Kernel kernel(standardConfig());
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 64 * KiB, rw);
    ASSERT_TRUE(kernel.touchUser(pid, base));
    bool some_table_below_top = false;
    for (const auto &[pfn, level] : kernel.pageTableFrames()) {
        if (pfnToAddr(pfn) < 200 * MiB)
            some_table_below_top = true;
    }
    EXPECT_TRUE(some_table_below_top);
    EXPECT_FALSE(kernel.auditTheorem().holds());
}

TEST(KernelCta, TablesAboveLwmInTrueCells)
{
    Kernel kernel(ctaKernelConfig());
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 1 * MiB, rw);
    for (VAddr va = base; va < base + 1 * MiB; va += pageSize)
        ASSERT_TRUE(kernel.touchUser(pid, va));

    const Addr lwm = kernel.ptpZone()->lowWaterMark();
    for (const auto &[pfn, level] : kernel.pageTableFrames()) {
        EXPECT_GE(pfnToAddr(pfn), lwm);
        EXPECT_EQ(kernel.dram().cellTypeAt(pfnToAddr(pfn)),
                  dram::CellType::True);
    }
    EXPECT_TRUE(kernel.auditTheorem().holds());
}

TEST(KernelCta, UserDataStaysBelowLwm)
{
    Kernel kernel(ctaKernelConfig());
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 1 * MiB, rw);
    const Addr lwm = kernel.ptpZone()->lowWaterMark();
    for (VAddr va = base; va < base + 1 * MiB; va += pageSize) {
        auto access = kernel.readUser(pid, va);
        ASSERT_TRUE(access);
        EXPECT_LT(access.phys, lwm);
    }
}

TEST(KernelCta, PtpPressureTriggersReclaim)
{
    // A 256 KiB ZONE_PTP (64 frames) runs out of fresh frames; the
    // kernel evicts old leaf tables (Section 6.3 pressure) instead
    // of failing, and evicted regions demand-fault back correctly.
    Kernel kernel(ctaKernelConfig(256 * KiB));
    const int pid = kernel.createProcess("proc");
    std::vector<VAddr> bases;
    for (int i = 0; i < 128; ++i) {
        const VAddr base = kernel.mmapAnon(pid, pageSize, rw);
        ASSERT_NE(base, 0u);
        ASSERT_TRUE(kernel.writeUser(pid, base, 0x1000u + i))
            << "mapping " << i;
        bases.push_back(base);
    }
    EXPECT_GT(kernel.stats().value("ptReclaims"), 0u);
    EXPECT_EQ(kernel.stats().value("pteAllocFailures"), 0u);
    // Every page still readable with its own data: the resident anon
    // frames survived their page tables' eviction.
    for (int i = 0; i < 128; ++i) {
        auto access = kernel.readUser(pid, bases[i]);
        ASSERT_TRUE(access);
        EXPECT_EQ(access.value, 0x1000u + i);
    }
}

TEST(KernelCta, RestrictionSendsTrustedDataToReservedZone)
{
    Kernel kernel(ctaKernelConfig(2 * MiB, 2));
    const int untrusted = kernel.createProcess("attacker", false);
    const int trusted = kernel.createProcess("daemon", true);
    const auto &ind = kernel.ptpZone()->indicator();

    const VAddr ua = kernel.mmapAnon(untrusted, 64 * KiB, rw);
    auto uaccess = kernel.readUser(untrusted, ua);
    ASSERT_TRUE(uaccess);
    EXPECT_GE(ind.zeros(uaccess.phys), 2u);

    const VAddr ta = kernel.mmapAnon(trusted, 64 * KiB, rw);
    auto taccess = kernel.readUser(trusted, ta);
    ASSERT_TRUE(taccess);
    EXPECT_LT(ind.zeros(taccess.phys), 2u);
}

TEST(KernelCatt, KernelAndUserPartitioned)
{
    KernelConfig config = standardConfig();
    config.policy = AllocPolicy::Catt;
    Kernel kernel(config);
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 64 * KiB, rw);
    auto access = kernel.readUser(pid, base);
    ASSERT_TRUE(access);
    // CATT layout: kernel partition low, user partition high.
    EXPECT_GE(access.phys, 128 * MiB);
    for (const auto &[pfn, level] : kernel.pageTableFrames())
        EXPECT_LT(pfnToAddr(pfn), 128 * MiB);
}

TEST(KernelZebram, DataOnlyInEvenRows)
{
    KernelConfig config = standardConfig();
    config.policy = AllocPolicy::Zebram;
    Kernel kernel(config);
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 256 * KiB, rw);
    for (VAddr va = base; va < base + 256 * KiB; va += pageSize) {
        auto access = kernel.readUser(pid, va);
        ASSERT_TRUE(access);
        if (access.phys >= 16 * MiB) {
            EXPECT_EQ((access.phys / (128 * KiB)) % 2, 0u)
                << "data frame in an odd (guard) row";
        }
    }
    // Half the above-DMA capacity is sacrificed.
    const std::uint64_t data_frames = kernel.phys().totalFrames();
    EXPECT_NEAR(static_cast<double>(data_frames),
                (16 * MiB + 120 * MiB) / 4096.0, 64.0);
}

TEST(Kernel, TlbFlushForcesRewalk)
{
    Kernel kernel(standardConfig());
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 64 * KiB, rw);
    ASSERT_TRUE(kernel.touchUser(pid, base));
    const std::uint64_t walks_before =
        kernel.mmu().walker().stats().value("walks");
    ASSERT_TRUE(kernel.readUser(pid, base)); // TLB hit
    EXPECT_EQ(kernel.mmu().walker().stats().value("walks"),
              walks_before);
    kernel.flushTlb();
    ASSERT_TRUE(kernel.readUser(pid, base)); // miss -> walk
    EXPECT_GT(kernel.mmu().walker().stats().value("walks"),
              walks_before);
}

TEST(Kernel, MmapFixedOverlapRejected)
{
    Kernel kernel(standardConfig());
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 64 * KiB, rw, 0x40000000);
    EXPECT_EQ(base, 0x40000000u);
    EXPECT_EQ(kernel.mmapAnon(pid, 64 * KiB, rw, 0x40001000), 0u);
}

} // namespace
} // namespace ctamem::kernel
