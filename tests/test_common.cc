/**
 * @file
 * Unit tests for the common utilities: bit operations, RNG and
 * stable hashing, combinatorics, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/bench_report.hh"
#include "common/bitops.hh"
#include "common/combinatorics.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace ctamem {
namespace {

TEST(Types, PageConversions)
{
    EXPECT_EQ(addrToPfn(0), 0u);
    EXPECT_EQ(addrToPfn(4095), 0u);
    EXPECT_EQ(addrToPfn(4096), 1u);
    EXPECT_EQ(pfnToAddr(3), 3u * 4096);
    EXPECT_EQ(pageAlignDown(0x1234), 0x1000u);
    EXPECT_EQ(pageAlignUp(0x1234), 0x2000u);
    EXPECT_EQ(pageAlignUp(0x1000), 0x1000u);
}

TEST(Bitops, BitsExtractInsert)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 0), 0xdeadbeefu);
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(~0ULL, 7, 0, 0), ~0ULL << 8);
    EXPECT_TRUE(bit(0x80, 7));
    EXPECT_FALSE(bit(0x80, 6));
}

TEST(Bitops, PopcountAndHamming)
{
    EXPECT_EQ(popcount(0), 0u);
    EXPECT_EQ(popcount(0xff), 8u);
    EXPECT_EQ(hammingDistance(0b1010, 0b0101), 4u);
    EXPECT_EQ(hammingDistance(42, 42), 0u);
}

TEST(Bitops, PowersAndLogs)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(4096), 12u);
    EXPECT_EQ(log2Ceil(4097), 13u);
    EXPECT_EQ(log2Ceil(1), 0u);
}

TEST(Rng, StableHashIsStable)
{
    EXPECT_EQ(stableHash(1, 2, 3), stableHash(1, 2, 3));
    EXPECT_NE(stableHash(1, 2, 3), stableHash(1, 2, 4));
    EXPECT_NE(stableHash(1, 2, 3), stableHash(2, 2, 3));
}

TEST(Rng, Hash01Range)
{
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const double u = hash01(7, i);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, Hash01IsRoughlyUniform)
{
    unsigned below_half = 0;
    const unsigned trials = 20000;
    for (std::uint64_t i = 0; i < trials; ++i)
        if (hash01(13, i) < 0.5)
            ++below_half;
    EXPECT_NEAR(below_half, trials / 2, trials / 20);
}

TEST(Rng, SequentialDeterminism)
{
    Rng a(99);
    Rng b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.below(17);
        EXPECT_LT(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 17u); // all residues hit
}

TEST(Rng, BernoulliMaskEmpiricalFrequency)
{
    // The mask's bits must be Bernoulli(p): over many masks the set
    // fraction converges to p.  6-sigma tolerance on ~1.3M draws.
    Rng rng(21);
    for (const double p : {0.03125, 0.3, 0.5, 0.9}) {
        std::uint64_t set = 0;
        const std::uint64_t masks = 20'000;
        for (std::uint64_t i = 0; i < masks; ++i)
            set += popcount(rng.bernoulliMask(p));
        const double draws = static_cast<double>(masks * 64);
        const double freq = static_cast<double>(set) / draws;
        const double sigma = std::sqrt(p * (1.0 - p) / draws);
        EXPECT_NEAR(freq, p, 6 * sigma) << "p=" << p;
    }
}

TEST(Rng, BernoulliMaskEdgesConsumeNothing)
{
    Rng a(4), b(4);
    EXPECT_EQ(a.bernoulliMask(0.0), 0u);
    EXPECT_EQ(a.bernoulliMask(-1.0), 0u);
    EXPECT_EQ(a.bernoulliMask(1.0), ~0ULL);
    EXPECT_EQ(a.bernoulliMask(2.0), ~0ULL);
    // Degenerate probabilities draw no words: streams stay aligned.
    EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BernoulliMaskIsDeterministic)
{
    Rng a(77), b(77);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.bernoulliMask(0.3), b.bernoulliMask(0.3));
}

TEST(Rng, NextBoundedIsInRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.nextBounded(17);
        EXPECT_LT(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 17u); // all residues hit
    EXPECT_EQ(rng.nextBounded(1), 0u);
    // A bound near 2^63 exercises the wide-product path.
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(rng.nextBounded(1ULL << 62), 1ULL << 62);
}

TEST(Rng, NextBoundedIsRoughlyUniform)
{
    Rng rng(11);
    constexpr std::uint64_t kBound = 8;
    constexpr int kDraws = 80'000;
    std::uint64_t buckets[kBound] = {};
    for (int i = 0; i < kDraws; ++i)
        ++buckets[rng.nextBounded(kBound)];
    for (std::uint64_t b = 0; b < kBound; ++b)
        EXPECT_NEAR(static_cast<double>(buckets[b]),
                    kDraws / static_cast<double>(kBound),
                    6 * std::sqrt(kDraws / static_cast<double>(kBound)))
            << "bucket " << b;
}

TEST(Combinatorics, Choose)
{
    EXPECT_NEAR(choose(8, 0), 1.0, 1e-9);
    EXPECT_NEAR(choose(8, 1), 8.0, 1e-9);
    EXPECT_NEAR(choose(8, 2), 28.0, 1e-9);
    EXPECT_NEAR(choose(8, 8), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(choose(3, 5), 0.0);
}

TEST(Combinatorics, BinomialTermMatchesDirectEvaluation)
{
    const double p_up = 2e-7;
    const double p_down = 9.98e-5;
    const double direct =
        8.0 * p_up * std::pow(1.0 - p_down, 7);
    EXPECT_NEAR(binomialTerm(8, 1, p_up, p_down), direct,
                direct * 1e-12);
}

TEST(Combinatorics, PaperHeadlineExploitability)
{
    // Section 5: Pf = 1e-4, P01 = 0.2% -> P_exploitable = 1.6e-6 for
    // n = 8 (8 GiB / 32 MiB ZONE_PTP).
    const double p = binomialTail(8, 1, 1e-4 * 0.002, 1e-4 * 0.998);
    EXPECT_NEAR(p, 1.6e-6, 0.05e-6);
}

TEST(Combinatorics, TailIsMonotoneInMinFlips)
{
    const double p_up = 1e-4;
    const double p_down = 1e-4;
    double prev = 1.0;
    for (unsigned min_flips = 0; min_flips <= 8; ++min_flips) {
        const double tail = binomialTail(8, min_flips, p_up, p_down);
        EXPECT_LE(tail, prev + 1e-18);
        prev = tail;
    }
}

TEST(Combinatorics, AtLeastOne)
{
    EXPECT_DOUBLE_EQ(atLeastOne(0.0, 100), 0.0);
    EXPECT_DOUBLE_EQ(atLeastOne(1.0, 5), 1.0);
    EXPECT_NEAR(atLeastOne(0.5, 2), 0.75, 1e-12);
    // Stability for tiny p, huge trial count.
    EXPECT_NEAR(atLeastOne(1e-12, 1e6), 1e-6, 1e-9);
}

TEST(Stats, CounterAndSamples)
{
    Counter c;
    c.increment();
    c.increment(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    SampleStat s;
    s.record(1.0);
    s.record(3.0);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Stats, Histogram)
{
    Histogram h(0.0, 10.0, 10);
    h.record(-1.0);
    h.record(0.0);
    h.record(5.5);
    h.record(10.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[5], 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, StatGroup)
{
    StatGroup g;
    g.counter("a").increment(2);
    EXPECT_EQ(g.value("a"), 2u);
    EXPECT_EQ(g.value("missing"), 0u);
    g.reset();
    EXPECT_EQ(g.value("a"), 0u);
}

TEST(Stats, HistogramTopEdgeClamps)
{
    // 0.7 is not exactly representable: (x - lo) / (hi - lo) * size
    // can round to exactly size for x just under hi.  The clamp must
    // land such samples in the last bucket, not one past it.
    Histogram h(0.0, 0.7, 7);
    h.record(std::nextafter(0.7, 0.0));
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.buckets().back(), 1u);
    EXPECT_EQ(h.total(), 1u);
}

TEST(Stats, SampleStatWelfordStability)
{
    // Classic catastrophic-cancellation case: tiny spread on a huge
    // offset.  The naive sum-of-squares form loses every significant
    // digit; Welford keeps them.
    SampleStat s;
    const double offset = 1e9;
    for (double x : {offset - 1.0, offset, offset + 1.0})
        s.record(x);
    EXPECT_NEAR(s.stddev(), 1.0, 1e-6);
    EXPECT_DOUBLE_EQ(s.mean(), offset);
    EXPECT_DOUBLE_EQ(s.sum(), 3.0 * offset);

    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, StatGroupHandles)
{
    StatGroup g;
    const StatId a = g.registerCounter("a");
    const StatId b = g.registerCounter("b");
    EXPECT_NE(a, b);
    EXPECT_EQ(g.registerCounter("a"), a); // idempotent

    g.at(a).increment(3);
    g.at(b).increment();
    EXPECT_EQ(g.value("a"), 3u);
    EXPECT_EQ(g.value("b"), 1u);

    // The string view and the handle view hit the same counter.
    g.counter("a").increment();
    EXPECT_EQ(g.at(a).value(), 4u);

    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "a = 4\nb = 1\n");

    g.reset();
    EXPECT_EQ(g.at(a).value(), 0u);
    EXPECT_EQ(g.at(b).value(), 0u);
}

TEST(BenchReport, EmitsSchemaJson)
{
    BenchReport report;
    report.add("walks", 1.5e6, "walks/s", 1000);
    report.add("sweep", 0.25, "s", 1);
    report.add("walks", 2e6, "walks/s", 2000); // overwrite

    std::ostringstream os;
    report.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"walks\": {\"value\": 2000000.0, "
                        "\"unit\": \"walks/s\", \"iterations\": "
                        "2000}"),
              std::string::npos);
    EXPECT_NE(json.find("\"sweep\""), std::string::npos);
    EXPECT_EQ(report.entries().size(), 2u);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.size() - 2], '}');
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(fatal("boom ", 42), FatalError);
    try {
        fatal("code=", 7);
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "code=7");
    }
}

} // namespace
} // namespace ctamem
