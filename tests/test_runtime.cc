/**
 * @file
 * Tests for the parallel experiment engine: ThreadPool semantics
 * (results, exceptions, reuse), bit-exact determinism of the chunked
 * Monte-Carlo runner across worker counts, and Campaign result
 * tables matching the serial per-machine runners.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "model/montecarlo.hh"
#include "runtime/thread_pool.hh"
#include "sim/campaign.hh"

namespace ctamem {
namespace {

using model::McEstimate;
using model::McSpec;
using runtime::ThreadPool;

TEST(ThreadPool, SubmitDeliversResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionReachesFuture)
{
    ThreadPool pool(2);
    std::future<int> bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The worker that ran the throwing task is still alive.
    EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::uint64_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(0, kCount,
                     [&](std::uint64_t i) { ++hits[i]; });
    for (std::uint64_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop)
{
    ThreadPool pool(2);
    pool.parallelFor(5, 5, [](std::uint64_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    std::atomic<std::uint64_t> visited{0};
    EXPECT_THROW(pool.parallelFor(0, 64,
                                  [&](std::uint64_t i) {
                                      ++visited;
                                      if (i == 13)
                                          throw std::logic_error("13");
                                  }),
                 std::logic_error);
    // The throwing job abandons at most the rest of its current
    // grain; the other jobs keep draining the shared cursor.  With 64
    // items on 4 workers the default grain is 2, so at most 1 index
    // is skipped.
    EXPECT_GE(visited.load(), 61u);
    // And the pool survives for the next round.
    EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForHonorsGrainHint)
{
    ThreadPool pool(4);
    constexpr std::uint64_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    for (const std::uint64_t grain : {1u, 7u, 5000u}) {
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(0, kCount,
                         [&](std::uint64_t i) { ++hits[i]; }, grain);
        for (std::uint64_t i = 0; i < kCount; ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "grain " << grain << " index " << i;
    }
}

TEST(ThreadPool, ReusableAcrossRounds)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(0, 100,
                         [&](std::uint64_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 4950u);
        EXPECT_EQ(pool.submit([round]() { return round; }).get(),
                  round);
    }
}

McSpec
boostedSpec()
{
    McSpec spec;
    spec.params.errors.pf = 0.05;
    spec.params.errors.p01True = 0.3;
    spec.params.errors.p10True = 0.7;
    spec.zeros = 1;
    spec.trials = 100'000;
    spec.chunkSize = 4'096;
    return spec;
}

TEST(RunMc, BitIdenticalAcrossThreadCounts)
{
    const McSpec spec = boostedSpec();
    const McEstimate serial = model::runMc(spec);
    EXPECT_EQ(serial.trials, spec.trials);
    for (const unsigned threads : {1u, 4u, 8u}) {
        ThreadPool pool(threads);
        const McEstimate parallel = model::runMc(spec, pool);
        EXPECT_EQ(serial.mean, parallel.mean)
            << threads << " threads";
        EXPECT_EQ(serial.stderr, parallel.stderr)
            << threads << " threads";
        EXPECT_EQ(serial.trials, parallel.trials);
    }
}

TEST(RunMc, UniformSamplerAlsoDeterministic)
{
    McSpec spec = boostedSpec();
    spec.sampler = model::Sampler::Uniform;
    spec.trials = 50'000;
    const McEstimate serial = model::runMc(spec);
    ThreadPool pool(6);
    const McEstimate parallel = model::runMc(spec, pool);
    EXPECT_EQ(serial.mean, parallel.mean);
    EXPECT_EQ(serial.stderr, parallel.stderr);
}

TEST(RunMc, BatchedBitIdenticalAcrossThreadCounts)
{
    // The batched kernel inherits the chunk-seeding contract: the
    // fold is in chunk-index order and every chunk's draws are
    // chunk-local, so the estimate is bit-identical at any pool size.
    for (const model::Sampler sampler :
         {model::Sampler::FixedZerosBatched,
          model::Sampler::UniformBatched}) {
        McSpec spec = boostedSpec();
        spec.sampler = sampler;
        const McEstimate serial = model::runMc(spec);
        EXPECT_EQ(serial.trials, spec.trials);
        for (const unsigned threads : {1u, 2u, 8u}) {
            ThreadPool pool(threads);
            const McEstimate parallel = model::runMc(spec, pool);
            EXPECT_EQ(serial.mean, parallel.mean)
                << threads << " threads";
            EXPECT_EQ(serial.stderr, parallel.stderr)
                << threads << " threads";
            EXPECT_EQ(serial.ess, parallel.ess)
                << threads << " threads";
            EXPECT_EQ(serial.trials, parallel.trials);
        }
    }
}

TEST(RunMc, ImportanceSampledAlsoDeterministic)
{
    McSpec spec = boostedSpec();
    spec.sampler = model::Sampler::FixedZerosBatched;
    spec.mode = model::Mode::ImportanceSampled;
    const McEstimate serial = model::runMc(spec);
    for (const unsigned threads : {2u, 8u}) {
        ThreadPool pool(threads);
        const McEstimate parallel = model::runMc(spec, pool);
        EXPECT_EQ(serial.mean, parallel.mean);
        EXPECT_EQ(serial.stderr, parallel.stderr);
        EXPECT_EQ(serial.ess, parallel.ess);
    }
}

TEST(RunMc, BatchedRaggedChunksCountAllTrials)
{
    // Neither the trial count nor the chunk size is a multiple of the
    // 64-lane block width: the last block of each chunk runs with a
    // partial lane mask and every trial is still counted exactly once.
    McSpec spec = boostedSpec();
    spec.sampler = model::Sampler::FixedZerosBatched;
    spec.trials = 10'001;
    spec.chunkSize = 1'000;
    const McEstimate serial = model::runMc(spec);
    EXPECT_EQ(serial.trials, 10'001u);
    ThreadPool pool(4);
    const McEstimate parallel = model::runMc(spec, pool);
    EXPECT_EQ(parallel.trials, 10'001u);
    EXPECT_EQ(serial.mean, parallel.mean);
}

TEST(RunMc, LegacyWrappersAreThinOverRunMc)
{
    const McSpec spec = boostedSpec();
    const McEstimate wrapped = model::mcExploitableFixedZeros(
        spec.params, spec.zeros, spec.trials, spec.seed);
    McSpec defaults = spec;
    defaults.chunkSize = McSpec{}.chunkSize; // wrapper uses default
    const McEstimate direct = model::runMc(defaults);
    EXPECT_EQ(wrapped.mean, direct.mean);
    EXPECT_EQ(wrapped.stderr, direct.stderr);
}

TEST(RunMc, RaggedLastChunkCountsAllTrials)
{
    McSpec spec = boostedSpec();
    spec.trials = 10'001; // not a multiple of chunkSize
    spec.chunkSize = 1'000;
    const McEstimate serial = model::runMc(spec);
    EXPECT_EQ(serial.trials, 10'001u);
    ThreadPool pool(4);
    EXPECT_EQ(model::runMc(spec, pool).mean, serial.mean);
}

TEST(Campaign, CellsMatchSerialMachineRunners)
{
    using defense::DefenseKind;
    std::vector<sim::MachineConfig> configs(2);
    configs[0].defense = DefenseKind::None;
    configs[1].defense = DefenseKind::Cta;
    const std::vector<sim::AttackKind> attacks{
        sim::AttackKind::ProjectZero, sim::AttackKind::Algorithm1};

    sim::Campaign campaign;
    campaign.addGrid(configs, attacks);
    ASSERT_EQ(campaign.size(), 4u);

    ThreadPool pool(4);
    const sim::CampaignReport report = campaign.run(pool);
    ASSERT_EQ(report.cells.size(), 4u);

    std::size_t index = 0;
    for (const sim::AttackKind attack : attacks) {
        for (const sim::MachineConfig &config : configs) {
            sim::Machine machine(config);
            const attack::AttackResult expect =
                machine.runAttack(attack);
            const sim::CellResult &got = report.cells[index++];
            EXPECT_EQ(got.cell.attack, attack);
            EXPECT_EQ(got.cell.config.defense, config.defense);
            EXPECT_EQ(got.result.outcome, expect.outcome);
            EXPECT_EQ(got.result.hammerPasses, expect.hammerPasses);
            EXPECT_EQ(got.result.flipsInduced, expect.flipsInduced);
            EXPECT_EQ(got.result.ptesCorrupted,
                      expect.ptesCorrupted);
            EXPECT_EQ(got.result.selfReferences,
                      expect.selfReferences);
            EXPECT_EQ(got.result.attackTime, expect.attackTime);
        }
    }
}

TEST(Campaign, ParallelTableEqualsSerialTable)
{
    using defense::DefenseKind;
    std::vector<sim::MachineConfig> configs(2);
    configs[0].defense = DefenseKind::Para;
    configs[1].defense = DefenseKind::Anvil;

    sim::Campaign campaign;
    campaign.addGrid(configs, {sim::AttackKind::ProjectZero});
    const sim::CampaignReport serial = campaign.run();
    ThreadPool pool(4);
    const sim::CampaignReport parallel = campaign.run(pool);
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(serial.cells[i].result.outcome,
                  parallel.cells[i].result.outcome);
        EXPECT_EQ(serial.cells[i].result.flipsInduced,
                  parallel.cells[i].result.flipsInduced);
        EXPECT_EQ(serial.cells[i].anvilTriggered,
                  parallel.cells[i].anvilTriggered);
    }
}

TEST(Campaign, DefaultLabelsNameAttackAndDefense)
{
    sim::MachineConfig config;
    config.defense = defense::DefenseKind::Cta;
    sim::Campaign campaign;
    campaign.add(config, sim::AttackKind::Drammer);
    EXPECT_EQ(campaign.cells().at(0).label,
              "Drammer templating vs CTA");
}

} // namespace
} // namespace ctamem
